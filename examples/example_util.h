// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Setup shared by the serving examples (snapshot_serving.cc modes, the
// sharded-serving walkthrough): the deterministic demo dataset, domain
// query sampling, and the engine-over-snapshot boilerplate. Every mode —
// save, serve, partition, shard-serve, router — derives the SAME dataset
// from the same seed, which is what lets a fresh process verify another
// process's answers bit-for-bit without shipping the data.

#ifndef PVDB_EXAMPLES_EXAMPLE_UTIL_H_
#define PVDB_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/pvdb.h"

namespace pvdb::examples {

/// The demo dataset every serving mode shares: 3-d, 5000 objects, 100
/// samples each, seed 1. Deterministic — any process can rebuild it.
inline uncertain::Dataset MakeServingDataset() {
  uncertain::SyntheticOptions options;
  options.dim = 3;
  options.count = 5000;
  options.samples_per_object = 100;
  options.seed = 1;
  return uncertain::GenerateSynthetic(options);
}

/// `count` uniform query points over `domain`, deterministic in `seed`.
inline std::vector<geom::Point> MakeDomainQueries(const geom::Rect& domain,
                                                  int count,
                                                  uint64_t seed = 9) {
  Rng rng(seed);
  std::vector<geom::Point> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    geom::Point q(domain.dim());
    for (int d = 0; d < domain.dim(); ++d) {
      q[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
    }
    queries.push_back(q);
  }
  return queries;
}

/// Engine over a snapshot with the example defaults; prints the failure
/// and returns nullptr on error (example-style error handling).
inline std::unique_ptr<service::QueryEngine> MakeSnapshotEngine(
    std::shared_ptr<const pv::IndexSnapshot> snapshot, int threads = 4,
    bool canonical_candidates = false) {
  service::QueryEngineOptions options;
  options.threads = threads;
  options.canonical_candidates = canonical_candidates;
  auto engine =
      service::QueryEngine::CreateFromSnapshot(std::move(snapshot), options);
  if (!engine.ok()) {
    std::printf("engine failed: %s\n", engine.status().ToString().c_str());
    return nullptr;
  }
  return std::move(engine).value();
}

/// Runs the point batch through the typed API (each point a kPnn request)
/// and fails loudly on any per-query error. Returns the answers (empty on
/// failure, with `*ok` false).
inline std::vector<service::QueryAnswer> ServeBatchOrFail(
    service::QueryEngine* engine, const std::vector<geom::Point>& queries,
    service::ServiceStats* stats, bool* ok) {
  std::vector<service::QueryAnswer> answers =
      engine->ExecuteBatch(service::PnnRequests(queries), stats);
  for (const auto& a : answers) {
    if (!a.status.ok()) {
      std::printf("query failed: %s\n", a.status.ToString().c_str());
      *ok = false;
      return {};
    }
  }
  *ok = true;
  return answers;
}

}  // namespace pvdb::examples

#endif  // PVDB_EXAMPLES_EXAMPLE_UTIL_H_
