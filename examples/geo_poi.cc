// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Geospatial point-of-interest search on the airports-like dataset: 3D
// coordinates (latitude, longitude, altitude mapped to a uniform grid) with
// GPS measurement error, as in the paper's real-data experiments
// (Section VII-A). Compares PNNQ Step-1 answer sets and costs between the
// PV-index and the R-tree branch-and-prune baseline on identical queries —
// a miniature Figure 9(h).

#include <algorithm>
#include <cstdio>

#include "src/pvdb.h"

int main() {
  using namespace pvdb;

  uncertain::RealDataOptions options;
  options.scale = 0.05;  // 1,000 airports: example-sized
  options.samples_per_object = 300;
  const uncertain::Dataset airports =
      uncertain::GenerateRealLike(uncertain::RealDataset::kAirports, options);
  std::printf("airports-like dataset: %zu objects (3D, GPS-error regions)\n",
              airports.size());

  // Competing Step-1 indexes over the same database.
  storage::InMemoryPager pager;
  auto pv_index = pv::PvIndex::Build(airports, &pager, pv::PvIndexOptions{});
  PVDB_CHECK(pv_index.ok());
  rtree::RStarTree region_tree = eval::BuildRegionTree(airports);

  const eval::QueryWorkload workload =
      eval::MakeQueryWorkload(airports.domain(), 25, /*seed=*/7);
  eval::PnnqRunner runner(&airports);
  const eval::QueryCost pv_cost =
      runner.RunPvIndex(*pv_index.value(), workload);
  const eval::QueryCost rt_cost = runner.RunRTree(region_tree, workload);

  std::printf("\naveraged over %zu queries:\n", workload.points.size());
  std::printf("  %-10s  %8s  %8s  %10s\n", "method", "Tq(ms)", "T_OR(ms)",
              "I/O pages");
  std::printf("  %-10s  %8.3f  %8.3f  %10.1f\n", "R-tree", rt_cost.t_query_ms,
              rt_cost.t_or_ms, rt_cost.io_or_pages);
  std::printf("  %-10s  %8.3f  %8.3f  %10.1f\n", "PV-index",
              pv_cost.t_query_ms, pv_cost.t_or_ms, pv_cost.io_or_pages);

  // Both Step-1 implementations must agree exactly.
  int agreements = 0;
  pv::PnnStep2Evaluator step2(&airports);
  for (const auto& q : workload.points) {
    auto a = pv_index.value()->QueryPossibleNN(q);
    PVDB_CHECK(a.ok());
    auto ids_pv = a.value();
    std::sort(ids_pv.begin(), ids_pv.end());
    auto ids_rt = rtree::PnnStep1BranchAndPrune(region_tree, q);
    if (ids_pv == ids_rt) ++agreements;
  }
  std::printf("\nstep-1 answer sets identical on %d/%zu queries\n",
              agreements, workload.points.size());

  // Show one full PNNQ.
  const geom::Point q = workload.points.front();
  auto step1 = pv_index.value()->QueryPossibleNN(q);
  PVDB_CHECK(step1.ok());
  const auto answers = step2.Evaluate(q, step1.value());
  std::printf("\nsample query %s: %zu answer(s)\n", q.ToString().c_str(),
              answers.size());
  for (const auto& ans : answers) {
    std::printf("  airport %llu  P(nearest) = %.3f\n",
                static_cast<unsigned long long>(ans.id), ans.probability);
  }
  return 0;
}
