// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Sensor-network similarity search: the paper's non-spatial motivation
// (Section I). Each sensor node reports a (temperature, humidity, wind
// speed) triple contaminated with measurement error, so each reading is a
// 3D uncertain object. The query "which station's conditions are closest
// to reference conditions q?" is a PNNQ over attribute space.
//
// Demonstrates that PV-cells are a property of d-dimensional attribute
// uncertainty in general, not of geography.

#include <cstdio>

#include "src/pvdb.h"

int main() {
  using namespace pvdb;
  Rng rng(2026);

  // Attribute domain: temperature [0,50] C, humidity [0,100] %, wind
  // [0,30] m/s — normalized into a common [0, 1000]^3 grid (axis scaling
  // does not change NN semantics if applied consistently).
  const geom::Rect domain = geom::Rect::Cube(3, 0.0, 1000.0);
  uncertain::Dataset readings(domain);

  const int kStations = 800;
  for (int i = 0; i < kStations; ++i) {
    // Ground-truth conditions cluster around a few weather regimes.
    const double regime = rng.NextBool(0.5) ? 300.0 : 650.0;
    geom::Point truth{regime + rng.NextGaussian(0, 80),
                      500 + rng.NextGaussian(0, 150),
                      200 + rng.NextGaussian(0, 60)};
    for (int d = 0; d < 3; ++d) {
      truth[d] = std::clamp(truth[d], 20.0, 980.0);
    }
    // Sensor error: ±1.5% of range per attribute.
    geom::Point half{15, 15, 15};
    const geom::Rect region = geom::Rect::FromCenterHalfWidths(truth, half);
    readings
        .Add(uncertain::UncertainObject::GaussianSampled(
            static_cast<uint64_t>(i), truth, 5.0, region, 400, &rng))
        .ok();
  }

  storage::InMemoryPager pager;
  auto index = pv::PvIndex::Build(readings, &pager, pv::PvIndexOptions{});
  PVDB_CHECK(index.ok());
  std::printf("indexed %zu sensor readings (3D attribute uncertainty)\n",
              readings.size());

  pv::PnnStep2Evaluator step2(&readings);
  auto match = [&](const char* label, double t, double h, double w) {
    const geom::Point q{t, h, w};
    auto step1 = index.value()->QueryPossibleNN(q);
    PVDB_CHECK(step1.ok());
    const auto answers = step2.Evaluate(q, step1.value());
    std::printf("\nreference %s -> %zu candidate station(s)\n", label,
                answers.size());
    int shown = 0;
    for (const auto& a : answers) {
      if (++shown > 5) break;
      std::printf("  station %llu  P(best match) = %.3f\n",
                  static_cast<unsigned long long>(a.id), a.probability);
    }
  };

  match("cool regime (t=310, h=480, w=190)", 310, 480, 190);
  match("warm regime (t=640, h=530, w=210)", 640, 530, 210);
  match("outlier     (t=900, h=100, w=280)", 900, 100, 280);
  return 0;
}
