// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Quickstart: build a PV-index over a small synthetic uncertain database and
// answer one probabilistic nearest-neighbor query end to end.
//
//   $ ./quickstart
//
// Walkthrough of the paper's pipeline: Step 1 retrieves every object with
// non-zero probability of being the nearest neighbor (via PV-cells bounded
// by UBRs); Step 2 computes the actual qualification probabilities.

#include <cstdio>

#include "src/pvdb.h"

int main() {
  using namespace pvdb;

  // 1. A synthetic uncertain database: 2,000 3D objects whose attribute
  //    values are only known up to a rectangular uncertainty region with a
  //    500-sample discrete pdf (the paper's experimental model).
  uncertain::SyntheticOptions data_options;
  data_options.dim = 3;
  data_options.count = 2000;
  data_options.seed = 1;
  const uncertain::Dataset db = uncertain::GenerateSynthetic(data_options);
  std::printf("database: %zu uncertain objects, d=%d, domain %s\n", db.size(),
              db.dim(), db.domain().ToString().c_str());

  // 2. Build the PV-index: one Uncertain Bounding Rectangle per object
  //    (Shrink-and-Expand algorithm), organized in an octree with an
  //    extensible-hash secondary index on a simulated 4 KiB-page disk.
  storage::InMemoryPager pager;
  pv::PvIndexOptions index_options;  // Table I defaults
  pv::BuildStats build_stats;
  auto index = pv::PvIndex::Build(db, &pager, index_options, &build_stats);
  if (!index.ok()) {
    std::printf("build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "PV-index built in %.1f ms (chooseCSet %.1f ms, SE %.1f ms, "
      "avg |Cset| %.1f)\n",
      build_stats.total_ms, build_stats.choose_cset_ms,
      build_stats.compute_ubr_ms, build_stats.cset_size.mean());

  // 3. A probabilistic nearest-neighbor query (PNNQ).
  const geom::Point q{4200.0, 7000.0, 1300.0};
  auto step1 = index.value()->QueryPossibleNN(q);
  if (!step1.ok()) {
    std::printf("query failed: %s\n", step1.status().ToString().c_str());
    return 1;
  }
  std::printf("query %s\n", q.ToString().c_str());
  std::printf("step 1: %zu objects may be the nearest neighbor\n",
              step1.value().size());

  // 4. Step 2: qualification probabilities over the discrete pdfs.
  pv::PnnStep2Evaluator step2(&db);
  const auto answers = step2.Evaluate(q, step1.value());
  std::printf("step 2: qualification probabilities\n");
  for (const auto& a : answers) {
    std::printf("  object %llu  P(nearest) = %.4f\n",
                static_cast<unsigned long long>(a.id), a.probability);
  }
  return 0;
}
