// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Vehicle tracking: the paper's motivating location-based-service scenario
// (Section I). A fleet of vehicles reports GPS positions with bounded
// error; dispatch queries ask "which vehicle is closest to this incident?"
// — a PNNQ, since any vehicle whose uncertainty region admits a nearer
// position than every other vehicle's farthest position may be the answer.
//
// The example also exercises the incremental PV-index maintenance of
// Section VI-B: vehicles join and leave the fleet between query waves, and
// the index is patched in place instead of being rebuilt.

#include <cstdio>
#include <vector>

#include "src/pvdb.h"

namespace {

using namespace pvdb;

// A vehicle's reported position with GPS error radius `err` becomes an
// uncertain object: rectangular region around the report, Gaussian pdf.
uncertain::UncertainObject MakeVehicle(uint64_t id, double x, double y,
                                       double err, const geom::Rect& domain,
                                       Rng* rng) {
  geom::Point center{x, y};
  geom::Point half{err, err};
  geom::Rect region = geom::Rect::FromCenterHalfWidths(center, half);
  region = geom::Rect::Intersection(region, domain);
  return uncertain::UncertainObject::GaussianSampled(id, center, err / 2.0,
                                                     region, 300, rng);
}

}  // namespace

int main() {
  Rng rng(99);
  const geom::Rect city = geom::Rect::Cube(2, 0.0, 10000.0);  // 10 km grid
  uncertain::Dataset fleet(city);

  // 500 vehicles, GPS error 15–40 m.
  const int kFleetSize = 500;
  for (int i = 0; i < kFleetSize; ++i) {
    const double x = rng.NextUniform(100, 9900);
    const double y = rng.NextUniform(100, 9900);
    const double err = rng.NextUniform(15, 40);
    PVDB_CHECK(fleet
                   .Add(MakeVehicle(static_cast<uint64_t>(i), x, y, err, city,
                                    &rng))
                   .ok());
  }

  storage::InMemoryPager pager;
  pv::BuildStats build_stats;
  auto index = pv::PvIndex::Build(fleet, &pager, pv::PvIndexOptions{},
                                  &build_stats);
  PVDB_CHECK(index.ok());
  std::printf("fleet of %zu vehicles indexed in %.1f ms\n", fleet.size(),
              build_stats.total_ms);

  pv::PnnStep2Evaluator step2(&fleet);
  auto dispatch = [&](double x, double y) {
    const geom::Point incident{x, y};
    auto step1 = index.value()->QueryPossibleNN(incident);
    PVDB_CHECK(step1.ok());
    const auto answers = step2.Evaluate(incident, step1.value());
    std::printf("incident at (%.0f, %.0f): %zu candidate vehicle(s)\n", x, y,
                answers.size());
    for (const auto& a : answers) {
      std::printf("  vehicle %llu  P(closest) = %.3f\n",
                  static_cast<unsigned long long>(a.id), a.probability);
    }
  };

  std::printf("\n-- dispatch wave 1 --\n");
  dispatch(3000, 4000);
  dispatch(8700, 1200);

  // Fleet churn: two vehicles go offline, three new ones come online.
  // The PV-index is maintained incrementally (Section VI-B).
  std::printf("\n-- fleet churn --\n");
  for (uint64_t gone : {7ull, 123ull}) {
    const uncertain::UncertainObject removed = *fleet.Find(gone);
    PVDB_CHECK(fleet.Remove(gone).ok());
    pv::UpdateStats stats;
    PVDB_CHECK(index.value()->DeleteObject(fleet, removed, &stats).ok());
    std::printf("vehicle %llu offline: index patched in %.2f ms "
                "(%d affected)\n",
                static_cast<unsigned long long>(gone), stats.total_ms,
                stats.affected);
  }
  for (int i = 0; i < 3; ++i) {
    const auto id = static_cast<uint64_t>(kFleetSize + i);
    const double x = rng.NextUniform(100, 9900);
    const double y = rng.NextUniform(100, 9900);
    PVDB_CHECK(fleet.Add(MakeVehicle(id, x, y, 25, city, &rng)).ok());
    pv::UpdateStats stats;
    PVDB_CHECK(index.value()->InsertObject(fleet, id, &stats).ok());
    std::printf("vehicle %llu online: index patched in %.2f ms "
                "(%d affected)\n",
                static_cast<unsigned long long>(id), stats.total_ms,
                stats.affected);
  }

  std::printf("\n-- dispatch wave 2 (after churn) --\n");
  dispatch(3000, 4000);
  dispatch(5500, 5500);
  return 0;
}
