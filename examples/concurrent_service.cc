// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Concurrent serving walkthrough: build a PV-index, stand up the
// QueryEngine (thread pool + backend planner + leaf-result cache), answer a
// batch of typed PNN requests in parallel, re-run it warm to show the cache
// working, walk the rest of the query vocabulary (top-k / threshold /
// range / trajectory in one heterogeneous batch), fire an async single
// query, interleave an insert with live queries, and finish with an excerpt
// of the engine's metrics export.
//
//   $ ./concurrent_service

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/pvdb.h"

int main() {
  using namespace pvdb;

  // 1. Data and index, exactly as in quickstart.
  uncertain::SyntheticOptions data_options;
  data_options.dim = 3;
  data_options.count = 5000;
  data_options.samples_per_object = 100;
  data_options.seed = 1;
  uncertain::Dataset db = uncertain::GenerateSynthetic(data_options);

  storage::InMemoryPager pager;
  auto index = pv::PvIndex::Build(db, &pager, {});
  if (!index.ok()) {
    std::printf("build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }

  // 2. The serving engine: the planner picks a backend (PV-index here),
  //    4 workers shard batches, and a leaf cache memoizes Step-1 reads.
  service::EngineBackends backends;
  backends.pv = index.value().get();
  service::QueryEngineOptions engine_options;
  engine_options.threads = 4;
  auto engine = service::QueryEngine::Create(&db, backends, engine_options);
  if (!engine.ok()) {
    std::printf("engine failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("engine: backend=%s (%s), %d threads\n",
              service::BackendKindName(engine.value()->active_backend()),
              engine.value()->plan_reason().c_str(),
              engine.value()->threads());

  // 3. A batch of typed PNN requests, answered in parallel.
  Rng rng(9);
  std::vector<geom::Point> queries;
  for (int i = 0; i < 256; ++i) {
    queries.push_back(geom::Point{rng.NextUniform(0, 10000),
                                  rng.NextUniform(0, 10000),
                                  rng.NextUniform(0, 10000)});
  }
  const std::vector<service::QueryRequest> requests =
      service::PnnRequests(queries);
  service::ServiceStats stats;
  auto answers = engine.value()->ExecuteBatch(requests, &stats);
  std::printf(
      "cold batch: %lld queries in %.1f ms (%.0f q/s, p50 %.3f ms, "
      "p99 %.3f ms)\n",
      static_cast<long long>(stats.queries), stats.wall_ms,
      stats.throughput_qps, stats.p50_latency_ms, stats.p99_latency_ms);

  // 4. Same batch again: Step-1 leaf reads come from the LRU cache.
  answers = engine.value()->ExecuteBatch(requests, &stats);
  std::printf("warm batch: %.0f q/s, cache hits %lld / misses %lld\n",
              stats.throughput_qps, static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses));

  // 5. The rest of the query vocabulary, one heterogeneous batch: the k=3
  //    most-probable neighbors, the objects above a probability threshold,
  //    the objects probably inside a rectangle, and a PNN sweep along a
  //    short trajectory — all sharing Step-1 pruning and the grouped
  //    Step-2 sweep with the PNN requests above.
  std::vector<service::QueryRequest> vocabulary;
  vocabulary.push_back(service::QueryRequest::TopKByProb(queries[0], 3));
  vocabulary.push_back(service::QueryRequest::ThresholdNN(queries[1], 0.2));
  vocabulary.push_back(service::QueryRequest::RangeProb(
      geom::Rect(geom::Point{4000, 4000, 4000},
                 geom::Point{6000, 6000, 6000}),
      0.5));
  vocabulary.push_back(service::QueryRequest::TrajectoryPnn(
      {queries[2], queries[3]}, /*step=*/500.0));
  const auto typed = engine.value()->ExecuteBatch(vocabulary);
  std::printf("vocabulary batch: top-%u -> %zu, threshold(0.2) -> %zu, "
              "range(0.5) -> %zu, trajectory -> %zu samples\n",
              vocabulary[0].k, typed[0].results.size(),
              typed[1].results.size(), typed[2].results.size(),
              typed[3].steps.size());

  // 6. Async single query.
  auto future = engine.value()->Submit(service::QueryRequest::Pnn(queries[0]));
  const service::QueryAnswer answer = future.get();
  std::printf("async query: %zu answers, top P(nearest) = %.4f\n",
              answer.results.size(),
              answer.results.empty() ? 0.0 : answer.results[0].probability);

  // 7. A live insert: takes the writer lock, updates dataset + PV-index
  //    incrementally (Section VI-B) and flushes the leaf cache.
  const auto status = engine.value()->Insert(
      uncertain::UncertainObject::UniformSampled(
          999999,
          geom::Rect(geom::Point{4990, 4990, 4990},
                     geom::Point{5010, 5010, 5010}),
          100, &rng));
  std::printf("insert: %s; cache now holds %zu leaves\n",
              status.ToString().c_str(), engine.value()->cache()->size());

  // 8. Everything above also landed in the engine's metric registry —
  //    counters, gauges, and per-stage latency histograms, exportable as
  //    Prometheus text or JSON without touching the serving path. Print the
  //    engine-level excerpt of the Prometheus exposition.
  std::istringstream lines(engine.value()->metrics().ExportPrometheusText());
  std::printf("metrics excerpt (pvdb_engine_*):\n");
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("pvdb_engine_", 0) == 0 &&
        line.find("stage") == std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
  }
  return 0;
}
