// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Durable storage: builds the PV-index on the file-backed pager so every
// leaf page, hash bucket and pdf record round-trips through a real file —
// the configuration closest to the paper's disk-resident experiments.
// Reports the index's on-disk footprint and per-query I/O.
//
// Note this persists the *mutable* index's page store (and still rebuilds
// the octree node headers on start-up); for restartable serving, the sealed
// snapshot lifecycle (examples/snapshot_serving.cc: PvIndexBuilder::Save →
// IndexSnapshot::Open) mmaps a complete immutable image instead.

#include <cstdio>
#include <string>

#include "src/pvdb.h"

int main() {
  using namespace pvdb;

  uncertain::SyntheticOptions data_options;
  data_options.dim = 3;
  data_options.count = 1000;
  data_options.samples_per_object = 500;
  data_options.seed = 11;
  const uncertain::Dataset db = uncertain::GenerateSynthetic(data_options);

  const std::string path = "/tmp/pvdb_durable_index.pages";
  auto pager = storage::FilePager::Create(path);
  if (!pager.ok()) {
    std::printf("cannot create pager file: %s\n",
                pager.status().ToString().c_str());
    return 1;
  }

  pv::BuildStats stats;
  auto index =
      pv::PvIndex::Build(db, pager.value().get(), pv::PvIndexOptions{}, &stats);
  if (!index.ok()) {
    std::printf("build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }

  const size_t pages = pager.value()->LivePageCount();
  std::printf("indexed %zu objects (500-sample pdfs) in %.1f ms\n", db.size(),
              stats.total_ms);
  std::printf("on-disk footprint: %zu pages = %.1f MiB at %zu B/page\n",
              pages,
              static_cast<double>(pages) * storage::kPageSize / (1 << 20),
              storage::kPageSize);
  std::printf("primary octree: %zu nodes (%zu leaves), %.1f KiB of node "
              "headers in RAM\n",
              index.value()->primary().node_count(),
              index.value()->primary().leaf_count(),
              index.value()->primary().memory_used() / 1024.0);

  // Queries against the on-file index, with real page reads counted.
  pv::PnnStep2Evaluator step2(&db);
  auto& metrics = pager.value()->metrics();
  const eval::QueryWorkload workload =
      eval::MakeQueryWorkload(db.domain(), 20, /*seed=*/3);
  double total_pages = 0;
  size_t total_answers = 0;
  for (const auto& q : workload.points) {
    const int64_t before = metrics.Get(storage::PagerCounters::kReads);
    auto step1 = index.value()->QueryPossibleNN(q);
    PVDB_CHECK(step1.ok());
    total_pages += static_cast<double>(
        metrics.Get(storage::PagerCounters::kReads) - before);
    total_answers += step2.Evaluate(q, step1.value()).size();
  }
  std::printf("\n%zu queries: %.1f file-page reads per query, "
              "%.1f answers per query on average\n",
              workload.points.size(),
              total_pages / static_cast<double>(workload.points.size()),
              static_cast<double>(total_answers) /
                  static_cast<double>(workload.points.size()));
  std::remove(path.c_str());
  return 0;
}
