// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Snapshot lifecycle walkthrough: Build → Seal → Save on the writer side,
// Open(mmap) → serve on the reader side. Run without arguments it plays
// both roles against a temp file; with a mode flag it plays one role, so
// two separate processes (e.g. two CI steps) exercise the cross-process
// path:
//
//   $ ./snapshot_serving                      # build + save + open + serve
//   $ ./snapshot_serving --save  pv.snap      # writer process
//   $ ./snapshot_serving --serve pv.snap      # fresh serving process
//
// The durable live-update pipeline (pv::LiveIndex) gets the same
// two-process treatment — and a crash-recovery drill on top. The ingest
// process applies a DETERMINISTIC mutation stream, so a later process can
// reconstruct the exact reference state for any acknowledged prefix:
//
//   $ ./snapshot_serving --live pv.live --ops 400          # ingest + serve
//   $ ./snapshot_serving --live pv.live --ops 400 --kill_after 250
//                                             # SIGKILL itself mid-ingest
//   $ ./snapshot_serving --recover pv.live --expect 250
//                # fresh process: recover, verify bit-identity against the
//                # reference rebuilt from the first 250 ops, then serve
//
// The serving side doubles as the observability walkthrough — optional
// sinks expose the engine's metric registry and query traces:
//
//   --metrics_prom PATH   write a final Prometheus text exposition
//   --metrics_json PATH   periodic JSON-line metric reports (plus a final
//                         one at shutdown)
//   --trace_log PATH      sampled + slow-query trace JSON lines
//
// Sharded serving (src/shard/ + src/net/) splits the same walkthrough
// across processes — every mode regenerates the SAME deterministic
// dataset, so the probe can verify remote answers bit-for-bit:
//
//   $ ./snapshot_serving --partition DIR --shards 4        # build K shards
//   $ ./snapshot_serving --shard_serve DIR --shard 0 --port 7601 &
//   $ ./snapshot_serving --router_serve DIR --shard_ports 7601,7602,... \
//                        --port 7600 &                     # scatter-gather
//   $ ./snapshot_serving --verify_router DIR               # in-process
//                # partition + router vs one engine, bit-identity check
//   $ ./snapshot_serving --probe 7600                      # cross-process
//                # bit-identity probe against the router's socket
//   $ ./snapshot_serving --probe 7600 --expect_unavailable
//                # degradation drill: a shard was SIGKILLed; every answer
//                # must arrive (no hang), the poisoned ones as Unavailable
//                # and the rest still bit-identical

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "examples/example_util.h"
#include "src/pvdb.h"

namespace {

using namespace pvdb;

// Serving modes park here until the harness tears them down.
std::atomic<bool> g_stop{false};
void HandleTerm(int) { g_stop.store(true); }

struct ObservabilityPaths {
  std::string metrics_prom;
  std::string metrics_json;
  std::string trace_log;
};

// A line sink appending to `path`, shareable by copy into std::function
// callbacks that may run on reporter/worker threads.
std::function<void(const std::string&)> MakeLineSink(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return nullptr;
  std::shared_ptr<FILE> file(f, [](FILE* fp) { std::fclose(fp); });
  auto mu = std::make_shared<std::mutex>();
  return [file, mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*mu);
    std::fprintf(file.get(), "%s\n", line.c_str());
    std::fflush(file.get());
  };
}

int SaveSnapshot(const std::string& path) {
  // Writer side: the mutable half of the lifecycle. The builder owns the
  // pager and the live PV-index; the dataset is only needed here.
  const uncertain::Dataset db = examples::MakeServingDataset();
  StopWatch build_watch;
  auto builder = pv::PvIndexBuilder::Build(db);
  if (!builder.ok()) {
    std::printf("build failed: %s\n", builder.status().ToString().c_str());
    return 1;
  }
  std::printf("built PV-index over %zu objects in %.0f ms\n", db.size(),
              build_watch.ElapsedMillis());

  const Status saved = builder.value()->Save(path);
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("sealed snapshot saved to %s\n", path.c_str());
  return 0;
}

int ServeSnapshot(const std::string& path, const ObservabilityPaths& obs) {
  // Serving side: no dataset, no rebuild — the snapshot is mmap'd and is
  // both the Step-1 index and the Step-2 record source.
  StopWatch open_watch;
  auto snapshot = pv::IndexSnapshot::Open(path);
  if (!snapshot.ok()) {
    std::printf("open failed: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "opened snapshot in %.2f ms: %llu objects, %llu leaves, %.1f MiB, "
      "mmap=%s\n",
      open_watch.ElapsedMillis(),
      static_cast<unsigned long long>(snapshot.value()->object_count()),
      static_cast<unsigned long long>(snapshot.value()->leaf_count()),
      static_cast<double>(snapshot.value()->file_bytes()) / (1024.0 * 1024.0),
      snapshot.value()->mapped() ? "yes" : "no");

  service::QueryEngineOptions engine_options;
  engine_options.threads = 4;
  if (!obs.trace_log.empty()) {
    engine_options.trace.enabled = true;
    // 1-in-16 sampling plus every query at or above 1 ms, so the log shows
    // both emission reasons on a workload this small.
    engine_options.trace.sample_every_n = 16;
    engine_options.trace.slow_query_ms = 1.0;
    engine_options.trace.sink = MakeLineSink(obs.trace_log);
    if (engine_options.trace.sink == nullptr) {
      std::printf("cannot open trace log %s\n", obs.trace_log.c_str());
      return 1;
    }
  }
  auto engine =
      service::QueryEngine::CreateFromSnapshot(snapshot.value(),
                                               engine_options);
  if (!engine.ok()) {
    std::printf("engine failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("engine: backend=%s (%s)\n",
              service::BackendKindName(engine.value()->active_backend()),
              engine.value()->plan_reason().c_str());

  // Periodic JSON metric reports while serving; Stop() below always flushes
  // one final report, so even a short run publishes its numbers.
  std::unique_ptr<StatsReporter> reporter;
  if (!obs.metrics_json.empty()) {
    StatsReporterOptions reporter_options;
    reporter_options.interval = std::chrono::milliseconds(100);
    reporter_options.format = StatsReporterOptions::Format::kJson;
    reporter_options.sink = MakeLineSink(obs.metrics_json);
    if (reporter_options.sink == nullptr) {
      std::printf("cannot open metrics log %s\n", obs.metrics_json.c_str());
      return 1;
    }
    reporter = std::make_unique<StatsReporter>(&engine.value()->metrics(),
                                               reporter_options);
    reporter->Start();
  }

  const std::vector<geom::Point> queries =
      examples::MakeDomainQueries(snapshot.value()->domain(), 256);
  service::ServiceStats stats;
  bool batch_ok = false;
  const auto answers =
      examples::ServeBatchOrFail(engine.value().get(), queries, &stats,
                                 &batch_ok);
  if (!batch_ok) return 1;
  size_t answered = 0;
  for (const auto& a : answers) answered += a.results.size();
  std::printf(
      "served %lld queries from the mapping: %.0f q/s, p50 %.3f ms, "
      "p99 %.3f ms, %zu answers\n",
      static_cast<long long>(stats.queries), stats.throughput_qps,
      stats.p50_latency_ms, stats.p99_latency_ms, answered);
  std::printf(
      "stage time over batch (ms): plan %.2f, leaf_cache %.2f, "
      "step1_prune %.2f, step2 %.2f, merge %.2f\n",
      stats.stage_ms[0], stats.stage_ms[1], stats.stage_ms[2],
      stats.stage_ms[3], stats.stage_ms[4]);

  if (reporter != nullptr) {
    reporter->Stop();
    std::printf("metrics: %lld JSON reports appended to %s\n",
                static_cast<long long>(reporter->reports()),
                obs.metrics_json.c_str());
  }
  if (!obs.metrics_prom.empty()) {
    const std::string text = engine.value()->metrics().ExportPrometheusText();
    FILE* f = std::fopen(obs.metrics_prom.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot open %s\n", obs.metrics_prom.c_str());
      return 1;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::printf("metrics: Prometheus exposition (%zu bytes) written to %s\n",
                text.size(), obs.metrics_prom.c_str());
  }
  if (!obs.trace_log.empty()) {
    std::printf("traces: %lld lines emitted (%lld slow) to %s\n",
                static_cast<long long>(engine.value()->tracer().emitted()),
                static_cast<long long>(engine.value()->tracer().slow_count()),
                obs.trace_log.c_str());
  }
  return 0;
}

// --- durable live-update pipeline --------------------------------------

uncertain::Dataset MakeLiveBase() {
  uncertain::SyntheticOptions options;
  options.dim = 3;
  options.count = 2000;
  options.samples_per_object = 50;
  options.seed = 21;
  return uncertain::GenerateSynthetic(options);
}

struct LiveOp {
  bool is_insert;
  uncertain::UncertainObject object;  // insert payload
  uncertain::ObjectId id;             // delete target
};

// The deterministic mutation stream both the ingest and the recovery
// process derive from the same seed: op i is identical in every process,
// which is what lets --recover rebuild the reference state for exactly the
// acknowledged prefix.
std::vector<LiveOp> MakeLiveOps(const uncertain::Dataset& base, int n) {
  Rng rng(4242);
  std::vector<uncertain::ObjectId> live = base.Ids();
  std::vector<LiveOp> ops;
  ops.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (i % 5 == 4 && !live.empty()) {
      const size_t pick = static_cast<size_t>(rng.NextBounded(live.size()));
      const uncertain::ObjectId id = live[pick];
      live.erase(live.begin() + static_cast<long>(pick));
      ops.push_back(LiveOp{false,
                           uncertain::UncertainObject(id, geom::Rect(3), {}),
                           id});
      continue;
    }
    const uncertain::ObjectId id = 1000000 + static_cast<uint64_t>(i);
    geom::Point center(3);
    geom::Point half(3);
    for (int d = 0; d < 3; ++d) {
      center[d] = rng.NextUniform(100.0, 9900.0);
      half[d] = rng.NextUniform(1.0, 20.0);
    }
    const geom::Rect region = geom::Rect::FromCenterHalfWidths(center, half);
    ops.push_back(LiveOp{
        true, uncertain::UncertainObject::UniformSampled(id, region, 50, &rng),
        id});
    live.push_back(id);
  }
  return ops;
}

pv::LiveIndexOptions MakeLiveOptions() {
  pv::LiveIndexOptions options;
  options.wal.sync_every_n = 1;  // every acknowledged mutation is durable
  options.delta_seal_every_n = 64;
  options.background_compaction = true;
  options.compact_after_records = 192;
  return options;
}

int RunLive(const std::string& dir, int op_count, int kill_after) {
  const uncertain::Dataset base = MakeLiveBase();
  const std::vector<LiveOp> ops = MakeLiveOps(base, op_count);

  // Live serving: each published generation (the recovered/bootstrapped
  // base, then every compaction) flips the engine's traffic wait-free.
  std::unique_ptr<service::QueryEngine> engine;
  std::mutex engine_mu;
  pv::LiveIndexOptions options = MakeLiveOptions();
  options.publish = [&](std::shared_ptr<const pv::IndexSnapshot> snap) {
    std::lock_guard<std::mutex> lock(engine_mu);
    if (engine == nullptr) {
      service::QueryEngineOptions engine_options;
      engine_options.threads = 2;
      auto created =
          service::QueryEngine::CreateFromSnapshot(std::move(snap),
                                                   engine_options);
      if (created.ok()) engine = std::move(created).value();
      return;
    }
    const Status adopted = engine->AdoptSnapshot(std::move(snap));
    if (!adopted.ok()) {
      std::printf("adopt failed: %s\n", adopted.ToString().c_str());
    }
  };

  StopWatch open_watch;
  auto live = pv::LiveIndex::Open(storage::Env::Default(), dir, base, options);
  if (!live.ok()) {
    std::printf("live open failed: %s\n", live.status().ToString().c_str());
    return 1;
  }
  std::printf("live index up in %.1f ms: gen %llu, %zu objects, WAL floor "
              "%llu\n",
              open_watch.ElapsedMillis(),
              static_cast<unsigned long long>(live.value()->generation()),
              live.value()->db().size(),
              static_cast<unsigned long long>(
                  live.value()->wal_synced_records()));

  StopWatch ingest_watch;
  for (int i = 0; i < op_count; ++i) {
    const LiveOp& op = ops[i];
    const Status st = op.is_insert ? live.value()->Insert(op.object)
                                   : live.value()->Delete(op.id);
    if (!st.ok()) {
      std::printf("op %d failed: %s\n", i, st.ToString().c_str());
      return 1;
    }
    if (kill_after > 0 && i + 1 == kill_after) {
      // The crash drill: die WITHOUT any shutdown path — no WAL close, no
      // compactor join, possibly mid-seal or mid-compaction. Flush stdout
      // first so the CI log shows how far we got.
      std::printf("SIGKILLing self after %d acknowledged ops (gen %llu, "
                  "delta %llu)\n",
                  kill_after,
                  static_cast<unsigned long long>(live.value()->generation()),
                  static_cast<unsigned long long>(live.value()->delta_seq()));
      std::fflush(stdout);
      ::raise(SIGKILL);
    }
  }
  const double ingest_ms = ingest_watch.ElapsedMillis();

  const Status compacted = live.value()->WaitForCompaction();
  if (!compacted.ok()) {
    std::printf("compaction failed: %s\n", compacted.ToString().c_str());
    return 1;
  }
  std::printf("ingested %d ops in %.1f ms (%.0f ops/s, every ack fsync'd): "
              "gen %llu, %llu since checkpoint\n",
              op_count, ingest_ms, 1000.0 * op_count / ingest_ms,
              static_cast<unsigned long long>(live.value()->generation()),
              static_cast<unsigned long long>(
                  live.value()->records_since_checkpoint()));

  // A batch through the adopted generation proves the serving wiring.
  std::lock_guard<std::mutex> lock(engine_mu);
  if (engine == nullptr) {
    std::printf("no engine was published\n");
    return 1;
  }
  const std::vector<geom::Point> queries =
      examples::MakeDomainQueries(live.value()->db().domain(), 64);
  service::ServiceStats stats;
  bool batch_ok = false;
  examples::ServeBatchOrFail(engine.get(), queries, &stats, &batch_ok);
  if (!batch_ok) return 1;
  std::printf("served %lld queries off the live generation: %.0f q/s\n",
              static_cast<long long>(stats.queries), stats.throughput_qps);
  return 0;
}

int RunRecover(const std::string& dir, int expect_ops) {
  const uncertain::Dataset base = MakeLiveBase();
  const std::vector<LiveOp> ops = MakeLiveOps(base, expect_ops);

  StopWatch recover_watch;
  pv::LiveRecoveryStats stats;
  auto live = pv::LiveIndex::Open(storage::Env::Default(), dir, base,
                                  MakeLiveOptions(), &stats);
  if (!live.ok()) {
    std::printf("recovery failed: %s\n", live.status().ToString().c_str());
    return 1;
  }
  std::printf("recovered in %.1f ms: base %llu objects, delta %llu upserts / "
              "%llu deletes, WAL %llu applied + %llu skipped, %llu tail "
              "bytes dropped%s\n",
              recover_watch.ElapsedMillis(),
              static_cast<unsigned long long>(stats.base_objects),
              static_cast<unsigned long long>(stats.delta_upserts),
              static_cast<unsigned long long>(stats.delta_deletes),
              static_cast<unsigned long long>(stats.wal_records_applied),
              static_cast<unsigned long long>(stats.wal_records_skipped),
              static_cast<unsigned long long>(stats.wal_bytes_dropped),
              stats.wal_tail_corrupt
                  ? (" (" + stats.wal_tail_detail + ")").c_str()
                  : "");
  if (!stats.recovered) {
    std::printf("FAIL: directory was bootstrapped fresh, nothing recovered\n");
    return 1;
  }
  if (live.value()->last_seq() != static_cast<uint64_t>(expect_ops)) {
    std::printf("FAIL: recovered seq %llu, expected %d (every ack was "
                "fsync'd before the kill)\n",
                static_cast<unsigned long long>(live.value()->last_seq()),
                expect_ops);
    return 1;
  }

  // Bit-identity against the reference: replay the same deterministic ops
  // onto a plain dataset and compare ids + serialized object bytes.
  uncertain::Dataset reference = base;
  for (const LiveOp& op : ops) {
    const Status st = op.is_insert ? reference.Add(op.object)
                                   : reference.Remove(op.id);
    if (!st.ok()) {
      std::printf("reference replay failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::vector<uncertain::ObjectId> got = live.value()->db().Ids();
  std::vector<uncertain::ObjectId> want = reference.Ids();
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  if (got != want) {
    std::printf("FAIL: recovered %zu object ids, reference has %zu\n",
                got.size(), want.size());
    return 1;
  }
  for (uncertain::ObjectId id : want) {
    std::vector<uint8_t> a;
    std::vector<uint8_t> b;
    live.value()->db().Find(id)->AppendTo(&a);
    reference.Find(id)->AppendTo(&b);
    if (a != b) {
      std::printf("FAIL: object %llu differs from the reference bytes\n",
                  static_cast<unsigned long long>(id));
      return 1;
    }
  }
  std::printf("verified: %zu objects bit-identical to the reference rebuilt "
              "from the %d acknowledged ops\n",
              got.size(), expect_ops);

  // The recovered index keeps going: compact into a fresh generation and
  // serve a batch from it.
  const Status compacted = live.value()->Compact();
  if (!compacted.ok()) {
    std::printf("post-recovery compaction failed: %s\n",
                compacted.ToString().c_str());
    return 1;
  }
  auto engine =
      examples::MakeSnapshotEngine(live.value()->CurrentSnapshot(),
                                   /*threads=*/2);
  if (engine == nullptr) return 1;
  const std::vector<geom::Point> queries =
      examples::MakeDomainQueries(live.value()->db().domain(), 64);
  service::ServiceStats service_stats;
  bool batch_ok = false;
  examples::ServeBatchOrFail(engine.get(), queries, &service_stats,
                             &batch_ok);
  if (!batch_ok) return 1;
  std::printf("served %lld queries off the recovered gen-%llu snapshot: "
              "%.0f q/s\n",
              static_cast<long long>(service_stats.queries),
              static_cast<unsigned long long>(live.value()->generation()),
              service_stats.throughput_qps);
  return 0;
}

// --- sharded serving ----------------------------------------------------

// The union-reference engine every sharded mode verifies against: one
// canonical-order engine over the full dataset, sealed in memory.
std::unique_ptr<service::QueryEngine> MakeReferenceEngine(
    const uncertain::Dataset& db) {
  auto builder = pv::PvIndexBuilder::Build(db);
  if (!builder.ok()) {
    std::printf("reference build failed: %s\n",
                builder.status().ToString().c_str());
    return nullptr;
  }
  auto snapshot = builder.value()->Seal();
  if (!snapshot.ok()) {
    std::printf("reference seal failed: %s\n",
                snapshot.status().ToString().c_str());
    return nullptr;
  }
  return examples::MakeSnapshotEngine(snapshot.value(), /*threads=*/2,
                                      /*canonical_candidates=*/true);
}

// One deterministic request of every typed kind over `domain` — every
// process (probe, verifier, reference) derives the same batch from the
// same constants, which is what makes cross-process bit-comparison valid.
std::vector<service::QueryRequest> MakeVocabularyRequests(
    const geom::Rect& domain) {
  const std::vector<geom::Point> anchors =
      examples::MakeDomainQueries(domain, 4, /*seed=*/31);
  std::vector<service::QueryRequest> requests;
  requests.push_back(service::QueryRequest::Pnn(anchors[0]));
  requests.push_back(service::QueryRequest::TopKByProb(anchors[1], 4));
  requests.push_back(service::QueryRequest::ThresholdNN(anchors[2], 0.1));
  geom::Rect rect(domain.dim());
  for (int d = 0; d < domain.dim(); ++d) {
    const double extent = domain.hi(d) - domain.lo(d);
    rect.set_lo(d, domain.lo(d) + 0.3 * extent);
    rect.set_hi(d, domain.lo(d) + 0.6 * extent);
  }
  requests.push_back(service::QueryRequest::RangeProb(rect, 0.5));
  requests.push_back(service::QueryRequest::TrajectoryPnn(
      {anchors[2], anchors[3]},
      /*step=*/(domain.hi(0) - domain.lo(0)) / 16.0));
  return requests;
}

// Bitwise result comparison (point results and trajectory steps) — the
// acceptance bar is bit-identity, not epsilon closeness.
bool ResultsBitIdentical(const std::vector<pv::PnnResult>& got,
                         const std::vector<pv::PnnResult>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].id != want[i].id) return false;
    if (std::memcmp(&got[i].probability, &want[i].probability,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

bool AnswerBitIdentical(const service::QueryAnswer& got,
                        const service::QueryAnswer& want) {
  if (!ResultsBitIdentical(got.results, want.results)) return false;
  if (got.steps.size() != want.steps.size()) return false;
  for (size_t s = 0; s < got.steps.size(); ++s) {
    if (!ResultsBitIdentical(got.steps[s].results, want.steps[s].results)) {
      return false;
    }
  }
  return true;
}

int PartitionMode(const std::string& dir, int shards,
                  const std::string& strategy) {
  const uncertain::Dataset db = examples::MakeServingDataset();
  shard::PartitionOptions options;
  options.shard_count = shards;
  options.strategy = strategy == "morton" ? shard::SplitStrategy::kMortonRange
                                          : shard::SplitStrategy::kPlane;
  StopWatch watch;
  auto map = shard::BuildShardSnapshots(db, options, dir);
  if (!map.ok()) {
    std::printf("partition failed: %s\n", map.status().ToString().c_str());
    return 1;
  }
  size_t ghosts = 0;
  for (const shard::ShardInfo& s : map.value().shards) {
    ghosts += s.ghost_ids.size();
  }
  std::printf("partitioned %zu objects into %d %s shards in %.0f ms "
              "(%zu ghost replicas); manifest %s/%s\n",
              db.size(), shards, strategy.c_str(), watch.ElapsedMillis(),
              ghosts, dir.c_str(), shard::kShardMapFileName);
  return 0;
}

int ShardServeMode(const std::string& dir, int index, int port) {
  auto set = shard::OpenShardDir(dir);
  if (!set.ok()) {
    std::printf("open shard dir failed: %s\n",
                set.status().ToString().c_str());
    return 1;
  }
  if (index < 0 || static_cast<size_t>(index) >= set.value().snapshots.size()) {
    std::printf("shard index %d out of range (map has %zu shards)\n", index,
                set.value().snapshots.size());
    return 1;
  }
  net::TcpServerOptions options;
  options.port = port;
  auto server = shard::ShardServer::Start(set.value().snapshots[
                                              static_cast<size_t>(index)],
                                          options);
  if (!server.ok()) {
    std::printf("shard server failed: %s\n",
                server.status().ToString().c_str());
    return 1;
  }
  std::printf("shard %d serving %llu objects on 127.0.0.1:%d "
              "(GET /metrics for the engine registry)\n",
              index,
              static_cast<unsigned long long>(
                  set.value().snapshots[static_cast<size_t>(index)]
                      ->object_count()),
              server.value()->port());
  std::fflush(stdout);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.value()->Stop();
  return 0;
}

int RouterServeMode(const std::string& dir, const std::string& ports_csv,
                    int port, double deadline_ms, int retries) {
  auto map = shard::LoadShardMap(dir);
  if (!map.ok()) {
    std::printf("load shard map failed: %s\n",
                map.status().ToString().c_str());
    return 1;
  }
  std::vector<int> shard_ports;
  std::string token;
  for (size_t i = 0; i <= ports_csv.size(); ++i) {
    if (i == ports_csv.size() || ports_csv[i] == ',') {
      if (!token.empty()) shard_ports.push_back(std::atoi(token.c_str()));
      token.clear();
    } else {
      token += ports_csv[i];
    }
  }
  if (shard_ports.size() != map.value().shard_count()) {
    std::printf("--shard_ports lists %zu ports but the map has %zu shards\n",
                shard_ports.size(), map.value().shard_count());
    return 1;
  }
  shard::RouterOptions router_options;
  router_options.deadline_ms = deadline_ms;
  router_options.max_retries = retries;
  std::vector<std::shared_ptr<shard::ShardConnection>> connections;
  for (int p : shard_ports) {
    connections.push_back(std::make_shared<shard::RemoteShardConnection>(
        p, router_options.deadline_ms));
  }
  auto router = shard::ShardRouter::Create(std::move(map).value(),
                                           std::move(connections),
                                           router_options);
  if (!router.ok()) {
    std::printf("router failed: %s\n", router.status().ToString().c_str());
    return 1;
  }
  net::TcpServerOptions server_options;
  server_options.port = port;
  auto server = shard::RouterServer::Start(std::move(router).value(),
                                           server_options);
  if (!server.ok()) {
    std::printf("router server failed: %s\n",
                server.status().ToString().c_str());
    return 1;
  }
  std::printf("router serving %zu shards on 127.0.0.1:%d "
              "(deadline %.0f ms, %d retries)\n",
              shard_ports.size(), server.value()->port(), deadline_ms,
              retries);
  std::fflush(stdout);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.value()->Stop();
  return 0;
}

int VerifyRouterMode(const std::string& dir, int shards,
                     const std::string& strategy) {
  // One process, both sides: partition into `dir`, open the shards through
  // the real manifest + snapshot files, and compare the router's merged
  // answers against the single-engine reference bit for bit.
  const int build_rc = PartitionMode(dir, shards, strategy);
  if (build_rc != 0) return build_rc;
  const uncertain::Dataset db = examples::MakeServingDataset();
  auto reference_engine = MakeReferenceEngine(db);
  if (reference_engine == nullptr) return 1;
  // 256 PNN points plus one request of every typed kind, one batch.
  std::vector<service::QueryRequest> requests = service::PnnRequests(
      examples::MakeDomainQueries(db.domain(), 256));
  for (service::QueryRequest& req : MakeVocabularyRequests(db.domain())) {
    requests.push_back(std::move(req));
  }
  const std::vector<service::QueryAnswer> reference =
      reference_engine->ExecuteBatch(requests);

  auto set = shard::OpenShardDir(dir);
  if (!set.ok()) {
    std::printf("open shard dir failed: %s\n",
                set.status().ToString().c_str());
    return 1;
  }
  auto router = shard::ShardRouter::Create(set.value().map,
                                           set.value().connections, {});
  if (!router.ok()) {
    std::printf("router failed: %s\n", router.status().ToString().c_str());
    return 1;
  }
  shard::RouterStats stats;
  const std::vector<service::QueryAnswer> got =
      router.value()->Execute(requests, &stats);
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!got[i].status.ok()) {
      std::printf("FAIL: %s request %zu: %s\n",
                  service::QueryKindName(requests[i].kind), i,
                  got[i].status.ToString().c_str());
      return 1;
    }
    if (!AnswerBitIdentical(got[i], reference[i])) {
      std::printf("FAIL: %s request %zu differs from the single-engine "
                  "answer\n",
                  service::QueryKindName(requests[i].kind), i);
      return 1;
    }
  }
  std::printf("verified: %zu router answers (every query kind) "
              "bit-identical to one engine (%lld fanouts, %lld shards "
              "pruned, %lld ghosts dropped, %lld records fetched)\n",
              requests.size(), static_cast<long long>(stats.shard_fanouts),
              static_cast<long long>(stats.shards_pruned),
              static_cast<long long>(stats.ghosts_dropped),
              static_cast<long long>(stats.records_fetched));
  return 0;
}

int ProbeMode(int router_port, bool expect_unavailable) {
  const uncertain::Dataset db = examples::MakeServingDataset();
  const std::vector<geom::Point> queries =
      examples::MakeDomainQueries(db.domain(), 256);
  auto reference_engine = MakeReferenceEngine(db);
  if (reference_engine == nullptr) return 1;
  const std::vector<service::QueryAnswer> reference =
      reference_engine->ExecuteBatch(service::PnnRequests(queries));

  // Wait for the router socket (the harness starts it concurrently).
  std::unique_ptr<net::FrameClient> client;
  for (int attempt = 0; attempt < 150; ++attempt) {
    auto connected = net::FrameClient::Connect(router_port, 200.0);
    if (connected.ok()) {
      client = std::move(connected).value();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (client == nullptr) {
    std::printf("router on port %d never became reachable\n", router_port);
    return 1;
  }

  size_t matched = 0;
  size_t unavailable = 0;
  const size_t batch = 32;
  for (size_t begin = 0; begin < queries.size(); begin += batch) {
    const size_t n = std::min(batch, queries.size() - begin);
    const std::span<const geom::Point> slice(queries.data() + begin, n);
    auto response = client->Call(net::MessageType::kQueryBatch,
                                 net::EncodeQueryBatchRequest(slice),
                                 /*deadline_ms=*/10000.0);
    if (!response.ok()) {
      std::printf("probe batch at %zu failed: %s\n", begin,
                  response.status().ToString().c_str());
      return 1;
    }
    auto answers = net::DecodeQueryBatchResponse(response.value().second);
    if (!answers.ok() || answers.value().size() != n) {
      std::printf("probe batch at %zu: bad response\n", begin);
      return 1;
    }
    for (size_t i = 0; i < n; ++i) {
      const net::WireAnswer& a = answers.value()[i];
      if (!a.status.ok()) {
        if (a.status.code() != StatusCode::kUnavailable) {
          std::printf("FAIL: query %zu failed with non-Unavailable status: "
                      "%s\n",
                      begin + i, a.status.ToString().c_str());
          return 1;
        }
        unavailable++;
        continue;
      }
      if (!ResultsBitIdentical(a.results, reference[begin + i].results)) {
        std::printf("FAIL: query %zu differs from the local reference\n",
                    begin + i);
        return 1;
      }
      matched++;
    }
  }
  std::printf("probe: %zu/%zu answers bit-identical to the local engine, "
              "%zu Unavailable\n",
              matched, queries.size(), unavailable);
  if (expect_unavailable) {
    if (unavailable == 0) {
      std::printf("FAIL: expected degraded answers after the shard kill, "
                  "got none\n");
      return 1;
    }
    std::printf("degradation verified: every answer arrived, the poisoned "
                "ones as per-answer Unavailable\n");
  } else if (unavailable != 0) {
    std::printf("FAIL: %zu answers Unavailable with all shards up\n",
                unavailable);
    return 1;
  }

  // Typed probe: one request of every query kind through the same socket
  // (a v2 kQueryRequestBatch frame), answers compared bit-for-bit against
  // the local reference engine.
  const std::vector<service::QueryRequest> vocab =
      MakeVocabularyRequests(db.domain());
  const std::vector<service::QueryAnswer> vocab_reference =
      reference_engine->ExecuteBatch(vocab);
  auto typed_response = client->Call(net::MessageType::kQueryRequestBatch,
                                     net::EncodeQueryRequestBatch(vocab),
                                     /*deadline_ms=*/10000.0);
  if (!typed_response.ok()) {
    std::printf("typed probe failed: %s\n",
                typed_response.status().ToString().c_str());
    return 1;
  }
  auto typed_answers = net::DecodeQueryAnswerBatch(typed_response.value().second);
  if (!typed_answers.ok() || typed_answers.value().size() != vocab.size()) {
    std::printf("typed probe: bad response\n");
    return 1;
  }
  size_t typed_matched = 0;
  for (size_t i = 0; i < vocab.size(); ++i) {
    const service::QueryAnswer& a = typed_answers.value()[i];
    if (!a.status.ok()) {
      if (expect_unavailable &&
          a.status.code() == StatusCode::kUnavailable) {
        continue;
      }
      std::printf("FAIL: typed %s probe failed: %s\n",
                  service::QueryKindName(vocab[i].kind),
                  a.status.ToString().c_str());
      return 1;
    }
    if (!AnswerBitIdentical(a, vocab_reference[i])) {
      std::printf("FAIL: typed %s probe differs from the local reference\n",
                  service::QueryKindName(vocab[i].kind));
      return 1;
    }
    typed_matched++;
  }
  std::printf("typed probe: %zu/%zu query kinds bit-identical to the local "
              "engine\n",
              typed_matched, vocab.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string save_path;
  std::string serve_path;
  std::string live_dir;
  std::string recover_dir;
  std::string partition_dir;
  std::string shard_serve_dir;
  std::string router_serve_dir;
  std::string verify_router_dir;
  std::string shard_ports;
  std::string strategy = "plane";
  int shards = 4;
  int shard_index = 0;
  int port = 0;
  int probe_port = 0;
  bool expect_unavailable = false;
  double deadline_ms = 1000.0;
  int retries = 1;
  int op_count = 400;
  int kill_after = 0;
  int expect_ops = -1;
  ObservabilityPaths obs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect_unavailable") == 0) {
      expect_unavailable = true;
    }
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--partition") == 0) partition_dir = argv[i + 1];
    if (std::strcmp(argv[i], "--shard_serve") == 0) {
      shard_serve_dir = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--router_serve") == 0) {
      router_serve_dir = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--verify_router") == 0) {
      verify_router_dir = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--shard_ports") == 0) shard_ports = argv[i + 1];
    if (std::strcmp(argv[i], "--strategy") == 0) strategy = argv[i + 1];
    if (std::strcmp(argv[i], "--shards") == 0) shards = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--shard") == 0) {
      shard_index = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--port") == 0) port = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--probe") == 0) {
      probe_port = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--deadline_ms") == 0) {
      deadline_ms = std::atof(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--retries") == 0) {
      retries = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--save") == 0) save_path = argv[i + 1];
    if (std::strcmp(argv[i], "--serve") == 0) serve_path = argv[i + 1];
    if (std::strcmp(argv[i], "--live") == 0) live_dir = argv[i + 1];
    if (std::strcmp(argv[i], "--recover") == 0) recover_dir = argv[i + 1];
    if (std::strcmp(argv[i], "--ops") == 0) op_count = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--kill_after") == 0) {
      kill_after = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--expect") == 0) {
      expect_ops = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--metrics_prom") == 0) {
      obs.metrics_prom = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--metrics_json") == 0) {
      obs.metrics_json = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--trace_log") == 0) obs.trace_log = argv[i + 1];
  }
  std::signal(SIGTERM, HandleTerm);
  std::signal(SIGINT, HandleTerm);
  if (!partition_dir.empty()) {
    return PartitionMode(partition_dir, shards, strategy);
  }
  if (!shard_serve_dir.empty()) {
    return ShardServeMode(shard_serve_dir, shard_index, port);
  }
  if (!router_serve_dir.empty()) {
    return RouterServeMode(router_serve_dir, shard_ports, port, deadline_ms,
                           retries);
  }
  if (!verify_router_dir.empty()) {
    return VerifyRouterMode(verify_router_dir, shards, strategy);
  }
  if (probe_port != 0) return ProbeMode(probe_port, expect_unavailable);
  if (!live_dir.empty()) return RunLive(live_dir, op_count, kill_after);
  if (!recover_dir.empty()) {
    return RunRecover(recover_dir, expect_ops >= 0 ? expect_ops : op_count);
  }
  if (!save_path.empty()) return SaveSnapshot(save_path);
  if (!serve_path.empty()) return ServeSnapshot(serve_path, obs);
  const std::string path = "/tmp/pvdb_snapshot_example.snap";
  const int saved = SaveSnapshot(path);
  if (saved != 0) return saved;
  return ServeSnapshot(path, obs);
}
