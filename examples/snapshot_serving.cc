// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Snapshot lifecycle walkthrough: Build → Seal → Save on the writer side,
// Open(mmap) → serve on the reader side. Run without arguments it plays
// both roles against a temp file; with a mode flag it plays one role, so
// two separate processes (e.g. two CI steps) exercise the cross-process
// path:
//
//   $ ./snapshot_serving                      # build + save + open + serve
//   $ ./snapshot_serving --save  pv.snap      # writer process
//   $ ./snapshot_serving --serve pv.snap      # fresh serving process
//
// The serving side doubles as the observability walkthrough — optional
// sinks expose the engine's metric registry and query traces:
//
//   --metrics_prom PATH   write a final Prometheus text exposition
//   --metrics_json PATH   periodic JSON-line metric reports (plus a final
//                         one at shutdown)
//   --trace_log PATH      sampled + slow-query trace JSON lines

#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/pvdb.h"

namespace {

using namespace pvdb;

struct ObservabilityPaths {
  std::string metrics_prom;
  std::string metrics_json;
  std::string trace_log;
};

// A line sink appending to `path`, shareable by copy into std::function
// callbacks that may run on reporter/worker threads.
std::function<void(const std::string&)> MakeLineSink(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return nullptr;
  std::shared_ptr<FILE> file(f, [](FILE* fp) { std::fclose(fp); });
  auto mu = std::make_shared<std::mutex>();
  return [file, mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*mu);
    std::fprintf(file.get(), "%s\n", line.c_str());
    std::fflush(file.get());
  };
}

uncertain::Dataset MakeDatabase() {
  uncertain::SyntheticOptions options;
  options.dim = 3;
  options.count = 5000;
  options.samples_per_object = 100;
  options.seed = 1;
  return uncertain::GenerateSynthetic(options);
}

int SaveSnapshot(const std::string& path) {
  // Writer side: the mutable half of the lifecycle. The builder owns the
  // pager and the live PV-index; the dataset is only needed here.
  const uncertain::Dataset db = MakeDatabase();
  StopWatch build_watch;
  auto builder = pv::PvIndexBuilder::Build(db);
  if (!builder.ok()) {
    std::printf("build failed: %s\n", builder.status().ToString().c_str());
    return 1;
  }
  std::printf("built PV-index over %zu objects in %.0f ms\n", db.size(),
              build_watch.ElapsedMillis());

  const Status saved = builder.value()->Save(path);
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("sealed snapshot saved to %s\n", path.c_str());
  return 0;
}

int ServeSnapshot(const std::string& path, const ObservabilityPaths& obs) {
  // Serving side: no dataset, no rebuild — the snapshot is mmap'd and is
  // both the Step-1 index and the Step-2 record source.
  StopWatch open_watch;
  auto snapshot = pv::IndexSnapshot::Open(path);
  if (!snapshot.ok()) {
    std::printf("open failed: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "opened snapshot in %.2f ms: %llu objects, %llu leaves, %.1f MiB, "
      "mmap=%s\n",
      open_watch.ElapsedMillis(),
      static_cast<unsigned long long>(snapshot.value()->object_count()),
      static_cast<unsigned long long>(snapshot.value()->leaf_count()),
      static_cast<double>(snapshot.value()->file_bytes()) / (1024.0 * 1024.0),
      snapshot.value()->mapped() ? "yes" : "no");

  service::QueryEngineOptions engine_options;
  engine_options.threads = 4;
  if (!obs.trace_log.empty()) {
    engine_options.trace.enabled = true;
    // 1-in-16 sampling plus every query at or above 1 ms, so the log shows
    // both emission reasons on a workload this small.
    engine_options.trace.sample_every_n = 16;
    engine_options.trace.slow_query_ms = 1.0;
    engine_options.trace.sink = MakeLineSink(obs.trace_log);
    if (engine_options.trace.sink == nullptr) {
      std::printf("cannot open trace log %s\n", obs.trace_log.c_str());
      return 1;
    }
  }
  auto engine =
      service::QueryEngine::CreateFromSnapshot(snapshot.value(),
                                               engine_options);
  if (!engine.ok()) {
    std::printf("engine failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("engine: backend=%s (%s)\n",
              service::BackendKindName(engine.value()->active_backend()),
              engine.value()->plan_reason().c_str());

  // Periodic JSON metric reports while serving; Stop() below always flushes
  // one final report, so even a short run publishes its numbers.
  std::unique_ptr<StatsReporter> reporter;
  if (!obs.metrics_json.empty()) {
    StatsReporterOptions reporter_options;
    reporter_options.interval = std::chrono::milliseconds(100);
    reporter_options.format = StatsReporterOptions::Format::kJson;
    reporter_options.sink = MakeLineSink(obs.metrics_json);
    if (reporter_options.sink == nullptr) {
      std::printf("cannot open metrics log %s\n", obs.metrics_json.c_str());
      return 1;
    }
    reporter = std::make_unique<StatsReporter>(&engine.value()->metrics(),
                                               reporter_options);
    reporter->Start();
  }

  Rng rng(9);
  std::vector<geom::Point> queries;
  const geom::Rect& domain = snapshot.value()->domain();
  for (int i = 0; i < 256; ++i) {
    geom::Point q(domain.dim());
    for (int d = 0; d < domain.dim(); ++d) {
      q[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
    }
    queries.push_back(q);
  }
  service::ServiceStats stats;
  const auto answers = engine.value()->ExecuteBatch(queries, &stats);
  size_t answered = 0;
  for (const auto& a : answers) {
    if (!a.status.ok()) {
      std::printf("query failed: %s\n", a.status.ToString().c_str());
      return 1;
    }
    answered += a.results.size();
  }
  std::printf(
      "served %lld queries from the mapping: %.0f q/s, p50 %.3f ms, "
      "p99 %.3f ms, %zu answers\n",
      static_cast<long long>(stats.queries), stats.throughput_qps,
      stats.p50_latency_ms, stats.p99_latency_ms, answered);
  std::printf(
      "stage time over batch (ms): plan %.2f, leaf_cache %.2f, "
      "step1_prune %.2f, step2 %.2f, merge %.2f\n",
      stats.stage_ms[0], stats.stage_ms[1], stats.stage_ms[2],
      stats.stage_ms[3], stats.stage_ms[4]);

  if (reporter != nullptr) {
    reporter->Stop();
    std::printf("metrics: %lld JSON reports appended to %s\n",
                static_cast<long long>(reporter->reports()),
                obs.metrics_json.c_str());
  }
  if (!obs.metrics_prom.empty()) {
    const std::string text = engine.value()->metrics().ExportPrometheusText();
    FILE* f = std::fopen(obs.metrics_prom.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot open %s\n", obs.metrics_prom.c_str());
      return 1;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::printf("metrics: Prometheus exposition (%zu bytes) written to %s\n",
                text.size(), obs.metrics_prom.c_str());
  }
  if (!obs.trace_log.empty()) {
    std::printf("traces: %lld lines emitted (%lld slow) to %s\n",
                static_cast<long long>(engine.value()->tracer().emitted()),
                static_cast<long long>(engine.value()->tracer().slow_count()),
                obs.trace_log.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string save_path;
  std::string serve_path;
  ObservabilityPaths obs;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--save") == 0) save_path = argv[i + 1];
    if (std::strcmp(argv[i], "--serve") == 0) serve_path = argv[i + 1];
    if (std::strcmp(argv[i], "--metrics_prom") == 0) {
      obs.metrics_prom = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--metrics_json") == 0) {
      obs.metrics_json = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--trace_log") == 0) obs.trace_log = argv[i + 1];
  }
  if (!save_path.empty()) return SaveSnapshot(save_path);
  if (!serve_path.empty()) return ServeSnapshot(serve_path, obs);
  const std::string path = "/tmp/pvdb_snapshot_example.snap";
  const int saved = SaveSnapshot(path);
  if (saved != 0) return saved;
  return ServeSnapshot(path, obs);
}
