// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Footnote-11 study: swaps the exact Step 2 for the probabilistic verifier
// of [11] and shows how the OR phase comes to dominate query time — the
// regime motivating the PV-index. Scale via PVDB_SCALE (default laptop).

#include "src/eval/experiments.h"

int main() {
  const auto scale = pvdb::eval::ScaleFromEnv();
  pvdb::eval::RunVerifierStudy(scale);
  return 0;
}
