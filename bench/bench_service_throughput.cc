// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Serving-path throughput: batched PNNQ over the PV-index through the
// QueryEngine, swept over batch size {1, 64, 1024} × thread count {1, 4, 8}
// on a 10k-object synthetic database. Emits one JSON object:
//   "configs"  — [{batch, threads, qps, p50_ms, p99_ms, cache_hit_rate}]
//     so later PRs have a serving-path trajectory to beat; the closing
//     stderr summary reports the 8-thread / 1-thread speedup at the largest
//     batch (expected > 2× on machines with >= 8 hardware threads; ~1× on
//     single-core containers, where no wall-clock parallelism exists — see
//     the hardware-threads line).
//   "hotpath_single_thread" — the scalar/allocating library pipeline
//     (row-wise QueryPoint + scalar Step1PruneMinMax + allocating Evaluate)
//     vs the block/scratch pipeline the engine now serves from
//     (QueryPointBlock + batched block prune + QueryScratch Evaluate), one
//     thread, same queries, with the end-to-end speedup.
//
//   $ ./bench_service_throughput [--smoke] [--step2_json] [--stage_json]
//                                [--overhead_json]
//
// --smoke shrinks the dataset and query count for CI bitrot checks.
// --step2_json switches to the Step-2-only scalar-vs-batched comparison on
// the 10k shared-leaf workload and emits BENCH_step2.json-shaped output
// (schema matching BENCH_hotpath.json) instead of the serving sweep.
// --stage_json runs the serving engine with per-stage timing on and emits
// the stage breakdown (p50/p90/p99 per pipeline stage from the answers'
// nanosecond attribution, plus each stage's share of total attributed
// time) — the BENCH_observability.json baseline.
// --overhead_json is the observability overhead guard: best-of-5
// alternating runs of the engine with all instrumentation off vs stage
// timing + enabled-but-unsampled tracing, asserting the instrumented
// build keeps >= 98% of baseline throughput (exit 1 on regression — wired
// into CI's bench job as a gate).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/common/trace.h"
#include "src/pv/pv_index.h"
#include "src/service/query_engine.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"

namespace {

using namespace pvdb;

struct ConfigResult {
  size_t batch;
  int threads;
  double qps;
  double p50_ms;
  double p99_ms;
  double cache_hit_rate;
};

ConfigResult RunConfig(uncertain::Dataset* db, pv::PvIndex* index,
                       const std::vector<geom::Point>& queries, size_t batch,
                       int threads) {
  service::QueryEngineOptions options;
  options.threads = threads;
  options.backend_override = service::BackendKind::kPvIndex;
  service::EngineBackends backends;
  backends.pv = index;
  auto engine = service::QueryEngine::Create(db, backends, options).value();

  std::vector<double> latencies;
  latencies.reserve(queries.size());
  int64_t hits = 0;
  int64_t misses = 0;
  StopWatch wall;
  for (size_t pos = 0; pos < queries.size(); pos += batch) {
    const size_t n = std::min(batch, queries.size() - pos);
    service::ServiceStats stats;
    const auto answers = engine->ExecuteBatch(
        service::PnnRequests(
            std::span<const geom::Point>(queries.data() + pos, n)),
        &stats);
    for (const auto& a : answers) {
      if (!a.status.ok()) {
        std::fprintf(stderr, "query failed: %s\n", a.status.ToString().c_str());
        std::exit(1);
      }
      latencies.push_back(a.latency_ms);
    }
    hits += stats.cache_hits;
    misses += stats.cache_misses;
  }
  const double wall_s = wall.ElapsedSeconds();

  ConfigResult r;
  r.batch = batch;
  r.threads = threads;
  r.qps = wall_s > 0 ? static_cast<double>(queries.size()) / wall_s : 0.0;
  std::sort(latencies.begin(), latencies.end());
  r.p50_ms = PercentileSorted(latencies, 50.0);
  r.p99_ms = PercentileSorted(latencies, 99.0);
  const int64_t lookups = hits + misses;
  r.cache_hit_rate =
      lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                  : 0.0;
  return r;
}

struct HotpathResult {
  double scalar_qps;
  double block_qps;
  double speedup;
};

/// Single-thread before/after of the library hot path itself, outside the
/// engine: the pre-refactor pipeline (row-wise leaf read, scalar minmax
/// prune, allocating Step 2) against the block/scratch pipeline. Both sides
/// produce bit-identical answers (asserted by tests); only the data layout
/// and allocation behavior differ.
HotpathResult RunHotpathComparison(uncertain::Dataset* db, pv::PvIndex* index,
                                   const std::vector<geom::Point>& queries) {
  pv::PnnStep2Evaluator step2(db);
  size_t sink = 0;

  StopWatch scalar_watch;
  for (const geom::Point& q : queries) {
    const auto entries = index->primary().QueryPoint(q).value();
    const auto candidates = pv::Step1PruneMinMax(entries, q);
    sink += step2.Evaluate(q, candidates).size();
  }
  const double scalar_s = scalar_watch.ElapsedSeconds();

  pv::QueryScratch scratch;
  StopWatch block_watch;
  for (const geom::Point& q : queries) {
    const auto block = index->primary().QueryPointBlock(q).value();
    const auto candidates = pv::Step1PruneMinMax(block, q, &scratch);
    sink += step2.Evaluate(q, candidates, &scratch).size();
  }
  const double block_s = block_watch.ElapsedSeconds();

  std::fprintf(stderr, "# hotpath answers sink: %zu\n", sink);
  HotpathResult r;
  r.scalar_qps = scalar_s > 0 ? queries.size() / scalar_s : 0.0;
  r.block_qps = block_s > 0 ? queries.size() / block_s : 0.0;
  r.speedup = r.scalar_qps > 0 ? r.block_qps / r.scalar_qps : 0.0;
  return r;
}

/// The batched-Step-2 before/after on a shared-leaf workload: clusters of
/// queries jittered around common anchors, so whole clusters survive Step 1
/// with identical candidate sets. Step 1 runs once outside both timers;
/// the scalar side then evaluates per query through the scratch path, the
/// batched side plans a Step2Batch (plan construction inside the timer) and
/// sweeps each group via EvaluateGroup. Answers are bit-identical
/// (tests/step2_batch_test.cc); only evaluation order and locality differ.
struct Step2Result {
  size_t queries = 0;
  size_t cluster_size = 0;
  size_t groups = 0;
  size_t grouped_queries = 0;  // queries in groups of >= 2
  int64_t pairs_pruned = 0;
  double scalar_qps = 0.0;
  double batched_qps = 0.0;
  double speedup = 0.0;
};

/// 64-query clusters jittered around random anchors: whole clusters land in
/// the same octree leaf and (almost always) survive Step 1 with identical
/// candidate sets. One generator feeds both the Step-2-only comparison and
/// the end-to-end engine section, so both measure the same workload.
constexpr size_t kSharedLeafClusterSize = 64;

std::vector<geom::Point> SharedLeafQueries(size_t clusters, int dim,
                                           double domain_lo,
                                           double domain_hi) {
  Rng rng(19);
  std::vector<geom::Point> queries;
  queries.reserve(clusters * kSharedLeafClusterSize);
  for (size_t c = 0; c < clusters; ++c) {
    geom::Point anchor(dim);
    for (int d = 0; d < dim; ++d) {
      anchor[d] = rng.NextUniform(domain_lo, domain_hi);
    }
    for (size_t i = 0; i < kSharedLeafClusterSize; ++i) {
      geom::Point q = anchor;
      const double jitter = (domain_hi - domain_lo) * 1e-5;
      for (int d = 0; d < dim; ++d) {
        // Clamp: an anchor at the domain edge must not jitter outside it
        // (out-of-domain points fail Step 1 by design).
        q[d] = std::clamp(q[d] + rng.NextUniform(-jitter, jitter), domain_lo,
                          domain_hi);
      }
      queries.push_back(q);
    }
  }
  return queries;
}

Step2Result RunStep2Comparison(uncertain::Dataset* db, pv::PvIndex* index,
                               const std::vector<geom::Point>& queries) {
  Step2Result r;
  r.cluster_size = kSharedLeafClusterSize;
  r.queries = queries.size();

  // Step 1 once, outside both timers: the comparison is Step 2 only.
  pv::QueryScratch scratch;
  std::vector<uint64_t> leaf_keys(queries.size(), pv::kNoLeafId);
  std::vector<std::vector<uncertain::ObjectId>> candidates(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto ref = index->primary().FindLeaf(queries[i]).value();
    leaf_keys[i] = ref.id;
    candidates[i] = index->QueryPossibleNN(queries[i], &scratch).value();
  }

  pv::PnnStep2Evaluator step2(db);
  size_t sink = 0;

  StopWatch scalar_watch;
  for (size_t i = 0; i < queries.size(); ++i) {
    sink += step2.Evaluate(queries[i], candidates[i], &scratch).size();
  }
  const double scalar_s = scalar_watch.ElapsedSeconds();

  pv::Step2BatchStats bstats;
  StopWatch batched_watch;
  pv::Step2Batch plan;
  for (size_t i = 0; i < queries.size(); ++i) {
    plan.Add(static_cast<uint32_t>(i), leaf_keys[i],
             std::move(candidates[i]));
  }
  for (const auto& g : plan.groups()) {
    std::vector<geom::Point> group_queries;
    group_queries.reserve(g.queries.size());
    for (uint32_t qi : g.queries) group_queries.push_back(queries[qi]);
    const auto results = step2.EvaluateGroup(group_queries, g.candidates,
                                             &scratch, nullptr, {}, &bstats);
    for (const auto& res : results) sink += res.size();
  }
  const double batched_s = batched_watch.ElapsedSeconds();

  r.groups = plan.groups().size();
  for (const auto& g : plan.groups()) {
    if (g.queries.size() >= 2) r.grouped_queries += g.queries.size();
  }
  r.pairs_pruned = bstats.pairs_pruned;
  std::fprintf(stderr, "# step2 answers sink: %zu\n", sink);
  r.scalar_qps = scalar_s > 0 ? queries.size() / scalar_s : 0.0;
  r.batched_qps = batched_s > 0 ? queries.size() / batched_s : 0.0;
  r.speedup = r.scalar_qps > 0 ? r.batched_qps / r.scalar_qps : 0.0;
  return r;
}

/// End-to-end single-thread engine run over the shared-leaf workload, batch
/// 64, with batched Step 2 on or off — the serving-path view of the same
/// change.
double RunEngineSharedLeaf(uncertain::Dataset* db, pv::PvIndex* index,
                           const std::vector<geom::Point>& queries,
                           bool batch_step2) {
  service::QueryEngineOptions options;
  options.threads = 1;
  options.backend_override = service::BackendKind::kPvIndex;
  options.batch_step2 = batch_step2;
  service::EngineBackends backends;
  backends.pv = index;
  auto engine = service::QueryEngine::Create(db, backends, options).value();
  const size_t batch = 64;
  StopWatch wall;
  for (size_t pos = 0; pos < queries.size(); pos += batch) {
    const size_t n = std::min(batch, queries.size() - pos);
    const auto answers = engine->ExecuteBatch(service::PnnRequests(
        std::span<const geom::Point>(queries.data() + pos, n)));
    for (const auto& a : answers) {
      if (!a.status.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     a.status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  const double wall_s = wall.ElapsedSeconds();
  return wall_s > 0 ? static_cast<double>(queries.size()) / wall_s : 0.0;
}

int RunStep2Json(bool smoke) {
  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = smoke ? 2000 : 10000;
  synth.samples_per_object = smoke ? 50 : 200;
  synth.seed = 42;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);

  storage::InMemoryPager pager;
  pv::PvIndexOptions index_options;
  index_options.build_order = pv::BuildOrder::kMorton;
  index_options.bulk_primary = true;
  auto index = pv::PvIndex::Build(db, &pager, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  const std::vector<geom::Point> queries = SharedLeafQueries(
      smoke ? 8 : 64, synth.dim, synth.domain_lo, synth.domain_hi);
  const Step2Result r =
      RunStep2Comparison(&db, index.value().get(), queries);

  // The same shared-leaf queries through the single-thread engine, batch 64.
  const double engine_off_qps =
      RunEngineSharedLeaf(&db, index.value().get(), queries, false);
  const double engine_on_qps =
      RunEngineSharedLeaf(&db, index.value().get(), queries, true);
  const double engine_speedup =
      engine_off_qps > 0 ? engine_on_qps / engine_off_qps : 0.0;

  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&now));

  std::printf("{\n");
  std::printf("  \"benchmark\": \"step2_batch\",\n");
  std::printf(
      "  \"description\": \"Before/after of the batched Step-2 engine: "
      "per-query scratch Evaluate (before) vs Step2Batch grouping + "
      "candidate-outer EvaluateGroup sweep with threshold early-exit "
      "(after). Same inputs, bit-identical answers "
      "(tests/step2_batch_test.cc).\",\n");
  std::printf("  \"date\": \"%s\",\n", date);
  std::printf("  \"machine\": {\n");
  std::printf("    \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"compiler\": \"%s\",\n", __VERSION__);
  std::printf("    \"build\": \"Release/RelWithDebInfo (kernels -O3)\",\n");
  std::printf("    \"note\": \"all speedups single-thread\"\n  },\n");
  std::printf("  \"step2_shared_leaf\": {\n");
  std::printf("    \"source\": \"bench_service_throughput --step2_json\",\n");
  std::printf(
      "    \"before_metric\": \"scalar_qps (per-query QueryScratch "
      "Evaluate)\",\n");
  std::printf(
      "    \"after_metric\": \"batched_qps (Step2Batch plan + EvaluateGroup "
      "candidate-outer sweep, plan build included)\",\n");
  std::printf("    \"results\": [\n      {\n");
  std::printf("        \"workload\": \"%s-shared-leaf\",\n",
              smoke ? "2k" : "10k");
  std::printf("        \"dim\": %d,\n", synth.dim);
  std::printf("        \"objects\": %zu,\n", db.size());
  std::printf("        \"samples_per_object\": %d,\n",
              synth.samples_per_object);
  std::printf("        \"queries\": %zu,\n", r.queries);
  std::printf("        \"cluster_size\": %zu,\n", r.cluster_size);
  std::printf("        \"groups\": %zu,\n", r.groups);
  std::printf("        \"grouped_queries\": %zu,\n", r.grouped_queries);
  std::printf("        \"pairs_pruned\": %lld,\n",
              static_cast<long long>(r.pairs_pruned));
  std::printf("        \"scalar_qps\": %.1f,\n", r.scalar_qps);
  std::printf("        \"batched_qps\": %.1f,\n", r.batched_qps);
  std::printf("        \"speedup\": %.2f\n      }\n    ]\n  },\n", r.speedup);
  std::printf("  \"service_end_to_end_single_thread\": {\n");
  std::printf(
      "    \"source\": \"QueryEngine typed ExecuteBatch (kPnn), 1 thread, "
      "batch 64, same shared-leaf queries\",\n");
  std::printf("    \"before\": {\"pipeline\": \"batch_step2 off (per-query "
              "AnswerOne)\", \"qps\": %.1f},\n",
              engine_off_qps);
  std::printf("    \"after\": {\"pipeline\": \"batch_step2 on (group-then-"
              "sweep)\", \"qps\": %.1f},\n",
              engine_on_qps);
  std::printf("    \"speedup\": %.2f\n  }\n}\n", engine_speedup);

  std::fprintf(stderr,
               "# step2 single-thread: batched = %.2fx scalar; engine "
               "end-to-end = %.2fx\n",
               r.speedup, engine_speedup);
  return 0;
}

/// The standard serving world (10k objects, 3D, Morton bulk build) shared
/// by the stage-breakdown and overhead modes.
struct ServingWorld {
  explicit ServingWorld(bool smoke) {
    synth.dim = 3;
    synth.count = smoke ? 2000 : 10000;
    synth.samples_per_object = smoke ? 50 : 200;
    synth.seed = 42;
    db = std::make_unique<uncertain::Dataset>(
        uncertain::GenerateSynthetic(synth));
    pv::PvIndexOptions index_options;
    index_options.build_order = pv::BuildOrder::kMorton;
    index_options.bulk_primary = true;
    auto built = pv::PvIndex::Build(*db, &pager, index_options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      std::exit(1);
    }
    index = std::move(built).value();

    const size_t query_count = smoke ? 512 : 4096;
    Rng rng(7);
    queries.reserve(query_count);
    for (size_t i = 0; i < query_count; ++i) {
      geom::Point q(synth.dim);
      for (int d = 0; d < synth.dim; ++d) {
        q[d] = rng.NextUniform(synth.domain_lo, synth.domain_hi);
      }
      queries.push_back(q);
    }
  }

  uncertain::SyntheticOptions synth;
  std::unique_ptr<uncertain::Dataset> db;
  storage::InMemoryPager pager;
  std::unique_ptr<pv::PvIndex> index;
  std::vector<geom::Point> queries;
};

void PrintJsonHeader(const char* benchmark, const char* description) {
  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&now));
  std::printf("{\n");
  std::printf("  \"benchmark\": \"%s\",\n", benchmark);
  std::printf("  \"description\": \"%s\",\n", description);
  std::printf("  \"date\": \"%s\",\n", date);
  std::printf("  \"machine\": {\n");
  std::printf("    \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"compiler\": \"%s\",\n", __VERSION__);
  std::printf("    \"build\": \"Release/RelWithDebInfo (kernels -O3)\"\n");
  std::printf("  },\n");
}

/// One timed pass of the whole query list through `engine`, batch 64.
/// Returns qps; accumulates answers into `stage_hists` when given.
double OneEnginePass(service::QueryEngine* engine,
                     const std::vector<geom::Point>& queries,
                     std::vector<HistogramData>* stage_hists,
                     double* latency_p99_ms) {
  constexpr size_t kBatch = 64;
  HistogramData latency;
  StopWatch wall;
  for (size_t pos = 0; pos < queries.size(); pos += kBatch) {
    const size_t n = std::min(kBatch, queries.size() - pos);
    const auto answers = engine->ExecuteBatch(service::PnnRequests(
        std::span<const geom::Point>(queries.data() + pos, n)));
    for (const auto& a : answers) {
      if (!a.status.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     a.status.ToString().c_str());
        std::exit(1);
      }
      if (stage_hists != nullptr) {
        for (int s = 0; s < kNumQueryStages; ++s) {
          (*stage_hists)[static_cast<size_t>(s)].Record(
              a.stage_ns[static_cast<size_t>(s)]);
        }
        latency.Record(static_cast<int64_t>(a.latency_ms * 1e6));
      }
    }
  }
  const double wall_s = wall.ElapsedSeconds();
  if (latency_p99_ms != nullptr) {
    *latency_p99_ms = static_cast<double>(latency.Percentile(99.0)) / 1e6;
  }
  return wall_s > 0 ? static_cast<double>(queries.size()) / wall_s : 0.0;
}

int RunStageJson(bool smoke) {
  ServingWorld world(smoke);

  service::QueryEngineOptions options;
  options.threads = 4;
  options.backend_override = service::BackendKind::kPvIndex;
  options.stage_timing = true;
  service::EngineBackends backends;
  backends.pv = world.index.get();
  auto engine =
      service::QueryEngine::Create(world.db.get(), backends, options).value();

  // Warmup pass fills the leaf cache; the measured pass is steady state.
  (void)OneEnginePass(engine.get(), world.queries, nullptr, nullptr);
  std::vector<HistogramData> stage_hists(kNumQueryStages);
  double p99_ms = 0.0;
  const double qps =
      OneEnginePass(engine.get(), world.queries, &stage_hists, &p99_ms);

  double total_ms = 0.0;
  for (const auto& h : stage_hists) {
    total_ms += static_cast<double>(h.sum()) / 1e6;
  }

  PrintJsonHeader(
      "stage_breakdown",
      "Per-stage latency decomposition of the serving engine (plan / "
      "leaf_cache / step1_prune / step2 / merge), recorded per query by "
      "nanosecond stage timers threaded through QueryScratch, batch 64, "
      "4 threads, warm cache. share = stage total / sum of stage totals.");
  std::printf("  \"workload\": {\"dim\": %d, \"objects\": %zu, "
              "\"samples_per_object\": %d, \"queries\": %zu, \"batch\": 64, "
              "\"threads\": %d},\n",
              world.synth.dim, world.db->size(),
              world.synth.samples_per_object, world.queries.size(),
              options.threads);
  std::printf("  \"stages\": [\n");
  for (int s = 0; s < kNumQueryStages; ++s) {
    const HistogramData& h = stage_hists[static_cast<size_t>(s)];
    const double stage_ms = static_cast<double>(h.sum()) / 1e6;
    std::printf("    {\"stage\": \"%s\", \"p50_us\": %.2f, \"p90_us\": %.2f, "
                "\"p99_us\": %.2f, \"total_ms\": %.2f, \"share\": %.4f}%s\n",
                QueryStageName(static_cast<QueryStage>(s)),
                static_cast<double>(h.Percentile(50.0)) / 1e3,
                static_cast<double>(h.Percentile(90.0)) / 1e3,
                static_cast<double>(h.Percentile(99.0)) / 1e3, stage_ms,
                total_ms > 0 ? stage_ms / total_ms : 0.0,
                s + 1 < kNumQueryStages ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"latency\": {\"qps\": %.1f, \"p99_ms\": %.4f}\n}\n", qps,
              p99_ms);
  std::fprintf(stderr, "# stage breakdown: %.1f qps, p99 %.3f ms\n", qps,
               p99_ms);
  return 0;
}

int RunOverheadJson(bool smoke) {
  ServingWorld world(smoke);
  service::EngineBackends backends;
  backends.pv = world.index.get();

  // Baseline: every observability knob off (no stage clocks, no tracer).
  service::QueryEngineOptions base_options;
  base_options.threads = 4;
  base_options.backend_override = service::BackendKind::kPvIndex;
  base_options.stage_timing = false;
  auto base_engine =
      service::QueryEngine::Create(world.db.get(), backends, base_options)
          .value();

  // Instrumented: stage timing on plus an enabled-but-unsampled tracer —
  // the production posture (collection always on, emission ~never).
  service::QueryEngineOptions inst_options = base_options;
  inst_options.stage_timing = true;
  inst_options.trace.enabled = true;
  inst_options.trace.sample_every_n = 1u << 31;
  inst_options.trace.sink = [](const std::string&) {};
  auto inst_engine =
      service::QueryEngine::Create(world.db.get(), backends, inst_options)
          .value();

  // Warm both caches, then best-of-5 alternating passes: the max filters
  // scheduler noise, alternation cancels thermal/clock drift bias.
  (void)OneEnginePass(base_engine.get(), world.queries, nullptr, nullptr);
  (void)OneEnginePass(inst_engine.get(), world.queries, nullptr, nullptr);
  constexpr int kReps = 5;
  double base_qps = 0.0;
  double inst_qps = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    base_qps = std::max(
        base_qps,
        OneEnginePass(base_engine.get(), world.queries, nullptr, nullptr));
    inst_qps = std::max(
        inst_qps,
        OneEnginePass(inst_engine.get(), world.queries, nullptr, nullptr));
  }

  constexpr double kGatePct = 2.0;
  const double overhead_pct =
      base_qps > 0 ? (1.0 - inst_qps / base_qps) * 100.0 : 0.0;
  const bool pass = overhead_pct < kGatePct;

  PrintJsonHeader(
      "observability_overhead",
      "Overhead guard: serving throughput with all instrumentation off vs "
      "stage timing + enabled-but-unsampled tracing (the always-on "
      "production posture). best-of-5 alternating passes, batch 64, 4 "
      "threads, warm cache. Gate: overhead_pct < 2.");
  std::printf("  \"workload\": {\"dim\": %d, \"objects\": %zu, "
              "\"queries\": %zu, \"batch\": 64, \"threads\": %d, "
              "\"reps\": %d},\n",
              world.synth.dim, world.db->size(), world.queries.size(),
              base_options.threads, kReps);
  std::printf("  \"baseline_qps\": %.1f,\n", base_qps);
  std::printf("  \"instrumented_qps\": %.1f,\n", inst_qps);
  std::printf("  \"overhead_pct\": %.2f,\n", overhead_pct);
  std::printf("  \"gate_pct\": %.1f,\n", kGatePct);
  std::printf("  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fprintf(stderr,
               "# observability overhead: %.2f%% (baseline %.1f qps, "
               "instrumented %.1f qps) — %s\n",
               overhead_pct, base_qps, inst_qps, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool step2_json = false;
  bool stage_json = false;
  bool overhead_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--step2_json") == 0) step2_json = true;
    if (std::strcmp(argv[i], "--stage_json") == 0) stage_json = true;
    if (std::strcmp(argv[i], "--overhead_json") == 0) overhead_json = true;
  }
  if (step2_json) return RunStep2Json(smoke);
  if (stage_json) return RunStageJson(smoke);
  if (overhead_json) return RunOverheadJson(smoke);

  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = smoke ? 2000 : 10000;
  synth.samples_per_object = smoke ? 50 : 200;
  synth.seed = 42;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);

  storage::InMemoryPager pager;
  pv::PvIndexOptions index_options;
  index_options.build_order = pv::BuildOrder::kMorton;
  index_options.bulk_primary = true;
  StopWatch build_watch;
  auto index = pv::PvIndex::Build(db, &pager, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# PV-index over %zu objects built in %.0f ms\n",
               db.size(), build_watch.ElapsedMillis());
  std::fprintf(stderr, "# hardware threads: %u\n",
               std::thread::hardware_concurrency());

  const size_t query_count = smoke ? 512 : 4096;
  Rng rng(7);
  std::vector<geom::Point> queries;
  queries.reserve(query_count);
  for (size_t i = 0; i < query_count; ++i) {
    geom::Point q(synth.dim);
    for (int d = 0; d < synth.dim; ++d) {
      q[d] = rng.NextUniform(synth.domain_lo, synth.domain_hi);
    }
    queries.push_back(q);
  }

  const size_t batches[] = {1, 64, 1024};
  const int threads[] = {1, 4, 8};
  double qps_1t_big = 0.0;
  double qps_8t_big = 0.0;

  std::printf("{\n  \"configs\": [\n");
  bool first = true;
  for (size_t batch : batches) {
    for (int t : threads) {
      const ConfigResult r =
          RunConfig(&db, index.value().get(), queries, batch, t);
      if (batch == 1024 && t == 1) qps_1t_big = r.qps;
      if (batch == 1024 && t == 8) qps_8t_big = r.qps;
      std::printf(
          "%s    {\"batch\": %zu, \"threads\": %d, \"queries\": %zu, "
          "\"qps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"cache_hit_rate\": %.4f}",
          first ? "" : ",\n", r.batch, r.threads, queries.size(), r.qps,
          r.p50_ms, r.p99_ms, r.cache_hit_rate);
      first = false;
      std::fflush(stdout);
    }
  }
  std::printf("\n  ],\n");

  const HotpathResult hp =
      RunHotpathComparison(&db, index.value().get(), queries);
  std::printf("  \"hotpath_single_thread\": {\"scalar_qps\": %.1f, "
              "\"block_qps\": %.1f, \"speedup\": %.2f}\n}\n",
              hp.scalar_qps, hp.block_qps, hp.speedup);

  if (qps_1t_big > 0.0) {
    const double speedup = qps_8t_big / qps_1t_big;
    std::fprintf(stderr, "# speedup batch=1024: 8 threads = %.2fx 1 thread\n",
                 speedup);
  }
  std::fprintf(stderr,
               "# hotpath single-thread: block/scratch = %.2fx scalar\n",
               hp.speedup);
  return 0;
}
