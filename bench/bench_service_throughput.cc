// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Serving-path throughput: batched PNNQ over the PV-index through the
// QueryEngine, swept over batch size {1, 64, 1024} × thread count {1, 4, 8}
// on a 10k-object synthetic database. Emits one JSON object:
//   "configs"  — [{batch, threads, qps, p50_ms, p99_ms, cache_hit_rate}]
//     so later PRs have a serving-path trajectory to beat; the closing
//     stderr summary reports the 8-thread / 1-thread speedup at the largest
//     batch (expected > 2× on machines with >= 8 hardware threads; ~1× on
//     single-core containers, where no wall-clock parallelism exists — see
//     the hardware-threads line).
//   "hotpath_single_thread" — the scalar/allocating library pipeline
//     (row-wise QueryPoint + scalar Step1PruneMinMax + allocating Evaluate)
//     vs the block/scratch pipeline the engine now serves from
//     (QueryPointBlock + batched block prune + QueryScratch Evaluate), one
//     thread, same queries, with the end-to-end speedup.
//
//   $ ./bench_service_throughput [--smoke]
//
// --smoke shrinks the dataset and query count for CI bitrot checks.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/pv/pv_index.h"
#include "src/service/query_engine.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"

namespace {

using namespace pvdb;

struct ConfigResult {
  size_t batch;
  int threads;
  double qps;
  double p50_ms;
  double p99_ms;
  double cache_hit_rate;
};

ConfigResult RunConfig(uncertain::Dataset* db, pv::PvIndex* index,
                       const std::vector<geom::Point>& queries, size_t batch,
                       int threads) {
  service::QueryEngineOptions options;
  options.threads = threads;
  options.backend_override = service::BackendKind::kPvIndex;
  service::EngineBackends backends;
  backends.pv = index;
  auto engine = service::QueryEngine::Create(db, backends, options).value();

  std::vector<double> latencies;
  latencies.reserve(queries.size());
  int64_t hits = 0;
  int64_t misses = 0;
  StopWatch wall;
  for (size_t pos = 0; pos < queries.size(); pos += batch) {
    const size_t n = std::min(batch, queries.size() - pos);
    service::ServiceStats stats;
    const auto answers = engine->ExecuteBatch(
        std::span<const geom::Point>(queries.data() + pos, n), &stats);
    for (const auto& a : answers) {
      if (!a.status.ok()) {
        std::fprintf(stderr, "query failed: %s\n", a.status.ToString().c_str());
        std::exit(1);
      }
      latencies.push_back(a.latency_ms);
    }
    hits += stats.cache_hits;
    misses += stats.cache_misses;
  }
  const double wall_s = wall.ElapsedSeconds();

  ConfigResult r;
  r.batch = batch;
  r.threads = threads;
  r.qps = wall_s > 0 ? static_cast<double>(queries.size()) / wall_s : 0.0;
  std::sort(latencies.begin(), latencies.end());
  r.p50_ms = PercentileSorted(latencies, 50.0);
  r.p99_ms = PercentileSorted(latencies, 99.0);
  const int64_t lookups = hits + misses;
  r.cache_hit_rate =
      lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                  : 0.0;
  return r;
}

struct HotpathResult {
  double scalar_qps;
  double block_qps;
  double speedup;
};

/// Single-thread before/after of the library hot path itself, outside the
/// engine: the pre-refactor pipeline (row-wise leaf read, scalar minmax
/// prune, allocating Step 2) against the block/scratch pipeline. Both sides
/// produce bit-identical answers (asserted by tests); only the data layout
/// and allocation behavior differ.
HotpathResult RunHotpathComparison(uncertain::Dataset* db, pv::PvIndex* index,
                                   const std::vector<geom::Point>& queries) {
  pv::PnnStep2Evaluator step2(db);
  size_t sink = 0;

  StopWatch scalar_watch;
  for (const geom::Point& q : queries) {
    const auto entries = index->primary().QueryPoint(q).value();
    const auto candidates = pv::Step1PruneMinMax(entries, q);
    sink += step2.Evaluate(q, candidates).size();
  }
  const double scalar_s = scalar_watch.ElapsedSeconds();

  pv::QueryScratch scratch;
  StopWatch block_watch;
  for (const geom::Point& q : queries) {
    const auto block = index->primary().QueryPointBlock(q).value();
    const auto candidates = pv::Step1PruneMinMax(block, q, &scratch);
    sink += step2.Evaluate(q, candidates, &scratch).size();
  }
  const double block_s = block_watch.ElapsedSeconds();

  std::fprintf(stderr, "# hotpath answers sink: %zu\n", sink);
  HotpathResult r;
  r.scalar_qps = scalar_s > 0 ? queries.size() / scalar_s : 0.0;
  r.block_qps = block_s > 0 ? queries.size() / block_s : 0.0;
  r.speedup = r.scalar_qps > 0 ? r.block_qps / r.scalar_qps : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = smoke ? 2000 : 10000;
  synth.samples_per_object = smoke ? 50 : 200;
  synth.seed = 42;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);

  storage::InMemoryPager pager;
  pv::PvIndexOptions index_options;
  index_options.build_order = pv::BuildOrder::kMorton;
  index_options.bulk_primary = true;
  StopWatch build_watch;
  auto index = pv::PvIndex::Build(db, &pager, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# PV-index over %zu objects built in %.0f ms\n",
               db.size(), build_watch.ElapsedMillis());
  std::fprintf(stderr, "# hardware threads: %u\n",
               std::thread::hardware_concurrency());

  const size_t query_count = smoke ? 512 : 4096;
  Rng rng(7);
  std::vector<geom::Point> queries;
  queries.reserve(query_count);
  for (size_t i = 0; i < query_count; ++i) {
    geom::Point q(synth.dim);
    for (int d = 0; d < synth.dim; ++d) {
      q[d] = rng.NextUniform(synth.domain_lo, synth.domain_hi);
    }
    queries.push_back(q);
  }

  const size_t batches[] = {1, 64, 1024};
  const int threads[] = {1, 4, 8};
  double qps_1t_big = 0.0;
  double qps_8t_big = 0.0;

  std::printf("{\n  \"configs\": [\n");
  bool first = true;
  for (size_t batch : batches) {
    for (int t : threads) {
      const ConfigResult r =
          RunConfig(&db, index.value().get(), queries, batch, t);
      if (batch == 1024 && t == 1) qps_1t_big = r.qps;
      if (batch == 1024 && t == 8) qps_8t_big = r.qps;
      std::printf(
          "%s    {\"batch\": %zu, \"threads\": %d, \"queries\": %zu, "
          "\"qps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"cache_hit_rate\": %.4f}",
          first ? "" : ",\n", r.batch, r.threads, queries.size(), r.qps,
          r.p50_ms, r.p99_ms, r.cache_hit_rate);
      first = false;
      std::fflush(stdout);
    }
  }
  std::printf("\n  ],\n");

  const HotpathResult hp =
      RunHotpathComparison(&db, index.value().get(), queries);
  std::printf("  \"hotpath_single_thread\": {\"scalar_qps\": %.1f, "
              "\"block_qps\": %.1f, \"speedup\": %.2f}\n}\n",
              hp.scalar_qps, hp.block_qps, hp.speedup);

  if (qps_1t_big > 0.0) {
    const double speedup = qps_8t_big / qps_1t_big;
    std::fprintf(stderr, "# speedup batch=1024: 8 threads = %.2fx 1 thread\n",
                 speedup);
  }
  std::fprintf(stderr,
               "# hotpath single-thread: block/scratch = %.2fx scalar\n",
               hp.speedup);
  return 0;
}
