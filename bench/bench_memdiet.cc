// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Snapshot memory/bandwidth diet benchmark: what format v2 buys on the
// standard 10k x 200 d=3 workload. Emits one JSON object
// (BENCH_memdiet.json schema):
//   file_bytes            v1 / v2 raw / v2 lossless-packed / v2 f32-packed
//                         images of the same index (+ savings vs v1)
//   rss                   resident set before serving, after zero-copy
//                         serving, then after decode-path serving of the
//                         same traffic. Zero-copy runs first, so its delta
//                         is the faulted file mapping (shared, evictable
//                         pages both modes need); the decode phase's delta
//                         on top of that is the private block-cache heap
//                         only the decode path pays for.
//   step1_leaf_scan       uncached leaf read + minmax prune throughput:
//                         v1 decode (page decode into an owned block) vs
//                         v2 zero-copy view (prune straight off the
//                         mapping) — identical candidate output required
//   engine                warm single-thread QPS, zero-copy vs forced
//                         decode (use_leaf_views = false)
//
// Exits non-zero when the zero-copy leaf scan is SLOWER than the decode
// path — the regression gate CI enforces.
//
//   $ ./bench_memdiet [--smoke]

#include <unistd.h>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <cstdio>
#include <cstring>
#include <ctime>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/pvdb.h"

namespace {

using namespace pvdb;

/// Current resident set, not the process-lifetime peak: the build/seal phase
/// would otherwise dominate ru_maxrss and hide what serving actually holds.
double CurrentRssMiB() {
  long pages = 0, resident = 0;
  if (FILE* f = std::fopen("/proc/self/statm", "r")) {
    if (std::fscanf(f, "%ld %ld", &pages, &resident) != 2) resident = 0;
    std::fclose(f);
  }
  return static_cast<double>(resident) *
         static_cast<double>(sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = smoke ? 2000 : 10000;
  synth.samples_per_object = smoke ? 50 : 200;
  synth.seed = 42;
  std::optional<uncertain::Dataset> db(uncertain::GenerateSynthetic(synth));
  const size_t object_count = db->size();

  pv::PvIndexOptions index_options;
  index_options.build_order = pv::BuildOrder::kMorton;
  index_options.bulk_primary = true;
  auto builder = pv::PvIndexBuilder::Build(*db, index_options);
  if (!builder.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 builder.status().ToString().c_str());
    return 1;
  }

  // --- File sizes: same index, four storage policies. -----------------
  auto image_size = [&](const pv::SealOptions& opts) -> size_t {
    auto image = builder.value()->SealImage(opts);
    if (!image.ok()) {
      std::fprintf(stderr, "seal failed: %s\n",
                   image.status().ToString().c_str());
      std::exit(1);
    }
    return image.value().size();
  };
  const size_t v1_bytes = image_size({.format_version = 1});
  const size_t v2_raw_bytes = image_size({});
  const size_t v2_lossless_bytes =
      image_size({.pack = uncertain::RecordPack::kLossless});
  const size_t v2_f32_bytes =
      image_size({.pack = uncertain::RecordPack::kFloat32});
  const double f32_savings_pct =
      100.0 * (1.0 - static_cast<double>(v2_f32_bytes) /
                         static_cast<double>(v1_bytes));
  const double lossless_savings_pct =
      100.0 * (1.0 - static_cast<double>(v2_lossless_bytes) /
                         static_cast<double>(v1_bytes));

  // --- Serving surfaces: a v2 file (zero-copy) and a v1 file (decode). -
  const std::string dir = "/tmp/";
  const std::string v2_path =
      dir + (smoke ? "pvdb_memdiet_v2_smoke.snap" : "pvdb_memdiet_v2.snap");
  const std::string v1_path =
      dir + (smoke ? "pvdb_memdiet_v1_smoke.snap" : "pvdb_memdiet_v1.snap");
  if (!builder.value()
           ->Save(v2_path, {.pack = uncertain::RecordPack::kLossless})
           .ok() ||
      !builder.value()->Save(v1_path, {.format_version = 1}).ok()) {
    std::fprintf(stderr, "save failed\n");
    return 1;
  }
  // Serving holds only the mappings from here on — drop the builder and the
  // raw dataset so RSS readings measure the serving surface, not leftovers.
  builder.value().reset();
  db.reset();
#if defined(__GLIBC__)
  malloc_trim(0);  // return the freed build/seal heap to the OS
#endif
  auto v2 = pv::IndexSnapshot::Open(v2_path);
  auto v1 = pv::IndexSnapshot::Open(v1_path);
  if (!v2.ok() || !v1.ok()) {
    std::fprintf(stderr, "open failed\n");
    return 1;
  }
  const double rss_baseline_mib = CurrentRssMiB();

  Rng rng(7);
  const geom::Rect& domain = v2.value()->domain();
  auto random_query = [&] {
    geom::Point q(domain.dim());
    for (int d = 0; d < domain.dim(); ++d) {
      q[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
    }
    return q;
  };
  const size_t query_count = smoke ? 256 : 2048;
  std::vector<geom::Point> queries;
  queries.reserve(query_count);
  for (size_t i = 0; i < query_count; ++i) queries.push_back(random_query());

  // --- Phase 1 (RSS order matters): zero-copy serving. -----------------
  service::QueryEngineOptions view_options;
  view_options.threads = 1;
  auto view_engine =
      service::QueryEngine::CreateFromSnapshot(v2.value(), view_options);
  if (!view_engine.ok()) {
    std::fprintf(stderr, "engine failed\n");
    return 1;
  }
  service::ServiceStats view_stats;
  const std::vector<service::QueryRequest> requests =
      service::PnnRequests(queries);
  auto view_answers = view_engine.value()->ExecuteBatch(requests, &view_stats);
  view_engine.value()->ExecuteBatch(requests, &view_stats);  // warm pass
  const double rss_after_zero_copy_mib = CurrentRssMiB();

  // --- Step-1 leaf-scan microbench: uncached read + prune per query. ---
  // Bytes scanned per entry: 2*dim bound doubles + one u64 id.
  const double bytes_per_entry =
      static_cast<double>(2 * synth.dim) * sizeof(double) + sizeof(uint64_t);
  const int reps = smoke ? 4 : 16;
  pv::QueryScratch scratch;
  uint64_t view_entries = 0;
  size_t view_candidates = 0;
  StopWatch view_watch;
  for (int r = 0; r < reps; ++r) {
    for (const auto& q : queries) {
      auto ref = v2.value()->FindLeaf(q);
      if (!ref.ok()) continue;
      auto view = v2.value()->ReadLeafBlockView(ref.value().id);
      if (!view.ok()) {
        std::fprintf(stderr, "view failed: %s\n",
                     view.status().ToString().c_str());
        return 1;
      }
      view_entries += view.value().count;
      view_candidates +=
          pv::Step1PruneMinMax(view.value(), q, &scratch).size();
    }
  }
  const double view_s = view_watch.ElapsedMillis() / 1e3;

  uint64_t decode_entries = 0;
  size_t decode_candidates = 0;
  StopWatch decode_watch;
  for (int r = 0; r < reps; ++r) {
    for (const auto& q : queries) {
      auto ref = v1.value()->FindLeaf(q);
      if (!ref.ok()) continue;
      auto block = v1.value()->ReadLeafBlock(ref.value().id);
      if (!block.ok()) {
        std::fprintf(stderr, "decode failed: %s\n",
                     block.status().ToString().c_str());
        return 1;
      }
      decode_entries += block.value().size();
      decode_candidates +=
          pv::Step1PruneMinMax(block.value(), q, &scratch).size();
    }
  }
  const double decode_s = decode_watch.ElapsedMillis() / 1e3;
  if (view_candidates != decode_candidates ||
      view_entries != decode_entries) {
    std::fprintf(stderr,
                 "answer divergence: view %zu/%llu vs decode %zu/%llu\n",
                 view_candidates,
                 static_cast<unsigned long long>(view_entries),
                 decode_candidates,
                 static_cast<unsigned long long>(decode_entries));
    return 1;
  }
  const double view_gbps =
      static_cast<double>(view_entries) * bytes_per_entry / view_s / 1e9;
  const double decode_gbps =
      static_cast<double>(decode_entries) * bytes_per_entry / decode_s / 1e9;
  const double zero_copy_speedup = decode_s > 0 ? decode_s / view_s : 0.0;

  // --- Phase 2: decode-path serving of the same traffic (block cache
  // copies land on top of the zero-copy peak). -------------------------
  // Re-baseline: the leaf-scan loops above faulted in the v1 mapping, which
  // is not part of the decode engine's cost.
  const double rss_before_decode_mib = CurrentRssMiB();
  service::QueryEngineOptions decode_options = view_options;
  decode_options.use_leaf_views = false;
  auto decode_engine =
      service::QueryEngine::CreateFromSnapshot(v2.value(), decode_options);
  if (!decode_engine.ok()) {
    std::fprintf(stderr, "decode engine failed\n");
    return 1;
  }
  service::ServiceStats decode_stats;
  auto decode_answers =
      decode_engine.value()->ExecuteBatch(requests, &decode_stats);
  decode_engine.value()->ExecuteBatch(requests, &decode_stats);  // warm pass
  const double rss_after_decode_mib = CurrentRssMiB();
  for (size_t i = 0; i < queries.size(); ++i) {
    if (view_answers[i].results.size() != decode_answers[i].results.size()) {
      std::fprintf(stderr, "engine answer divergence at query %zu\n", i);
      return 1;
    }
  }
  const double cache_bytes_mib =
      static_cast<double>(decode_engine.value()->cache()->bytes()) /
      (1024.0 * 1024.0);

  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&now));

  std::printf("{\n");
  std::printf("  \"benchmark\": \"snapshot_memdiet\",\n");
  std::printf(
      "  \"description\": \"Snapshot memory/bandwidth diet: v2 SoA leaf "
      "sections served zero-copy (LeafBlockView straight into the mmap) vs "
      "the v1 decode path, and packed pdf records (lossless elisions / "
      "float32 deltas) vs raw v1 bodies. Candidates are bit-identical "
      "across every mode (tests/snapshot_test.cc).\",\n");
  std::printf("  \"date\": \"%s\",\n", date);
  std::printf("  \"machine\": {\n");
  std::printf("    \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"compiler\": \"%s\",\n", __VERSION__);
  std::printf("    \"simd_level\": \"%s\"\n  },\n",
              geom::SimdLevelName(geom::ActiveSimdLevel()));
  std::printf("  \"workload\": {\n");
  std::printf("    \"objects\": %zu,\n", object_count);
  std::printf("    \"dim\": %d,\n", synth.dim);
  std::printf("    \"samples_per_object\": %d,\n", synth.samples_per_object);
  std::printf("    \"queries\": %zu,\n", query_count);
  std::printf("    \"leaf_scan_reps\": %d\n  },\n", reps);
  std::printf("  \"results\": {\n");
  std::printf("    \"file_bytes\": {\n");
  std::printf("      \"v1_raw\": %zu,\n", v1_bytes);
  std::printf("      \"v2_raw\": %zu,\n", v2_raw_bytes);
  std::printf("      \"v2_lossless_packed\": %zu,\n", v2_lossless_bytes);
  std::printf("      \"v2_float32_packed\": %zu,\n", v2_f32_bytes);
  std::printf("      \"lossless_savings_vs_v1_pct\": %.1f,\n",
              lossless_savings_pct);
  std::printf("      \"float32_savings_vs_v1_pct\": %.1f\n    },\n",
              f32_savings_pct);
  std::printf("    \"rss\": {\n");
  std::printf("      \"serving_baseline_mib\": %.1f,\n", rss_baseline_mib);
  std::printf("      \"after_zero_copy_serving_mib\": %.1f,\n",
              rss_after_zero_copy_mib);
  std::printf("      \"after_decode_serving_mib\": %.1f,\n",
              rss_after_decode_mib);
  std::printf("      \"faulted_mapping_mib\": %.1f,\n",
              rss_after_zero_copy_mib - rss_baseline_mib);
  std::printf("      \"decode_private_heap_mib\": %.1f,\n",
              rss_after_decode_mib - rss_before_decode_mib);
  std::printf("      \"decode_block_cache_mib\": %.1f\n    },\n",
              cache_bytes_mib);
  std::printf("    \"step1_leaf_scan\": {\n");
  std::printf("      \"v2_view_gbps\": %.2f,\n", view_gbps);
  std::printf("      \"v1_decode_gbps\": %.2f,\n", decode_gbps);
  std::printf("      \"zero_copy_speedup\": %.2f\n    },\n",
              zero_copy_speedup);
  std::printf("    \"engine\": {\n");
  std::printf("      \"zero_copy_qps\": %.1f,\n", view_stats.throughput_qps);
  std::printf("      \"decode_qps\": %.1f\n    }\n",
              decode_stats.throughput_qps);
  std::printf("  }\n}\n");

  std::fprintf(stderr,
               "# memdiet: f32 file %.1f%% smaller than v1; zero-copy leaf "
               "scan %.2fx decode (%.2f vs %.2f GB/s); decode path adds "
               "+%.1f MiB private heap over the shared mapping\n",
               f32_savings_pct, zero_copy_speedup, view_gbps, decode_gbps,
               rss_after_decode_mib - rss_before_decode_mib);

  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());

  if (zero_copy_speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: zero-copy leaf scan slower than the decode path "
                 "(%.2fx)\n",
                 zero_copy_speedup);
    return 2;
  }
  return 0;
}
