// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Sharded-serving benchmark at the socket: partitions one synthetic
// database into K ∈ {1, 2, 4} shards, serves every shard behind its own
// TCP ShardServer, fronts them with a RouterServer, and drives the
// open-loop load generator (src/net/loadgen.h) against the router's query
// endpoint. Two measurements per K:
//
//   * peak_qps — the generator scheduled far past the server's capacity,
//     so the connection runs closed-loop back-to-back and achieved_qps is
//     the saturation throughput of the full partition → scatter → merge →
//     Step-2 pipeline over loopback.
//   * open_loop — a second run offered at ~60% of the measured peak, with
//     latency charged from each request's SCHEDULED arrival (coordinated
//     omission accounted), reporting p50/p99/p999 at that load.
//
// Emits one JSON object (BENCH_shard.json):
//   "configs" — [{shards, ghosts, peak_qps, open_loop: {target_qps,
//                 achieved_qps, p50_ms, p99_ms, p999_ms, failed}}]
//   "hardware_threads" — std::thread::hardware_concurrency(); on a
//     single-core container every shard server, the router, and the
//     generator timeshare one CPU, so qps is NOT expected to scale with K
//     there — the interesting signals are the fan-out overhead (K=1 vs
//     K>1 peak) and the tail under offered load.
//
//   $ ./bench_shard [--smoke]
//
// --smoke shrinks the dataset and request counts for CI bitrot checks.

#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/net/loadgen.h"
#include "src/net/server.h"
#include "src/shard/partitioner.h"
#include "src/shard/shard_service.h"
#include "src/uncertain/datagen.h"

namespace {

using namespace pvdb;

struct OpenLoopResult {
  double target_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  int64_t failed = 0;
};

struct ConfigResult {
  int shards = 0;
  size_t ghosts = 0;
  double partition_ms = 0.0;
  double peak_qps = 0.0;
  OpenLoopResult open_loop;
};

// The serving stack for one K: shard servers, remote connections, router
// server. Held together so teardown order is right (router first).
struct Deployment {
  std::vector<std::unique_ptr<shard::ShardServer>> shard_servers;
  std::unique_ptr<shard::RouterServer> router_server;

  ~Deployment() {
    if (router_server != nullptr) router_server->Stop();
    for (auto& s : shard_servers) s->Stop();
  }
};

std::unique_ptr<Deployment> Deploy(const std::string& dir) {
  auto set = shard::OpenShardDir(dir);
  if (!set.ok()) {
    std::fprintf(stderr, "open shard dir: %s\n",
                 set.status().ToString().c_str());
    return nullptr;
  }
  auto deployment = std::make_unique<Deployment>();
  shard::RouterOptions router_options;
  router_options.deadline_ms = 5000.0;
  std::vector<std::shared_ptr<shard::ShardConnection>> connections;
  for (const auto& snapshot : set.value().snapshots) {
    auto server = shard::ShardServer::Start(snapshot, net::TcpServerOptions{});
    if (!server.ok()) {
      std::fprintf(stderr, "shard server: %s\n",
                   server.status().ToString().c_str());
      return nullptr;
    }
    connections.push_back(std::make_shared<shard::RemoteShardConnection>(
        server.value()->port(), router_options.deadline_ms));
    deployment->shard_servers.push_back(std::move(server).value());
  }
  auto router = shard::ShardRouter::Create(set.value().map,
                                           std::move(connections),
                                           router_options);
  if (!router.ok()) {
    std::fprintf(stderr, "router: %s\n", router.status().ToString().c_str());
    return nullptr;
  }
  auto server = shard::RouterServer::Start(std::move(router).value(),
                                           net::TcpServerOptions{});
  if (!server.ok()) {
    std::fprintf(stderr, "router server: %s\n",
                 server.status().ToString().c_str());
    return nullptr;
  }
  deployment->router_server = std::move(server).value();
  return deployment;
}

OpenLoopResult ReportToResult(const net::LoadGenReport& report,
                              double target_qps) {
  OpenLoopResult r;
  r.target_qps = target_qps;
  r.achieved_qps = report.achieved_qps;
  r.p50_ms = static_cast<double>(report.latency_us.Percentile(50.0)) / 1000.0;
  r.p99_ms = static_cast<double>(report.latency_us.Percentile(99.0)) / 1000.0;
  r.p999_ms =
      static_cast<double>(report.latency_us.Percentile(99.9)) / 1000.0;
  r.failed = report.failed + report.answer_errors;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  uncertain::SyntheticOptions synth;
  synth.dim = 2;
  synth.count = smoke ? 400 : 4000;
  synth.samples_per_object = 60;
  synth.seed = 7;
  const uncertain::Dataset db = uncertain::GenerateSynthetic(synth);

  Rng rng(11);
  std::vector<geom::Point> queries;
  for (int i = 0; i < 512; ++i) {
    geom::Point q(db.domain().dim());
    for (int d = 0; d < db.domain().dim(); ++d) {
      q[d] = rng.NextUniform(db.domain().lo(d), db.domain().hi(d));
    }
    queries.push_back(q);
  }

  const int peak_requests = smoke ? 80 : 600;
  const int open_loop_requests = smoke ? 80 : 800;

  std::vector<ConfigResult> results;
  for (int k : {1, 2, 4}) {
    const std::string dir =
        std::string("/tmp/pvdb_bench_shard_k") + std::to_string(k);
    shard::PartitionOptions options;
    options.shard_count = k;
    StopWatch partition_watch;
    auto map = shard::BuildShardSnapshots(db, options, dir);
    if (!map.ok()) {
      std::fprintf(stderr, "partition K=%d: %s\n", k,
                   map.status().ToString().c_str());
      return 1;
    }
    ConfigResult config;
    config.shards = k;
    config.partition_ms = partition_watch.ElapsedMillis();
    for (const shard::ShardInfo& s : map.value().shards) {
      config.ghosts += s.ghost_ids.size();
    }

    auto deployment = Deploy(dir);
    if (deployment == nullptr) return 1;
    const int port = deployment->router_server->port();

    // Saturation pass: offer far beyond capacity so the single connection
    // degenerates to closed-loop back-to-back requests.
    net::LoadGenOptions peak_options;
    peak_options.target_qps = 1e6;
    peak_options.total_requests = peak_requests;
    peak_options.deadline_ms = 10000.0;
    peak_options.seed = 21;
    auto peak = net::RunLoadGen(port, queries, peak_options);
    if (!peak.ok()) {
      std::fprintf(stderr, "peak loadgen K=%d: %s\n", k,
                   peak.status().ToString().c_str());
      return 1;
    }
    if (peak.value().failed + peak.value().answer_errors > 0) {
      std::fprintf(stderr, "peak loadgen K=%d: %lld failures\n", k,
                   static_cast<long long>(peak.value().failed +
                                          peak.value().answer_errors));
      return 1;
    }
    config.peak_qps = peak.value().achieved_qps;

    // Tail pass: Poisson arrivals at ~60% of the measured peak.
    net::LoadGenOptions tail_options;
    tail_options.target_qps = config.peak_qps * 0.6;
    tail_options.total_requests = open_loop_requests;
    tail_options.deadline_ms = 10000.0;
    tail_options.seed = 22;
    auto tail = net::RunLoadGen(port, queries, tail_options);
    if (!tail.ok()) {
      std::fprintf(stderr, "tail loadgen K=%d: %s\n", k,
                   tail.status().ToString().c_str());
      return 1;
    }
    config.open_loop = ReportToResult(tail.value(), tail_options.target_qps);
    results.push_back(config);

    std::fprintf(stderr,
                 "K=%d: partition %.0f ms (%zu ghosts), peak %.0f q/s, "
                 "open-loop @%.0f q/s p50 %.2f ms p99 %.2f ms\n",
                 k, config.partition_ms, config.ghosts, config.peak_qps,
                 config.open_loop.target_qps, config.open_loop.p50_ms,
                 config.open_loop.p99_ms);
  }

  char stamp[32];
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  std::printf("{\n");
  std::printf("  \"bench\": \"shard\",\n");
  std::printf("  \"timestamp\": \"%s\",\n", stamp);
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"dataset\": {\"objects\": %zu, \"dim\": %d, "
              "\"samples_per_object\": %d},\n",
              db.size(), synth.dim, synth.samples_per_object);
  std::printf("  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& c = results[i];
    std::printf("    {\"shards\": %d, \"ghosts\": %zu, "
                "\"partition_ms\": %.1f, \"peak_qps\": %.1f,\n"
                "     \"open_loop\": {\"target_qps\": %.1f, "
                "\"achieved_qps\": %.1f, \"p50_ms\": %.3f, "
                "\"p99_ms\": %.3f, \"p999_ms\": %.3f, \"failed\": %lld}}%s\n",
                c.shards, c.ghosts, c.partition_ms, c.peak_qps,
                c.open_loop.target_qps, c.open_loop.achieved_qps,
                c.open_loop.p50_ms, c.open_loop.p99_ms, c.open_loop.p999_ms,
                static_cast<long long>(c.open_loop.failed),
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
