// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// google-benchmark micro-kernels for the hot paths that the figure-level
// experiments are built from: the O(d) spatial-domination test, the
// domination-count emptiness test, SE itself, R-tree kNN browsing, PNNQ
// Step 2 (allocating and scratch-pooled), and scalar-vs-block Step-1 minmax
// pruning. Useful for regression-tracking the constants behind the
// paper-level results.
//
//   $ ./bench_micro_kernels                  # google-benchmark suite
//   $ ./bench_micro_kernels --hotpath_json   # scalar-vs-batched JSON only
//   $ ./bench_micro_kernels --simd_json      # per-SIMD-level JSON + gate
//
// --hotpath_json prints a machine-readable comparison of the scalar
// Step1PruneMinMax baseline against the SoA block kernel (the
// BENCH_hotpath.json source of truth) and exits.
//
// --simd_json sweeps every usable dispatch level (geom::ForceSimdLevel) over
// the fused Step-1 distance kernel and the full block prune, printing one
// machine-readable line per (level, leaf size) with the kernel width (the
// BENCH_simd.json source of truth; CI appends it to the hotpath artifact).
// Exit status doubles as a smoke regression gate: nonzero when the
// CPUID-dispatched kernel is slower than the forced scalar reference beyond
// a generous noise threshold at every leaf size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <functional>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/eval/workload.h"
#include "src/geom/distance_batch.h"
#include "src/geom/domination.h"
#include "src/geom/region_partition.h"
#include "src/pv/pnnq.h"
#include "src/pv/se.h"
#include "src/rtree/rstar_tree.h"
#include "src/uncertain/datagen.h"

namespace {

using namespace pvdb;  // NOLINT: benchmark file brevity

geom::Rect RandomRegion(Rng* rng, int dim, double extent) {
  geom::Point mean(dim), half(dim);
  for (int i = 0; i < dim; ++i) {
    mean[i] = rng->NextUniform(extent, 10000.0 - extent);
    half[i] = rng->NextUniform(0.5, extent);
  }
  return geom::Rect::FromCenterHalfWidths(mean, half);
}

void BM_DominationTest(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<geom::Rect> a, b, r;
  for (int i = 0; i < 256; ++i) {
    a.push_back(RandomRegion(&rng, dim, 10));
    b.push_back(RandomRegion(&rng, dim, 10));
    r.push_back(RandomRegion(&rng, dim, 200));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geom::Dominates(a[i & 255], b[i & 255], r[i & 255]));
    ++i;
  }
}
BENCHMARK(BM_DominationTest)->Arg(2)->Arg(3)->Arg(5);

void BM_DominationCountEmptiness(benchmark::State& state) {
  const int cset_size = static_cast<int>(state.range(0));
  Rng rng(11);
  const geom::Rect o = RandomRegion(&rng, 3, 10);
  std::vector<geom::Rect> cset;
  for (int i = 0; i < cset_size; ++i) cset.push_back(RandomRegion(&rng, 3, 10));
  const geom::Rect slab = RandomRegion(&rng, 3, 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geom::ProvenOutsidePVCell(slab, o, cset, /*max_partitions=*/10));
  }
}
BENCHMARK(BM_DominationCountEmptiness)->Arg(16)->Arg(64)->Arg(256);

void BM_SeComputeUbr(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  uncertain::SyntheticOptions synth;
  synth.dim = dim;
  synth.count = 500;
  synth.samples_per_object = 10;  // pdf size is irrelevant to SE
  auto db = uncertain::GenerateSynthetic(synth);
  rtree::RStarTree mean_tree(dim);
  for (const auto& o : db.objects()) {
    mean_tree.Insert(geom::Rect::FromPoint(o.MeanPosition()), o.id());
  }
  pv::SeAlgorithm se(db.domain(), pv::SeOptions{});
  pv::CSetOptions cset_options;
  size_t i = 0;
  for (auto _ : state) {
    const auto& o = db.objects()[i % db.size()];
    const auto cset = pv::ChooseCSet(o, db, mean_tree, cset_options);
    benchmark::DoNotOptimize(se.ComputeUbr(o, cset.regions));
    ++i;
  }
}
BENCHMARK(BM_SeComputeUbr)->Arg(2)->Arg(3)->Arg(4);

void BM_RTreeKnn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  rtree::RStarTree tree(3);
  for (int i = 0; i < n; ++i) {
    tree.Insert(RandomRegion(&rng, 3, 10), static_cast<uint64_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    geom::Point q{rng.NextUniform(0, 10000), rng.NextUniform(0, 10000),
                  rng.NextUniform(0, 10000)};
    benchmark::DoNotOptimize(tree.KNearest(q, 20));
    ++i;
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1000)->Arg(10000);

void BM_PnnStep2(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = static_cast<size_t>(candidates);
  synth.samples_per_object = 500;
  auto db = uncertain::GenerateSynthetic(synth);
  pv::PnnStep2Evaluator step2(&db);
  const auto ids = db.Ids();
  const geom::Point q{5000, 5000, 5000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(step2.Evaluate(q, ids));
  }
}
BENCHMARK(BM_PnnStep2)->Arg(4)->Arg(16)->Arg(64);

void BM_PnnStep2Scratch(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = static_cast<size_t>(candidates);
  synth.samples_per_object = 500;
  auto db = uncertain::GenerateSynthetic(synth);
  pv::PnnStep2Evaluator step2(&db);
  const auto ids = db.Ids();
  const geom::Point q{5000, 5000, 5000};
  pv::QueryScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(step2.Evaluate(q, ids, &scratch));
  }
}
BENCHMARK(BM_PnnStep2Scratch)->Arg(4)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// Step-1 minmax pruning: scalar entry-list baseline vs. SoA block kernel
// ---------------------------------------------------------------------------

struct Step1Fixture {
  std::vector<pv::LeafEntry> entries;
  pv::LeafBlock block;
  std::vector<geom::Point> queries;

  Step1Fixture(int dim, size_t leaf_entries) {
    Rng rng(71);
    entries.reserve(leaf_entries);
    for (size_t i = 0; i < leaf_entries; ++i) {
      entries.push_back(pv::LeafEntry{i, RandomRegion(&rng, dim, 50)});
    }
    block = pv::LeafBlock::FromEntries(entries, dim);
    for (int i = 0; i < 64; ++i) {
      geom::Point q(dim);
      for (int d = 0; d < dim; ++d) q[d] = rng.NextUniform(0, 10000);
      queries.push_back(q);
    }
  }
};

void BM_Step1PruneScalar(benchmark::State& state) {
  Step1Fixture fx(3, static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pv::Step1PruneMinMax(fx.entries, fx.queries[i++ & 63]));
  }
}
BENCHMARK(BM_Step1PruneScalar)->Arg(64)->Arg(256)->Arg(1024);

void BM_Step1PruneBlock(benchmark::State& state) {
  Step1Fixture fx(3, static_cast<size_t>(state.range(0)));
  pv::QueryScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pv::Step1PruneMinMax(fx.block, fx.queries[i++ & 63], &scratch));
  }
}
BENCHMARK(BM_Step1PruneBlock)->Arg(64)->Arg(256)->Arg(1024);

// ---------------------------------------------------------------------------
// --hotpath_json: manual scalar-vs-batched timing in machine-readable form
// ---------------------------------------------------------------------------

double TimeNsPerOp(const std::function<void()>& op, int reps) {
  // One warmup pass, then the timed run.
  op();
  StopWatch watch;
  for (int r = 0; r < reps; ++r) op();
  return watch.ElapsedMillis() * 1e6 / reps;
}

int RunHotpathJson() {
  const int dim = 3;
  const size_t sizes[] = {64, 256, 1024};
  std::printf("[\n");
  bool first = true;
  for (size_t n : sizes) {
    Step1Fixture fx(dim, n);
    // Scale reps so each side runs a few milliseconds at every size.
    const int reps = static_cast<int>(4u * 1024u * 1024u / n);
    size_t qi = 0;
    const double scalar_ns = TimeNsPerOp(
        [&] {
          benchmark::DoNotOptimize(
              pv::Step1PruneMinMax(fx.entries, fx.queries[qi++ & 63]));
        },
        reps);
    pv::QueryScratch scratch;
    const double block_ns = TimeNsPerOp(
        [&] {
          benchmark::DoNotOptimize(
              pv::Step1PruneMinMax(fx.block, fx.queries[qi++ & 63], &scratch));
        },
        reps);
    const double convert_ns = TimeNsPerOp(
        [&] {
          benchmark::DoNotOptimize(pv::LeafBlock::FromEntries(fx.entries, dim));
        },
        reps / 4);
    std::printf("%s  {\"kernel\": \"step1_prune_minmax\", \"dim\": %d, "
                "\"leaf_entries\": %zu, \"scalar_ns_per_query\": %.1f, "
                "\"block_ns_per_query\": %.1f, \"block_build_ns\": %.1f, "
                "\"speedup\": %.2f}",
                first ? "" : ",\n", dim, n, scalar_ns, block_ns, convert_ns,
                scalar_ns / block_ns);
    first = false;
  }
  std::printf("\n]\n");
  return 0;
}

// ---------------------------------------------------------------------------
// --simd_json: per-dispatch-level timing of the Step-1 kernels + smoke gate
// ---------------------------------------------------------------------------

int RunSimdJson() {
  const int dim = 3;
  const size_t sizes[] = {64, 256, 1024};
  const geom::SimdLevel levels[] = {
      geom::SimdLevel::kScalar, geom::SimdLevel::kSse2,
      geom::SimdLevel::kAvx2, geom::SimdLevel::kAvx512};
  const geom::SimdLevel dispatched = geom::MaxUsableSimdLevel();

  // ns per call of the fused distance kernel, [level][size index]; NaN for
  // levels this build+CPU can't run (emitted as absent, gated as absent).
  double fused_ns[4][3];
  std::printf("[\n");
  bool first = true;
  for (const geom::SimdLevel level : levels) {
    const auto li = static_cast<size_t>(level);
    for (size_t si = 0; si < 3; ++si) fused_ns[li][si] = -1.0;
    if (level > dispatched) continue;
    if (!geom::ForceSimdLevel(level)) continue;
    for (size_t si = 0; si < 3; ++si) {
      const size_t n = sizes[si];
      Step1Fixture fx(dim, n);
      geom::RectSoA soa(dim);
      soa.Reserve(n);
      for (const auto& e : fx.entries) soa.PushBack(e.region);
      std::vector<double> mn(n), mx(n);
      const int reps = static_cast<int>(8u * 1024u * 1024u / n);
      size_t qi = 0;
      const double kernel_ns = TimeNsPerOp(
          [&] {
            geom::MinMaxDistSqBatch(soa, fx.queries[qi++ & 63], mn, mx);
            benchmark::DoNotOptimize(mn.data());
            benchmark::DoNotOptimize(mx.data());
          },
          reps);
      fused_ns[li][si] = kernel_ns;
      pv::QueryScratch scratch;
      const double prune_ns = TimeNsPerOp(
          [&] {
            benchmark::DoNotOptimize(
                pv::Step1PruneMinMax(fx.block, fx.queries[qi++ & 63],
                                     &scratch));
          },
          reps);
      const double scalar_kernel_ns =
          fused_ns[static_cast<size_t>(geom::SimdLevel::kScalar)][si];
      std::printf(
          "%s  {\"kernel\": \"step1_simd_level\", \"simd_level\": \"%s\", "
          "\"kernel_width_doubles\": %d, \"dispatched\": %s, \"dim\": %d, "
          "\"leaf_entries\": %zu, \"min_max_dist_sq_batch_ns\": %.1f, "
          "\"step1_prune_block_ns\": %.1f, \"kernel_speedup_vs_scalar\": "
          "%.2f}",
          first ? "" : ",\n", geom::SimdLevelName(level),
          geom::SimdLaneWidthDoubles(level),
          level == dispatched ? "true" : "false", dim, n, kernel_ns, prune_ns,
          scalar_kernel_ns / kernel_ns);
      first = false;
    }
  }
  std::printf("\n]\n");

  // Smoke gate: the level CPUID dispatch would pick must not lose to the
  // scalar reference at every size (generous 1.25x bound — this catches a
  // miscompiled or misdispatched kernel, not a 5% regression).
  constexpr double kSlack = 1.25;
  bool gate_ok = false;
  for (size_t si = 0; si < 3; ++si) {
    const double scalar =
        fused_ns[static_cast<size_t>(geom::SimdLevel::kScalar)][si];
    const double active = fused_ns[static_cast<size_t>(dispatched)][si];
    if (scalar > 0.0 && active > 0.0 && active <= scalar * kSlack) {
      gate_ok = true;
    }
  }
  std::fprintf(stderr, "simd gate: dispatched=%s %s\n",
               geom::SimdLevelName(dispatched),
               gate_ok ? "ok (within 1.25x of scalar at >=1 size)"
                       : "FAIL (slower than 1.25x scalar at every size)");
  return gate_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hotpath_json") == 0) return RunHotpathJson();
    if (std::strcmp(argv[i], "--simd_json") == 0) return RunSimdJson();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
