// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// google-benchmark micro-kernels for the hot paths that the figure-level
// experiments are built from: the O(d) spatial-domination test, the
// domination-count emptiness test, SE itself, R-tree kNN browsing and
// PNNQ Step 2. Useful for regression-tracking the constants behind the
// paper-level results.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/eval/workload.h"
#include "src/geom/domination.h"
#include "src/geom/region_partition.h"
#include "src/pv/pnnq.h"
#include "src/pv/se.h"
#include "src/rtree/rstar_tree.h"
#include "src/uncertain/datagen.h"

namespace {

using namespace pvdb;  // NOLINT: benchmark file brevity

geom::Rect RandomRegion(Rng* rng, int dim, double extent) {
  geom::Point mean(dim), half(dim);
  for (int i = 0; i < dim; ++i) {
    mean[i] = rng->NextUniform(extent, 10000.0 - extent);
    half[i] = rng->NextUniform(0.5, extent);
  }
  return geom::Rect::FromCenterHalfWidths(mean, half);
}

void BM_DominationTest(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<geom::Rect> a, b, r;
  for (int i = 0; i < 256; ++i) {
    a.push_back(RandomRegion(&rng, dim, 10));
    b.push_back(RandomRegion(&rng, dim, 10));
    r.push_back(RandomRegion(&rng, dim, 200));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geom::Dominates(a[i & 255], b[i & 255], r[i & 255]));
    ++i;
  }
}
BENCHMARK(BM_DominationTest)->Arg(2)->Arg(3)->Arg(5);

void BM_DominationCountEmptiness(benchmark::State& state) {
  const int cset_size = static_cast<int>(state.range(0));
  Rng rng(11);
  const geom::Rect o = RandomRegion(&rng, 3, 10);
  std::vector<geom::Rect> cset;
  for (int i = 0; i < cset_size; ++i) cset.push_back(RandomRegion(&rng, 3, 10));
  const geom::Rect slab = RandomRegion(&rng, 3, 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geom::ProvenOutsidePVCell(slab, o, cset, /*max_partitions=*/10));
  }
}
BENCHMARK(BM_DominationCountEmptiness)->Arg(16)->Arg(64)->Arg(256);

void BM_SeComputeUbr(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  uncertain::SyntheticOptions synth;
  synth.dim = dim;
  synth.count = 500;
  synth.samples_per_object = 10;  // pdf size is irrelevant to SE
  auto db = uncertain::GenerateSynthetic(synth);
  rtree::RStarTree mean_tree(dim);
  for (const auto& o : db.objects()) {
    mean_tree.Insert(geom::Rect::FromPoint(o.MeanPosition()), o.id());
  }
  pv::SeAlgorithm se(db.domain(), pv::SeOptions{});
  pv::CSetOptions cset_options;
  size_t i = 0;
  for (auto _ : state) {
    const auto& o = db.objects()[i % db.size()];
    const auto cset = pv::ChooseCSet(o, db, mean_tree, cset_options);
    benchmark::DoNotOptimize(se.ComputeUbr(o, cset.regions));
    ++i;
  }
}
BENCHMARK(BM_SeComputeUbr)->Arg(2)->Arg(3)->Arg(4);

void BM_RTreeKnn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  rtree::RStarTree tree(3);
  for (int i = 0; i < n; ++i) {
    tree.Insert(RandomRegion(&rng, 3, 10), static_cast<uint64_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    geom::Point q{rng.NextUniform(0, 10000), rng.NextUniform(0, 10000),
                  rng.NextUniform(0, 10000)};
    benchmark::DoNotOptimize(tree.KNearest(q, 20));
    ++i;
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1000)->Arg(10000);

void BM_PnnStep2(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = static_cast<size_t>(candidates);
  synth.samples_per_object = 500;
  auto db = uncertain::GenerateSynthetic(synth);
  pv::PnnStep2Evaluator step2(&db);
  const auto ids = db.Ids();
  const geom::Point q{5000, 5000, 5000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(step2.Evaluate(q, ids));
  }
}
BENCHMARK(BM_PnnStep2)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
