// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Query-vocabulary benchmark: per-kind throughput of the typed QueryRequest
// API and the trajectory PNN candidate-reuse win. A trajectory request
// chains its samples through one leaf hint — a sample strictly inside the
// previous sample's cell skips the Step-1 descent entirely — while the
// from-scratch baseline answers the same arc-length samples as independent
// kPnn requests. Both sides run the same engine configuration on fresh
// engines (no warm-cache cross-talk) and the bench exits non-zero unless
// the incremental answers are bit-identical to the from-scratch ones.
// Emits one JSON object (BENCH_queries.json schema):
//   trajectory.reused_fraction   samples served off the previous leaf
//   trajectory.speedup           from_scratch_ms / incremental_ms
//   kinds[]                      single-thread qps per request kind
//
//   $ ./bench_queries [--smoke]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "src/pvdb.h"

namespace {

using namespace pvdb;

bool BitIdentical(const service::QueryAnswer& got,
                  const std::vector<pv::PnnResult>& want) {
  if (!got.status.ok() || got.results.size() != want.size()) return false;
  for (size_t i = 0; i < want.size(); ++i) {
    if (got.results[i].id != want[i].id) return false;
    if (std::memcmp(&got.results[i].probability, &want[i].probability,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = smoke ? 2000 : 10000;
  synth.samples_per_object = smoke ? 50 : 100;
  synth.seed = 42;
  const uncertain::Dataset db = uncertain::GenerateSynthetic(synth);

  auto builder = pv::PvIndexBuilder::Build(db);
  if (!builder.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 builder.status().ToString().c_str());
    return 1;
  }
  auto snapshot = builder.value()->Seal();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "seal failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  // Fresh single-thread engine per timed side: identical configuration,
  // nothing warm from the other side's run.
  const auto make_engine = [&] {
    service::QueryEngineOptions options;
    options.threads = 1;
    auto engine =
        service::QueryEngine::CreateFromSnapshot(snapshot.value(), options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine failed: %s\n",
                   engine.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(engine).value();
  };

  const geom::Rect& domain = snapshot.value()->domain();
  Rng rng(7);
  const auto random_point = [&] {
    geom::Point q(domain.dim());
    for (int d = 0; d < domain.dim(); ++d) {
      q[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
    }
    return q;
  };

  // --- Trajectory PNN: incremental (leaf-hint chain) vs from-scratch. ---
  // Short local trajectories with a fine step keep consecutive samples in
  // the same octree cell — the workload the incremental path exists for.
  const int trajectories = smoke ? 4 : 16;
  const double extent = domain.hi(0) - domain.lo(0);
  const double hop = extent / 40.0;   // waypoint-to-waypoint distance scale
  const double step = extent / 2000.0;  // fine arc-length sampling
  std::vector<service::QueryRequest> traj_requests;
  std::vector<geom::Point> all_samples;
  for (int t = 0; t < trajectories; ++t) {
    const geom::Point anchor = random_point();
    std::vector<geom::Point> polyline{anchor};
    for (int w = 0; w < 2; ++w) {
      geom::Point next = polyline.back();
      for (int d = 0; d < domain.dim(); ++d) {
        next[d] = std::clamp(next[d] + rng.NextUniform(-hop, hop),
                             domain.lo(d), domain.hi(d));
      }
      polyline.push_back(next);
    }
    const std::vector<geom::Point> samples =
        service::SampleTrajectory(polyline, step);
    all_samples.insert(all_samples.end(), samples.begin(), samples.end());
    traj_requests.push_back(
        service::QueryRequest::TrajectoryPnn(polyline, step));
  }

  auto scratch_engine = make_engine();
  StopWatch scratch_watch;
  const std::vector<service::QueryAnswer> scratch_answers =
      scratch_engine->ExecuteBatch(service::PnnRequests(all_samples));
  const double from_scratch_ms = scratch_watch.ElapsedMillis();
  for (const auto& a : scratch_answers) {
    if (!a.status.ok()) {
      std::fprintf(stderr, "from-scratch sample failed: %s\n",
                   a.status.ToString().c_str());
      return 1;
    }
  }

  auto incremental_engine = make_engine();
  StopWatch incremental_watch;
  const std::vector<service::QueryAnswer> traj_answers =
      incremental_engine->ExecuteBatch(traj_requests);
  const double incremental_ms = incremental_watch.ElapsedMillis();

  // Gate: reuse must never change an answer bit, and must actually happen.
  size_t sample_index = 0;
  int64_t reused = 0;
  int64_t total_steps = 0;
  for (const service::QueryAnswer& qa : traj_answers) {
    if (!qa.status.ok()) {
      std::fprintf(stderr, "trajectory failed: %s\n",
                   qa.status.ToString().c_str());
      return 1;
    }
    for (const service::TrajectoryStepAnswer& stepa : qa.steps) {
      if (!BitIdentical(scratch_answers[sample_index],
                        stepa.results)) {
        std::fprintf(stderr,
                     "FAIL: incremental answer at sample %zu differs from "
                     "the from-scratch answer\n",
                     sample_index);
        return 1;
      }
      reused += stepa.reused_step1 ? 1 : 0;
      ++total_steps;
      ++sample_index;
    }
  }
  if (sample_index != all_samples.size()) {
    std::fprintf(stderr, "FAIL: sample count mismatch (%zu vs %zu)\n",
                 sample_index, all_samples.size());
    return 1;
  }
  if (reused == 0) {
    std::fprintf(stderr, "FAIL: no trajectory sample reused a leaf\n");
    return 1;
  }
  const double reused_fraction =
      static_cast<double>(reused) / static_cast<double>(total_steps);
  const double speedup =
      incremental_ms > 0 ? from_scratch_ms / incremental_ms : 0.0;

  // --- Per-kind single-thread throughput over uniform request batches. ---
  const int batch = smoke ? 256 : 1024;
  std::vector<geom::Point> points;
  for (int i = 0; i < batch; ++i) points.push_back(random_point());
  const double rect_half = extent * 0.025;
  struct KindRun {
    const char* name;
    std::vector<service::QueryRequest> requests;
    double qps = 0.0;
  };
  std::vector<KindRun> kinds;
  kinds.push_back({"pnn", service::PnnRequests(points)});
  {
    KindRun run{"top_k_by_prob", {}};
    for (const geom::Point& p : points) {
      run.requests.push_back(service::QueryRequest::TopKByProb(p, 4));
    }
    kinds.push_back(std::move(run));
  }
  {
    KindRun run{"threshold_nn", {}};
    for (const geom::Point& p : points) {
      run.requests.push_back(service::QueryRequest::ThresholdNN(p, 0.1));
    }
    kinds.push_back(std::move(run));
  }
  {
    KindRun run{"range_prob", {}};
    for (const geom::Point& p : points) {
      geom::Rect rect(domain.dim());
      for (int d = 0; d < domain.dim(); ++d) {
        rect.set_lo(d, std::max(domain.lo(d), p[d] - rect_half));
        rect.set_hi(d, std::min(domain.hi(d), p[d] + rect_half));
      }
      run.requests.push_back(service::QueryRequest::RangeProb(rect, 0.3));
    }
    kinds.push_back(std::move(run));
  }
  for (KindRun& run : kinds) {
    auto engine = make_engine();
    service::ServiceStats stats;
    const auto answers = engine->ExecuteBatch(run.requests, &stats);
    for (const auto& a : answers) {
      if (!a.status.ok()) {
        std::fprintf(stderr, "%s request failed: %s\n", run.name,
                     a.status.ToString().c_str());
        return 1;
      }
    }
    run.qps = stats.throughput_qps;
  }

  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&now));

  std::printf("{\n");
  std::printf("  \"benchmark\": \"query_vocabulary\",\n");
  std::printf(
      "  \"description\": \"Typed QueryRequest serving: single-thread "
      "throughput per request kind, and trajectory PNN answered "
      "incrementally (consecutive samples reuse the previous sample's leaf, "
      "skipping the Step-1 descent) vs the same arc-length samples as "
      "independent point PNN requests. Incremental answers are checked "
      "bit-identical to from-scratch before timing is reported.\",\n");
  std::printf("  \"date\": \"%s\",\n", date);
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"machine\": {\n");
  std::printf("    \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"compiler\": \"%s\"\n  },\n", __VERSION__);
  std::printf("  \"workload\": {\n");
  std::printf("    \"objects\": %zu,\n", db.size());
  std::printf("    \"dim\": %d,\n", synth.dim);
  std::printf("    \"samples_per_object\": %d\n  },\n",
              synth.samples_per_object);
  std::printf("  \"trajectory\": {\n");
  std::printf("    \"trajectories\": %d,\n", trajectories);
  std::printf("    \"samples\": %lld,\n", static_cast<long long>(total_steps));
  std::printf("    \"step\": %.3f,\n", step);
  std::printf("    \"reused_fraction\": %.4f,\n", reused_fraction);
  std::printf("    \"from_scratch_ms\": %.2f,\n", from_scratch_ms);
  std::printf("    \"incremental_ms\": %.2f,\n", incremental_ms);
  std::printf("    \"speedup\": %.3f,\n", speedup);
  std::printf("    \"bit_identical\": true\n  },\n");
  std::printf("  \"kinds\": [\n");
  for (size_t i = 0; i < kinds.size(); ++i) {
    std::printf("    {\"kind\": \"%s\", \"batch\": %d, "
                "\"single_thread_qps\": %.1f}%s\n",
                kinds[i].name, batch, kinds[i].qps,
                i + 1 < kinds.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  std::fprintf(stderr,
               "# trajectory incremental: %.1f%% of %lld samples reused the "
               "previous leaf; %.2f ms vs %.2f ms from scratch (%.2fx)\n",
               100.0 * reused_fraction, static_cast<long long>(total_steps),
               incremental_ms, from_scratch_ms, speedup);
  return 0;
}
