// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Regenerates the corresponding table/figure of the paper's evaluation.
// Scale via PVDB_SCALE=smoke|laptop|paper (default laptop); see
// EXPERIMENTS.md for the experiment inventory and recorded results.

#include "src/eval/experiments.h"

int main() {
  const auto scale = pvdb::eval::ScaleFromEnv();
  pvdb::eval::RunFig10e(scale);
  return 0;
}
