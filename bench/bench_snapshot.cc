// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Snapshot lifecycle benchmark: what a serving process pays to come up from
// a saved snapshot versus rebuilding the PV-index from the raw dataset, on
// the standard 10k synthetic workload. Emits one JSON object
// (BENCH_snapshot.json schema):
//   build_ms        PvIndexBuilder::Build from the dataset (the rebuild a
//                   snapshot saves every serving process)
//   seal_save_ms    serialize + write the snapshot file
//   open_ms         IndexSnapshot::Open — mmap + header/structure
//                   validation, no octree rebuild, records untouched
//   open_speedup    build_ms / open_ms (acceptance bar: >= 10x)
//   first_query_ms  first PNNQ through a CreateFromSnapshot engine (faults
//                   the touched leaf + records in from the mapping)
//   warm_qps        single-thread engine throughput over the snapshot
//
//   $ ./bench_snapshot [--smoke]

#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "src/pvdb.h"

namespace {

using namespace pvdb;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  uncertain::SyntheticOptions synth;
  synth.dim = 3;
  synth.count = smoke ? 2000 : 10000;
  synth.samples_per_object = smoke ? 50 : 200;
  synth.seed = 42;
  uncertain::Dataset db = uncertain::GenerateSynthetic(synth);

  pv::PvIndexOptions index_options;
  index_options.build_order = pv::BuildOrder::kMorton;
  index_options.bulk_primary = true;

  StopWatch build_watch;
  auto builder = pv::PvIndexBuilder::Build(db, index_options);
  if (!builder.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 builder.status().ToString().c_str());
    return 1;
  }
  const double build_ms = build_watch.ElapsedMillis();

  const std::string path = smoke ? "/tmp/pvdb_bench_snapshot_smoke.snap"
                                 : "/tmp/pvdb_bench_snapshot.snap";
  StopWatch save_watch;
  const Status saved = builder.value()->Save(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const double seal_save_ms = save_watch.ElapsedMillis();

  StopWatch open_watch;
  auto snapshot = pv::IndexSnapshot::Open(path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const double open_ms = open_watch.ElapsedMillis();

  service::QueryEngineOptions engine_options;
  engine_options.threads = 1;
  auto engine = service::QueryEngine::CreateFromSnapshot(snapshot.value(),
                                                         engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  Rng rng(7);
  const geom::Rect& domain = snapshot.value()->domain();
  auto random_query = [&] {
    geom::Point q(domain.dim());
    for (int d = 0; d < domain.dim(); ++d) {
      q[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
    }
    return q;
  };

  // First query: cold mapping — the leaf pages and candidate records fault
  // in here. This is the serving process's true time-to-first-answer after
  // Open.
  StopWatch first_watch;
  const service::QueryAnswer first =
      engine.value()->Submit(service::QueryRequest::Pnn(random_query())).get();
  const double first_query_ms = first_watch.ElapsedMillis();
  if (!first.status.ok()) {
    std::fprintf(stderr, "first query failed: %s\n",
                 first.status.ToString().c_str());
    return 1;
  }

  const size_t query_count = smoke ? 256 : 2048;
  std::vector<geom::Point> queries;
  queries.reserve(query_count);
  for (size_t i = 0; i < query_count; ++i) queries.push_back(random_query());
  service::ServiceStats stats;
  const auto answers =
      engine.value()->ExecuteBatch(service::PnnRequests(queries), &stats);
  for (const auto& a : answers) {
    if (!a.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n", a.status.ToString().c_str());
      return 1;
    }
  }

  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&now));

  const double open_speedup = open_ms > 0 ? build_ms / open_ms : 0.0;
  std::printf("{\n");
  std::printf("  \"benchmark\": \"snapshot_lifecycle\",\n");
  std::printf(
      "  \"description\": \"Cost to bring up a serving process: rebuild the "
      "PV-index from the raw dataset (before) vs IndexSnapshot::Open of a "
      "saved snapshot (after: mmap + structural validation, no octree "
      "rebuild, pdf records faulted lazily). Answers off the snapshot are "
      "bit-identical to the built index (tests/snapshot_test.cc).\",\n");
  std::printf("  \"date\": \"%s\",\n", date);
  std::printf("  \"machine\": {\n");
  std::printf("    \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"compiler\": \"%s\"\n  },\n", __VERSION__);
  std::printf("  \"workload\": {\n");
  std::printf("    \"objects\": %zu,\n", db.size());
  std::printf("    \"dim\": %d,\n", synth.dim);
  std::printf("    \"samples_per_object\": %d,\n", synth.samples_per_object);
  std::printf("    \"snapshot_bytes\": %zu\n  },\n",
              snapshot.value()->file_bytes());
  std::printf("  \"results\": {\n");
  std::printf("    \"build_ms\": %.2f,\n", build_ms);
  std::printf("    \"seal_save_ms\": %.2f,\n", seal_save_ms);
  std::printf("    \"open_ms\": %.3f,\n", open_ms);
  std::printf("    \"open_speedup_vs_build\": %.1f,\n", open_speedup);
  std::printf("    \"first_query_ms\": %.3f,\n", first_query_ms);
  std::printf("    \"warm_single_thread_qps\": %.1f\n  }\n}\n",
              stats.throughput_qps);

  std::fprintf(stderr, "# snapshot open = %.1fx faster than rebuild (%.2f ms "
                       "vs %.2f ms); first query %.3f ms\n",
               open_speedup, open_ms, build_ms, first_query_ms);
  std::remove(path.c_str());
  return 0;
}
