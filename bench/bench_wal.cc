// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// WAL durability benchmark: what the live-update pipeline pays for its
// crash-safety guarantee, on the two axes that matter operationally. Emits
// one JSON object (BENCH_wal.json schema):
//
//   append throughput vs sync policy
//     sync_every_n=1  every ack fsync'd (zero loss window) — the floor
//     sync_every_n=8/64  group commit (bounded loss window)
//     sync_every_n=0  close-only sync (process-exit durability)
//
//   recovery time vs log length
//     WalReplay over freshly written logs of increasing record counts —
//     the startup cost LiveIndex pays for a WAL suffix of that size, and
//     the number that motivates delta seals truncating the log.
//
//   $ ./bench_wal [--smoke]

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "src/pvdb.h"

namespace {

using namespace pvdb;

constexpr size_t kPayloadBytes = 256;  // ~ a small serialized uncertain object

void Require(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "bench_wal: %s\n", what.c_str());
    std::exit(1);
  }
}

std::string TmpPath(const char* tag) {
  return std::string("/tmp/pvdb_bench_wal_") + tag + "_" +
         std::to_string(::getpid()) + ".log";
}

struct PolicyResult {
  int sync_every_n = 0;
  double append_ops_per_sec = 0;
  double mb_per_sec = 0;
};

/// Appends `records` payloads under one sync policy and times the whole
/// acknowledged ingest (Open through Close, so close-time syncs are paid).
PolicyResult RunPolicy(storage::Env* env, int sync_every_n, size_t records,
                       const std::vector<uint8_t>& payload) {
  const std::string path = TmpPath("policy");
  env->DeleteFile(path);
  storage::WalOptions options;
  options.sync_every_n = sync_every_n;
  StopWatch watch;
  auto wal = storage::WalWriter::Open(env, path, options);
  Require(wal.ok(), "wal open: " + wal.status().ToString());
  for (size_t i = 0; i < records; ++i) {
    const Status s = wal.value()->Append(1, payload);
    Require(s.ok(), "append: " + s.ToString());
  }
  const Status closed = wal.value()->Close();
  Require(closed.ok(), "close: " + closed.ToString());
  const double secs = watch.ElapsedMillis() / 1000.0;
  PolicyResult r;
  r.sync_every_n = sync_every_n;
  r.append_ops_per_sec = static_cast<double>(records) / secs;
  r.mb_per_sec =
      static_cast<double>(records * payload.size()) / (1024.0 * 1024.0) / secs;
  env->DeleteFile(path);
  return r;
}

struct RecoveryResult {
  size_t records = 0;
  uint64_t bytes = 0;
  double replay_ms = 0;
  double records_per_sec = 0;
};

/// Writes a clean log of `records` entries, then times a full WalReplay —
/// the recovery path a restarting LiveIndex walks for its WAL suffix.
RecoveryResult RunRecovery(storage::Env* env, size_t records,
                           const std::vector<uint8_t>& payload) {
  const std::string path = TmpPath("recovery");
  env->DeleteFile(path);
  storage::WalOptions options;
  options.sync_every_n = 0;  // write fast; durability is not under test here
  auto wal = storage::WalWriter::Open(env, path, options);
  Require(wal.ok(), "wal open: " + wal.status().ToString());
  for (size_t i = 0; i < records; ++i) {
    const Status s = wal.value()->Append(1, payload);
    Require(s.ok(), "append: " + s.ToString());
  }
  RecoveryResult r;
  r.records = records;
  r.bytes = wal.value()->file_bytes();
  Require(wal.value()->Close().ok(), "close failed");

  size_t seen = 0;
  storage::WalReplayStats stats;
  StopWatch watch;
  const Status replayed = storage::WalReplay(
      env, path,
      [&](uint8_t /*type*/, std::span<const uint8_t> /*p*/) {
        ++seen;
        return Status::OK();
      },
      &stats);
  r.replay_ms = watch.ElapsedMillis();
  Require(replayed.ok(), "replay: " + replayed.ToString());
  Require(seen == records && !stats.tail_corrupt, "replay lost records");
  r.records_per_sec = static_cast<double>(records) / (r.replay_ms / 1000.0);
  env->DeleteFile(path);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  storage::Env* env = storage::Env::Default();
  std::vector<uint8_t> payload(kPayloadBytes);
  Rng rng(11);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.NextU64());

  const size_t policy_records = smoke ? 256 : 2000;
  const int policies[] = {1, 8, 64, 0};
  std::vector<PolicyResult> policy_results;
  for (int n : policies) {
    policy_results.push_back(RunPolicy(env, n, policy_records, payload));
  }

  std::vector<size_t> log_lengths =
      smoke ? std::vector<size_t>{500, 2000, 8000}
            : std::vector<size_t>{1000, 10000, 50000};
  std::vector<RecoveryResult> recovery_results;
  for (size_t n : log_lengths) {
    recovery_results.push_back(RunRecovery(env, n, payload));
  }

  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&now));

  std::printf("{\n");
  std::printf("  \"benchmark\": \"wal_durability\",\n");
  std::printf(
      "  \"description\": \"Cost of the live-update durability guarantee: "
      "WAL append throughput under each group-commit sync policy "
      "(sync_every_n=1 fsyncs every ack; 0 syncs only at close), and "
      "WalReplay recovery time vs log length — the startup tax delta seals "
      "bound by truncating the log. Crash-safety for every policy is proven "
      "in tests/wal_test.cc and tests/crash_recovery_test.cc.\",\n");
  std::printf("  \"date\": \"%s\",\n", date);
  std::printf("  \"machine\": {\n");
  std::printf("    \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"compiler\": \"%s\"\n  },\n", __VERSION__);
  std::printf("  \"workload\": {\n");
  std::printf("    \"payload_bytes\": %zu,\n", kPayloadBytes);
  std::printf("    \"records_per_policy\": %zu\n  },\n", policy_records);
  std::printf("  \"results\": {\n");
  std::printf("    \"append_throughput\": [\n");
  for (size_t i = 0; i < policy_results.size(); ++i) {
    const PolicyResult& r = policy_results[i];
    std::printf(
        "      {\"sync_every_n\": %d, \"ops_per_sec\": %.1f, "
        "\"mb_per_sec\": %.2f}%s\n",
        r.sync_every_n, r.append_ops_per_sec, r.mb_per_sec,
        i + 1 < policy_results.size() ? "," : "");
  }
  std::printf("    ],\n");
  std::printf("    \"recovery\": [\n");
  for (size_t i = 0; i < recovery_results.size(); ++i) {
    const RecoveryResult& r = recovery_results[i];
    std::printf(
        "      {\"records\": %zu, \"log_bytes\": %llu, \"replay_ms\": %.2f, "
        "\"records_per_sec\": %.1f}%s\n",
        r.records, static_cast<unsigned long long>(r.bytes), r.replay_ms,
        r.records_per_sec, i + 1 < recovery_results.size() ? "," : "");
  }
  std::printf("    ]\n  }\n}\n");

  std::fprintf(stderr,
               "# wal: every-ack fsync %.0f ops/s vs close-only %.0f ops/s; "
               "replay %.0f records/s\n",
               policy_results[0].append_ops_per_sec,
               policy_results.back().append_ops_per_sec,
               recovery_results.back().records_per_sec);
  return 0;
}
