// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/shard/partitioner.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/geom/morton.h"

namespace pvdb::shard {

namespace {

/// A partition cell mid-construction: its box plus the indices (into
/// db.objects()) of the centroids it owns.
struct Cell {
  geom::Rect box{1};
  std::vector<size_t> owned;
};

std::string ShardFileName(size_t i) {
  return "shard-" + std::to_string(i) + ".snap";
}

/// Splits `cell` at the median centroid coordinate along the best
/// dimension. Returns false when every dimension is degenerate (all
/// centroids coincide), in which case the cell cannot be split.
bool SplitCell(const std::vector<geom::Point>& centroids, Cell* cell,
               Cell* right_out) {
  const int dim = cell->box.dim();
  // Try the longest dimension first, then the rest, so a cell whose
  // centroids are collinear along its longest side still splits.
  std::vector<int> dims(dim);
  std::iota(dims.begin(), dims.end(), 0);
  std::sort(dims.begin(), dims.end(), [&](int a, int b) {
    return cell->box.Side(a) > cell->box.Side(b);
  });
  for (int d : dims) {
    std::vector<double> coords;
    coords.reserve(cell->owned.size());
    for (size_t idx : cell->owned) coords.push_back(centroids[idx][d]);
    std::sort(coords.begin(), coords.end());
    const double split = coords[coords.size() / 2];
    // Ownership rule: centroid coordinate < split goes left, >= split goes
    // right. Both sides must be non-empty for this dimension to work.
    size_t left_n = 0;
    for (size_t idx : cell->owned) {
      if (centroids[idx][d] < split) ++left_n;
    }
    if (left_n == 0 || left_n == cell->owned.size()) continue;

    Cell left, right;
    left.box = cell->box;
    right.box = cell->box;
    left.box.set_hi(d, split);
    right.box.set_lo(d, split);
    for (size_t idx : cell->owned) {
      (centroids[idx][d] < split ? left : right).owned.push_back(idx);
    }
    *cell = std::move(left);
    *right_out = std::move(right);
    return true;
  }
  return false;
}

Result<PartitionPlan> PlanPlane(const uncertain::Dataset& db, int k) {
  const auto& objects = db.objects();
  std::vector<geom::Point> centroids;
  centroids.reserve(objects.size());
  for (const auto& o : objects) centroids.push_back(o.region().Center());

  std::vector<Cell> cells(1);
  cells[0].box = db.domain();
  cells[0].owned.resize(objects.size());
  std::iota(cells[0].owned.begin(), cells[0].owned.end(), 0);
  while (cells.size() < static_cast<size_t>(k)) {
    // Split the most populous cell; with K <= |db| it always has >= 2
    // centroids while fewer than K cells exist.
    size_t busiest = 0;
    for (size_t i = 1; i < cells.size(); ++i) {
      if (cells[i].owned.size() > cells[busiest].owned.size()) busiest = i;
    }
    Cell right;
    if (!SplitCell(centroids, &cells[busiest], &right)) {
      return Status::InvalidArgument(
          "partition: cannot split into " + std::to_string(k) +
          " shards; too many objects share one centroid");
    }
    cells.push_back(std::move(right));
  }

  PartitionPlan plan;
  plan.map.dim = db.dim();
  plan.map.domain = db.domain();
  plan.map.shards.resize(cells.size());
  plan.members.resize(cells.size());
  // Owner shard per object, from the split's centroid assignment.
  std::vector<size_t> owner(objects.size());
  for (size_t s = 0; s < cells.size(); ++s) {
    for (size_t idx : cells[s].owned) owner[idx] = s;
  }
  for (size_t s = 0; s < cells.size(); ++s) {
    ShardInfo& info = plan.map.shards[s];
    info.snapshot_file = ShardFileName(s);
    info.region = cells[s].box;
    // Membership is geometric: every shard whose cell the uncertainty
    // region touches indexes the object, so any query's Step-1 reaches it
    // through at least its owner shard.
    for (size_t idx = 0; idx < objects.size(); ++idx) {
      const geom::Rect& r = objects[idx].region();
      if (!cells[s].box.Intersects(r) && owner[idx] != s) continue;
      plan.members[s].push_back(objects[idx].id());
      if (owner[idx] != s) info.ghost_ids.push_back(objects[idx].id());
      info.bbox = info.has_bbox ? geom::Rect::Union(info.bbox, r) : r;
      info.has_bbox = true;
    }
    std::sort(plan.members[s].begin(), plan.members[s].end());
    std::sort(info.ghost_ids.begin(), info.ghost_ids.end());
    info.object_count = plan.members[s].size();
  }
  return plan;
}

Result<PartitionPlan> PlanMortonRange(const uncertain::Dataset& db, int k) {
  const auto& objects = db.objects();
  std::vector<std::pair<uint64_t, size_t>> keyed;
  keyed.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    keyed.emplace_back(
        geom::MortonKey(objects[i].region().Center(), db.domain()), i);
  }
  // Tie-break on id so the plan is a pure function of the dataset.
  std::sort(keyed.begin(), keyed.end(),
            [&](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return objects[a.second].id() < objects[b.second].id();
            });

  PartitionPlan plan;
  plan.map.dim = db.dim();
  plan.map.domain = db.domain();
  plan.map.shards.resize(k);
  plan.members.resize(k);
  const size_t n = keyed.size();
  size_t begin = 0;
  for (int s = 0; s < k; ++s) {
    ShardInfo& info = plan.map.shards[s];
    info.snapshot_file = ShardFileName(s);
    // Morton ranges are centroid-disjoint, so a shard's pruning rect is
    // its members' bounding box; the region of responsibility is the full
    // domain (range boundaries are not axis-parallel planes).
    info.region = db.domain();
    const size_t end = begin + n / k + (static_cast<size_t>(s) < n % k);
    for (size_t j = begin; j < end; ++j) {
      const auto& o = objects[keyed[j].second];
      plan.members[s].push_back(o.id());
      info.bbox = info.has_bbox ? geom::Rect::Union(info.bbox, o.region())
                                : o.region();
      info.has_bbox = true;
    }
    begin = end;
    std::sort(plan.members[s].begin(), plan.members[s].end());
    info.object_count = plan.members[s].size();
  }
  return plan;
}

}  // namespace

Status ValidatePartitionOptions(const PartitionOptions& options,
                                size_t object_count) {
  if (options.shard_count < 1 || options.shard_count > 4096) {
    return Status::InvalidArgument(
        "partition: shard_count must be in [1, 4096], got " +
        std::to_string(options.shard_count));
  }
  if (object_count == 0) {
    return Status::InvalidArgument("partition: database is empty");
  }
  if (static_cast<size_t>(options.shard_count) > object_count) {
    return Status::InvalidArgument(
        "partition: shard_count " + std::to_string(options.shard_count) +
        " exceeds object count " + std::to_string(object_count));
  }
  return Status::OK();
}

Result<PartitionPlan> PlanPartition(const uncertain::Dataset& db,
                                    const PartitionOptions& options) {
  PVDB_RETURN_NOT_OK(ValidatePartitionOptions(options, db.size()));
  switch (options.strategy) {
    case SplitStrategy::kPlane:
      return PlanPlane(db, options.shard_count);
    case SplitStrategy::kMortonRange:
      return PlanMortonRange(db, options.shard_count);
  }
  return Status::InvalidArgument("partition: unknown split strategy");
}

Result<ShardMap> BuildShardSnapshots(const uncertain::Dataset& db,
                                     const PartitionOptions& options,
                                     const std::string& dir,
                                     storage::Env* env) {
  if (env == nullptr) env = storage::Env::Default();
  PVDB_ASSIGN_OR_RETURN(PartitionPlan plan, PlanPartition(db, options));
  PVDB_RETURN_NOT_OK(env->CreateDirIfMissing(dir));
  // ONE union build, K filtered seals. Every shard snapshot mirrors the
  // union index — same octree cells, same SE-tightened UBRs — with leaf
  // entries and records restricted to the shard's members. A shard's
  // Step-1 is therefore exactly the union Step-1 restricted to its member
  // set, which is what lets the router's merge reconstruct the union
  // candidate set bit for bit (router.h). Re-building each shard's index
  // from its sub-dataset would NOT work: SE tightening and octree splits
  // depend on the whole object population, so per-shard rebuilds answer
  // with different UBR geometry than the union engine.
  PVDB_ASSIGN_OR_RETURN(auto builder,
                        pv::PvIndexBuilder::Build(db, options.index));
  for (size_t s = 0; s < plan.map.shards.size(); ++s) {
    ShardInfo& info = plan.map.shards[s];
    // The router prunes shards against this bbox with UBR distances, so it
    // must cover the members' served (Voronoi) UBRs — which extend well
    // beyond the raw uncertainty regions the planner unioned.
    info.has_bbox = false;
    for (uncertain::ObjectId id : plan.members[s]) {
      PVDB_ASSIGN_OR_RETURN(geom::Rect ubr, builder->index().GetUbr(id));
      info.bbox = info.has_bbox ? geom::Rect::Union(info.bbox, ubr) : ubr;
      info.has_bbox = true;
    }
    PVDB_RETURN_NOT_OK(builder->SaveFiltered(
        dir + "/" + info.snapshot_file, plan.members[s], options.seal, env));
  }
  // The manifest goes last: a crash mid-build leaves shard files but no
  // readable SHARDMAP, so a partial directory is never served.
  PVDB_RETURN_NOT_OK(SaveShardMap(plan.map, dir, env));
  return std::move(plan.map);
}

}  // namespace pvdb::shard
