// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/shard/shard_service.h"

#include <utility>

#include "src/net/wire.h"
#include "src/pv/index_snapshot.h"

namespace pvdb::shard {

Result<LocalShardSet> OpenShardDir(const std::string& dir,
                                   storage::Env* env) {
  PVDB_ASSIGN_OR_RETURN(ShardMap map, LoadShardMap(dir, env));
  LocalShardSet set;
  set.connections.reserve(map.shards.size());
  set.snapshots.reserve(map.shards.size());
  for (const ShardInfo& info : map.shards) {
    PVDB_ASSIGN_OR_RETURN(
        std::shared_ptr<const pv::IndexSnapshot> snapshot,
        pv::IndexSnapshot::Open(dir + "/" + info.snapshot_file));
    set.connections.push_back(
        std::make_shared<LocalShardConnection>(snapshot));
    set.snapshots.push_back(std::move(snapshot));
  }
  set.map = std::move(map);
  return set;
}

// ---------------------------------------------------------------------------
// ShardServer

Result<std::unique_ptr<ShardServer>> ShardServer::Start(
    std::shared_ptr<const pv::IndexSnapshot> snapshot,
    const net::TcpServerOptions& server_options,
    service::QueryEngineOptions engine_options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("shard server needs a snapshot");
  }
  // A sharded deployment must answer identically whether a query reaches a
  // shard directly or through the router's merge, so canonical candidate
  // order is not optional here.
  engine_options.canonical_candidates = true;
  auto server = std::unique_ptr<ShardServer>(new ShardServer(snapshot));
  PVDB_ASSIGN_OR_RETURN(
      server->engine_,
      service::QueryEngine::CreateFromSnapshot(snapshot, engine_options));
  auto* raw = server.get();
  PVDB_ASSIGN_OR_RETURN(
      server->server_,
      net::TcpServer::Start(
          server_options,
          [raw](net::MessageType type, std::span<const uint8_t> payload) {
            return raw->Handle(type, payload);
          },
          [raw] { return raw->engine_->metrics().ExportPrometheusText(); }));
  return server;
}

Result<std::pair<net::MessageType, std::vector<uint8_t>>> ShardServer::Handle(
    net::MessageType type, std::span<const uint8_t> payload) {
  switch (type) {
    case net::MessageType::kInfo: {
      net::WireInfo info;
      info.dim = snapshot_->dim();
      info.object_count = snapshot_->object_count();
      return std::make_pair(net::MessageType::kInfo,
                            net::EncodeInfoResponse(info));
    }
    case net::MessageType::kStep1Batch: {
      PVDB_ASSIGN_OR_RETURN(std::vector<geom::Point> queries,
                            net::DecodeQueryBatchRequest(payload));
      PVDB_ASSIGN_OR_RETURN(std::vector<ShardStep1Answer> answers,
                            local_.Step1Batch(queries));
      return std::make_pair(net::MessageType::kStep1Batch,
                            net::EncodeStep1BatchResponse(answers));
    }
    case net::MessageType::kFetchRecords: {
      PVDB_ASSIGN_OR_RETURN(std::vector<uncertain::ObjectId> ids,
                            net::DecodeFetchRecordsRequest(payload));
      PVDB_ASSIGN_OR_RETURN(std::vector<uncertain::UncertainObject> records,
                            local_.FetchRecords(ids));
      return std::make_pair(net::MessageType::kFetchRecords,
                            net::EncodeFetchRecordsResponse(records));
    }
    case net::MessageType::kQueryBatch: {
      PVDB_ASSIGN_OR_RETURN(std::vector<geom::Point> queries,
                            net::DecodeQueryBatchRequest(payload));
      const std::vector<service::PnnAnswer> answers =
          engine_->ExecuteBatch(queries);
      std::vector<net::WireAnswer> wire(answers.size());
      for (size_t i = 0; i < answers.size(); ++i) {
        wire[i].status = answers[i].status;
        wire[i].results = answers[i].results;
      }
      return std::make_pair(net::MessageType::kQueryBatch,
                            net::EncodeQueryBatchResponse(wire));
    }
    case net::MessageType::kQueryRequestBatch: {
      // Structural decode only; the engine validates each request at
      // ingress, so a semantically malformed request answers per-request
      // InvalidArgument instead of dropping the connection.
      PVDB_ASSIGN_OR_RETURN(std::vector<service::QueryRequest> requests,
                            net::DecodeQueryRequestBatch(payload));
      const std::vector<service::QueryAnswer> answers =
          engine_->ExecuteBatch(requests);
      return std::make_pair(net::MessageType::kQueryAnswerBatch,
                            net::EncodeQueryAnswerBatch(answers));
    }
    case net::MessageType::kRangeStep1Batch: {
      PVDB_ASSIGN_OR_RETURN(std::vector<geom::Rect> ranges,
                            net::DecodeRangeStep1Request(payload));
      PVDB_ASSIGN_OR_RETURN(std::vector<ShardRangeAnswer> answers,
                            local_.RangeStep1Batch(ranges));
      return std::make_pair(net::MessageType::kRangeStep1Batch,
                            net::EncodeRangeStep1Response(answers));
    }
    default:
      return Status::NotSupported(
          "shard server does not handle message type " +
          std::to_string(static_cast<int>(type)));
  }
}

// ---------------------------------------------------------------------------
// RouterServer

Result<std::unique_ptr<RouterServer>> RouterServer::Start(
    std::unique_ptr<ShardRouter> router,
    const net::TcpServerOptions& server_options) {
  if (router == nullptr) {
    return Status::InvalidArgument("router server needs a router");
  }
  auto server =
      std::unique_ptr<RouterServer>(new RouterServer(std::move(router)));
  auto* raw = server.get();
  PVDB_ASSIGN_OR_RETURN(
      server->server_,
      net::TcpServer::Start(
          server_options,
          [raw](net::MessageType type, std::span<const uint8_t> payload) {
            return raw->Handle(type, payload);
          },
          [raw] { return raw->router_->metrics().ExportPrometheusText(); }));
  return server;
}

Result<std::pair<net::MessageType, std::vector<uint8_t>>> RouterServer::Handle(
    net::MessageType type, std::span<const uint8_t> payload) {
  switch (type) {
    case net::MessageType::kInfo: {
      net::WireInfo info;
      info.dim = router_->map().dim;
      // Distinct objects across the deployment: every object counts once on
      // its owner shard, and ghosts are the non-owner replicas.
      for (const ShardInfo& s : router_->map().shards) {
        info.object_count += s.object_count - s.ghost_ids.size();
      }
      return std::make_pair(net::MessageType::kInfo,
                            net::EncodeInfoResponse(info));
    }
    case net::MessageType::kQueryBatch: {
      PVDB_ASSIGN_OR_RETURN(std::vector<geom::Point> queries,
                            net::DecodeQueryBatchRequest(payload));
      const std::vector<service::PnnAnswer> answers =
          router_->ExecuteBatch(queries);
      std::vector<net::WireAnswer> wire(answers.size());
      for (size_t i = 0; i < answers.size(); ++i) {
        wire[i].status = answers[i].status;
        wire[i].results = answers[i].results;
      }
      return std::make_pair(net::MessageType::kQueryBatch,
                            net::EncodeQueryBatchResponse(wire));
    }
    case net::MessageType::kQueryRequestBatch: {
      PVDB_ASSIGN_OR_RETURN(std::vector<service::QueryRequest> requests,
                            net::DecodeQueryRequestBatch(payload));
      const std::vector<service::QueryAnswer> answers =
          router_->Execute(requests);
      return std::make_pair(net::MessageType::kQueryAnswerBatch,
                            net::EncodeQueryAnswerBatch(answers));
    }
    default:
      return Status::NotSupported(
          "router server does not handle message type " +
          std::to_string(static_cast<int>(type)));
  }
}

// ---------------------------------------------------------------------------
// RemoteShardConnection

Result<std::vector<uint8_t>> RemoteShardConnection::Exchange(
    net::MessageType type, std::span<const uint8_t> payload,
    net::MessageType expect) {
  if (client_ == nullptr) {
    auto client_or = net::FrameClient::Connect(port_, deadline_ms_);
    if (!client_or.ok()) return client_or.status();
    client_ = std::move(client_or).value();
  }
  auto response_or = client_->Call(type, payload, deadline_ms_);
  if (!response_or.ok()) {
    // The stream may be desynced (timeout mid-frame) or the peer gone;
    // either way the next call starts from a fresh connection.
    client_.reset();
    return response_or.status();
  }
  auto response = std::move(response_or).value();
  if (response.first != expect) {
    client_.reset();
    return Status::Corruption(
        "shard answered with unexpected message type " +
        std::to_string(static_cast<int>(response.first)) + " (expected " +
        std::to_string(static_cast<int>(expect)) + ")");
  }
  return std::move(response.second);
}

Result<std::vector<ShardStep1Answer>> RemoteShardConnection::Step1Batch(
    std::span<const geom::Point> queries) {
  PVDB_ASSIGN_OR_RETURN(
      std::vector<uint8_t> body,
      Exchange(net::MessageType::kStep1Batch,
               net::EncodeQueryBatchRequest(queries),
               net::MessageType::kStep1Batch));
  return net::DecodeStep1BatchResponse(body);
}

Result<std::vector<uncertain::UncertainObject>>
RemoteShardConnection::FetchRecords(
    std::span<const uncertain::ObjectId> ids) {
  PVDB_ASSIGN_OR_RETURN(
      std::vector<uint8_t> body,
      Exchange(net::MessageType::kFetchRecords,
               net::EncodeFetchRecordsRequest(ids),
               net::MessageType::kFetchRecords));
  return net::DecodeFetchRecordsResponse(body);
}

Result<std::vector<ShardRangeAnswer>> RemoteShardConnection::RangeStep1Batch(
    std::span<const geom::Rect> ranges) {
  PVDB_ASSIGN_OR_RETURN(
      std::vector<uint8_t> body,
      Exchange(net::MessageType::kRangeStep1Batch,
               net::EncodeRangeStep1Request(ranges),
               net::MessageType::kRangeStep1Batch));
  return net::DecodeRangeStep1Response(body);
}

}  // namespace pvdb::shard
