// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Process-level glue between the shard layer and the socket layer:
//
//   * ShardServer — one shard snapshot behind a TCP front end. Serves the
//     router's scatter legs (kStep1Batch, kFetchRecords), direct full
//     queries through its own QueryEngine (kQueryBatch), kInfo, and
//     `GET /metrics` (the engine's Prometheus export).
//   * RouterServer — a ShardRouter behind the same front end: kQueryBatch
//     fans out to the shards and answers with merged, bit-identical
//     results; `GET /metrics` exports the router's registry.
//   * RemoteShardConnection — the ShardConnection that speaks the framed
//     protocol to a ShardServer, with the router's deadline applied to
//     every exchange and transparent reconnect after a failure (so a
//     restarted shard heals without rebuilding the router).
//   * OpenShardDir — loads `<dir>/SHARDMAP` and opens every shard
//     snapshot into LocalShardConnections (single-process serving and the
//     reference side of the bit-identity tests).

#ifndef PVDB_SHARD_SHARD_SERVICE_H_
#define PVDB_SHARD_SHARD_SERVICE_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/net/client.h"
#include "src/net/server.h"
#include "src/service/query_engine.h"
#include "src/shard/router.h"
#include "src/shard/shard_map.h"

namespace pvdb::shard {

/// A shard map plus one local connection per shard (aligned).
struct LocalShardSet {
  ShardMap map;
  std::vector<std::shared_ptr<ShardConnection>> connections;
  /// The opened snapshots, aligned with connections (borrowed by them).
  std::vector<std::shared_ptr<const pv::IndexSnapshot>> snapshots;
};

/// Loads `<dir>/SHARDMAP` and opens every shard snapshot in-process.
Result<LocalShardSet> OpenShardDir(const std::string& dir,
                                   storage::Env* env = nullptr);

/// One shard snapshot served over TCP.
class ShardServer {
 public:
  /// Opens an engine over `snapshot` (canonical-candidate mode is forced
  /// on: a sharded deployment's direct answers must match the router's)
  /// and starts the front end.
  static Result<std::unique_ptr<ShardServer>> Start(
      std::shared_ptr<const pv::IndexSnapshot> snapshot,
      const net::TcpServerOptions& server_options,
      service::QueryEngineOptions engine_options = {});

  int port() const { return server_->port(); }
  void Stop() { server_->Stop(); }

 private:
  explicit ShardServer(std::shared_ptr<const pv::IndexSnapshot> snapshot)
      : snapshot_(std::move(snapshot)), local_(snapshot_) {}

  Result<std::pair<net::MessageType, std::vector<uint8_t>>> Handle(
      net::MessageType type, std::span<const uint8_t> payload);

  std::shared_ptr<const pv::IndexSnapshot> snapshot_;
  std::unique_ptr<service::QueryEngine> engine_;
  LocalShardConnection local_;
  std::unique_ptr<net::TcpServer> server_;
};

/// A scatter-gather router served over TCP.
class RouterServer {
 public:
  static Result<std::unique_ptr<RouterServer>> Start(
      std::unique_ptr<ShardRouter> router,
      const net::TcpServerOptions& server_options);

  int port() const { return server_->port(); }
  ShardRouter& router() { return *router_; }
  void Stop() { server_->Stop(); }

 private:
  explicit RouterServer(std::unique_ptr<ShardRouter> router)
      : router_(std::move(router)) {}

  Result<std::pair<net::MessageType, std::vector<uint8_t>>> Handle(
      net::MessageType type, std::span<const uint8_t> payload);

  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<net::TcpServer> server_;
};

/// ShardConnection over the framed TCP protocol. Connects lazily on first
/// use and reconnects after a failed exchange; every call observes
/// `deadline_ms`, so a SIGKILLed shard turns into kUnavailable at the
/// router, never a hang.
class RemoteShardConnection : public ShardConnection {
 public:
  RemoteShardConnection(int port, double deadline_ms)
      : port_(port), deadline_ms_(deadline_ms) {}

  Result<std::vector<ShardStep1Answer>> Step1Batch(
      std::span<const geom::Point> queries) override;
  Result<std::vector<uncertain::UncertainObject>> FetchRecords(
      std::span<const uncertain::ObjectId> ids) override;
  Result<std::vector<ShardRangeAnswer>> RangeStep1Batch(
      std::span<const geom::Rect> ranges) override;

 private:
  Result<std::vector<uint8_t>> Exchange(net::MessageType type,
                                        std::span<const uint8_t> payload,
                                        net::MessageType expect);

  int port_;
  double deadline_ms_;
  std::unique_ptr<net::FrameClient> client_;
};

}  // namespace pvdb::shard

#endif  // PVDB_SHARD_SHARD_SERVICE_H_
