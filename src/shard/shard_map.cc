// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/shard/shard_map.h"

#include <cstring>

#include "src/common/crc32c.h"
#include "src/geom/point.h"

namespace pvdb::shard {

namespace {

constexpr char kMagic[8] = {'P', 'V', 'D', 'B', 'S', 'M', 'A', 'P'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 4;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendRect(std::vector<uint8_t>* out, const geom::Rect& r) {
  for (int i = 0; i < r.dim(); ++i) AppendF64(out, r.lo(i));
  for (int i = 0; i < r.dim(); ++i) AppendF64(out, r.hi(i));
}

/// Bounds-checked little-endian reader over the manifest payload. Every
/// primitive read reports truncation as Corruption with the offset, so a
/// bit-flipped length field can never walk past the buffer.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU32(uint32_t* v) { return ReadRaw(v); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v); }
  Status ReadF64(double* v) { return ReadRaw(v); }
  Status ReadU8(uint8_t* v) { return ReadRaw(v); }

  Status ReadString(size_t n, std::string* out) {
    if (remaining() < n) return Truncated("string");
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadRect(int dim, geom::Rect* out) {
    geom::Point lo(dim), hi(dim);
    for (int i = 0; i < dim; ++i) PVDB_RETURN_NOT_OK(ReadF64(&lo[i]));
    for (int i = 0; i < dim; ++i) PVDB_RETURN_NOT_OK(ReadF64(&hi[i]));
    for (int i = 0; i < dim; ++i) {
      if (!(lo[i] <= hi[i])) {
        return Status::Corruption("shard map: rect with lo > hi in dim " +
                                  std::to_string(i));
      }
    }
    *out = geom::Rect(lo, hi);
    return Status::OK();
  }

 private:
  template <typename T>
  Status ReadRaw(T* v) {
    if (remaining() < sizeof(T)) return Truncated("scalar");
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status Truncated(const char* what) const {
    return Status::Corruption("shard map: truncated payload (" +
                              std::string(what) + " at offset " +
                              std::to_string(pos_) + " of " +
                              std::to_string(data_.size()) + ")");
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> EncodeShardMap(const ShardMap& map) {
  std::vector<uint8_t> payload;
  AppendU32(&payload, static_cast<uint32_t>(map.dim));
  AppendU32(&payload, static_cast<uint32_t>(map.shards.size()));
  AppendRect(&payload, map.domain);
  for (const ShardInfo& s : map.shards) {
    AppendU32(&payload, static_cast<uint32_t>(s.snapshot_file.size()));
    payload.insert(payload.end(), s.snapshot_file.begin(),
                   s.snapshot_file.end());
    AppendRect(&payload, s.region);
    payload.push_back(s.has_bbox ? 1 : 0);
    if (s.has_bbox) AppendRect(&payload, s.bbox);
    AppendU64(&payload, s.object_count);
    AppendU64(&payload, static_cast<uint64_t>(s.ghost_ids.size()));
    for (uncertain::ObjectId id : s.ghost_ids) AppendU64(&payload, id);
  }

  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  AppendU32(&out, kVersion);
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU32(&out, Crc32c(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<ShardMap> DecodeShardMap(std::span<const uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Status::Corruption("shard map: file shorter than header (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("shard map: bad magic (not a shard-map file)");
  }
  uint32_t version = 0, payload_len = 0, crc = 0;
  std::memcpy(&version, bytes.data() + 8, 4);
  std::memcpy(&payload_len, bytes.data() + 12, 4);
  std::memcpy(&crc, bytes.data() + 16, 4);
  if (version != kVersion) {
    return Status::NotSupported("shard map: version " +
                                std::to_string(version) +
                                " (this build reads version " +
                                std::to_string(kVersion) + ")");
  }
  if (bytes.size() != kHeaderBytes + payload_len) {
    return Status::Corruption(
        "shard map: payload length mismatch (header says " +
        std::to_string(payload_len) + ", file has " +
        std::to_string(bytes.size() - kHeaderBytes) + ")");
  }
  std::span<const uint8_t> payload = bytes.subspan(kHeaderBytes);
  const uint32_t actual_crc = Crc32c(payload.data(), payload.size());
  if (actual_crc != crc) {
    return Status::Corruption("shard map: checksum mismatch (stored " +
                              std::to_string(crc) + ", computed " +
                              std::to_string(actual_crc) + ")");
  }

  Reader r(payload);
  ShardMap map;
  uint32_t dim = 0, shard_count = 0;
  PVDB_RETURN_NOT_OK(r.ReadU32(&dim));
  PVDB_RETURN_NOT_OK(r.ReadU32(&shard_count));
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("shard map: dim " + std::to_string(dim) +
                              " out of range [1, " +
                              std::to_string(geom::kMaxDim) + "]");
  }
  if (shard_count < 1 || shard_count > 4096) {
    return Status::Corruption("shard map: shard count " +
                              std::to_string(shard_count) +
                              " out of range [1, 4096]");
  }
  map.dim = static_cast<int>(dim);
  PVDB_RETURN_NOT_OK(r.ReadRect(map.dim, &map.domain));
  map.shards.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    ShardInfo s;
    uint32_t name_len = 0;
    PVDB_RETURN_NOT_OK(r.ReadU32(&name_len));
    if (name_len == 0 || name_len > 4096) {
      return Status::Corruption("shard map: shard " + std::to_string(i) +
                                " snapshot name length " +
                                std::to_string(name_len) +
                                " out of range [1, 4096]");
    }
    PVDB_RETURN_NOT_OK(r.ReadString(name_len, &s.snapshot_file));
    PVDB_RETURN_NOT_OK(r.ReadRect(map.dim, &s.region));
    uint8_t has_bbox = 0;
    PVDB_RETURN_NOT_OK(r.ReadU8(&has_bbox));
    if (has_bbox > 1) {
      return Status::Corruption("shard map: shard " + std::to_string(i) +
                                " bbox flag is " + std::to_string(has_bbox) +
                                " (expected 0 or 1)");
    }
    s.has_bbox = has_bbox == 1;
    if (s.has_bbox) {
      PVDB_RETURN_NOT_OK(r.ReadRect(map.dim, &s.bbox));
    } else {
      s.bbox = geom::Rect(map.dim);
    }
    PVDB_RETURN_NOT_OK(r.ReadU64(&s.object_count));
    uint64_t ghost_count = 0;
    PVDB_RETURN_NOT_OK(r.ReadU64(&ghost_count));
    if (ghost_count > s.object_count) {
      return Status::Corruption("shard map: shard " + std::to_string(i) +
                                " claims " + std::to_string(ghost_count) +
                                " ghosts but only " +
                                std::to_string(s.object_count) + " objects");
    }
    if (ghost_count * 8 > r.remaining()) {
      return Status::Corruption("shard map: shard " + std::to_string(i) +
                                " ghost list longer than remaining payload");
    }
    s.ghost_ids.reserve(ghost_count);
    for (uint64_t g = 0; g < ghost_count; ++g) {
      uint64_t id = 0;
      PVDB_RETURN_NOT_OK(r.ReadU64(&id));
      s.ghost_ids.push_back(id);
    }
    map.shards.push_back(std::move(s));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("shard map: " + std::to_string(r.remaining()) +
                              " trailing bytes after last shard entry");
  }
  return map;
}

Status SaveShardMap(const ShardMap& map, const std::string& dir,
                    storage::Env* env) {
  if (env == nullptr) env = storage::Env::Default();
  const std::vector<uint8_t> bytes = EncodeShardMap(map);
  return storage::WriteFileAtomic(env, dir + "/" + kShardMapFileName,
                                  std::span<const uint8_t>(bytes));
}

Result<ShardMap> LoadShardMap(const std::string& dir, storage::Env* env) {
  if (env == nullptr) env = storage::Env::Default();
  std::vector<uint8_t> bytes;
  PVDB_RETURN_NOT_OK(env->ReadFile(dir + "/" + kShardMapFileName, &bytes));
  return DecodeShardMap(std::span<const uint8_t>(bytes));
}

}  // namespace pvdb::shard
