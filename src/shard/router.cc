// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/shard/router.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/geom/distance.h"
#include "src/geom/distance_batch.h"

namespace pvdb::shard {

Result<std::vector<ShardStep1Answer>> LocalShardConnection::Step1Batch(
    std::span<const geom::Point> queries) {
  std::vector<ShardStep1Answer> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Status status = Step1One(queries[i], &out[i]);
    if (!status.ok()) {
      out[i].candidates.clear();
      out[i].status = status;
    }
  }
  return out;
}

Status LocalShardConnection::Step1One(const geom::Point& q,
                                      ShardStep1Answer* out) {
  // Same leaf, same SoA planes, same fused kernel and τ reduce as the
  // engine's Step-1 (pv::Step1PruneMinMax) — the reported distances are
  // the exact doubles a union engine computes for these entries, which
  // the router's merge relies on to reconstruct τ* bit for bit.
  PVDB_ASSIGN_OR_RETURN(pv::OctreePrimary::LeafRef ref,
                        snapshot_->FindLeaf(q));
  pv::LeafBlock block;
  pv::LeafBlockView view;
  if (snapshot_->has_leaf_soa()) {
    PVDB_ASSIGN_OR_RETURN(view, snapshot_->ReadLeafBlockView(ref.id));
  } else {
    PVDB_ASSIGN_OR_RETURN(block, snapshot_->ReadLeafBlock(ref.id));
    view = block.View();
  }
  const size_t n = view.count;
  if (n == 0) return Status::OK();  // a filtered-out leaf: no members here
  scratch_.min_dist_sq.resize(n);
  scratch_.max_dist_sq.resize(n);
  double* min_d = scratch_.min_dist_sq.data();
  double* max_d = scratch_.max_dist_sq.data();
  geom::MinMaxDistSqBatch(view.lo, view.hi, q, view.dim, n, min_d, max_d);
  const double tau_sq = geom::MinReduce(max_d, n);
  out->candidates.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    if (min_d[k] <= tau_sq) {
      out->candidates.push_back({view.ids[k], min_d[k], max_d[k]});
    }
  }
  return Status::OK();
}

Result<std::vector<uncertain::UncertainObject>>
LocalShardConnection::FetchRecords(
    std::span<const uncertain::ObjectId> ids) {
  std::vector<uncertain::UncertainObject> out;
  out.reserve(ids.size());
  for (uncertain::ObjectId id : ids) {
    PVDB_ASSIGN_OR_RETURN(uncertain::UncertainObject o,
                          snapshot_->GetObject(id));
    out.push_back(std::move(o));
  }
  return out;
}

Result<std::vector<ShardRangeAnswer>> LocalShardConnection::RangeStep1Batch(
    std::span<const geom::Rect> ranges) {
  std::vector<ShardRangeAnswer> out(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    auto r = snapshot_->RangeCandidates(ranges[i]);
    if (!r.ok()) {
      out[i].status = r.status();
      continue;
    }
    out[i].ids = std::move(r).value();
  }
  return out;
}

Status ValidateRouterOptions(const RouterOptions& options) {
  if (!(options.deadline_ms > 0.0)) {
    return Status::InvalidArgument(
        "router deadline_ms must be > 0, got " +
        std::to_string(options.deadline_ms));
  }
  if (options.max_retries < 0) {
    return Status::InvalidArgument("router max_retries must be >= 0, got " +
                                   std::to_string(options.max_retries));
  }
  if (!(options.min_probability >= 0.0) || options.min_probability >= 1.0) {
    return Status::InvalidArgument(
        "router min_probability must lie in [0, 1)");
  }
  if (options.step2_min_group_size < 1) {
    return Status::InvalidArgument(
        "router step2_min_group_size must be >= 1");
  }
  return Status::OK();
}

std::vector<size_t> RelevantShards(const ShardMap& map, const geom::Point& q) {
  // τ_map: the tightest shard-level MaxDist bound. Any shard whose bbox
  // cannot beat it holds no possible NN (u(o) ⊆ bbox for all its objects).
  double tau_map = std::numeric_limits<double>::infinity();
  for (const ShardInfo& s : map.shards) {
    if (s.has_bbox) tau_map = std::min(tau_map, geom::MaxDistSq(s.bbox, q));
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < map.shards.size(); ++i) {
    const ShardInfo& s = map.shards[i];
    if (s.has_bbox && geom::MinDistSq(s.bbox, q) <= tau_map) out.push_back(i);
  }
  return out;
}

std::vector<uncertain::ObjectId> MergeShardCandidates(
    std::span<const std::vector<ShardCandidate>> answers,
    std::span<const size_t> shard_index,
    const std::vector<std::unordered_set<uncertain::ObjectId>>& ghosts,
    RouterStats* stats) {
  // Ghost dedup: keep only owner-shard instances, so each object
  // contributes exactly once whatever its replication factor was.
  std::vector<ShardCandidate> merged;
  for (size_t a = 0; a < answers.size(); ++a) {
    const auto& ghost_set = ghosts[shard_index[a]];
    for (const ShardCandidate& c : answers[a]) {
      if (ghost_set.contains(c.id)) {
        if (stats != nullptr) ++stats->ghosts_dropped;
        continue;
      }
      merged.push_back(c);
    }
  }
  // Global τ: the union-wide minimum MaxDistSq is attained by an object
  // that always survives its owner shard's prune, so the min over the
  // deduped instances is exactly the single-index τ*.
  double tau = std::numeric_limits<double>::infinity();
  for (const ShardCandidate& c : merged) tau = std::min(tau, c.max_dist_sq);
  // Second pass: re-prune with the global τ (a shard's own τ_s is only an
  // upper bound, so shard-local survivors may die globally), then sort by
  // id — the canonical candidate order Step-2 multiplies in.
  std::vector<uncertain::ObjectId> out;
  out.reserve(merged.size());
  for (const ShardCandidate& c : merged) {
    if (c.min_dist_sq <= tau) {
      out.push_back(c.id);
    } else if (stats != nullptr) {
      ++stats->repruned;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

const uncertain::UncertainObject* ShardRouter::RecordStore::FindObject(
    uncertain::ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second.get();
}

std::vector<uncertain::ObjectId> ShardRouter::RecordStore::Missing(
    std::span<const uncertain::ObjectId> want) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uncertain::ObjectId> out;
  for (uncertain::ObjectId id : want) {
    if (!records_.contains(id)) out.push_back(id);
  }
  return out;
}

void ShardRouter::RecordStore::Insert(
    std::vector<uncertain::UncertainObject> records) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : records) {
    const uncertain::ObjectId id = r.id();
    records_.try_emplace(id,
                         std::make_unique<uncertain::UncertainObject>(
                             std::move(r)));
  }
}

ShardRouter::ShardRouter(
    ShardMap map, std::vector<std::shared_ptr<ShardConnection>> connections,
    const RouterOptions& options)
    : map_(std::move(map)),
      connections_(std::move(connections)),
      options_(options),
      step2_(&records_) {
  ghosts_.resize(map_.shards.size());
  for (size_t s = 0; s < map_.shards.size(); ++s) {
    ghosts_[s].insert(map_.shards[s].ghost_ids.begin(),
                      map_.shards[s].ghost_ids.end());
  }
  queries_total_ = metrics_.Register("router.queries_total");
  unavailable_total_ = metrics_.Register("router.unavailable_total");
  fanouts_total_ = metrics_.Register("router.shard_fanouts_total");
  shards_pruned_total_ = metrics_.Register("router.shards_pruned_total");
  records_fetched_total_ = metrics_.Register("router.records_fetched_total");
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    ShardMap map, std::vector<std::shared_ptr<ShardConnection>> connections,
    const RouterOptions& options) {
  PVDB_RETURN_NOT_OK(ValidateRouterOptions(options));
  if (map.shards.empty()) {
    return Status::InvalidArgument("router: shard map has no shards");
  }
  if (connections.size() != map.shards.size()) {
    return Status::InvalidArgument(
        "router: " + std::to_string(connections.size()) +
        " connections for " + std::to_string(map.shards.size()) + " shards");
  }
  for (size_t i = 0; i < connections.size(); ++i) {
    if (connections[i] == nullptr) {
      return Status::InvalidArgument("router: connection " +
                                     std::to_string(i) + " is null");
    }
  }
  return std::unique_ptr<ShardRouter>(
      new ShardRouter(std::move(map), std::move(connections), options));
}

template <typename Fn>
auto ShardRouter::WithRetries(Fn&& fn) -> decltype(fn()) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    auto r = fn();
    if (r.ok()) return r;
    last = r.status();
  }
  return Status::Unavailable("shard unreachable after " +
                             std::to_string(1 + options_.max_retries) +
                             " attempt(s): " + last.ToString());
}

service::PnnAnswer ShardRouter::AnswerRange(const service::QueryRequest& req,
                                            RouterStats* stats) {
  service::PnnAnswer ans;
  const size_t k = map_.shards.size();
  // Scatter: every shard whose bbox intersects the rectangle. An object's
  // uncertainty region is contained in its owner shard's bbox, so an object
  // overlapping the range is always reported by its owner — one round, no
  // τ to close over.
  std::vector<uncertain::ObjectId> ids;
  std::unordered_map<uncertain::ObjectId, size_t> owner;
  const std::vector<geom::Rect> one{req.rect};
  for (size_t s = 0; s < k; ++s) {
    if (!map_.shards[s].has_bbox ||
        !map_.shards[s].bbox.Intersects(req.rect)) {
      ++stats->shards_pruned;
      shards_pruned_total_->Increment();
      continue;
    }
    ++stats->shard_fanouts;
    fanouts_total_->Increment();
    auto r = WithRetries([&] { return connections_[s]->RangeStep1Batch(one); });
    Status shard_status = Status::OK();
    if (!r.ok()) {
      shard_status = Status::Unavailable("shard " + std::to_string(s) + ": " +
                                         r.status().message());
    } else if (r.value().size() != 1) {
      shard_status = Status::Unavailable(
          "shard " + std::to_string(s) + ": range step1 answered " +
          std::to_string(r.value().size()) + " of 1 ranges");
    } else if (!r.value()[0].status.ok()) {
      shard_status = r.value()[0].status;
    }
    if (!shard_status.ok()) {
      ans.status = shard_status;
      if (shard_status.code() == StatusCode::kUnavailable) {
        ++stats->unavailable;
        unavailable_total_->Increment();
      }
      return ans;
    }
    for (uncertain::ObjectId id : r.value()[0].ids) {
      if (ghosts_[s].contains(id)) {
        ++stats->ghosts_dropped;
        continue;
      }
      owner.emplace(id, s);
      ids.push_back(id);
    }
  }
  // Owner instances are unique per object, but canonical id order is the
  // contract EvaluateRangeProb's answers are a pure function of.
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  // Owner-shard record fetch through the router's cache, exactly like the
  // PNN leg.
  const std::vector<uncertain::ObjectId> missing = records_.Missing(ids);
  std::vector<std::vector<uncertain::ObjectId>> fetch_per_shard(k);
  for (uncertain::ObjectId id : missing) {
    fetch_per_shard[owner.at(id)].push_back(id);
  }
  for (size_t s = 0; s < k; ++s) {
    if (fetch_per_shard[s].empty()) continue;
    auto r = WithRetries(
        [&] { return connections_[s]->FetchRecords(fetch_per_shard[s]); });
    if (!r.ok()) {
      ans.status = r.status().code() == StatusCode::kUnavailable
                       ? r.status()
                       : Status::Unavailable("shard " + std::to_string(s) +
                                             " record fetch: " +
                                             r.status().message());
      ++stats->unavailable;
      unavailable_total_->Increment();
      return ans;
    }
    stats->records_fetched += static_cast<int64_t>(fetch_per_shard[s].size());
    records_fetched_total_->Increment(
        static_cast<int64_t>(fetch_per_shard[s].size()));
    records_.Insert(std::move(r).value());
  }

  ans.results = step2_.EvaluateRangeProb(req.rect, ids, nullptr,
                                         req.probability, &ans.status);
  return ans;
}

std::vector<service::QueryAnswer> ShardRouter::Execute(
    std::span<const service::QueryRequest> requests, RouterStats* stats) {
  RouterStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  const size_t nreq = requests.size();
  std::vector<service::QueryAnswer> answers(nreq);

  // Expansion mirrors QueryEngine::ExecuteRequests: point kinds are one
  // scatter unit, trajectories one unit per arc-length sample, range
  // requests answer through their own scatter leg below. Validation here
  // (at the router's dimensionality) turns malformed requests into
  // per-answer InvalidArgument, never a dropped batch.
  std::vector<geom::Point> points;
  std::vector<uint32_t> first_unit(nreq, 0);
  std::vector<uint32_t> unit_count(nreq, 0);
  for (size_t ri = 0; ri < nreq; ++ri) {
    const service::QueryRequest& req = requests[ri];
    answers[ri].kind = req.kind;
    answers[ri].status = service::ValidateQueryRequest(req, map_.dim);
    first_unit[ri] = static_cast<uint32_t>(points.size());
    if (!answers[ri].status.ok()) continue;
    switch (req.kind) {
      case service::QueryKind::kPnn:
      case service::QueryKind::kTopKByProb:
      case service::QueryKind::kThresholdNN:
        points.push_back(req.point);
        break;
      case service::QueryKind::kRangeProb:
        break;
      case service::QueryKind::kTrajectoryPnn: {
        std::vector<geom::Point> samples =
            service::SampleTrajectory(req.polyline, req.step);
        answers[ri].steps.resize(samples.size());
        for (size_t j = 0; j < samples.size(); ++j) {
          answers[ri].steps[j].point = samples[j];
          points.push_back(std::move(samples[j]));
        }
        break;
      }
    }
    unit_count[ri] = static_cast<uint32_t>(points.size()) - first_unit[ri];
  }

  // Point scatter through the PNN core (resets and fills *stats).
  std::vector<service::PnnAnswer> unit_ans = ExecuteBatch(points, stats);

  // Assembly: per-kind selection over the merged, canonically-ordered
  // evaluations — the same SelectResults composition the engine applies,
  // which is what makes router and single-engine answers bit-identical.
  for (size_t ri = 0; ri < nreq; ++ri) {
    const service::QueryRequest& req = requests[ri];
    service::QueryAnswer& qa = answers[ri];
    if (!qa.status.ok() && unit_count[ri] == 0 &&
        req.kind != service::QueryKind::kRangeProb) {
      ++stats->queries;
      queries_total_->Increment();
      continue;
    }
    switch (req.kind) {
      case service::QueryKind::kRangeProb: {
        if (!qa.status.ok()) {
          ++stats->queries;
          queries_total_->Increment();
          break;
        }
        service::PnnAnswer ra = AnswerRange(req, stats);
        ++stats->queries;
        queries_total_->Increment();
        qa.status = std::move(ra.status);
        qa.results = std::move(ra.results);
        break;
      }
      case service::QueryKind::kTrajectoryPnn: {
        for (uint32_t j = 0; j < unit_count[ri]; ++j) {
          service::PnnAnswer& ua = unit_ans[first_unit[ri] + j];
          qa.steps[j].results = std::move(ua.results);
          if (!ua.status.ok() && qa.status.ok()) qa.status = ua.status;
        }
        break;
      }
      default: {
        service::PnnAnswer& ua = unit_ans[first_unit[ri]];
        qa.status = std::move(ua.status);
        qa.results = service::SelectResults(req, std::move(ua.results));
        break;
      }
    }
  }
  return answers;
}

std::vector<service::PnnAnswer> ShardRouter::ExecuteBatch(
    std::span<const geom::Point> queries, RouterStats* stats) {
  RouterStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = RouterStats{};
  stats->queries = static_cast<int64_t>(queries.size());
  queries_total_->Increment(static_cast<int64_t>(queries.size()));

  std::vector<service::PnnAnswer> answers(queries.size());

  // Fan-out rounds. Round 1 contacts RelevantShards (the bbox minmax
  // prune); because a shard's bbox bound only upper-bounds τ*, each
  // further round re-checks the still-uncontacted shards against the τ
  // gathered so far and widens the fan-out until the needed set closes —
  // never more than K rounds, and almost always exactly one. A shard that
  // stays unreachable through the retry budget poisons exactly the
  // queries that needed it — the rest of the batch still answers.
  const size_t k = map_.shards.size();
  std::vector<std::vector<std::vector<ShardCandidate>>> lists(queries.size());
  std::vector<std::vector<size_t>> list_shard(queries.size());
  std::vector<std::vector<bool>> asked(queries.size(),
                                       std::vector<bool>(k, false));
  std::vector<Status> failed(queries.size(), Status::OK());
  std::vector<std::vector<size_t>> pending(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    pending[i] = RelevantShards(map_, queries[i]);
  }
  while (true) {
    // This round's scatter plan: (shard -> queries) for every pending,
    // not-yet-contacted pair of a still-healthy query.
    std::vector<std::vector<uint32_t>> shard_queries(k);
    bool any = false;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!failed[i].ok()) continue;
      for (size_t s : pending[i]) {
        if (asked[i][s]) continue;
        shard_queries[s].push_back(static_cast<uint32_t>(i));
        any = true;
      }
    }
    if (!any) break;
    for (size_t s = 0; s < k; ++s) {
      if (shard_queries[s].empty()) continue;
      ++stats->shard_fanouts;
      fanouts_total_->Increment();
      std::vector<geom::Point> sub;
      sub.reserve(shard_queries[s].size());
      for (uint32_t qi : shard_queries[s]) sub.push_back(queries[qi]);
      auto r = WithRetries(
          [&] { return connections_[s]->Step1Batch(sub); });
      Status shard_status = Status::OK();
      std::vector<ShardStep1Answer> shard_answers;
      if (!r.ok()) {
        shard_status = Status::Unavailable(
            "shard " + std::to_string(s) + ": " + r.status().message());
      } else {
        shard_answers = std::move(r).value();
        if (shard_answers.size() != shard_queries[s].size()) {
          shard_status = Status::Unavailable(
              "shard " + std::to_string(s) + ": step1 answered " +
              std::to_string(shard_answers.size()) + " of " +
              std::to_string(shard_queries[s].size()) + " queries");
        }
      }
      for (size_t p = 0; p < shard_queries[s].size(); ++p) {
        const uint32_t qi = shard_queries[s][p];
        asked[qi][s] = true;
        if (!shard_status.ok()) {
          if (failed[qi].ok()) failed[qi] = shard_status;
          continue;
        }
        const ShardStep1Answer& a = shard_answers[p];
        if (!a.status.ok()) {
          if (failed[qi].ok()) failed[qi] = a.status;
          continue;
        }
        lists[qi].push_back(a.candidates);
        list_shard[qi].push_back(s);
      }
    }
    // Next round's pending sets: τ over everything gathered so far (every
    // instance is a union leaf entry, so this is ≥ τ* — a sound bound)
    // versus the uncontacted shards' bbox MinDist.
    for (size_t i = 0; i < queries.size(); ++i) {
      pending[i].clear();
      if (!failed[i].ok()) continue;
      double tau = std::numeric_limits<double>::infinity();
      for (const auto& list : lists[i]) {
        for (const ShardCandidate& c : list) {
          tau = std::min(tau, c.max_dist_sq);
        }
      }
      for (size_t s = 0; s < k; ++s) {
        if (asked[i][s] || !map_.shards[s].has_bbox) continue;
        if (geom::MinDistSq(map_.shards[s].bbox, queries[i]) <= tau) {
          pending[i].push_back(s);
        }
      }
    }
  }

  // Gather: merge each query's per-shard candidate lists, learning owner
  // shards for the record fetch below.
  std::vector<std::vector<uncertain::ObjectId>> candidates(queries.size());
  std::unordered_map<uncertain::ObjectId, size_t> owner;
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t s = 0; s < k; ++s) {
      stats->shards_pruned += !asked[i][s];
    }
    if (!failed[i].ok()) {
      answers[i].status = failed[i];
      if (failed[i].code() == StatusCode::kUnavailable) {
        ++stats->unavailable;
        unavailable_total_->Increment();
      }
      continue;
    }
    for (size_t l = 0; l < lists[i].size(); ++l) {
      for (const ShardCandidate& c : lists[i][l]) {
        if (!ghosts_[list_shard[i][l]].contains(c.id)) {
          owner.emplace(c.id, list_shard[i][l]);
        }
      }
    }
    candidates[i] =
        MergeShardCandidates(lists[i], list_shard[i], ghosts_, stats);
  }
  shards_pruned_total_->Increment(stats->shards_pruned);

  // Record fetch: every merged candidate's pdf record, from its owner
  // shard, once — the store caches across batches (records are immutable
  // per shard generation).
  std::vector<uncertain::ObjectId> want;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!answers[i].status.ok()) continue;
    want.insert(want.end(), candidates[i].begin(), candidates[i].end());
  }
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  std::vector<uncertain::ObjectId> missing = records_.Missing(want);
  std::vector<std::vector<uncertain::ObjectId>> fetch_per_shard(k);
  for (uncertain::ObjectId id : missing) {
    auto it = owner.find(id);
    PVDB_CHECK(it != owner.end());  // merge keeps owner instances only
    fetch_per_shard[it->second].push_back(id);
  }
  std::vector<Status> fetch_status(k, Status::OK());
  for (size_t s = 0; s < k; ++s) {
    if (fetch_per_shard[s].empty()) continue;
    auto r = WithRetries(
        [&] { return connections_[s]->FetchRecords(fetch_per_shard[s]); });
    if (!r.ok()) {
      fetch_status[s] = r.status().code() == StatusCode::kUnavailable
                            ? r.status()
                            : Status::Unavailable(
                                  "shard " + std::to_string(s) +
                                  " record fetch: " + r.status().message());
      continue;
    }
    stats->records_fetched +=
        static_cast<int64_t>(fetch_per_shard[s].size());
    records_fetched_total_->Increment(
        static_cast<int64_t>(fetch_per_shard[s].size()));
    records_.Insert(std::move(r).value());
  }
  // A failed fetch poisons exactly the queries holding a candidate owned
  // by that shard: they degrade to kUnavailable rather than evaluating
  // with a missing record (which would abort or mis-answer).
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!answers[i].status.ok()) continue;
    for (uncertain::ObjectId id : candidates[i]) {
      const Status& fs = fetch_status[owner.at(id)];
      if (!fs.ok()) {
        answers[i].status = fs;
        ++stats->unavailable;
        unavailable_total_->Increment();
        break;
      }
    }
  }

  // Grouped Step-2, centrally, over the fetched records: identical math
  // and candidate order to a canonical-mode engine, so probabilities are
  // bit-identical to single-snapshot serving over the union dataset.
  pv::Step2Batch plan;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!answers[i].status.ok()) continue;
    plan.Add(static_cast<uint32_t>(i), pv::kNoLeafId,
             std::move(candidates[i]));
  }
  for (const pv::Step2Batch::Group& g : plan.groups()) {
    if (g.queries.size() >= options_.step2_min_group_size &&
        !g.candidates.empty()) {
      std::vector<geom::Point> group_queries;
      group_queries.reserve(g.queries.size());
      for (uint32_t qi : g.queries) group_queries.push_back(queries[qi]);
      Status group_status;
      pv::Step2GroupOptions gopts;
      gopts.min_probability = options_.min_probability;
      auto results = step2_.EvaluateGroup(group_queries, g.candidates,
                                          &scratch_, nullptr, gopts, nullptr,
                                          &group_status);
      for (size_t t = 0; t < g.queries.size(); ++t) {
        answers[g.queries[t]].status = group_status;
        answers[g.queries[t]].results = std::move(results[t]);
      }
    } else {
      for (uint32_t qi : g.queries) {
        answers[qi].results =
            step2_.Evaluate(queries[qi], g.candidates, &scratch_, nullptr,
                            options_.min_probability, &answers[qi].status);
      }
    }
  }
  return answers;
}

}  // namespace pvdb::shard
