// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Domain partitioner: splits one uncertain database into K per-shard
// snapshots plus the shard-map manifest the router serves from
// (shard_map.h). The build runs ONE union PvIndexBuilder::Build and seals
// each shard as a FILTERED image of it (SealFilteredImage): every shard
// keeps the union index's octree structure and SE-tightened UBRs, with
// leaf entries and pdf records restricted to the shard's members. That
// mirroring is what makes the router's merged answers bit-identical to a
// single engine over the union dataset — UBR tightening and octree splits
// depend on the whole object population, so independently rebuilt
// per-shard indexes would answer with different geometry.
//
// Two split strategies over object UBR centroids:
//
//   * kPlane — recursive median splits along the longest dimension of each
//     cell (a kd-style partition). Cells are axis-parallel boxes; an object
//     whose uncertainty region straddles a cell boundary is replicated to
//     every cell its region intersects ("ghosts"), and the cell containing
//     its centroid is the stable OWNER — the single shard whose instance
//     survives the router's merge.
//   * kMortonRange — sorts centroids by Z-order key and cuts the sorted
//     sequence into K equal runs. Assignment is by centroid only (disjoint,
//     no ghosts); a shard's spatial extent is its objects' bounding box,
//     which the router prunes on exactly like a Step-1 minmax bound.
//
// Every shard dataset keeps the FULL domain rectangle, so each shard's
// octree can locate any in-domain query point; only the object sets differ.

#ifndef PVDB_SHARD_PARTITIONER_H_
#define PVDB_SHARD_PARTITIONER_H_

#include <string>
#include <vector>

#include "src/pv/pv_index_builder.h"
#include "src/shard/shard_map.h"
#include "src/uncertain/dataset.h"

namespace pvdb::shard {

enum class SplitStrategy {
  kPlane,
  kMortonRange,
};

struct PartitionOptions {
  /// Number of shards K. Must be in [1, 4096] and at most the object count.
  int shard_count = 2;
  SplitStrategy strategy = SplitStrategy::kPlane;
  /// Forwarded to each shard's filtered seal (SaveFiltered).
  pv::SealOptions seal;
  /// Forwarded to the one union PvIndexBuilder::Build all shards mirror.
  pv::PvIndexOptions index;
};

/// InvalidArgument with the offending field unless `options` is usable
/// against a database of `object_count` objects.
Status ValidatePartitionOptions(const PartitionOptions& options,
                                size_t object_count);

/// The in-memory result of planning a partition (before any snapshot is
/// built): per-shard object id lists plus the ShardMap skeleton. Exposed
/// separately from BuildShardSnapshots so tests can check the assignment
/// properties (coverage, ownership, ghost replication) without paying for
/// K index builds.
struct PartitionPlan {
  ShardMap map;
  /// Per shard: ids of every object the shard indexes (owned + ghosts),
  /// aligned with map.shards.
  std::vector<std::vector<uncertain::ObjectId>> members;
};

/// Plans the partition of `db` into K shards. Pure function of (db,
/// options); does not touch disk. Guarantees on the returned plan:
///   * every object appears in exactly one shard as owner;
///   * kPlane: an object is a member of shard s iff its uncertainty region
///     intersects s's cell, and ghost_ids lists its non-owner memberships;
///   * kMortonRange: memberships are disjoint (no ghosts);
///   * map.shards[s].bbox is the union of members' uncertainty regions.
Result<PartitionPlan> PlanPartition(const uncertain::Dataset& db,
                                    const PartitionOptions& options);

/// Plans, builds the union PvIndex once, saves each shard as a filtered
/// snapshot `<dir>/shard-<i>.snap` (format-v2 seal path), and writes the
/// checksummed `<dir>/SHARDMAP` manifest last — a crash mid-build leaves no
/// readable manifest, so a partial shard directory is never served. The
/// written manifest's bboxes are recomputed to cover the members' SERVED
/// (SE-tightened Voronoi) UBRs, which the router's shard pruning reasons
/// about; they are generally larger than the planner's uncertainty-region
/// bboxes. Returns the manifest actually written.
Result<ShardMap> BuildShardSnapshots(const uncertain::Dataset& db,
                                     const PartitionOptions& options,
                                     const std::string& dir,
                                     storage::Env* env = nullptr);

}  // namespace pvdb::shard

#endif  // PVDB_SHARD_PARTITIONER_H_
