// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The shard-map manifest: the small, checksummed control file that turns a
// directory of per-shard snapshots into one logical index. The partitioner
// writes it (atomically, through storage::Env) next to the shard snapshot
// files; the scatter-gather router loads it to learn
//
//   * the common domain and dimensionality every shard serves,
//   * each shard's snapshot file name,
//   * each shard's spatial region of responsibility (the partition cell)
//     and the tight bounding box of every uncertainty region it actually
//     indexes (owned + replicated) — the rect the router's shard-level
//     minmax pruning runs on, and
//   * which of a shard's objects are replicas ("ghosts"): objects whose
//     uncertainty region straddles a partition boundary are indexed by
//     every overlapping shard but OWNED by exactly one, and the router
//     drops ghost instances at merge so each object contributes exactly
//     once to a candidate set.
//
// On-disk layout (little-endian, like every pvdb control file):
//
//   magic "PVDBSMAP" | version u32 | payload bytes u32 | crc32c(payload) u32
//   payload: dim u32 | shard count u32 | domain 2·dim f64
//            per shard: name len u32 | name bytes
//                       region 2·dim f64 | bbox flag u8 [bbox 2·dim f64]
//                       object count u64 | ghost count u64 | ghost ids u64…
//
// Every load failure (truncation, foreign magic, future version, checksum
// mismatch, inconsistent counts) is a descriptive Status, never a crash.

#ifndef PVDB_SHARD_SHARD_MAP_H_
#define PVDB_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/geom/rect.h"
#include "src/storage/env.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::shard {

/// One shard's entry in the map.
struct ShardInfo {
  /// Snapshot file name, relative to the manifest's directory.
  std::string snapshot_file;
  /// The partition cell this shard is responsible for (plane splits: a box;
  /// Morton-range splits: the whole domain).
  geom::Rect region{1};
  /// Tight bounding box of the uncertainty regions of every object the
  /// shard indexes (owned and ghost). Empty (has_bbox = false) for a shard
  /// holding no objects — the router never fans out to it.
  geom::Rect bbox{1};
  bool has_bbox = false;
  /// Objects the shard indexes, ghosts included.
  uint64_t object_count = 0;
  /// Replicated boundary-straddlers owned by another shard. The router
  /// drops these ids from this shard's Step-1 answers at merge.
  std::vector<uncertain::ObjectId> ghost_ids;
};

/// The whole map: what the partitioner produced, what the router serves.
struct ShardMap {
  int dim = 0;
  geom::Rect domain{1};
  std::vector<ShardInfo> shards;

  size_t shard_count() const { return shards.size(); }
};

/// Serializes `map` to the manifest byte image (header + checksummed
/// payload).
std::vector<uint8_t> EncodeShardMap(const ShardMap& map);

/// Inverse of EncodeShardMap with full validation.
Result<ShardMap> DecodeShardMap(std::span<const uint8_t> bytes);

/// Writes the manifest atomically (temp + fsync + rename + dir fsync) as
/// `<dir>/SHARDMAP` through `env` (nullptr = Env::Default()).
Status SaveShardMap(const ShardMap& map, const std::string& dir,
                    storage::Env* env = nullptr);

/// Loads and validates `<dir>/SHARDMAP`.
Result<ShardMap> LoadShardMap(const std::string& dir,
                              storage::Env* env = nullptr);

/// The manifest's file name inside a shard directory.
inline constexpr const char* kShardMapFileName = "SHARDMAP";

}  // namespace pvdb::shard

#endif  // PVDB_SHARD_SHARD_MAP_H_
