// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Scatter-gather PNN routing over a shard map. The router is the serving
// half of the partitioner: it prunes the shard map with the same minmax
// logic Step-1 applies to octree leaves, fans each query batch out only to
// the shards whose bounding box could hold a possible NN, merges the
// per-shard candidate sets (ghost dedup + a global τ second-pass re-prune)
// and runs grouped Step-2 centrally over records fetched from the owner
// shards — producing answers BIT-IDENTICAL to one QueryEngine in
// canonical-candidate mode over the union dataset.
//
// Why the merge is exact (the set argument). The partitioner seals every
// shard as a FILTERED image of ONE union index (partitioner.h): same
// octree cells, same SE-tightened UBRs, leaf entries restricted to the
// shard's members. Let E = the union index's leaf(q) entry set and
// τ* = min_{e ∈ E} MaxDistSq(u(e), q); the union engine's candidate set
// is {e ∈ E : MinDistSq(u(e), q) ≤ τ*}. Then:
//   * Per shard, Step-1 runs over the same cell with entries E ∩ S_s and
//     the same distance kernels, so it returns
//     {e ∈ E ∩ S_s : MinDistSq ≤ τ_s} with τ_s = min over E ∩ S_s of
//     MaxDistSq ≥ τ*. Every union candidate survives its OWNER shard's
//     filter (MinDistSq ≤ τ* ≤ τ_owner), and every returned instance is
//     a member of E.
//   * The merged min of MaxDistSq is exactly τ*: the τ*-attaining entry
//     survives its owner's filter (its MinDistSq ≤ τ*), and every other
//     instance has MaxDistSq ≥ τ*. The re-prune MinDistSq ≤ τ* therefore
//     reproduces {e ∈ E : MinDistSq ≤ τ*} after ghost dedup.
//   * Fan-out rounds make the shard prune sound: round 1 contacts
//     RelevantShards (bbox minmax prune); because a shard's bbox bound is
//     only an upper bound of τ*, the router then re-checks every
//     uncontacted shard against the gathered τ (min MaxDistSq over
//     instances so far, which is ≥ τ*) and issues further rounds until no
//     uncontacted shard has MinDistSq(bbox, q) ≤ τ. A union candidate's
//     owner shard has MinDistSq(bbox, q) ≤ MinDistSq(u(o), q) ≤ τ* ≤ τ
//     (u(o) ⊆ bbox), so it is always contacted before the loop closes;
//     the loop terminates because the contacted set grows every round.
// Order: merged candidates are sorted by id — the canonical order the
// engine's canonical_candidates option applies — so Step-2's survival
// products multiply identically and the probabilities match bit for bit.
//
// The merge seam (MergeShardCandidates) is query-kind-agnostic: it sees
// only (id, MinDistSq, MaxDistSq) triples per shard, so continuous /
// moving-query and top-k-by-probability variants fan out through the same
// code path with their own Step-2.

#ifndef PVDB_SHARD_ROUTER_H_
#define PVDB_SHARD_ROUTER_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/stats.h"
#include "src/pv/pnnq.h"
#include "src/service/query_engine.h"
#include "src/shard/shard_map.h"

namespace pvdb::shard {

/// One shard's Step-1 verdict for one query: the surviving candidates with
/// the two distances the router's merge needs. Candidate order within a
/// shard answer is irrelevant (the merge re-sorts canonically).
struct ShardCandidate {
  uncertain::ObjectId id = 0;
  double min_dist_sq = 0.0;
  double max_dist_sq = 0.0;
};

struct ShardStep1Answer {
  Status status = Status::OK();
  std::vector<ShardCandidate> candidates;
};

/// One shard's range-overlap verdict for one query rectangle: ids of the
/// shard's entries whose uncertainty region intersects the rectangle,
/// sorted ascending and deduplicated. Ghost instances are included — the
/// router drops them during its merge, exactly like the PNN leg.
struct ShardRangeAnswer {
  Status status = Status::OK();
  std::vector<uncertain::ObjectId> ids;
};

/// Transport seam between the router and one shard. LocalShardConnection
/// serves in-process from an IndexSnapshot; RemoteShardConnection
/// (shard_service.h) speaks the framed TCP protocol. Implementations must
/// be thread-compatible (the router serializes calls per connection) and
/// must return kUnavailable — never hang — when the shard cannot answer
/// within the transport's deadline.
class ShardConnection {
 public:
  virtual ~ShardConnection() = default;

  /// Step-1 for every query; answer i corresponds to queries[i].
  virtual Result<std::vector<ShardStep1Answer>> Step1Batch(
      std::span<const geom::Point> queries) = 0;

  /// Full records of `ids` (owner-shard record fetch for central Step-2),
  /// aligned with `ids`. Fails (NotFound) if any id is absent.
  virtual Result<std::vector<uncertain::UncertainObject>> FetchRecords(
      std::span<const uncertain::ObjectId> ids) = 0;

  /// Range-overlap Step-1 for every rectangle; answer i corresponds to
  /// ranges[i] (the router's range-probability scatter leg). Default:
  /// NotSupported, for connections predating the typed vocabulary.
  virtual Result<std::vector<ShardRangeAnswer>> RangeStep1Batch(
      std::span<const geom::Rect> ranges) {
    (void)ranges;
    return Status::NotSupported("shard connection has no range leg");
  }
};

/// In-process connection over a sealed shard snapshot (the single-process
/// serving mode, and the reference implementation tests compare against).
/// Step-1 runs the snapshot's own SoA distance kernels, so the distances
/// it reports are the exact doubles the union engine's prune computes.
class LocalShardConnection : public ShardConnection {
 public:
  explicit LocalShardConnection(
      std::shared_ptr<const pv::IndexSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  Result<std::vector<ShardStep1Answer>> Step1Batch(
      std::span<const geom::Point> queries) override;
  Result<std::vector<uncertain::UncertainObject>> FetchRecords(
      std::span<const uncertain::ObjectId> ids) override;
  Result<std::vector<ShardRangeAnswer>> RangeStep1Batch(
      std::span<const geom::Rect> ranges) override;

 private:
  /// One query's leaf prune; fills `out->candidates` (leaves it empty for
  /// an empty leaf).
  Status Step1One(const geom::Point& q, ShardStep1Answer* out);

  std::shared_ptr<const pv::IndexSnapshot> snapshot_;
  pv::QueryScratch scratch_;
};

/// Router tunables. Validated by ValidateRouterOptions.
struct RouterOptions {
  /// Per-RPC deadline in milliseconds (remote connections; local
  /// connections never block). Must be > 0.
  double deadline_ms = 1000.0;
  /// Failed shard RPCs are retried up to this many times before the
  /// affected queries degrade to kUnavailable. Must be >= 0.
  int max_retries = 1;
  /// Step-2 answers with probability <= this are dropped (must be in
  /// [0, 1), mirroring QueryEngineOptions::min_probability).
  double min_probability = 0.0;
  /// Groups of at least this many queries sharing a candidate set go
  /// through the batched Step-2 sweep. Must be >= 1.
  size_t step2_min_group_size = 2;
};

/// InvalidArgument naming the offending field, or OK.
Status ValidateRouterOptions(const RouterOptions& options);

/// Aggregate counters of one router batch.
struct RouterStats {
  int64_t queries = 0;
  /// Shard Step-1 sub-batches issued (across all fan-out rounds), and
  /// (query, shard) pairs never contacted thanks to shard-map pruning.
  int64_t shard_fanouts = 0;
  int64_t shards_pruned = 0;
  /// Queries answered kUnavailable because a shard stayed unreachable
  /// through the retry budget.
  int64_t unavailable = 0;
  /// Candidate instances dropped as ghosts during the merge.
  int64_t ghosts_dropped = 0;
  /// Candidates removed by the global-τ re-prune.
  int64_t repruned = 0;
  /// Owner-shard record fetches that missed the router's record cache.
  int64_t records_fetched = 0;
};

/// Indices of the shards whose bbox could contain a possible NN of `q`:
/// τ_map = min over shards of MaxDistSq(bbox, q), keep shards with
/// MinDistSq(bbox, q) ≤ τ_map. This is the router's ROUND-1 contact set;
/// ExecuteBatch re-checks the pruned shards against the gathered τ and
/// widens the fan-out until the set closes (see file comment), so a
/// too-aggressive bbox prune can cost a round but never a candidate.
/// Empty-bbox shards are never contacted in round 1.
std::vector<size_t> RelevantShards(const ShardMap& map, const geom::Point& q);

/// The query-kind-agnostic merge: per-shard candidate lists in, one
/// deduped, globally re-pruned, id-sorted candidate set out.
/// `answers[i]` is shard `shard_index[i]`'s candidate list; `ghosts[s]`
/// is shard s's ghost-id set (dropped so every object keeps exactly its
/// owner instance). Stats fields ghosts_dropped / repruned are
/// incremented when `stats` is non-null.
std::vector<uncertain::ObjectId> MergeShardCandidates(
    std::span<const std::vector<ShardCandidate>> answers,
    std::span<const size_t> shard_index,
    const std::vector<std::unordered_set<uncertain::ObjectId>>& ghosts,
    RouterStats* stats);

/// The scatter-gather router. Thread-compatible: one batch at a time.
class ShardRouter {
 public:
  /// Takes the manifest plus one connection per map entry (aligned).
  static Result<std::unique_ptr<ShardRouter>> Create(
      ShardMap map, std::vector<std::shared_ptr<ShardConnection>> connections,
      const RouterOptions& options);

  /// Answers every typed request; answer i corresponds to requests[i].
  /// Point kinds (PNN / top-k / threshold) and trajectory samples scatter
  /// through the PNN fan-out machinery and evaluate with the engine's own
  /// per-kind selection (SelectResults at the router's min_probability), so
  /// the answers are bit-identical to one canonical-mode QueryEngine over
  /// the union dataset. Range-probability requests fan out to every shard
  /// whose bbox intersects the rectangle (an object's uncertainty region is
  /// contained in its owner's bbox, so the owner is always contacted),
  /// ghost-dedupe + id-sort the ids, and evaluate centrally over fetched
  /// records. Malformed requests answer per-request InvalidArgument; shard
  /// failures degrade the affected requests to kUnavailable — the batch
  /// never aborts.
  std::vector<service::QueryAnswer> Execute(
      std::span<const service::QueryRequest> requests,
      RouterStats* stats = nullptr);

  /// Legacy point-PNN surface: answers every query point; answer i
  /// corresponds to queries[i]. Still the typed path's point-scatter core,
  /// so both surfaces answer bit-identically.
  std::vector<service::PnnAnswer> ExecuteBatch(
      std::span<const geom::Point> queries, RouterStats* stats = nullptr);

  const ShardMap& map() const { return map_; }

  /// Router metrics (fanout, dedup, unavailable, record-cache traffic) for
  /// the front end's /metrics export.
  const MetricRegistry& metrics() const { return metrics_; }

 private:
  /// The router's record store: owner-shard records fetched once, cached
  /// for the router's lifetime (records are immutable per shard
  /// generation), served to Step-2 through the ObjectSource seam.
  class RecordStore : public uncertain::ObjectSource {
   public:
    const uncertain::UncertainObject* FindObject(
        uncertain::ObjectId id) const override;
    /// Ids of `want` not yet cached.
    std::vector<uncertain::ObjectId> Missing(
        std::span<const uncertain::ObjectId> want) const;
    void Insert(std::vector<uncertain::UncertainObject> records);

   private:
    mutable std::mutex mu_;
    std::unordered_map<uncertain::ObjectId,
                       std::unique_ptr<uncertain::UncertainObject>>
        records_;
  };

  ShardRouter(ShardMap map,
              std::vector<std::shared_ptr<ShardConnection>> connections,
              const RouterOptions& options);

  /// Calls `fn` with up to 1 + max_retries attempts; returns the last
  /// error (as kUnavailable) when every attempt fails.
  template <typename Fn>
  auto WithRetries(Fn&& fn) -> decltype(fn());

  /// One range-probability request: scatter to every bbox-intersecting
  /// shard, ghost-dedupe + id-sort, fetch owner records, evaluate
  /// P(o ∈ rect) centrally at the request's threshold.
  service::PnnAnswer AnswerRange(const service::QueryRequest& req,
                                 RouterStats* stats);

  ShardMap map_;
  std::vector<std::shared_ptr<ShardConnection>> connections_;
  RouterOptions options_;
  /// Per-shard ghost sets, materialized from the manifest once.
  std::vector<std::unordered_set<uncertain::ObjectId>> ghosts_;
  /// Owner shard of every id seen so far (learned from non-ghost shard
  /// answers; consulted for record fetches).
  RecordStore records_;
  pv::PnnStep2Evaluator step2_;
  pv::QueryScratch scratch_;
  MetricRegistry metrics_;
  MetricRegistry::Counter* queries_total_ = nullptr;
  MetricRegistry::Counter* unavailable_total_ = nullptr;
  MetricRegistry::Counter* fanouts_total_ = nullptr;
  MetricRegistry::Counter* shards_pruned_total_ = nullptr;
  MetricRegistry::Counter* records_fetched_total_ = nullptr;
};

}  // namespace pvdb::shard

#endif  // PVDB_SHARD_ROUTER_H_
