// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// pvdb — Voronoi-based nearest neighbor search for multi-dimensional
// uncertain databases (reproduction of Zhang et al., ICDE 2013).
//
// Umbrella header: pulls in the full public API. Typical usage:
//
//   #include "src/pvdb.h"
//
//   auto db = pvdb::uncertain::GenerateSynthetic({.dim = 3, .count = 10000});
//   pvdb::storage::InMemoryPager pager;
//   auto index = pvdb::pv::PvIndex::Build(db, &pager, {}).value();
//   auto step1 = index->QueryPossibleNN(q).value();          // PNNQ Step 1
//   pvdb::pv::PnnStep2Evaluator step2(&db);
//   auto answers = step2.Evaluate(q, step1);                 // PNNQ Step 2
//
// Serving path (src/service/): batched, thread-pooled PNNQ over a planned
// backend with leaf-result caching — answers bit-identical to the library
// calls above:
//
//   pvdb::service::EngineBackends backends;
//   backends.pv = index.value().get();
//   auto engine = pvdb::service::QueryEngine::Create(
//       &db, backends, {.threads = 8}).value();
//   auto answers = engine->ExecuteBatch(queries, &stats);    // batched
//   auto future = engine->Submit(q);                         // async
//   engine->Insert(obj);   // safe to interleave with queries

#ifndef PVDB_PVDB_H_
#define PVDB_PVDB_H_

#include "src/common/logging.h"    // IWYU pragma: export
#include "src/common/random.h"     // IWYU pragma: export
#include "src/common/stats.h"      // IWYU pragma: export
#include "src/common/stats_reporter.h"  // IWYU pragma: export
#include "src/common/status.h"     // IWYU pragma: export
#include "src/common/timer.h"      // IWYU pragma: export
#include "src/common/trace.h"      // IWYU pragma: export
#include "src/eval/experiments.h"  // IWYU pragma: export
#include "src/eval/params.h"       // IWYU pragma: export
#include "src/eval/report.h"       // IWYU pragma: export
#include "src/eval/workload.h"     // IWYU pragma: export
#include "src/geom/distance.h"     // IWYU pragma: export
#include "src/geom/domination.h"   // IWYU pragma: export
#include "src/geom/point.h"        // IWYU pragma: export
#include "src/geom/rect.h"         // IWYU pragma: export
#include "src/geom/region_partition.h"  // IWYU pragma: export
#include "src/net/client.h"        // IWYU pragma: export
#include "src/net/frame.h"         // IWYU pragma: export
#include "src/net/loadgen.h"       // IWYU pragma: export
#include "src/net/server.h"        // IWYU pragma: export
#include "src/net/wire.h"          // IWYU pragma: export
#include "src/pv/cset.h"           // IWYU pragma: export
#include "src/pv/index_snapshot.h"  // IWYU pragma: export
#include "src/pv/live_index.h"     // IWYU pragma: export
#include "src/pv/octree.h"         // IWYU pragma: export
#include "src/pv/pnnq.h"           // IWYU pragma: export
#include "src/pv/pv_index.h"       // IWYU pragma: export
#include "src/pv/pv_index_builder.h"  // IWYU pragma: export
#include "src/pv/se.h"             // IWYU pragma: export
#include "src/pv/secondary_index.h"  // IWYU pragma: export
#include "src/pv/verifier.h"       // IWYU pragma: export
#include "src/rtree/rstar_tree.h"  // IWYU pragma: export
#include "src/rtree/rtree_pnn.h"   // IWYU pragma: export
#include "src/service/backend.h"   // IWYU pragma: export
#include "src/service/planner.h"   // IWYU pragma: export
#include "src/service/query_engine.h"  // IWYU pragma: export
#include "src/service/result_cache.h"  // IWYU pragma: export
#include "src/service/thread_pool.h"   // IWYU pragma: export
#include "src/shard/partitioner.h"  // IWYU pragma: export
#include "src/shard/router.h"      // IWYU pragma: export
#include "src/shard/shard_map.h"   // IWYU pragma: export
#include "src/shard/shard_service.h"  // IWYU pragma: export
#include "src/storage/env.h"       // IWYU pragma: export
#include "src/storage/extendible_hash.h"  // IWYU pragma: export
#include "src/storage/fault_env.h"  // IWYU pragma: export
#include "src/storage/pager.h"     // IWYU pragma: export
#include "src/storage/record_store.h"  // IWYU pragma: export
#include "src/storage/snapshot_file.h"  // IWYU pragma: export
#include "src/storage/wal.h"       // IWYU pragma: export
#include "src/uncertain/datagen.h"  // IWYU pragma: export
#include "src/uncertain/dataset.h"  // IWYU pragma: export
#include "src/uv/uv_cell.h"        // IWYU pragma: export
#include "src/uv/uv_index.h"       // IWYU pragma: export

#endif  // PVDB_PVDB_H_
