// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// PNNQ Step 1 on an R-tree of uncertainty regions: the branch-and-prune
// baseline of Cheng et al. [8] that the paper compares the PV-index against
// (Figures 9(a)–(h)). Best-first traversal by MinDist; the running threshold
// τ = min over seen objects of MaxDist(u(o), q) prunes every subtree whose
// MinDist exceeds it.

#ifndef PVDB_RTREE_RTREE_PNN_H_
#define PVDB_RTREE_RTREE_PNN_H_

#include <vector>

#include "src/rtree/rstar_tree.h"

namespace pvdb::rtree {

/// Ids of all objects with possibly non-zero qualification probability:
/// {o : MinDist(u(o), q) <= min_{o'} MaxDist(u(o'), q)}. The tree must index
/// uncertainty regions keyed by object id. Node/leaf accesses are charged to
/// the tree's metrics.
///
/// Step-1 parity contract: the returned set equals (as a set of ids) the
/// PV-index's and UV-index's minmax-pruned answers and the linear-scan
/// oracle pv::Step1BruteForce for every query point — the block-kernel
/// rewrite of the octree backends must not disturb this. Asserted across
/// all backends by tests/hotpath_test.cc.
std::vector<uint64_t> PnnStep1BranchAndPrune(const RStarTree& tree,
                                             const geom::Point& q);

}  // namespace pvdb::rtree

#endif  // PVDB_RTREE_RTREE_PNN_H_
