// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/rtree/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

namespace pvdb::rtree {
namespace {

// Page size used for the leaf-I/O charge model (matches storage::kPageSize;
// kept local so the R-tree has no storage dependency).
constexpr size_t kIoPageSize = 4096;

// Enough levels for any realistic tree (fanout >= 2 → 2^32 entries).
constexpr int kMaxLevels = 32;

double Enlargement(const pvdb::geom::Rect& mbr, const pvdb::geom::Rect& key) {
  return pvdb::geom::Rect::Union(mbr, key).Volume() - mbr.Volume();
}

double OverlapVolume(const pvdb::geom::Rect& a, const pvdb::geom::Rect& b) {
  if (!a.Intersects(b)) return 0.0;
  return pvdb::geom::Rect::Intersection(a, b).Volume();
}

}  // namespace

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

struct RStarTree::Node {
  explicit Node(int dim, int lvl) : level(lvl), mbr(geom::Rect::Cube(dim, 0, 0)) {}

  bool is_leaf() const { return level == 0; }
  size_t count() const { return is_leaf() ? entries.size() : children.size(); }

  void RecomputeMbr() {
    if (is_leaf()) {
      if (entries.empty()) return;
      geom::Rect box = entries[0].key;
      for (size_t i = 1; i < entries.size(); ++i) {
        box = geom::Rect::Union(box, entries[i].key);
      }
      mbr = box;
    } else {
      if (children.empty()) return;
      geom::Rect box = children[0]->mbr;
      for (size_t i = 1; i < children.size(); ++i) {
        box = geom::Rect::Union(box, children[i]->mbr);
      }
      mbr = box;
    }
  }

  int level;  // 0 = leaf
  geom::Rect mbr;
  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;  // internal nodes
  std::vector<Entry> entries;                   // leaves
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

RStarTree::RStarTree(int dim, RStarOptions options)
    : dim_(dim), options_(options) {
  PVDB_CHECK(dim >= 1 && dim <= geom::kMaxDim);
  PVDB_CHECK(options_.max_entries >= 4);
  PVDB_CHECK(options_.min_entries >= 2 &&
             options_.min_entries <= options_.max_entries / 2);
  PVDB_CHECK(options_.reinsert_count >= 1 &&
             options_.reinsert_count < options_.max_entries);
  root_ = std::make_unique<Node>(dim_, 0);
}

RStarTree::~RStarTree() = default;
RStarTree::RStarTree(RStarTree&&) noexcept = default;
RStarTree& RStarTree::operator=(RStarTree&&) noexcept = default;

size_t RStarTree::LeafEntryBytes() const {
  return sizeof(uint64_t) + 2 * sizeof(double) * static_cast<size_t>(dim_);
}

int RStarTree::height() const { return root_->level + 1; }

void RStarTree::ChargeLeafIo(const Node* leaf) const {
  metrics_.Increment(RTreeCounters::kLeafAccesses);
  const size_t bytes = std::max<size_t>(1, leaf->entries.size()) *
                       LeafEntryBytes();
  const auto pages =
      static_cast<int64_t>((bytes + kIoPageSize - 1) / kIoPageSize);
  metrics_.Increment(RTreeCounters::kLeafPagesRead, pages);
}

// ---------------------------------------------------------------------------
// ChooseSubtree (R* heuristics)
// ---------------------------------------------------------------------------

RStarTree::Node* RStarTree::ChooseSubtree(const geom::Rect& key,
                                          int target_level) {
  Node* node = root_.get();
  PVDB_CHECK(node->level >= target_level);
  while (node->level > target_level) {
    auto& kids = node->children;
    PVDB_DCHECK(!kids.empty());
    size_t best = 0;
    if (node->level == 1) {
      // Children are leaves: minimum overlap enlargement among the
      // `overlap_candidates` children with least area enlargement.
      std::vector<size_t> order(kids.size());
      for (size_t i = 0; i < kids.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return Enlargement(kids[a]->mbr, key) < Enlargement(kids[b]->mbr, key);
      });
      const size_t candidates = std::min<size_t>(
          order.size(), static_cast<size_t>(options_.overlap_candidates));
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t ci = 0; ci < candidates; ++ci) {
        const size_t i = order[ci];
        const geom::Rect grown = geom::Rect::Union(kids[i]->mbr, key);
        double overlap_delta = 0.0;
        for (size_t j = 0; j < kids.size(); ++j) {
          if (j == i) continue;
          overlap_delta += OverlapVolume(grown, kids[j]->mbr) -
                           OverlapVolume(kids[i]->mbr, kids[j]->mbr);
        }
        const double enlarge = Enlargement(kids[i]->mbr, key);
        const double area = kids[i]->mbr.Volume();
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
          best = i;
        }
      }
    } else {
      // Children are internal: minimum area enlargement, ties by area.
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < kids.size(); ++i) {
        const double enlarge = Enlargement(kids[i]->mbr, key);
        const double area = kids[i]->mbr.Volume();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best_enlarge = enlarge;
          best_area = area;
          best = i;
        }
      }
    }
    node = kids[best].get();
  }
  return node;
}

// ---------------------------------------------------------------------------
// Insertion with forced reinsertion
// ---------------------------------------------------------------------------

void RStarTree::Insert(const geom::Rect& key, uint64_t value) {
  PVDB_CHECK(key.dim() == dim_);
  bool reinserted_levels[kMaxLevels] = {false};
  InsertAtLevel(key, value, nullptr, 0, reinserted_levels);
  ++size_;
}

void RStarTree::InsertAtLevel(const geom::Rect& key, uint64_t value,
                              std::unique_ptr<Node> subtree, int level,
                              bool* reinserted_levels) {
  const int host_level = subtree ? level + 1 : 0;
  Node* host = ChooseSubtree(key, host_level);
  if (subtree) {
    subtree->parent = host;
    host->children.push_back(std::move(subtree));
  } else {
    host->entries.push_back(Entry{key, value});
  }
  if (host->count() == 1) {
    host->mbr = key;
  } else {
    host->mbr = geom::Rect::Union(host->mbr, key);
  }
  AdjustUpward(host);
  if (host->count() > static_cast<size_t>(options_.max_entries)) {
    OverflowTreatment(host, reinserted_levels);
  }
}

void RStarTree::AdjustUpward(Node* node) {
  for (Node* p = node->parent; p != nullptr; p = p->parent) {
    p->mbr = geom::Rect::Union(p->mbr, node->mbr);
    node = p;
  }
}

void RStarTree::OverflowTreatment(Node* node, bool* reinserted_levels) {
  PVDB_DCHECK(node->level < kMaxLevels);
  if (node != root_.get() && !reinserted_levels[node->level]) {
    reinserted_levels[node->level] = true;
    ReinsertEntries(node, reinserted_levels);
  } else {
    SplitNode(node, reinserted_levels);
  }
}

void RStarTree::ReinsertEntries(Node* node, bool* reinserted_levels) {
  const geom::Point center = node->mbr.Center();
  const int p = std::min<int>(options_.reinsert_count,
                              static_cast<int>(node->count()) -
                                  options_.min_entries);
  if (p <= 0) {
    SplitNode(node, reinserted_levels);
    return;
  }

  if (node->is_leaf()) {
    std::vector<size_t> order(node->entries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return center.DistanceSqTo(node->entries[a].key.Center()) >
             center.DistanceSqTo(node->entries[b].key.Center());
    });
    std::vector<Entry> evicted;
    std::vector<bool> evict(node->entries.size(), false);
    for (int i = 0; i < p; ++i) {
      evict[order[static_cast<size_t>(i)]] = true;
      evicted.push_back(node->entries[order[static_cast<size_t>(i)]]);
    }
    std::vector<Entry> kept;
    kept.reserve(node->entries.size() - static_cast<size_t>(p));
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (!evict[i]) kept.push_back(node->entries[i]);
    }
    node->entries = std::move(kept);
    node->RecomputeMbr();
    AdjustUpward(node);
    // Close reinsert: nearest evicted entries first.
    std::reverse(evicted.begin(), evicted.end());
    for (const Entry& e : evicted) {
      InsertAtLevel(e.key, e.value, nullptr, 0, reinserted_levels);
    }
  } else {
    std::vector<size_t> order(node->children.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return center.DistanceSqTo(node->children[a]->mbr.Center()) >
             center.DistanceSqTo(node->children[b]->mbr.Center());
    });
    std::vector<std::unique_ptr<Node>> evicted;
    std::vector<bool> evict(node->children.size(), false);
    for (int i = 0; i < p; ++i) {
      evict[order[static_cast<size_t>(i)]] = true;
    }
    std::vector<std::unique_ptr<Node>> kept;
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (evict[i]) {
        evicted.push_back(std::move(node->children[i]));
      } else {
        kept.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(kept);
    node->RecomputeMbr();
    AdjustUpward(node);
    std::reverse(evicted.begin(), evicted.end());
    for (auto& sub : evicted) {
      const geom::Rect key = sub->mbr;
      const int sub_level = sub->level;
      InsertAtLevel(key, 0, std::move(sub), sub_level, reinserted_levels);
    }
  }
}

// ---------------------------------------------------------------------------
// R* split
// ---------------------------------------------------------------------------

namespace {

// One candidate distribution over a sorted item sequence.
struct SplitChoice {
  int axis = 0;
  bool by_upper = false;  // sorted by hi instead of lo
  size_t split_at = 0;    // first group = items [0, split_at)
  double overlap = std::numeric_limits<double>::infinity();
  double area = std::numeric_limits<double>::infinity();
};

// Evaluates all distributions of `rects` (already sorted) and folds the best
// into `best`; also accumulates the margin sum for axis selection.
void EvaluateDistributions(const std::vector<pvdb::geom::Rect>& rects,
                           size_t min_entries, int axis, bool by_upper,
                           double* margin_sum, SplitChoice* best) {
  const size_t n = rects.size();
  std::vector<pvdb::geom::Rect> prefix(n, rects[0]);
  std::vector<pvdb::geom::Rect> suffix(n, rects[n - 1]);
  for (size_t i = 1; i < n; ++i) {
    prefix[i] = pvdb::geom::Rect::Union(prefix[i - 1], rects[i]);
  }
  for (size_t i = n - 1; i-- > 0;) {
    suffix[i] = pvdb::geom::Rect::Union(suffix[i + 1], rects[i]);
  }
  for (size_t k = min_entries; k + min_entries <= n; ++k) {
    const pvdb::geom::Rect& g1 = prefix[k - 1];
    const pvdb::geom::Rect& g2 = suffix[k];
    *margin_sum += g1.Margin() + g2.Margin();
    const double overlap = OverlapVolume(g1, g2);
    const double area = g1.Volume() + g2.Volume();
    if (overlap < best->overlap ||
        (overlap == best->overlap && area < best->area)) {
      best->overlap = overlap;
      best->area = area;
      best->axis = axis;
      best->by_upper = by_upper;
      best->split_at = k;
    }
  }
}

}  // namespace

void RStarTree::SplitNode(Node* node, bool* reinserted_levels) {
  const size_t n = node->count();
  const auto m = static_cast<size_t>(options_.min_entries);
  PVDB_DCHECK(n >= 2 * m);

  // Collect item keys.
  std::vector<geom::Rect> keys;
  keys.reserve(n);
  if (node->is_leaf()) {
    for (const Entry& e : node->entries) keys.push_back(e.key);
  } else {
    for (const auto& c : node->children) keys.push_back(c->mbr);
  }

  // Choose split axis by minimum total margin, then the distribution with
  // minimum overlap (ties: minimum combined area) on that axis.
  SplitChoice best_per_axis[geom::kMaxDim][2];
  double margins[geom::kMaxDim];
  std::vector<size_t> orders[geom::kMaxDim][2];
  for (int axis = 0; axis < dim_; ++axis) {
    margins[axis] = 0.0;
    for (int upper = 0; upper < 2; ++upper) {
      auto& order = orders[axis][upper];
      order.resize(n);
      for (size_t i = 0; i < n; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const double ka = upper ? keys[a].hi(axis) : keys[a].lo(axis);
        const double kb = upper ? keys[b].hi(axis) : keys[b].lo(axis);
        if (ka != kb) return ka < kb;
        return upper ? keys[a].lo(axis) < keys[b].lo(axis)
                     : keys[a].hi(axis) < keys[b].hi(axis);
      });
      std::vector<geom::Rect> sorted;
      sorted.reserve(n);
      for (size_t i : order) sorted.push_back(keys[i]);
      EvaluateDistributions(sorted, m, axis, upper == 1, &margins[axis],
                            &best_per_axis[axis][upper]);
    }
  }
  int split_axis = 0;
  for (int axis = 1; axis < dim_; ++axis) {
    if (margins[axis] < margins[split_axis]) split_axis = axis;
  }
  const SplitChoice& lo_choice = best_per_axis[split_axis][0];
  const SplitChoice& hi_choice = best_per_axis[split_axis][1];
  const SplitChoice& choice =
      (hi_choice.overlap < lo_choice.overlap ||
       (hi_choice.overlap == lo_choice.overlap &&
        hi_choice.area < lo_choice.area))
          ? hi_choice
          : lo_choice;
  const auto& order = orders[split_axis][choice.by_upper ? 1 : 0];

  // Distribute: first group stays in `node`, second moves to `sibling`.
  auto sibling = std::make_unique<Node>(dim_, node->level);
  if (node->is_leaf()) {
    std::vector<Entry> group1, group2;
    for (size_t i = 0; i < n; ++i) {
      (i < choice.split_at ? group1 : group2)
          .push_back(node->entries[order[i]]);
    }
    node->entries = std::move(group1);
    sibling->entries = std::move(group2);
  } else {
    std::vector<std::unique_ptr<Node>> group1, group2;
    for (size_t i = 0; i < n; ++i) {
      (i < choice.split_at ? group1 : group2)
          .push_back(std::move(node->children[order[i]]));
    }
    node->children = std::move(group1);
    sibling->children = std::move(group2);
    for (auto& c : node->children) c->parent = node;
    for (auto& c : sibling->children) c->parent = sibling.get();
  }
  node->RecomputeMbr();
  sibling->RecomputeMbr();

  if (node == root_.get()) {
    auto new_root = std::make_unique<Node>(dim_, node->level + 1);
    PVDB_CHECK(new_root->level < kMaxLevels);
    new_root->mbr = geom::Rect::Union(node->mbr, sibling->mbr);
    sibling->parent = new_root.get();
    root_->parent = new_root.get();
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  sibling->parent = parent;
  parent->children.push_back(std::move(sibling));
  parent->RecomputeMbr();
  AdjustUpward(parent);
  if (parent->count() > static_cast<size_t>(options_.max_entries)) {
    OverflowTreatment(parent, reinserted_levels);
  }
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

namespace {

// Finds the leaf holding (key, value); depth-first over intersecting nodes.
RStarTree::Node* FindLeafRec(RStarTree::Node* node, const pvdb::geom::Rect& key,
                             uint64_t value);

}  // namespace

bool RStarTree::Erase(const geom::Rect& key, uint64_t value) {
  PVDB_CHECK(key.dim() == dim_);
  if (size_ == 0) return false;
  Node* leaf = FindLeafRec(root_.get(), key, value);
  if (leaf == nullptr) return false;
  auto it = std::find_if(leaf->entries.begin(), leaf->entries.end(),
                         [&](const Entry& e) {
                           return e.value == value && e.key == key;
                         });
  PVDB_DCHECK(it != leaf->entries.end());
  leaf->entries.erase(it);
  --size_;
  CondenseTree(leaf);
  return true;
}

namespace {

RStarTree::Node* FindLeafRec(RStarTree::Node* node, const pvdb::geom::Rect& key,
                             uint64_t value) {
  if (node->is_leaf()) {
    for (const RStarTree::Entry& e : node->entries) {
      if (e.value == value && e.key == key) return node;
    }
    return nullptr;
  }
  for (const auto& c : node->children) {
    if (!c->mbr.ContainsRect(key)) continue;
    if (RStarTree::Node* found = FindLeafRec(c.get(), key, value)) return found;
  }
  return nullptr;
}

}  // namespace

void RStarTree::CondenseTree(Node* leaf) {
  std::vector<std::unique_ptr<Node>> orphans;
  Node* node = leaf;
  while (node != root_.get()) {
    Node* parent = node->parent;
    if (node->count() < static_cast<size_t>(options_.min_entries)) {
      // Detach the under-full node; its contents are reinserted below.
      auto it = std::find_if(parent->children.begin(), parent->children.end(),
                             [&](const std::unique_ptr<Node>& c) {
                               return c.get() == node;
                             });
      PVDB_DCHECK(it != parent->children.end());
      orphans.push_back(std::move(*it));
      parent->children.erase(it);
    } else {
      node->RecomputeMbr();
    }
    node = parent;
  }
  root_->RecomputeMbr();

  bool reinserted_levels[kMaxLevels] = {false};
  for (auto& orphan : orphans) {
    if (orphan->is_leaf()) {
      for (const Entry& e : orphan->entries) {
        InsertAtLevel(e.key, e.value, nullptr, 0, reinserted_levels);
      }
    } else {
      for (auto& sub : orphan->children) {
        const geom::Rect key = sub->mbr;
        const int sub_level = sub->level;
        InsertAtLevel(key, 0, std::move(sub), sub_level, reinserted_levels);
      }
    }
  }

  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf() && root_->children.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->children[0]);
    child->parent = nullptr;
    root_ = std::move(child);
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

namespace {

void SearchRec(const RStarTree::Node* node, const pvdb::geom::Rect& range,
               const RStarTree* tree, MetricRegistry* metrics,
               const std::function<void(const RStarTree::Entry&)>& emit,
               const std::function<void(const RStarTree::Node*)>& charge_leaf) {
  metrics->Increment(RTreeCounters::kNodeAccesses);
  if (node->is_leaf()) {
    charge_leaf(node);
    for (const RStarTree::Entry& e : node->entries) {
      if (e.key.Intersects(range)) emit(e);
    }
    return;
  }
  for (const auto& c : node->children) {
    if (c->mbr.Intersects(range)) {
      SearchRec(c.get(), range, tree, metrics, emit, charge_leaf);
    }
  }
}

}  // namespace

std::vector<RStarTree::Entry> RStarTree::SearchEntries(
    const geom::Rect& range) const {
  std::vector<Entry> out;
  if (size_ == 0) return out;
  SearchRec(
      root_.get(), range, this, &metrics_,
      [&](const Entry& e) { out.push_back(e); },
      [&](const Node* leaf) { ChargeLeafIo(leaf); });
  return out;
}

std::vector<uint64_t> RStarTree::Search(const geom::Rect& range) const {
  std::vector<uint64_t> out;
  if (size_ == 0) return out;
  SearchRec(
      root_.get(), range, this, &metrics_,
      [&](const Entry& e) { out.push_back(e.value); },
      [&](const Node* leaf) { ChargeLeafIo(leaf); });
  return out;
}

std::vector<uint64_t> RStarTree::SearchPoint(const geom::Point& p) const {
  return Search(geom::Rect::FromPoint(p));
}

// ---------------------------------------------------------------------------
// Incremental nearest-neighbor browsing (Hjaltason & Samet)
// ---------------------------------------------------------------------------

RStarTree::NearestIterator::NearestIterator(const RStarTree* tree,
                                            const geom::Point& q)
    : tree_(tree), query_(q) {
  if (tree_->size() > 0) {
    heap_.push(HeapItem{geom::MinDist(tree_->root_->mbr, q), tree_->root_.get(),
                        tree_->root_->mbr, 0});
  }
  Advance();
}

void RStarTree::NearestIterator::Advance() {
  while (!heap_.empty() && heap_.top().node != nullptr) {
    const HeapItem top = heap_.top();
    heap_.pop();
    const Node* node = static_cast<const Node*>(top.node);
    tree_->metrics_.Increment(RTreeCounters::kNodeAccesses);
    if (node->is_leaf()) {
      tree_->ChargeLeafIo(node);
      for (const Entry& e : node->entries) {
        heap_.push(HeapItem{geom::MinDist(e.key, query_), nullptr, e.key,
                            e.value});
      }
    } else {
      for (const auto& c : node->children) {
        heap_.push(HeapItem{geom::MinDist(c->mbr, query_), c.get(), c->mbr, 0});
      }
    }
  }
}

RStarTree::NearestIterator::Item RStarTree::NearestIterator::Next() {
  PVDB_CHECK(HasNext());
  const HeapItem top = heap_.top();
  heap_.pop();
  Advance();
  return Item{top.value, top.dist, top.key};
}

RStarTree::NearestIterator RStarTree::BrowseNearest(const geom::Point& q) const {
  PVDB_CHECK(q.dim() == dim_);
  return NearestIterator(this, q);
}

std::vector<RStarTree::NearestIterator::Item> RStarTree::KNearest(
    const geom::Point& q, int k) const {
  std::vector<NearestIterator::Item> out;
  NearestIterator it = BrowseNearest(q);
  while (static_cast<int>(out.size()) < k && it.HasNext()) {
    out.push_back(it.Next());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Invariant checking (tests)
// ---------------------------------------------------------------------------

namespace {

bool CheckRec(const RStarTree::Node* node, const RStarTree::Node* parent,
              int min_entries, int max_entries, bool is_root,
              size_t* entry_count) {
  if (node->parent != parent) return false;
  const size_t n = node->count();
  if (!is_root) {
    if (n < static_cast<size_t>(min_entries) ||
        n > static_cast<size_t>(max_entries)) {
      return false;
    }
  } else if (n > static_cast<size_t>(max_entries)) {
    return false;
  }
  if (node->is_leaf()) {
    *entry_count += node->entries.size();
    for (const RStarTree::Entry& e : node->entries) {
      if (!node->mbr.ContainsRect(e.key)) return false;
    }
    return true;
  }
  for (const auto& c : node->children) {
    if (c->level != node->level - 1) return false;
    if (!node->mbr.ContainsRect(c->mbr)) return false;
    if (!CheckRec(c.get(), node, min_entries, max_entries, false,
                  entry_count)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool RStarTree::CheckInvariants() const {
  size_t entries = 0;
  if (!CheckRec(root_.get(), nullptr, options_.min_entries,
                options_.max_entries, true, &entries)) {
    return false;
  }
  return entries == size_;
}

}  // namespace pvdb::rtree
