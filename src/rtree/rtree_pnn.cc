// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/rtree/rtree_pnn.h"

#include <algorithm>
#include <limits>

namespace pvdb::rtree {

std::vector<uint64_t> PnnStep1BranchAndPrune(const RStarTree& tree,
                                             const geom::Point& q) {
  std::vector<uint64_t> out;
  if (tree.size() == 0) return out;

  // Browse entries in MinDist order while tightening τ with entry MaxDists.
  // Any subtree (hence any entry) with MinDist > τ is pruned by the browse
  // order: once the next-nearest MinDist exceeds τ, no later entry can
  // qualify or improve τ (MaxDist >= MinDist).
  double tau_sq = std::numeric_limits<double>::infinity();
  struct Candidate {
    uint64_t id;
    double min_sq;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(32);  // typical post-prune browse depth; avoids the
                           // first few regrowths on the serving path
  auto it = tree.BrowseNearest(q);
  while (it.HasNext()) {
    const auto item = it.Next();
    const double min_sq = item.dist * item.dist;
    if (min_sq > tau_sq) break;
    tau_sq = std::min(tau_sq, geom::MaxDistSq(item.key, q));
    candidates.push_back({item.value, min_sq});
  }
  for (const Candidate& c : candidates) {
    if (c.min_sq <= tau_sq) out.push_back(c.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pvdb::rtree
