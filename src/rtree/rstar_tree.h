// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// In-memory R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990).
// Three roles in the reproduction, exactly as in the paper's experiments:
//   1. the retrieval baseline of Cheng et al. [8] for PNNQ Step 1
//      (rtree_pnn.h drives the branch-and-prune traversal);
//   2. the incremental nearest-neighbor provider (Hjaltason & Samet [39])
//      used by the FS/IS chooseCSet strategies (Section V-A);
//   3. the bootstrap index used while building the PV- and UV-indexes.
//
// Leaf accesses are charged as disk-page I/O (ceil(entry bytes / 4 KiB) per
// visited leaf) to mirror the paper's cost model where non-leaf levels are
// pinned in main memory.

#ifndef PVDB_RTREE_RSTAR_TREE_H_
#define PVDB_RTREE_RSTAR_TREE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/stats.h"
#include "src/geom/distance.h"
#include "src/geom/rect.h"

namespace pvdb::rtree {

/// R*-tree tuning knobs. Defaults follow the paper (fanout 100) and the
/// original R* recommendations (40% minimum fill, 30% forced reinsertion).
struct RStarOptions {
  int max_entries = 100;
  int min_entries = 40;
  int reinsert_count = 30;
  /// Entries whose area enlargement is considered for the minimum-overlap
  /// subtree choice (the R* "nearly minimum overlap" bound for large fanout).
  int overlap_candidates = 32;
};

/// Counter names exposed through metrics().
struct RTreeCounters {
  static constexpr const char* kNodeAccesses = "rtree.node_accesses";
  static constexpr const char* kLeafAccesses = "rtree.leaf_accesses";
  static constexpr const char* kLeafPagesRead = "rtree.leaf_pages_read";
};

/// Dynamic R*-tree keyed by rectangles with uint64 payloads.
class RStarTree {
 public:
  /// One stored (key, value) pair.
  struct Entry {
    geom::Rect key;
    uint64_t value;
  };

  /// Tree node; definition is an implementation detail (rstar_tree.cc).
  struct Node;

  explicit RStarTree(int dim, RStarOptions options = RStarOptions());
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;

  /// Inserts a (key, value) pair. Duplicates are allowed.
  void Insert(const geom::Rect& key, uint64_t value);

  /// Removes one pair matching both key and value; false if absent.
  bool Erase(const geom::Rect& key, uint64_t value);

  /// Values whose keys intersect `range`.
  std::vector<uint64_t> Search(const geom::Rect& range) const;

  /// Entries (key + value) whose keys intersect `range`.
  std::vector<Entry> SearchEntries(const geom::Rect& range) const;

  /// Values whose keys contain point `p`.
  std::vector<uint64_t> SearchPoint(const geom::Point& p) const;

  /// Incremental distance browsing [39]: entries in non-decreasing order of
  /// MinDist(key, q). Valid while the tree is not modified.
  class NearestIterator {
   public:
    struct Item {
      uint64_t value;
      double dist;
      geom::Rect key;
    };

    /// True iff another entry remains.
    bool HasNext() const { return !heap_.empty(); }

    /// Pops the next-nearest entry. Requires HasNext().
    Item Next();

   private:
    friend class RStarTree;
    struct HeapItem {
      double dist;
      const void* node;  // internal node pointer; nullptr for an entry
      geom::Rect key;
      uint64_t value;
      bool operator>(const HeapItem& o) const { return dist > o.dist; }
    };
    NearestIterator(const RStarTree* tree, const geom::Point& q);
    void Advance();

    const RStarTree* tree_;
    geom::Point query_;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  };

  /// Begins incremental NN browsing from query point `q`.
  NearestIterator BrowseNearest(const geom::Point& q) const;

  /// The k entries nearest to `q` by MinDist (fewer if the tree is smaller).
  std::vector<NearestIterator::Item> KNearest(const geom::Point& q,
                                              int k) const;

  /// Number of stored entries.
  size_t size() const { return size_; }

  /// Tree height (1 = root is a leaf).
  int height() const;

  /// Bytes one leaf entry occupies on disk (id + 2·d coordinates).
  size_t LeafEntryBytes() const;

  /// I/O + traversal counters (mutable so const queries can account).
  MetricRegistry& metrics() const { return metrics_; }

  /// Checks structural invariants (fill factors, MBR containment); test use.
  bool CheckInvariants() const;

 private:
  Node* ChooseSubtree(const geom::Rect& key, int target_level);
  void InsertAtLevel(const geom::Rect& key, uint64_t value,
                     std::unique_ptr<Node> subtree, int level,
                     bool* reinserted_levels);
  void OverflowTreatment(Node* node, bool* reinserted_levels);
  void ReinsertEntries(Node* node, bool* reinserted_levels);
  void SplitNode(Node* node, bool* reinserted_levels);
  void AdjustUpward(Node* node);
  void CondenseTree(Node* leaf);
  void ChargeLeafIo(const Node* leaf) const;

  int dim_;
  RStarOptions options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  mutable MetricRegistry metrics_;
};

}  // namespace pvdb::rtree

#endif  // PVDB_RTREE_RSTAR_TREE_H_
