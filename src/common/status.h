// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Status / Result<T>: the library-wide error model (RocksDB/Arrow idiom).
// pvdb never throws; fallible operations return Status (or Result<T> when a
// value is produced). Callers either handle the error or propagate it with
// PVDB_RETURN_NOT_OK.

#ifndef PVDB_COMMON_STATUS_H_
#define PVDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace pvdb {

/// Machine-readable error category carried by Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotSupported = 8,
  kInternal = 9,
  /// A dependency (a shard server, a network peer) could not be reached
  /// within the caller's deadline/retry budget. Distinct from kIOError:
  /// the operation is safe to retry and other answers in the same batch
  /// may still be served.
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// The OK status is cheap to construct and copy (no allocation); error
/// statuses carry a message describing the failure site.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// Error category (kOk when ok()).
  StatusCode code() const { return code_; }
  /// Error message; empty for OK statuses.
  const std::string& message() const { return msg_; }
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value-or-error sum type. Holds T on success, Status on failure.
///
/// Access to the value of a failed Result is a programming error and aborts
/// (checked in all build types): call ok() / status() first, or propagate via
/// PVDB_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status (implicit, enables
  /// `return Status::NotFound(...)`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    PVDB_CHECK(!std::get<Status>(repr_).ok());
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value; aborts if !ok().
  const T& value() const& {
    PVDB_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    PVDB_CHECK(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    PVDB_CHECK(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace pvdb

/// Propagates a non-OK Status to the caller.
#define PVDB_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::pvdb::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error status from the enclosing function.
#define PVDB_ASSIGN_OR_RETURN(lhs, expr)          \
  auto PVDB_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!PVDB_CONCAT_(_res_, __LINE__).ok())        \
    return PVDB_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PVDB_CONCAT_(_res_, __LINE__)).value()

#define PVDB_CONCAT_INNER_(a, b) a##b
#define PVDB_CONCAT_(a, b) PVDB_CONCAT_INNER_(a, b)

#endif  // PVDB_COMMON_STATUS_H_
