// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Per-query trace spans for the serving engine: nanosecond stage timers
// over the pipeline the paper's cost model decomposes (plan / Step-1 prune /
// leaf-cache / Step-2 sweep / result merge), plus a Tracer that turns
// completed traces into structured JSON lines under 1-in-N sampling and a
// slow-query latency threshold.
//
// The timing side is built to be left on in production: a ScopedStageTimer
// holding a null sink reads no clock at all, and an active one costs two
// steady_clock reads per stage. The engine threads the active StageTimings
// through pv::QueryScratch so library-level code (the Step-2 evaluator)
// attributes its own time without the engine guessing at call sites.

#ifndef PVDB_COMMON_TRACE_H_
#define PVDB_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace pvdb {

/// The serving pipeline's stages, in execution order. Indexes StageTimings
/// and the engine's per-stage histograms.
enum class QueryStage : int {
  /// Leaf location / backend planning (FindLeaf descent; on the batched
  /// path also the group's candidate-record resolution).
  kPlan = 0,
  /// Leaf-cache lookup, miss-path leaf block read, and insertion.
  kLeafCache = 1,
  /// Step-1 minmax pruning (block kernels or the backend's full Step 1).
  kStep1Prune = 2,
  /// Step-2 probability evaluation (per-query or group sweep; charged by
  /// the evaluator itself through QueryScratch).
  kStep2 = 3,
  /// Answer assembly: distributing group results / finalizing statuses.
  kMerge = 4,
};

inline constexpr int kNumQueryStages = 5;

/// Stable lowercase stage name ("plan", "leaf_cache", ...).
const char* QueryStageName(QueryStage stage);

/// One query's (or one group sweep's) per-stage nanosecond attribution.
struct StageTimings {
  std::array<int64_t, kNumQueryStages> ns{};

  void Add(QueryStage stage, int64_t nanos) {
    ns[static_cast<size_t>(stage)] += nanos;
  }
  int64_t total_ns() const {
    int64_t t = 0;
    for (int64_t v : ns) t += v;
    return t;
  }
  void MergeFrom(const StageTimings& other) {
    for (size_t i = 0; i < ns.size(); ++i) ns[i] += other.ns[i];
  }
};

/// Monotonic now() in nanoseconds (steady_clock; vDSO-fast on Linux).
inline int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Charges its lifetime to one stage of `sink`; a null sink disables the
/// timer entirely (no clock reads — the disabled-tracing fast path).
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimings* sink, QueryStage stage)
      : sink_(sink), stage_(stage), start_(sink ? TraceNowNs() : 0) {}
  ~ScopedStageTimer() {
    if (sink_ != nullptr) sink_->Add(stage_, TraceNowNs() - start_);
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimings* sink_;
  QueryStage stage_;
  int64_t start_;
};

/// Sequential stage attribution with one clock read per boundary — half
/// the reads of back-to-back ScopedStageTimers when stages run strictly in
/// sequence (each Lap's start is the previous Lap's end). A null sink
/// reads no clock at all.
class StageLap {
 public:
  explicit StageLap(StageTimings* sink)
      : sink_(sink), last_(sink ? TraceNowNs() : 0) {}

  /// Charges the time since construction (or since the previous Lap) to
  /// `stage`.
  void Lap(QueryStage stage) {
    if (sink_ == nullptr) return;
    const int64_t now = TraceNowNs();
    sink_->Add(stage, now - last_);
    last_ = now;
  }

 private:
  StageTimings* sink_;
  int64_t last_;
};

/// Trace emission tunables (QueryEngineOptions::trace).
struct TraceOptions {
  /// Master switch for JSON-line emission. Stage timing itself is governed
  /// by QueryEngineOptions::stage_timing — traces need it on to carry data.
  bool enabled = false;
  /// Emit every N-th completed query trace (deterministic: the k-th
  /// completed trace is sampled iff k % N == 0). 0 and 1 both mean every
  /// query.
  uint32_t sample_every_n = 64;
  /// Queries at or above this end-to-end latency are emitted regardless of
  /// sampling, tagged "slow": true. Default: never.
  double slow_query_ms = std::numeric_limits<double>::infinity();
  /// Receives each emitted line (no trailing newline). Must be thread-safe:
  /// per-query-path traces emit from pool workers. Default: stderr, one
  /// line per call.
  std::function<void(const std::string&)> sink;
};

/// What a completed query hands the Tracer.
struct QueryTraceInfo {
  uint64_t seq = 0;
  double latency_ms = 0.0;
  StageTimings stages;
  bool cache_hit = false;
  bool ok = true;
  size_t results = 0;
  const char* backend = "";
  /// Query kind label ("pnn", "topk", "threshold", "range", "trajectory");
  /// trajectory queries emit one trace per path sample.
  const char* kind = "pnn";
};

/// Decides which completed traces to emit and renders them as one JSON
/// object per line:
///
///   {"type":"query_trace","seq":64,"sampled":true,"slow":false,
///    "backend":"snapshot","kind":"pnn","ok":true,"cache_hit":true,
///    "results":3,"latency_ms":1.234,"stages_us":{"plan":12.4,
///    "leaf_cache":6.0,"step1_prune":4.1,"step2":980.2,"merge":0.3}}
///
/// Thread-safe; the sampling counter is shared so a multi-worker engine
/// still emits exactly 1-in-N of its completed traces.
class Tracer {
 public:
  explicit Tracer(TraceOptions options);

  bool enabled() const { return options_.enabled; }

  /// Deterministic sampling decision for the next completed trace.
  bool SampleNext();

  /// Hot-path split of MaybeEmit: consumes one sampling slot, counts slow
  /// queries, and says whether a line will be written — so callers skip
  /// assembling QueryTraceInfo entirely for the common silent case.
  struct EmitDecision {
    bool sampled = false;
    bool slow = false;
    bool emit = false;
  };
  EmitDecision Decide(double latency_ms);

  /// Writes the line for a Decide() that returned emit. Must be paired
  /// with exactly that decision (Decide already did the bookkeeping).
  void EmitDecided(const QueryTraceInfo& info, const EmitDecision& decision);

  /// Emits `info` when sampled or slow; returns whether a line was written.
  bool MaybeEmit(const QueryTraceInfo& info);

  /// The JSON line for `info` (exposed for golden-format tests).
  static std::string FormatLine(const QueryTraceInfo& info, bool sampled,
                                bool slow);

  int64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  int64_t slow_count() const {
    return slow_.load(std::memory_order_relaxed);
  }

 private:
  TraceOptions options_;
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<int64_t> emitted_{0};
  std::atomic<int64_t> slow_{0};
};

}  // namespace pvdb

#endif  // PVDB_COMMON_TRACE_H_
