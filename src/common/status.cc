// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/status.h"

namespace pvdb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace pvdb
