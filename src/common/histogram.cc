// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace pvdb {

int HistogramData::BucketIndex(int64_t value) {
  if (value < kSubBuckets) {
    return value < 0 ? 0 : static_cast<int>(value);
  }
  // msb >= kSubBucketBits; offset spreads [2^msb, 2^(msb+1)) over
  // kSubBuckets linear cells of width 2^(msb - kSubBucketBits).
  const int msb = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int64_t offset =
      (value - (int64_t{1} << msb)) >> (msb - kSubBucketBits);
  return static_cast<int>(kSubBuckets +
                          int64_t{msb - kSubBucketBits} * kSubBuckets + offset);
}

int64_t HistogramData::BucketUpperBound(int index) {
  if (index < kSubBuckets) return index;
  const int r = index - static_cast<int>(kSubBuckets);
  const int msb = kSubBucketBits + r / static_cast<int>(kSubBuckets);
  const int64_t offset = r % kSubBuckets;
  const int64_t width = int64_t{1} << (msb - kSubBucketBits);
  return (int64_t{1} << msb) + (offset + 1) * width - 1;
}

void HistogramData::Record(int64_t value) {
  if (value < 0) value = 0;
  ++buckets_[static_cast<size_t>(BucketIndex(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t HistogramData::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Closest-rank over the cumulative bucket counts; the reported value is
  // the rank's bucket upper bound clamped into the exact observed range.
  const auto target = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative >= target) {
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

Histogram::Histogram() {
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<uint64_t>[]>(
        static_cast<size_t>(HistogramData::kBucketCount));
    for (int i = 0; i < HistogramData::kBucketCount; ++i) {
      s.buckets[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Shard& Histogram::ThisThreadShard() {
  // Round-robin shard assignment at first touch spreads threads evenly
  // regardless of thread-id hashing quality; a thread keeps its shard for
  // its lifetime, so its increments stay on warm lines.
  static std::atomic<uint32_t> next_slot{0};
  static thread_local uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return shards_[slot & (kShards - 1)];
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  Shard& s = ThisThreadShard();
  s.buckets[static_cast<size_t>(HistogramData::BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = s.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !s.min.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = s.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !s.max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData out;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const Shard& s : shards_) {
    const int64_t shard_count = s.count.load(std::memory_order_relaxed);
    if (shard_count == 0) continue;
    out.count_ += shard_count;
    out.sum_ += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    max = std::max(max, s.max.load(std::memory_order_relaxed));
    for (int i = 0; i < HistogramData::kBucketCount; ++i) {
      out.buckets_[static_cast<size_t>(i)] +=
          s.buckets[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    }
  }
  if (out.count_ > 0) {
    out.min_ = min;
    out.max_ = max;
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(INT64_MAX, std::memory_order_relaxed);
    s.max.store(INT64_MIN, std::memory_order_relaxed);
    for (int i = 0; i < HistogramData::kBucketCount; ++i) {
      s.buckets[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace pvdb
