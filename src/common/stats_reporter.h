// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Periodic metrics exporter: a background thread that renders a
// MetricRegistry (Prometheus text or one JSON line) on a fixed interval and
// hands it to a sink. The examples append the lines to a file; a future RPC
// front end serves the same strings from a /metrics handler. Stop() (and
// destruction) always emits one final export, so short-lived processes
// still publish their numbers.

#ifndef PVDB_COMMON_STATS_REPORTER_H_
#define PVDB_COMMON_STATS_REPORTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/stats.h"

namespace pvdb {

struct StatsReporterOptions {
  enum class Format { kJson, kPrometheus };

  std::chrono::milliseconds interval{1000};
  Format format = Format::kJson;
  /// Receives one rendered export per tick (and one final export at Stop).
  /// Called from the reporter thread; must be thread-safe with respect to
  /// the caller's own use of the sink target.
  std::function<void(const std::string&)> sink;
};

/// Owns the reporting thread. Start() is idempotent; Stop() (idempotent,
/// also run by the destructor) joins the thread after a final export. The
/// registry is borrowed and must outlive the reporter.
class StatsReporter {
 public:
  StatsReporter(const MetricRegistry* registry, StatsReporterOptions options);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  void Start();
  void Stop();

  int64_t reports() const { return reports_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void EmitOnce();

  const MetricRegistry* registry_;
  StatsReporterOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::atomic<int64_t> reports_{0};
  std::thread thread_;
};

}  // namespace pvdb

#endif  // PVDB_COMMON_STATS_REPORTER_H_
