// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Deterministic pseudo-random number generation. Every stochastic component
// in pvdb (data generators, pdf samplers, workloads) draws from an explicit
// Rng instance seeded by the caller, so all experiments and tests are
// reproducible bit-for-bit across runs and platforms.

#ifndef PVDB_COMMON_RANDOM_H_
#define PVDB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pvdb {

/// xoshiro256++ generator seeded through SplitMix64.
///
/// Small, fast, and high quality; not cryptographically secure (not needed
/// here). Copyable: copies continue the same stream independently.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit draw.
  uint64_t NextU64();

  /// Uniform draw in [0, bound) using rejection-free multiplication.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal draw (Marsaglia polar method, cached spare).
  double NextGaussian();

  /// Normal draw with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi);

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p = 0.5);

  /// Forks an independent child stream (seeded from this stream's output).
  Rng Fork();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace pvdb

#endif  // PVDB_COMMON_RANDOM_H_
