// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Mergeable log-linear (HDR-style) latency histogram for the serving path.
// Values are non-negative int64 counts of some unit (the engine records
// nanoseconds). Each power-of-two range [2^k, 2^(k+1)) is split into
// kSubBuckets linear sub-buckets, so any recorded value lands in a bucket
// whose width is at most value / kSubBuckets — quantile estimates carry a
// bounded relative error of 1/kSubBuckets (3.125%) and extraction walks the
// bucket array instead of copy-sorting a sample vector.
//
// Two layers:
//   * Histogram — the concurrent recorder. Record() is lock-free: threads
//     are spread over cacheline-padded shards of relaxed atomic bucket
//     counters, so concurrent workers recording the same histogram never
//     contend on a line. Snapshot() folds the shards into a plain
//     HistogramData.
//   * HistogramData — the plain (single-threaded) form: per-batch local
//     accumulation, shard folding, cross-histogram Merge, and percentile /
//     mean extraction. Same bucket layout everywhere, so any two of them
//     merge by bucketwise addition.

#ifndef PVDB_COMMON_HISTOGRAM_H_
#define PVDB_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace pvdb {

/// Plain bucket-array histogram: single-threaded recording and all
/// read-side math (percentiles, mean, merge). Histogram::Snapshot()
/// produces one; batch-local latency stats build one directly.
class HistogramData {
 public:
  /// Linear sub-buckets per power-of-two range; bounds the relative error
  /// of any percentile estimate by 1 / kSubBuckets.
  static constexpr int kSubBucketBits = 5;
  static constexpr int64_t kSubBuckets = int64_t{1} << kSubBucketBits;
  /// Values in [0, kSubBuckets) are exact; ranges [2^k, 2^(k+1)) for
  /// k in [kSubBucketBits, 62] get kSubBuckets buckets each.
  static constexpr int kBucketCount =
      static_cast<int>(kSubBuckets) +
      (62 - kSubBucketBits + 1) * static_cast<int>(kSubBuckets);

  /// The bucket index of `value` (negatives clamp to 0).
  static int BucketIndex(int64_t value);
  /// Inclusive upper bound of bucket `index` — the value a percentile
  /// estimate reports for ranks landing in that bucket (never under the
  /// true value, at most 1/kSubBuckets above it).
  static int64_t BucketUpperBound(int index);

  HistogramData() : buckets_(kBucketCount, 0) {}

  /// Adds one observation (not thread-safe; use Histogram for that).
  void Record(int64_t value);

  /// Adds another histogram's observations (bucketwise; exact).
  void Merge(const HistogramData& other);

  /// The p-th percentile (p in [0, 100]) by cumulative bucket walk, clamped
  /// to the exact observed [min, max]. 0 when empty. No sorting.
  int64_t Percentile(double p) const;

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

 private:
  friend class Histogram;

  std::vector<uint64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// The concurrent recorder: lock-free Record(), snapshot-based reads.
class Histogram {
 public:
  Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Adds one observation. Lock-free and wait-free apart from the min/max
  /// CAS refresh (which almost always succeeds first try at steady state):
  /// the calling thread picks its shard once (thread-local round-robin) and
  /// then only issues relaxed fetch_adds on that shard's cachelines.
  void Record(int64_t value);

  /// Folds every shard into one consistent-enough view. Concurrent
  /// recorders may land between the per-shard reads; each observation is
  /// counted at most once (relaxed snapshot semantics, standard for
  /// monitoring reads).
  HistogramData Snapshot() const;

  /// Resets every bucket to zero (concurrent Records may survive the wipe;
  /// harness-style use resets between phases, not under load).
  void Reset();

 private:
  /// Shards are padded to cachelines so two workers on different shards
  /// never false-share a counter line.
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
  };

  static constexpr int kShardBits = 3;
  static constexpr int kShards = 1 << kShardBits;  // 8

  Shard& ThisThreadShard();

  Shard shards_[kShards];
};

}  // namespace pvdb

#endif  // PVDB_COMMON_HISTOGRAM_H_
