// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// per-record checksum of the write-ahead log. Chosen over the snapshot
// container's FNV-1a because a log record's failure mode is different from
// a section's: WAL corruption is dominated by torn tails and single-burst
// media errors, exactly the classes CRC-32C detects with guarantees (all
// burst errors up to 32 bits, all odd-bit-count errors) where FNV offers
// only probabilistic coverage. Software slice-by-one table implementation —
// the WAL appends records of a few hundred bytes, so checksum cost is noise
// against the fsync that follows.

#ifndef PVDB_COMMON_CRC32C_H_
#define PVDB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace pvdb {

/// Extends `crc` with `data[0, n)`. Pass 0 to start a fresh checksum over
/// the first chunk; feed chunks in order to checksum a logical record that
/// is not contiguous in memory.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC-32C of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace pvdb

#endif  // PVDB_COMMON_CRC32C_H_
