// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace pvdb {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

MetricRegistry::MetricRegistry(MetricRegistry&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  counters_ = std::move(other.counters_);
}

MetricRegistry& MetricRegistry::operator=(MetricRegistry&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  counters_ = std::move(other.counters_);
  return *this;
}

MetricRegistry::Counter* MetricRegistry::FindOrCreateLocked(
    const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

MetricRegistry::Counter* MetricRegistry::Register(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreateLocked(name);
}

void MetricRegistry::Increment(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  FindOrCreateLocked(name)->Increment(delta);
}

int64_t MetricRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
}

std::map<std::string, int64_t> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

double PercentileSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

}  // namespace pvdb
