// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <iterator>

namespace pvdb {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  // Welford: both updates use the deviation from the running mean, so the
  // accumulator stays on the scale of the variance, not of x².
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::stddev() const {
  if (count_ < 2) return 0.0;
  const double var = m2_ / static_cast<double>(count_ - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  // Chan et al. pairwise combine: the cross term accounts for the two
  // streams' mean offset.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
}

MetricRegistry::MetricRegistry(MetricRegistry&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  callback_gauges_ = std::move(other.callback_gauges_);
  histograms_ = std::move(other.histograms_);
}

MetricRegistry& MetricRegistry::operator=(MetricRegistry&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  callback_gauges_ = std::move(other.callback_gauges_);
  histograms_ = std::move(other.histograms_);
  return *this;
}

MetricRegistry::Counter* MetricRegistry::FindOrCreateLocked(
    const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

MetricRegistry::Counter* MetricRegistry::Register(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreateLocked(name);
}

MetricRegistry::Gauge* MetricRegistry::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

void MetricRegistry::RegisterCallbackGauge(const std::string& name,
                                           std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_gauges_[name] = std::move(fn);
}

Histogram* MetricRegistry::RegisterHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

void MetricRegistry::Increment(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  FindOrCreateLocked(name)->Increment(delta);
}

int64_t MetricRegistry::Get(const std::string& name) const {
  std::function<int64_t()> callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second->value();
    auto git = gauges_.find(name);
    if (git != gauges_.end()) return git->second->value();
    auto cit = callback_gauges_.find(name);
    if (cit == callback_gauges_.end()) return 0;
    callback = cit->second;
  }
  // Invoked outside the lock: a callback is free to read other metrics.
  return callback();
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [_, g] : gauges_) {
    g->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [_, h] : histograms_) h->Reset();
}

std::map<std::string, int64_t> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; pvdb names use '.' and '-'
/// as separators. "pager.page_reads" → "pvdb_pager_page_reads".
std::string PrometheusName(const std::string& name) {
  std::string out = "pvdb_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

constexpr double kQuantiles[] = {50.0, 90.0, 99.0, 99.9};
constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.99", "0.999"};
constexpr const char* kQuantileJsonKeys[] = {"p50", "p90", "p99", "p999"};

}  // namespace

std::string MetricRegistry::ExportPrometheusText() const {
  // Copy the callback map, run the callbacks unlocked (they may read other
  // registries or this one), then render under the lock.
  std::map<std::string, std::function<int64_t()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    callbacks = callback_gauges_;
  }
  std::map<std::string, int64_t> callback_values;
  for (const auto& [name, fn] : callbacks) callback_values[name] = fn();

  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string pn = PrometheusName(name);
    AppendF(&out, "# TYPE %s counter\n%s %lld\n", pn.c_str(), pn.c_str(),
            static_cast<long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = PrometheusName(name);
    AppendF(&out, "# TYPE %s gauge\n%s %lld\n", pn.c_str(), pn.c_str(),
            static_cast<long long>(g->value()));
  }
  for (const auto& [name, value] : callback_values) {
    const std::string pn = PrometheusName(name);
    AppendF(&out, "# TYPE %s gauge\n%s %lld\n", pn.c_str(), pn.c_str(),
            static_cast<long long>(value));
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = PrometheusName(name);
    const HistogramData data = h->Snapshot();
    AppendF(&out, "# TYPE %s summary\n", pn.c_str());
    for (size_t q = 0; q < std::size(kQuantiles); ++q) {
      AppendF(&out, "%s{quantile=\"%s\"} %lld\n", pn.c_str(),
              kQuantileLabels[q],
              static_cast<long long>(data.Percentile(kQuantiles[q])));
    }
    AppendF(&out, "%s_sum %lld\n%s_count %lld\n", pn.c_str(),
            static_cast<long long>(data.sum()), pn.c_str(),
            static_cast<long long>(data.count()));
  }
  return out;
}

std::string MetricRegistry::ExportJson() const {
  std::map<std::string, std::function<int64_t()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    callbacks = callback_gauges_;
  }
  std::map<std::string, int64_t> callback_values;
  for (const auto& [name, fn] : callbacks) callback_values[name] = fn();

  std::string out = "{\"counters\":{";
  std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  for (const auto& [name, c] : counters_) {
    AppendF(&out, "%s\"%s\":%lld", first ? "" : ",", name.c_str(),
            static_cast<long long>(c->value()));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    AppendF(&out, "%s\"%s\":%lld", first ? "" : ",", name.c_str(),
            static_cast<long long>(g->value()));
    first = false;
  }
  for (const auto& [name, value] : callback_values) {
    AppendF(&out, "%s\"%s\":%lld", first ? "" : ",", name.c_str(),
            static_cast<long long>(value));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramData data = h->Snapshot();
    AppendF(&out,
            "%s\"%s\":{\"count\":%lld,\"sum\":%lld,\"min\":%lld,"
            "\"max\":%lld,\"mean\":%.2f",
            first ? "" : ",", name.c_str(),
            static_cast<long long>(data.count()),
            static_cast<long long>(data.sum()),
            static_cast<long long>(data.min()),
            static_cast<long long>(data.max()), data.mean());
    for (size_t q = 0; q < std::size(kQuantiles); ++q) {
      AppendF(&out, ",\"%s\":%lld", kQuantileJsonKeys[q],
              static_cast<long long>(data.Percentile(kQuantiles[q])));
    }
    out += "}";
    first = false;
  }
  out += "}}";
  return out;
}

double PercentileSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

}  // namespace pvdb
