// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace pvdb {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void MetricRegistry::Increment(const std::string& name, int64_t delta) {
  counters_[name] += delta;
}

int64_t MetricRegistry::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricRegistry::Reset() {
  for (auto& [_, v] : counters_) v = 0;
}

std::map<std::string, int64_t> MetricRegistry::Snapshot() const {
  return counters_;
}

}  // namespace pvdb
