// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/logging.h"

#include <cstdio>
#include <cstring>

namespace pvdb {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[pvdb %s %s:%d] %s\n", LevelName(level),
               Basename(file), line, msg.c_str());
}

}  // namespace pvdb
