// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Wall-clock timing utilities used by the experiment harness. All figures in
// the paper report milliseconds or seconds of wall time; StopWatch gives
// nanosecond resolution and the harness converts.

#ifndef PVDB_COMMON_TIMER_H_
#define PVDB_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pvdb {

/// Monotonic stopwatch. Starts running on construction.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in fractional milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  /// Elapsed time in fractional seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double (milliseconds) over its lifetime.
/// Used to attribute portions of a query to the OR / PC phases.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double* sink) : sink_(sink) {}
  ~ScopedTimerMs() { *sink_ += watch_.ElapsedMillis(); }

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  double* sink_;
  StopWatch watch_;
};

}  // namespace pvdb

#endif  // PVDB_COMMON_TIMER_H_
