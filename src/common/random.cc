// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/random.h"

#include <cmath>

#include "src/common/check.h"

namespace pvdb {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // A state of all zeros is the one invalid xoshiro state; SplitMix64 cannot
  // produce four zero outputs in a row, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PVDB_DCHECK(bound > 0);
  // Lemire's multiply-shift; bias is negligible for our bounds (<< 2^64).
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(NextU64()) * bound) >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  PVDB_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * scale;
  has_spare_gaussian_ = true;
  return u * scale;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

int Rng::NextInt(int lo, int hi) {
  PVDB_DCHECK(lo <= hi);
  return lo + static_cast<int>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace pvdb
