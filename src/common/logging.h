// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Minimal leveled logging to stderr. Default level is kWarn so library users
// are not spammed; the experiment harness raises it to kInfo for progress.

#ifndef PVDB_COMMON_LOGGING_H_
#define PVDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pvdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Emits one log line (used by the PVDB_LOG macro).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal {

/// Stream collector that emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pvdb

/// Usage: PVDB_LOG(kInfo) << "built " << n << " UBRs";
#define PVDB_LOG(level) \
  ::pvdb::internal::LogLine(::pvdb::LogLevel::level, __FILE__, __LINE__)

#endif  // PVDB_COMMON_LOGGING_H_
