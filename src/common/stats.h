// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Lightweight metric counters and summary statistics. The experiment harness
// snapshots counters (e.g. page reads) around each query to attribute I/O.

#ifndef PVDB_COMMON_STATS_H_
#define PVDB_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace pvdb {

/// Running summary of a sample stream: count / mean / min / max / stddev.
class Summary {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }
  /// Sample standard deviation (0 when fewer than two observations).
  double stddev() const;

  /// Merges another summary into this one.
  void Merge(const Summary& other);

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named monotonic counters, grouped per component instance.
///
/// Counter values are atomics. By-name Increment takes the registry mutex to
/// find (or create) the counter; hot paths pre-resolve a Counter* handle
/// with Register() once and then increment lock-free, so concurrent workers
/// charging the same counter never serialize on the registry. Name lookups
/// and handle increments address the same underlying value.
/// Single-threaded experiments keep the paper's semantics: counter deltas
/// around a query are exact when no other thread touches the same component
/// instance.
class MetricRegistry {
 public:
  /// A pre-registered counter: wait-free increments, no name lookup. Handles
  /// stay valid for the registry's lifetime (counters are never removed).
  class Counter {
   public:
    void Increment(int64_t delta = 1) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t value() const { return value_.load(std::memory_order_relaxed); }

   private:
    friend class MetricRegistry;
    Counter() = default;
    std::atomic<int64_t> value_{0};
  };

  MetricRegistry() = default;
  MetricRegistry(MetricRegistry&& other) noexcept;
  MetricRegistry& operator=(MetricRegistry&& other) noexcept;

  /// The handle for counter `name`, creating it at zero. The same name
  /// always yields the same handle.
  Counter* Register(const std::string& name);

  /// Adds `delta` to counter `name` (creating it at zero).
  void Increment(const std::string& name, int64_t delta = 1);

  /// Current value of `name` (0 when absent).
  int64_t Get(const std::string& name) const;

  /// Resets every counter to zero.
  void Reset();

  /// Stable snapshot of all counters.
  std::map<std::string, int64_t> Snapshot() const;

 private:
  Counter* FindOrCreateLocked(const std::string& name);

  mutable std::mutex mu_;
  // unique_ptr values: Counter addresses survive map growth, so Register()'d
  // handles (and moves of the whole registry) never dangle.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

/// The p-th percentile (p in [0, 100]) of an ascending-sorted sample span
/// by linear interpolation between closest ranks; 0 when empty. Callers
/// extracting several percentiles sort once and call this repeatedly.
double PercentileSorted(std::span<const double> sorted, double p);

/// Convenience over unsorted samples: copies, sorts, delegates. Used by the
/// serving path for p50/p99 latency reporting.
double Percentile(std::vector<double> samples, double p);

}  // namespace pvdb

#endif  // PVDB_COMMON_STATS_H_
