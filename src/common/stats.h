// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Lightweight metric counters and summary statistics. The experiment harness
// snapshots counters (e.g. page reads) around each query to attribute I/O.

#ifndef PVDB_COMMON_STATS_H_
#define PVDB_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pvdb {

/// Running summary of a sample stream: count / mean / min / max / stddev.
class Summary {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }
  /// Sample standard deviation (0 when fewer than two observations).
  double stddev() const;

  /// Merges another summary into this one.
  void Merge(const Summary& other);

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named monotonic counters, grouped per component instance.
///
/// Not thread-safe by design: pvdb runs experiments single-threaded exactly
/// like the paper's testbed, and counter deltas around a query must not be
/// perturbed by other threads.
class MetricRegistry {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void Increment(const std::string& name, int64_t delta = 1);

  /// Current value of `name` (0 when absent).
  int64_t Get(const std::string& name) const;

  /// Resets every counter to zero.
  void Reset();

  /// Stable snapshot of all counters.
  std::map<std::string, int64_t> Snapshot() const;

 private:
  std::map<std::string, int64_t> counters_;
};

}  // namespace pvdb

#endif  // PVDB_COMMON_STATS_H_
