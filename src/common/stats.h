// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Metric primitives and the registry that exports them. The experiment
// harness snapshots counters (e.g. page reads) around each query to
// attribute I/O; the serving engine additionally registers gauges and
// log-linear latency histograms and exposes everything through
// ExportPrometheusText() / ExportJson() for scraping.

#ifndef PVDB_COMMON_STATS_H_
#define PVDB_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/histogram.h"

namespace pvdb {

/// Running summary of a sample stream: count / mean / min / max / stddev.
/// Variance uses Welford's online recurrence (and Chan's pairwise merge),
/// so large counts of large near-equal values don't cancel catastrophically
/// the way a sum-of-squares accumulator does.
class Summary {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Sample standard deviation (0 when fewer than two observations).
  double stddev() const;

  /// Merges another summary into this one (Chan's parallel combine; the
  /// result matches a single summary fed both streams).
  void Merge(const Summary& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  /// Sum of squared deviations from the running mean (Welford's M2).
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, grouped per component instance: monotonic counters,
/// settable gauges (direct or callback-sampled at export time), and
/// thread-sharded latency histograms.
///
/// Counter and gauge values are atomics. By-name Increment takes the
/// registry mutex to find (or create) the metric; hot paths pre-resolve a
/// handle with Register*() once and then update lock-free, so concurrent
/// workers charging the same metric never serialize on the registry.
/// Single-threaded experiments keep the paper's semantics: counter deltas
/// around a query are exact when no other thread touches the same component
/// instance.
class MetricRegistry {
 public:
  /// A pre-registered counter: wait-free increments, no name lookup. Handles
  /// stay valid for the registry's lifetime (metrics are never removed).
  class Counter {
   public:
    void Increment(int64_t delta = 1) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t value() const { return value_.load(std::memory_order_relaxed); }

   private:
    friend class MetricRegistry;
    Counter() = default;
    std::atomic<int64_t> value_{0};
  };

  /// A pre-registered gauge: a point-in-time level (queue depth, generation
  /// number) rather than a monotonic count. Same handle semantics as
  /// Counter.
  class Gauge {
   public:
    void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
    void Add(int64_t delta) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t value() const { return value_.load(std::memory_order_relaxed); }

   private:
    friend class MetricRegistry;
    Gauge() = default;
    std::atomic<int64_t> value_{0};
  };

  MetricRegistry() = default;
  MetricRegistry(MetricRegistry&& other) noexcept;
  MetricRegistry& operator=(MetricRegistry&& other) noexcept;

  /// The handle for counter `name`, creating it at zero. The same name
  /// always yields the same handle.
  Counter* Register(const std::string& name);

  /// The handle for gauge `name`, creating it at zero.
  Gauge* RegisterGauge(const std::string& name);

  /// Registers a gauge whose value is computed by `fn` at export/Get time
  /// (e.g. cache size, snapshot age). `fn` must stay callable for the
  /// registry's lifetime and be safe to invoke from any exporting thread.
  /// Re-registering a name replaces its callback.
  void RegisterCallbackGauge(const std::string& name,
                             std::function<int64_t()> fn);

  /// The handle for histogram `name`, creating it empty. Histograms record
  /// lock-free (thread-sharded) and export sort-free percentiles.
  Histogram* RegisterHistogram(const std::string& name);

  /// Adds `delta` to counter `name` (creating it at zero).
  void Increment(const std::string& name, int64_t delta = 1);

  /// Current value of counter, gauge, or callback gauge `name`, in that
  /// lookup order (0 when absent).
  int64_t Get(const std::string& name) const;

  /// Resets every counter, gauge, and histogram to zero (callback gauges
  /// are computed, not stored, and are unaffected).
  void Reset();

  /// Stable snapshot of all counters.
  std::map<std::string, int64_t> Snapshot() const;

  /// Everything in Prometheus text exposition format. Metric names are
  /// sanitized ('.' and '-' become '_') and prefixed "pvdb_"; histograms
  /// export as summaries (quantile 0.5/0.9/0.99/0.999 plus _sum/_count) in
  /// the recorded unit.
  std::string ExportPrometheusText() const;

  /// Everything as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{name:{count,sum,min,max,mean,p50,p90,p99,p999}}}
  std::string ExportJson() const;

 private:
  Counter* FindOrCreateLocked(const std::string& name);

  mutable std::mutex mu_;
  // unique_ptr values: metric addresses survive map growth, so handles (and
  // moves of the whole registry) never dangle.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::function<int64_t()>> callback_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The p-th percentile (p in [0, 100]) of an ascending-sorted sample span
/// by linear interpolation between closest ranks; 0 when empty. Callers
/// extracting several percentiles sort once and call this repeatedly.
double PercentileSorted(std::span<const double> sorted, double p);

/// Convenience over unsorted samples: copies, sorts, delegates. Offline
/// analysis only — the serving path extracts percentiles from histograms
/// without copying or sorting.
double Percentile(std::vector<double> samples, double p);

}  // namespace pvdb

#endif  // PVDB_COMMON_STATS_H_
