// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/crc32c.h"

#include <array>

namespace pvdb {

namespace {

/// The reflected CRC-32C table, generated at static-init time (256 entries,
/// 1 KiB — cheaper to compute once than to paste and review).
std::array<uint32_t, 256> MakeTable() {
  constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace pvdb
