// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/trace.h"

#include <cmath>
#include <cstdio>

namespace pvdb {

const char* QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kPlan:
      return "plan";
    case QueryStage::kLeafCache:
      return "leaf_cache";
    case QueryStage::kStep1Prune:
      return "step1_prune";
    case QueryStage::kStep2:
      return "step2";
    case QueryStage::kMerge:
      return "merge";
  }
  return "unknown";
}

Tracer::Tracer(TraceOptions options) : options_(std::move(options)) {
  if (options_.sink == nullptr) {
    options_.sink = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
}

bool Tracer::SampleNext() {
  if (!options_.enabled) return false;
  if (options_.sample_every_n <= 1) return true;
  return sample_counter_.fetch_add(1, std::memory_order_relaxed) %
             options_.sample_every_n ==
         0;
}

std::string Tracer::FormatLine(const QueryTraceInfo& info, bool sampled,
                               bool slow) {
  char buf[512];
  std::string line;
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"query_trace\",\"seq\":%llu,\"sampled\":%s,"
                "\"slow\":%s,\"backend\":\"%s\",\"kind\":\"%s\",\"ok\":%s,"
                "\"cache_hit\":%s,"
                "\"results\":%zu,\"latency_ms\":%.4f,\"stages_us\":{",
                static_cast<unsigned long long>(info.seq),
                sampled ? "true" : "false", slow ? "true" : "false",
                info.backend, info.kind, info.ok ? "true" : "false",
                info.cache_hit ? "true" : "false", info.results,
                info.latency_ms);
  line += buf;
  for (int s = 0; s < kNumQueryStages; ++s) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.1f", s == 0 ? "" : ",",
                  QueryStageName(static_cast<QueryStage>(s)),
                  static_cast<double>(info.stages.ns[static_cast<size_t>(s)]) *
                      1e-3);
    line += buf;
  }
  line += "}}";
  return line;
}

Tracer::EmitDecision Tracer::Decide(double latency_ms) {
  EmitDecision d;
  if (!options_.enabled) return d;
  d.slow = latency_ms >= options_.slow_query_ms;
  d.sampled = SampleNext();
  if (d.slow) slow_.fetch_add(1, std::memory_order_relaxed);
  d.emit = d.sampled || d.slow;
  return d;
}

void Tracer::EmitDecided(const QueryTraceInfo& info,
                         const EmitDecision& decision) {
  if (!decision.emit) return;
  options_.sink(FormatLine(info, decision.sampled, decision.slow));
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

bool Tracer::MaybeEmit(const QueryTraceInfo& info) {
  const EmitDecision d = Decide(info.latency_ms);
  EmitDecided(info, d);
  return d.emit;
}

}  // namespace pvdb
