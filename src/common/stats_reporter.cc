// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/common/stats_reporter.h"

#include <cstdio>
#include <utility>

#include "src/common/check.h"

namespace pvdb {

StatsReporter::StatsReporter(const MetricRegistry* registry,
                             StatsReporterOptions options)
    : registry_(registry), options_(std::move(options)) {
  PVDB_CHECK(registry_ != nullptr);
  if (options_.sink == nullptr) {
    options_.sink = [](const std::string& text) {
      std::fprintf(stderr, "%s\n", text.c_str());
    };
  }
  if (options_.interval.count() <= 0) {
    options_.interval = std::chrono::milliseconds(1000);
  }
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  // The final export: a process stopping right after its last tick still
  // publishes everything recorded since then.
  EmitOnce();
}

void StatsReporter::EmitOnce() {
  const std::string text =
      options_.format == StatsReporterOptions::Format::kPrometheus
          ? registry_->ExportPrometheusText()
          : registry_->ExportJson();
  options_.sink(text);
  reports_.fetch_add(1, std::memory_order_relaxed);
}

void StatsReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    EmitOnce();
    lock.lock();
  }
}

}  // namespace pvdb
