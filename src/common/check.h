// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Invariant-checking macros. PVDB_CHECK is always on (cheap sanity checks on
// boundaries that must never fail in production); PVDB_DCHECK compiles away in
// release builds and guards hot-path invariants.

#ifndef PVDB_COMMON_CHECK_H_
#define PVDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace pvdb {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "[pvdb] CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace pvdb

/// Aborts the process if `cond` is false. Enabled in all build types.
#define PVDB_CHECK(cond)                                   \
  do {                                                     \
    if (!(cond)) ::pvdb::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (0)

/// Debug-only invariant check; compiles to nothing when NDEBUG is defined.
#ifdef NDEBUG
#define PVDB_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define PVDB_DCHECK(cond) PVDB_CHECK(cond)
#endif

#endif  // PVDB_COMMON_CHECK_H_
