// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// LRU cache of raw leaf candidate blocks, keyed by (backend, octree leaf
// id). Point queries landing in the same leaf skip the leaf's page-chain
// reads and re-run only the in-memory minmax pruning, which is
// query-specific. Cached leaves are SoA LeafBlocks — the exact input format
// of the batched Step-1 kernels — so a hit feeds the block prune with zero
// conversion. Entries are shared_ptr snapshots, so a hit handed to one
// worker stays valid while another worker evicts it. Invalidation is wired
// to PvIndex insert/delete through the engine (leaf ids survive in-place
// leaf rewrites, so content changes must flush the cache).

#ifndef PVDB_SERVICE_RESULT_CACHE_H_
#define PVDB_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/pv/octree.h"
#include "src/service/backend.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::service {

/// Thread-safe LRU over leaf blocks. All methods lock internally;
/// concurrent readers under the engine's shared lock are supported.
class ResultCache {
 public:
  using BlockPtr = std::shared_ptr<const pv::LeafBlock>;

  /// The query-independent half of a leaf's Step-2 state, cached alongside
  /// its block. The sorted-distance tables themselves depend on the query
  /// point and cannot be memoized, but resolving the leaf's entries to
  /// dataset records can: objs[i] is the record of block.ids[i], so a
  /// batched-Step-2 group whose pruning preserved leaf order maps its
  /// candidates onto records with one lockstep walk, no hash lookups.
  /// Pointers go stale on any dataset mutation — the engine clears the
  /// cache around Insert/Delete, and plans never outlive their block entry.
  /// This assumes mutations route through the engine owning this cache (the
  /// engine contract); engines sharing one dataset with another mutating
  /// engine already race on the dataset itself and are unsupported.
  struct Step2LeafPlan {
    std::vector<const uncertain::UncertainObject*> objs;
  };
  using PlanPtr = std::shared_ptr<const Step2LeafPlan>;

  /// Cache holding at most `capacity` leaves (capacity >= 1) and, when
  /// `max_bytes` > 0, at most ~max_bytes of cached payload (blocks + plans,
  /// ApproxBytes accounting). Byte evictions drop least-recently-used
  /// entries until the budget holds again; the most recent entry is never
  /// evicted, so one oversized leaf still serves (the budget is a resident
  /// bound, not an admission filter). 0 = unbounded bytes (entry count
  /// still caps residency).
  explicit ResultCache(size_t capacity, size_t max_bytes = 0);

  /// The cached block of (backend, leaf), or nullptr on miss. Counts one
  /// hit or miss and refreshes recency on hit. A plan-only entry (zero-copy
  /// serving caches plans without blocks) is a miss for block purposes.
  BlockPtr Lookup(BackendKind backend, uint64_t leaf_id);

  /// Inserts (or replaces) the block of (backend, leaf), evicting the
  /// least-recently-used leaf when full. Returns the stored snapshot.
  /// Replacement drops any attached Step-2 plan (new entries, stale plan).
  BlockPtr Insert(BackendKind backend, uint64_t leaf_id, pv::LeafBlock block);

  /// The Step-2 plan attached to (backend, leaf), or nullptr. Refreshes
  /// recency when the entry exists (on the zero-copy path the plan lookup
  /// is the entry's only traffic) but does not count hits/misses — those
  /// meter block reuse only.
  PlanPtr LookupPlan(BackendKind backend, uint64_t leaf_id);

  /// Attaches a Step-2 plan to the (backend, leaf) entry, creating a
  /// plan-only entry (no block) when the leaf is not cached — the zero-copy
  /// serving path memoizes resolved plans without ever materializing
  /// blocks. Returns the stored snapshot.
  PlanPtr AttachPlan(BackendKind backend, uint64_t leaf_id,
                     Step2LeafPlan plan);

  /// Drops every entry of one backend (index-mutation invalidation hook).
  void Invalidate(BackendKind backend);

  /// Drops everything.
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Approximate bytes of cached payload (blocks + plans) resident now.
  size_t bytes() const;
  size_t max_bytes() const { return max_bytes_; }
  int64_t hits() const;
  int64_t misses() const;

 private:
  // (backend, leaf id) packed into one key; leaf ids are small counters.
  static uint64_t PackKey(BackendKind backend, uint64_t leaf_id);

  struct Entry {
    BlockPtr block;
    PlanPtr plan;
    std::list<uint64_t>::iterator lru_it;
    /// ApproxBytes of block + plan at storage time (bytes_ bookkeeping).
    size_t bytes = 0;
  };

  /// ApproxBytes of an entry's current payload.
  static size_t EntryBytes(const Entry& e);
  /// Removes the LRU tail entry (caller holds mu_, map non-empty).
  void EvictTailLocked();
  /// Byte-budget eviction: drops LRU entries while over max_bytes_, never
  /// touching `keep` (the entry just stored).
  void EnforceBytesLocked(uint64_t keep);

  mutable std::mutex mu_;
  size_t capacity_;
  size_t max_bytes_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t, Entry> map_;
  size_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_RESULT_CACHE_H_
