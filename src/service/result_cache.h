// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// LRU cache of raw leaf candidate blocks, keyed by (backend, octree leaf
// id). Point queries landing in the same leaf skip the leaf's page-chain
// reads and re-run only the in-memory minmax pruning, which is
// query-specific. Cached leaves are SoA LeafBlocks — the exact input format
// of the batched Step-1 kernels — so a hit feeds the block prune with zero
// conversion. Entries are shared_ptr snapshots, so a hit handed to one
// worker stays valid while another worker evicts it. Invalidation is wired
// to PvIndex insert/delete through the engine (leaf ids survive in-place
// leaf rewrites, so content changes must flush the cache).

#ifndef PVDB_SERVICE_RESULT_CACHE_H_
#define PVDB_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/pv/octree.h"
#include "src/service/backend.h"

namespace pvdb::service {

/// Thread-safe LRU over leaf blocks. All methods lock internally;
/// concurrent readers under the engine's shared lock are supported.
class ResultCache {
 public:
  using BlockPtr = std::shared_ptr<const pv::LeafBlock>;

  /// Cache holding at most `capacity` leaves (capacity >= 1).
  explicit ResultCache(size_t capacity);

  /// The cached block of (backend, leaf), or nullptr on miss. Counts one
  /// hit or miss and refreshes recency on hit.
  BlockPtr Lookup(BackendKind backend, uint64_t leaf_id);

  /// Inserts (or replaces) the block of (backend, leaf), evicting the
  /// least-recently-used leaf when full. Returns the stored snapshot.
  BlockPtr Insert(BackendKind backend, uint64_t leaf_id, pv::LeafBlock block);

  /// Drops every entry of one backend (index-mutation invalidation hook).
  void Invalidate(BackendKind backend);

  /// Drops everything.
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t hits() const;
  int64_t misses() const;

 private:
  // (backend, leaf id) packed into one key; leaf ids are small counters.
  static uint64_t PackKey(BackendKind backend, uint64_t leaf_id);

  struct Entry {
    BlockPtr block;
    std::list<uint64_t>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t, Entry> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_RESULT_CACHE_H_
