// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Backend planning: picks which Step-1 index serves a workload, from
// dimensionality and dataset-size heuristics grounded in the paper's
// experiments (Figures 9(a)–(h)), with an explicit operator override.

#ifndef PVDB_SERVICE_PLANNER_H_
#define PVDB_SERVICE_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/service/backend.h"

namespace pvdb::service {

/// Below this cardinality the R-tree baseline is preferred when available:
/// branch-and-prune visits a handful of nodes on tiny trees, while the
/// octree carriers pay fixed leaf page-chain costs (and their construction
/// is not worth amortizing for small data).
inline constexpr size_t kSmallDatasetRtreeThreshold = 256;

/// Workload facts the planner decides on.
struct PlanInput {
  /// Data dimensionality d.
  int dim = 0;
  /// Database cardinality |S|.
  size_t dataset_size = 0;
  /// Backends the caller actually built (in preference-independent order).
  std::vector<BackendKind> available;
  /// Forces a specific backend; planning fails if it is unavailable or
  /// unsupported for the workload (UV with d != 2).
  std::optional<BackendKind> override;
};

/// A planning decision and its human-readable justification.
struct Plan {
  BackendKind backend;
  std::string reason;
};

/// Chooses a Step-1 backend:
///   1. the override, when set (validated);
///   2. a sealed IndexSnapshot when one was supplied — the immutable
///      serving surface always wins over rebuilding-from-raw backends;
///   3. the R-tree for datasets below kSmallDatasetRtreeThreshold;
///   4. the PV-index (the paper's headline structure, any d);
///   5. the UV-index when d == 2;
///   6. the R-tree as final fallback.
/// Fails with InvalidArgument when no available backend fits.
Result<Plan> PlanBackend(const PlanInput& input);

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_PLANNER_H_
