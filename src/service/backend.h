// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The serving-path Step-1 abstraction: one interface over the three
// candidate-retrieval indexes the paper evaluates (PV-index, the 2D-only
// UV-index baseline, and the R-tree branch-and-prune baseline). All three
// return the same answer set for a query point; the octree-carried backends
// additionally expose leaf-granular access so the engine's leaf-result
// cache can memoize raw candidate entries and re-prune them per query.

#ifndef PVDB_SERVICE_BACKEND_H_
#define PVDB_SERVICE_BACKEND_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/pv/index_snapshot.h"
#include "src/pv/octree.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/rtree/rstar_tree.h"
#include "src/uncertain/uncertain_object.h"
#include "src/uv/uv_index.h"

namespace pvdb::service {

/// Which index implementation answers Step 1.
enum class BackendKind : int {
  kPvIndex = 0,
  kUvIndex = 1,
  kRtree = 2,
  /// A sealed pv::IndexSnapshot: the immutable serving surface (mmap'd file
  /// or in-memory seal), hot-swappable via QueryEngine::AdoptSnapshot.
  kSnapshot = 3,
};

/// Stable lowercase name ("pv", "uv", "rtree", "snapshot").
const char* BackendKindName(BackendKind kind);

/// PNNQ Step-1 provider. Implementations borrow their index; the caller
/// keeps it alive for the backend's lifetime. All methods are safe under
/// concurrent calls as long as the underlying index is not mutated (the
/// QueryEngine enforces this with a reader/writer lock).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const = 0;

  /// Step 1: ids of all objects with non-zero probability of being the NN
  /// of `q` — exactly the underlying index's answer (same values, same
  /// order), so serving-path results are bit-identical to library calls.
  /// `scratch` pools per-query buffers (may be nullptr; implementations
  /// that do not batch ignore it). Deliberately no default argument:
  /// defaults on virtuals bind to the static type and invite divergence
  /// between overrides.
  virtual Result<std::vector<uncertain::ObjectId>> Step1(
      const geom::Point& q, pv::QueryScratch* scratch) const = 0;

  /// True when FindLeaf locates a point-addressable leaf whose stable id
  /// can key batched-Step-2 query grouping (Step2Batch) — worth calling even
  /// when the leaf-result cache is disabled. False backends group only by
  /// candidate-set equality.
  virtual bool SupportsLeafGrouping() const { return false; }

  /// True when PruneLeafBlock preserves the block's entry order, so a
  /// surviving candidate list maps onto a cached per-leaf object plan
  /// (ResultCache::Step2LeafPlan) by one lockstep walk instead of dataset
  /// hash lookups.
  virtual bool PruneKeepsLeafOrder() const { return false; }

  /// Leaf-cache protocol. Backends with a point-addressable leaf structure
  /// (PV, UV: one octree leaf per query point) locate the leaf without page
  /// I/O; the R-tree has no such structure and returns nullopt, bypassing
  /// the cache.
  virtual Result<std::optional<pv::OctreePrimary::LeafRef>> FindLeaf(
      const geom::Point& q) const {
    (void)q;
    return std::optional<pv::OctreePrimary::LeafRef>{};
  }

  /// Reads a leaf located by FindLeaf as an SoA block (page reads are
  /// charged to the index's pager, same as an uncached query). The block is
  /// what the engine's leaf-result cache memoizes.
  virtual Result<pv::LeafBlock> ReadLeafBlock(
      const pv::OctreePrimary::LeafRef& ref) const {
    (void)ref;
    return Status::NotSupported("backend has no leaf structure");
  }

  /// Derives the Step-1 answer from a (possibly cached) leaf block via the
  /// batched minmax kernels (SIMD-dispatched per CPU — geom/simd_dispatch.h;
  /// answers are level-independent). Must equal Step1(q) for the leaf
  /// containing q.
  virtual std::vector<uncertain::ObjectId> PruneLeafBlock(
      const pv::LeafBlock& block, const geom::Point& q,
      pv::QueryScratch* scratch) const {
    (void)block;
    (void)q;
    (void)scratch;
    return {};
  }

  /// True when leaves are served as zero-copy views over immutable storage
  /// (a v2-SoA snapshot): ReadLeafBlockView points straight into the
  /// backend's own memory, so the engine skips block reads and block
  /// caching entirely — the mapping is its own cache — and caches only the
  /// resolved Step-2 plans.
  virtual bool ServesLeafViews() const { return false; }

  /// Zero-copy counterpart of ReadLeafBlock: per-dimension bound-plane and
  /// id pointers into the backend's storage, no bytes copied. The view
  /// borrows the backend's memory (valid while the backend's index/snapshot
  /// is). Only meaningful when ServesLeafViews() is true.
  virtual Result<pv::LeafBlockView> ReadLeafBlockView(
      const pv::OctreePrimary::LeafRef& ref) const {
    (void)ref;
    return Status::NotSupported("backend does not serve leaf views");
  }

  /// View counterpart of PruneLeafBlock; must equal Step1(q) for the leaf
  /// containing q, bit for bit (same batched kernels, same entry order).
  virtual std::vector<uncertain::ObjectId> PruneLeafBlockView(
      const pv::LeafBlockView& view, const geom::Point& q,
      pv::QueryScratch* scratch) const {
    (void)view;
    (void)q;
    (void)scratch;
    return {};
  }

  /// Range-query Step 1: ids of every object whose indexed uncertainty
  /// region intersects `range` (closed-box test), sorted ascending and
  /// deduplicated — canonical order, a pure function of the range. The
  /// octree-carried backends walk leaves overlapping the range; backends
  /// without a region-addressable structure return NotSupported and the
  /// engine falls back to a linear dataset scan.
  virtual Result<std::vector<uncertain::ObjectId>> RangeCandidates(
      const geom::Rect& range) const {
    (void)range;
    return Status::NotSupported("backend has no range-addressable structure");
  }
};

/// PV-index backend. Non-const: PvIndex mutations route through the engine,
/// which also registers the cache-invalidation hook on this index.
std::unique_ptr<Backend> MakePvBackend(pv::PvIndex* index);

/// UV-index backend (2D only; immutable after build).
std::unique_ptr<Backend> MakeUvBackend(const uv::UvIndex* index);

/// R-tree branch-and-prune backend over a tree of uncertainty regions keyed
/// by object id (see BuildUncertaintyRtree).
std::unique_ptr<Backend> MakeRtreeBackend(const rtree::RStarTree* tree);

/// Sealed-snapshot backend: Step 1 served straight from the snapshot's
/// mapping, with the same leaf-cache and batched-Step-2 grouping protocol
/// as the live PV-index (stable leaf ids key both). Shares ownership of the
/// snapshot, so an adopted snapshot outlives any in-flight query using it.
std::unique_ptr<Backend> MakeSnapshotBackend(
    std::shared_ptr<const pv::IndexSnapshot> snapshot);

/// Convenience: the R-tree the branch-and-prune baseline expects — one
/// (uncertainty region, object id) entry per object.
std::unique_ptr<rtree::RStarTree> BuildUncertaintyRtree(
    const uncertain::Dataset& db);

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_BACKEND_H_
