// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/query_engine.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "src/common/timer.h"

namespace pvdb::service {

Status ValidateQueryEngineOptions(const QueryEngineOptions& options) {
  if (options.threads < 1) {
    return Status::InvalidArgument("engine needs at least one thread");
  }
  // A pool this size is a typo'd config, not a deployment: spawning it
  // would exhaust process limits long before serving a query.
  if (options.threads > 4096) {
    return Status::InvalidArgument(
        "engine thread count implausible: " +
        std::to_string(options.threads) + " (max 4096)");
  }
  if (options.batch_step2 && options.step2_min_group_size < 1) {
    return Status::InvalidArgument(
        "step2_min_group_size must be >= 1 (a zero group bound would batch "
        "empty groups)");
  }
  if (!(options.min_probability >= 0.0) || options.min_probability >= 1.0) {
    return Status::InvalidArgument(
        "min_probability must lie in [0, 1); qualification probabilities "
        "never exceed 1");
  }
  // NaN (!(x >= 0)) and negative thresholds would tag every query slow.
  if (options.trace.enabled && !(options.trace.slow_query_ms >= 0.0)) {
    return Status::InvalidArgument(
        "trace.slow_query_ms must be a non-negative latency threshold "
        "(use infinity to disable the slow-query log)");
  }
  return Status::OK();
}

QueryEngine::QueryEngine(uncertain::Dataset* db,
                         const QueryEngineOptions& options)
    : db_(db), options_(options), tracer_(options.trace) {}

QueryEngine::~QueryEngine() {
  // Join workers first so no task touches the engine during teardown, then
  // unhook from the (caller-owned, possibly longer-lived) PV-index.
  pool_.reset();
  if (pv_index_ != nullptr && pv_listener_id_ >= 0) {
    pv_index_->RemoveUpdateListener(pv_listener_id_);
  }
}

QueryEngine::StatePtr QueryEngine::MakeSnapshotState(
    std::shared_ptr<const pv::IndexSnapshot> snapshot) const {
  auto state = std::make_shared<ServingState>();
  state->objects = snapshot.get();
  state->step2 = std::make_unique<pv::PnnStep2Evaluator>(snapshot.get());
  state->snapshot = std::move(snapshot);
  state->owned_backend = MakeSnapshotBackend(state->snapshot);
  state->active = state->owned_backend.get();
  if (options_.cache_capacity > 0) {
    // A fresh cache per adopted snapshot: entries of the old snapshot die
    // with its state, so an in-flight query on the old state can never
    // publish a stale leaf into the new serving surface.
    state->cache = std::make_unique<ResultCache>(options_.cache_capacity,
                                                 options_.cache_max_bytes);
  }
  return state;
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    uncertain::Dataset* db, const EngineBackends& backends,
    const QueryEngineOptions& options) {
  PVDB_RETURN_NOT_OK(ValidateQueryEngineOptions(options));
  auto engine = std::unique_ptr<QueryEngine>(new QueryEngine(db, options));
  if (backends.pv != nullptr) {
    engine->backends_.push_back(MakePvBackend(backends.pv));
  }
  if (backends.uv != nullptr) {
    engine->backends_.push_back(MakeUvBackend(backends.uv));
  }
  if (backends.rtree != nullptr) {
    engine->backends_.push_back(MakeRtreeBackend(backends.rtree));
  }

  PlanInput input;
  if (db != nullptr) {
    input.dim = db->dim();
    input.dataset_size = db->size();
  } else if (backends.snapshot != nullptr) {
    input.dim = backends.snapshot->dim();
    input.dataset_size = static_cast<size_t>(backends.snapshot->object_count());
  }
  for (const auto& b : engine->backends_) input.available.push_back(b->kind());
  if (backends.snapshot != nullptr) {
    input.available.push_back(BackendKind::kSnapshot);
  }
  input.override = options.backend_override;
  PVDB_ASSIGN_OR_RETURN(Plan plan, PlanBackend(input));
  engine->plan_reason_ = std::move(plan.reason);
  engine->dim_ = input.dim;

  if (plan.backend == BackendKind::kSnapshot) {
    engine->state_.store(engine->MakeSnapshotState(backends.snapshot),
                         std::memory_order_release);
  } else {
    if (db == nullptr) {
      return Status::InvalidArgument(
          "borrowed-index serving needs the dataset for Step 2; only "
          "snapshot serving is self-contained");
    }
    auto state = std::make_shared<ServingState>();
    for (const auto& b : engine->backends_) {
      if (b->kind() == plan.backend) state->active = b.get();
    }
    PVDB_CHECK(state->active != nullptr);
    state->objects = db;
    state->step2 = std::make_unique<pv::PnnStep2Evaluator>(db);
    if (options.cache_capacity > 0) {
      state->cache = std::make_unique<ResultCache>(options.cache_capacity,
                                                   options.cache_max_bytes);
    }
    engine->state_.store(std::move(state), std::memory_order_release);
  }

  engine->backend_name_ = BackendKindName(plan.backend);
  engine->step2_pages_ =
      engine->metrics_.Register(pv::PnnCounters::kPdfPagesRead);
  engine->queries_total_ = engine->metrics_.Register("engine.queries");
  engine->query_failures_ =
      engine->metrics_.Register("engine.query_failures");
  engine->batches_total_ = engine->metrics_.Register("engine.batches");
  engine->leaf_block_reads_ =
      engine->metrics_.Register("engine.leaf_block_reads");
  for (size_t k = 0; k < engine->queries_by_kind_.size(); ++k) {
    engine->queries_by_kind_[k] = engine->metrics_.Register(
        std::string("engine.queries.") +
        QueryKindName(static_cast<QueryKind>(k + 1)));
  }
  engine->latency_hist_ =
      engine->metrics_.RegisterHistogram("engine.latency_ns");
  for (int s = 0; s < kNumQueryStages; ++s) {
    engine->stage_hists_[static_cast<size_t>(s)] =
        engine->metrics_.RegisterHistogram(
            std::string("engine.stage.") +
            QueryStageName(static_cast<QueryStage>(s)) + "_ns");
  }
  engine->queue_wait_hist_ =
      engine->metrics_.RegisterHistogram("engine.pool.queue_wait_ns");
  engine->snapshot_generation_ =
      engine->metrics_.RegisterGauge("engine.snapshot.generation");
  if (plan.backend == BackendKind::kSnapshot) {
    engine->snapshot_adopt_ns_.store(TraceNowNs(),
                                     std::memory_order_relaxed);
  }
  // Callback gauges: levels sampled at export time through the live
  // engine. Safe because the registry is an engine member — an export can
  // only run while the engine (and thus the pool and serving state) is
  // alive.
  QueryEngine* eng = engine.get();
  engine->metrics_.RegisterCallbackGauge(
      "engine.pool.queue_depth",
      [eng] { return static_cast<int64_t>(eng->pool_->QueueDepth()); });
  engine->metrics_.RegisterCallbackGauge("engine.cache.hits", [eng] {
    const StatePtr s = eng->CurrentState();
    return s != nullptr && s->cache != nullptr ? s->cache->hits() : 0;
  });
  engine->metrics_.RegisterCallbackGauge("engine.cache.misses", [eng] {
    const StatePtr s = eng->CurrentState();
    return s != nullptr && s->cache != nullptr ? s->cache->misses() : 0;
  });
  engine->metrics_.RegisterCallbackGauge("engine.cache.size", [eng] {
    const StatePtr s = eng->CurrentState();
    return s != nullptr && s->cache != nullptr
               ? static_cast<int64_t>(s->cache->size())
               : 0;
  });
  engine->metrics_.RegisterCallbackGauge("engine.cache.bytes", [eng] {
    const StatePtr s = eng->CurrentState();
    return s != nullptr && s->cache != nullptr
               ? static_cast<int64_t>(s->cache->bytes())
               : 0;
  });
  engine->metrics_.RegisterCallbackGauge("engine.snapshot.age_seconds", [eng] {
    const int64_t t0 =
        eng->snapshot_adopt_ns_.load(std::memory_order_relaxed);
    return t0 == 0 ? 0 : (TraceNowNs() - t0) / 1'000'000'000;
  });
  if (backends.pv != nullptr) {
    engine->pv_index_ = backends.pv;
    // Invalidation hook: any PV-index mutation flushes its cached leaves
    // (leaf ids survive in-place page rewrites, so contents must go).
    QueryEngine* raw = engine.get();
    engine->pv_listener_id_ = backends.pv->AddUpdateListener([raw] {
      const StatePtr state = raw->CurrentState();
      if (state != nullptr && state->cache != nullptr) {
        state->cache->Invalidate(BackendKind::kPvIndex);
      }
    });
  }
  engine->pool_ = std::make_unique<ThreadPool>(options.threads);
  engine->pool_->SetQueueWaitHistogram(engine->queue_wait_hist_);
  return engine;
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::CreateFromSnapshot(
    std::shared_ptr<const pv::IndexSnapshot> snapshot,
    const QueryEngineOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("CreateFromSnapshot needs a snapshot");
  }
  EngineBackends backends;
  backends.snapshot = std::move(snapshot);
  return Create(nullptr, backends, options);
}

namespace {

/// One scratch arena per worker thread (and per external caller thread):
/// Step-1 block pruning and Step-2 table building reuse its buffers across
/// every query this thread serves, so the steady-state hot path performs
/// no per-query heap allocation beyond the answer vectors.
pv::QueryScratch& WorkerScratch() {
  static thread_local pv::QueryScratch scratch;
  return scratch;
}

/// True when p lies strictly inside `cell` on every axis. The leaf descent
/// partitions each axis half-open at the cell midpoint, so a strict-interior
/// point provably descends to the same leaf — the condition under which a
/// trajectory sample may reuse the previous sample's leaf without changing
/// any answer bit. Boundary points (and dimension mismatches) re-descend.
bool StrictlyInside(const geom::Rect& cell, const geom::Point& p) {
  if (cell.dim() != p.dim()) return false;
  for (int d = 0; d < p.dim(); ++d) {
    if (!(cell.lo(d) < p[d] && p[d] < cell.hi(d))) return false;
  }
  return true;
}

}  // namespace

QueryEngine::Step1Outcome QueryEngine::Step1One(
    const StatePtr& state, const geom::Point& q, pv::QueryScratch* scratch,
    bool want_grouping, StageTimings* timings,
    const pv::OctreePrimary::LeafRef* hint, bool want_ref) const {
  Step1Outcome out;
  out.state = state;
  out.epoch = epoch_.load(std::memory_order_relaxed);
  // Canonical mode: candidates leave Step 1 sorted by id, so Step-2's
  // survival products multiply in an order determined by the candidate SET
  // alone (not the backend's leaf-entry order). Applied at every candidate
  // exit below.
  const auto finish = [this](std::vector<uncertain::ObjectId>* c) {
    if (options_.canonical_candidates) std::sort(c->begin(), c->end());
  };
  ResultCache* cache = state->cache.get();
  const Backend* active = state->active;
  // Leaf location feeds the result cache and, on the grouped batch path,
  // the grouping key — there it is worth a (page-free) FindLeaf even when
  // the cache is off. A trajectory caller forces it (hint / want_ref) so
  // consecutive samples can share one descent.
  const bool want_leaf =
      cache != nullptr ||
      (want_grouping && options_.batch_step2 &&
       active->SupportsLeafGrouping()) ||
      hint != nullptr || want_ref;
  // Lap attribution: the stages here run strictly in sequence, so each
  // boundary needs only one clock read (vs two per ScopedStageTimer).
  StageLap lap(timings);
  if (want_leaf) {
    std::optional<pv::OctreePrimary::LeafRef> located;
    if (hint != nullptr) {
      // Trajectory reuse: the caller proved q lies strictly inside
      // hint->cell, so the descent would return this same leaf — skip it.
      located = *hint;
      out.used_hint = true;
      lap.Lap(QueryStage::kPlan);
    } else {
      Result<std::optional<pv::OctreePrimary::LeafRef>> ref_or =
          active->FindLeaf(q);
      lap.Lap(QueryStage::kPlan);
      if (!ref_or.ok()) {
        out.status = ref_or.status();
        return out;
      }
      located = ref_or.value();
    }
    if (located.has_value()) {
      const pv::OctreePrimary::LeafRef ref = *located;
      out.leaf_key = ref.id;
      out.ref = ref;
      out.has_ref = true;
      // Zero-copy serving: prune straight off the backend's own mapped
      // bytes. No block read, no block copy into the cache (the mapping is
      // its own cache — leaf_block_reads and block hit/miss counters stay
      // untouched); the cache carries only resolved Step-2 plans, looked up
      // here so the grouped path can skip re-resolution.
      if (options_.use_leaf_views && active->ServesLeafViews()) {
        Result<pv::LeafBlockView> view_or = active->ReadLeafBlockView(ref);
        if (!view_or.ok()) {
          lap.Lap(QueryStage::kLeafCache);
          out.status = view_or.status();
          return out;
        }
        out.view = view_or.value();
        out.has_view = true;
        if (want_grouping && cache != nullptr) {
          out.plan = cache->LookupPlan(active->kind(), ref.id);
        }
        lap.Lap(QueryStage::kLeafCache);
        out.candidates = active->PruneLeafBlockView(out.view, q, scratch);
        finish(&out.candidates);
        lap.Lap(QueryStage::kStep1Prune);
        return out;
      }
      // With the cache off there is no snapshot to fill or reuse: keep the
      // grouping key and fall through to Step1, which prunes straight from
      // the worker scratch (same page reads, no per-query block copy).
      if (cache != nullptr) {
        ResultCache::BlockPtr block = cache->Lookup(active->kind(), ref.id);
        if (block != nullptr) {
          out.cache_hit = true;
          if (want_grouping) {
            out.plan = cache->LookupPlan(active->kind(), ref.id);
          }
        } else {
          auto read = active->ReadLeafBlock(ref);
          if (!read.ok()) {
            lap.Lap(QueryStage::kLeafCache);
            out.status = read.status();
            return out;
          }
          leaf_block_reads_->Increment();
          block =
              cache->Insert(active->kind(), ref.id, std::move(read).value());
        }
        lap.Lap(QueryStage::kLeafCache);
        out.candidates = active->PruneLeafBlock(*block, q, scratch);
        finish(&out.candidates);
        lap.Lap(QueryStage::kStep1Prune);
        out.block = std::move(block);
        return out;
      }
    }
  }
  // Full Step 1 (the backend redoes its own descent): any leaf hint saved
  // nothing on this path.
  out.used_hint = false;
  auto step1 = active->Step1(q, scratch);
  lap.Lap(QueryStage::kStep1Prune);
  if (!step1.ok()) {
    out.status = step1.status();
    return out;
  }
  out.candidates = std::move(step1).value();
  finish(&out.candidates);
  return out;
}

PnnAnswer QueryEngine::AnswerOne(const geom::Point& q) const {
  StopWatch watch;
  std::shared_lock<std::shared_mutex> lock(mu_);
  PnnAnswer ans = AnswerOneLocked(q);
  // Latency includes the wait for the shared lock (a writer may hold it).
  ans.latency_ms = watch.ElapsedMillis();
  // The per-query serving paths (Submit futures, per-query batches) account
  // here; the grouped batch path records in one pass after its sweep and
  // calls AnswerOneLocked directly, so nothing double-counts.
  RecordAnswer(ans);
  return ans;
}

PnnAnswer QueryEngine::AnswerOneLocked(const geom::Point& q) const {
  return AnswerPointLocked(CurrentState(), q, nullptr);
}

PnnAnswer QueryEngine::AnswerPointLocked(const StatePtr& state,
                                         const geom::Point& q,
                                         LeafHint* hint) const {
  PnnAnswer ans;
  StopWatch watch;
  pv::QueryScratch& scratch = WorkerScratch();
  StageTimings timings;
  StageTimings* t = options_.stage_timing ? &timings : nullptr;
  const pv::OctreePrimary::LeafRef* seed =
      hint != nullptr && hint->valid && StrictlyInside(hint->ref.cell, q)
          ? &hint->ref
          : nullptr;
  Step1Outcome s1 = Step1One(state, q, &scratch, /*want_grouping=*/false, t,
                             seed, /*want_ref=*/hint != nullptr);
  if (hint != nullptr) {
    hint->used = s1.used_hint;
    hint->valid = s1.status.ok() && s1.has_ref;
    if (hint->valid) hint->ref = s1.ref;
  }
  ans.cache_hit = s1.cache_hit;
  if (!s1.status.ok()) {
    ans.status = s1.status;
    ans.latency_ms = watch.ElapsedMillis();
    ans.stage_ns = timings.ns;
    return ans;
  }
  // The evaluator charges kStep2 itself through the scratch hook; cleared
  // right after because the scratch is thread_local and `timings` is not.
  scratch.timings = t;
  ans.results =
      state->step2->Evaluate(q, s1.candidates, &scratch,
                             options_.charge_step2_io ? step2_pages_ : nullptr,
                             options_.min_probability, &ans.status);
  scratch.timings = nullptr;
  ans.latency_ms = watch.ElapsedMillis();
  ans.stage_ns = timings.ns;
  if (options_.scratch_max_bytes > 0) {
    scratch.ShrinkToFit(options_.scratch_max_bytes);
  }
  return ans;
}

PnnAnswer QueryEngine::AnswerRange(const QueryRequest& req) const {
  PnnAnswer ans;
  StopWatch watch;
  StageTimings timings;
  StageTimings* t = options_.stage_timing ? &timings : nullptr;
  std::shared_lock<std::shared_mutex> lock(mu_);
  const StatePtr state = CurrentState();
  // Range Step 1: every object whose indexed uncertainty region intersects
  // the rect. Backends without a range-addressable structure (R-tree Step-1
  // baseline) fall back to a linear dataset scan — same closed-box test,
  // same canonical id order.
  std::vector<uncertain::ObjectId> candidates;
  {
    StageLap lap(t);
    Result<std::vector<uncertain::ObjectId>> cand_or =
        state->active->RangeCandidates(req.rect);
    if (cand_or.ok()) {
      candidates = std::move(cand_or).value();
    } else if (cand_or.status().code() == StatusCode::kNotSupported &&
               db_ != nullptr) {
      for (const auto& o : db_->objects()) {
        if (o.region().Intersects(req.rect)) candidates.push_back(o.id());
      }
      std::sort(candidates.begin(), candidates.end());
    } else {
      lap.Lap(QueryStage::kStep1Prune);
      ans.status = cand_or.status();
      ans.latency_ms = watch.ElapsedMillis();
      ans.stage_ns = timings.ns;
      return ans;
    }
    lap.Lap(QueryStage::kStep1Prune);
  }
  {
    ScopedStageTimer step2_timer(t, QueryStage::kStep2);
    ans.results = state->step2->EvaluateRangeProb(
        req.rect, candidates,
        options_.charge_step2_io ? step2_pages_ : nullptr, req.probability,
        &ans.status);
  }
  ans.latency_ms = watch.ElapsedMillis();
  ans.stage_ns = timings.ns;
  return ans;
}

QueryAnswer QueryEngine::AnswerRequest(const QueryRequest& req) const {
  QueryAnswer qa;
  qa.kind = req.kind;
  qa.status = ValidateQueryRequest(req, dim_);
  if (!qa.status.ok()) {
    PnnAnswer failed;
    failed.status = qa.status;
    RecordAnswer(failed, req.kind);
    return qa;
  }
  switch (req.kind) {
    case QueryKind::kPnn:
    case QueryKind::kTopKByProb:
    case QueryKind::kThresholdNN: {
      StopWatch watch;
      PnnAnswer ua;
      {
        std::shared_lock<std::shared_mutex> lock(mu_);
        ua = AnswerOneLocked(req.point);
      }
      // Latency includes the wait for the shared lock (a writer may hold
      // it); selection runs before accounting so traces carry the final
      // result count.
      ua.latency_ms = watch.ElapsedMillis();
      ua.results = SelectResults(req, std::move(ua.results));
      RecordAnswer(ua, req.kind);
      qa.status = std::move(ua.status);
      qa.results = std::move(ua.results);
      qa.cache_hit = ua.cache_hit;
      qa.latency_ms = ua.latency_ms;
      qa.stage_ns = ua.stage_ns;
      return qa;
    }
    case QueryKind::kRangeProb: {
      PnnAnswer ua = AnswerRange(req);
      RecordAnswer(ua, req.kind);
      qa.status = std::move(ua.status);
      qa.results = std::move(ua.results);
      qa.latency_ms = ua.latency_ms;
      qa.stage_ns = ua.stage_ns;
      return qa;
    }
    case QueryKind::kTrajectoryPnn: {
      const std::vector<geom::Point> samples =
          SampleTrajectory(req.polyline, req.step);
      qa.steps.resize(samples.size());
      // One shared lock across the whole trajectory: every sample serves
      // from the same state, and the leaf hint stays valid between them.
      std::shared_lock<std::shared_mutex> lock(mu_);
      const StatePtr state = CurrentState();
      LeafHint hint;
      for (size_t j = 0; j < samples.size(); ++j) {
        PnnAnswer ua = AnswerPointLocked(state, samples[j], &hint);
        RecordAnswer(ua, req.kind);
        qa.steps[j].point = samples[j];
        qa.steps[j].results = std::move(ua.results);
        qa.steps[j].reused_step1 = hint.used;
        qa.cache_hit |= ua.cache_hit;
        qa.latency_ms += ua.latency_ms;
        for (size_t st = 0; st < ua.stage_ns.size(); ++st) {
          qa.stage_ns[st] += ua.stage_ns[st];
        }
        if (!ua.status.ok() && qa.status.ok()) qa.status = ua.status;
      }
      return qa;
    }
  }
  qa.status = Status::InvalidArgument("unknown query kind");
  return qa;
}

void QueryEngine::RecordAnswer(const PnnAnswer& ans, QueryKind kind) const {
  queries_total_->Increment();
  const size_t kind_idx = static_cast<size_t>(kind) - 1;
  if (kind_idx < queries_by_kind_.size()) {
    queries_by_kind_[kind_idx]->Increment();
  }
  if (!ans.status.ok()) query_failures_->Increment();
  latency_hist_->Record(std::llround(ans.latency_ms * 1e6));
  if (options_.stage_timing) {
    for (size_t i = 0; i < stage_hists_.size(); ++i) {
      stage_hists_[i]->Record(ans.stage_ns[i]);
    }
  }
  if (!tracer_.enabled()) return;
  // The sequence number counts every completed query (so sampled traces
  // carry their true position in the stream), but the trace payload is only
  // assembled for the 1-in-N (or slow) queries that actually emit.
  const uint64_t seq = query_seq_.fetch_add(1, std::memory_order_relaxed);
  const Tracer::EmitDecision decision = tracer_.Decide(ans.latency_ms);
  if (!decision.emit) return;
  QueryTraceInfo info;
  info.seq = seq;
  info.latency_ms = ans.latency_ms;
  info.stages.ns = ans.stage_ns;
  info.cache_hit = ans.cache_hit;
  info.ok = ans.status.ok();
  info.results = ans.results.size();
  info.backend = backend_name_;
  info.kind = QueryKindName(kind);
  tracer_.EmitDecided(info, decision);
}

std::vector<QueryAnswer> QueryEngine::ExecuteRequests(
    std::span<const QueryRequest> requests, ServiceStats* stats) {
  const size_t nreq = requests.size();
  std::vector<QueryAnswer> answers(nreq);

  // Expansion — every request becomes point-evaluation units: one for a
  // point kind, one per arc-length sample for a trajectory, one range unit
  // for a range request. Unit order is deterministic (requests in order,
  // samples in path order), which fixes the accounting order below.
  struct Unit {
    uint32_t req = 0;
    uint32_t step = 0;     // trajectory sample index
    geom::Point point{1};  // evaluated point (unused for range units)
  };
  // Pool tasks: point and range units parallelize individually; a
  // trajectory is one sequential task, because its samples chain the leaf
  // hint and must share one lock hold (one consistent serving state).
  struct Task {
    enum Kind { kPointUnit, kTrajectory, kRangeUnit };
    Kind kind = kPointUnit;
    uint32_t index = 0;  // unit index, or request index for kTrajectory
  };
  std::vector<Unit> units;
  std::vector<uint32_t> first_unit(nreq, 0);
  std::vector<uint32_t> unit_count(nreq, 0);
  std::vector<Task> tasks;
  for (size_t ri = 0; ri < nreq; ++ri) {
    const QueryRequest& req = requests[ri];
    answers[ri].kind = req.kind;
    answers[ri].status = ValidateQueryRequest(req, dim_);
    first_unit[ri] = static_cast<uint32_t>(units.size());
    if (!answers[ri].status.ok()) continue;
    switch (req.kind) {
      case QueryKind::kPnn:
      case QueryKind::kTopKByProb:
      case QueryKind::kThresholdNN:
        tasks.push_back(
            Task{Task::kPointUnit, static_cast<uint32_t>(units.size())});
        units.push_back(Unit{static_cast<uint32_t>(ri), 0, req.point});
        break;
      case QueryKind::kRangeProb:
        tasks.push_back(
            Task{Task::kRangeUnit, static_cast<uint32_t>(units.size())});
        units.push_back(Unit{static_cast<uint32_t>(ri), 0, geom::Point(1)});
        break;
      case QueryKind::kTrajectoryPnn: {
        std::vector<geom::Point> samples =
            SampleTrajectory(req.polyline, req.step);
        answers[ri].steps.resize(samples.size());
        tasks.push_back(Task{Task::kTrajectory, static_cast<uint32_t>(ri)});
        for (size_t j = 0; j < samples.size(); ++j) {
          answers[ri].steps[j].point = samples[j];
          units.push_back(Unit{static_cast<uint32_t>(ri),
                               static_cast<uint32_t>(j),
                               std::move(samples[j])});
        }
        break;
      }
    }
    unit_count[ri] = static_cast<uint32_t>(units.size()) - first_unit[ri];
  }

  std::vector<Step1Outcome> s1(units.size());
  std::vector<PnnAnswer> unit_ans(units.size());
  const bool grouped = options_.batch_step2;

  // Phase 1 — tasks sharded across the pool. Each task holds the shared
  // lock only for its own duration (never across the barrier) and records
  // the serving state and mutation epoch it observed. Grouped mode runs
  // only Step 1 here; ungrouped mode runs the full per-unit pipeline.
  // Range units always complete here — they have no Step-2 group to join.
  pool_->ParallelFor(tasks.size(), [&](size_t ti) {
    const Task& task = tasks[ti];
    if (task.kind == Task::kRangeUnit) {
      unit_ans[task.index] = AnswerRange(requests[units[task.index].req]);
      return;
    }
    if (task.kind == Task::kPointUnit) {
      const size_t u = task.index;
      StopWatch watch;
      if (!grouped) {
        std::shared_lock<std::shared_mutex> lock(mu_);
        unit_ans[u] = AnswerOneLocked(units[u].point);
        // Latency includes the wait for the shared lock (a writer may
        // hold it).
        unit_ans[u].latency_ms = watch.ElapsedMillis();
        return;
      }
      StageTimings timings;
      StageTimings* t = options_.stage_timing ? &timings : nullptr;
      std::shared_lock<std::shared_mutex> lock(mu_);
      s1[u] = Step1One(CurrentState(), units[u].point, &WorkerScratch(),
                       /*want_grouping=*/true, t);
      unit_ans[u].status = s1[u].status;
      unit_ans[u].cache_hit = s1[u].cache_hit;
      unit_ans[u].latency_ms = watch.ElapsedMillis();
      unit_ans[u].stage_ns = timings.ns;
      return;
    }
    // Trajectory: samples run in path order under one shared lock, so
    // every sample serves the same state and the previous sample's leaf is
    // reusable whenever the next sample stays strictly inside its cell.
    const uint32_t ri = task.index;
    QueryAnswer& qa = answers[ri];
    std::shared_lock<std::shared_mutex> lock(mu_);
    const StatePtr state = CurrentState();
    if (!grouped) {
      LeafHint hint;
      for (uint32_t j = 0; j < unit_count[ri]; ++j) {
        const size_t u = first_unit[ri] + j;
        unit_ans[u] = AnswerPointLocked(state, units[u].point, &hint);
        qa.steps[j].reused_step1 = hint.used;
      }
      return;
    }
    const pv::OctreePrimary::LeafRef* hint = nullptr;
    for (uint32_t j = 0; j < unit_count[ri]; ++j) {
      const size_t u = first_unit[ri] + j;
      StopWatch watch;
      StageTimings timings;
      StageTimings* t = options_.stage_timing ? &timings : nullptr;
      const pv::OctreePrimary::LeafRef* seed =
          hint != nullptr && StrictlyInside(hint->cell, units[u].point)
              ? hint
              : nullptr;
      s1[u] = Step1One(state, units[u].point, &WorkerScratch(),
                       /*want_grouping=*/true, t, seed, /*want_ref=*/true);
      // s1 is sized up front, so the ref pointer stays stable.
      hint = s1[u].status.ok() && s1[u].has_ref ? &s1[u].ref : nullptr;
      qa.steps[j].reused_step1 = s1[u].used_hint;
      unit_ans[u].status = s1[u].status;
      unit_ans[u].cache_hit = s1[u].cache_hit;
      unit_ans[u].latency_ms = watch.ElapsedMillis();
      unit_ans[u].stage_ns = timings.ns;
    }
  });

  std::atomic<int64_t> groups_swept{0};
  std::atomic<int64_t> queries_swept{0};
  std::atomic<int64_t> pairs_pruned{0};
  if (grouped) {
    // Plan — group successful units by identical surviving candidate sets,
    // regardless of which request kind produced them: a top-k query and a
    // plain PNN landing in the same leaf share one sweep. Range units have
    // no point candidates and stay out.
    pv::Step2Batch plan;
    for (size_t u = 0; u < units.size(); ++u) {
      if (requests[units[u].req].kind == QueryKind::kRangeProb) continue;
      if (!s1[u].status.ok()) continue;
      plan.Add(static_cast<uint32_t>(u), s1[u].leaf_key,
               std::move(s1[u].candidates));
    }

    // Phase 2 — one candidate-outer sweep per group, groups sharded across
    // the pool. A group is swept only when every member saw the same
    // serving state (and, for the mutable borrowed-index state, the epoch
    // is still current — a writer may have slipped between the phases).
    // Stale or mixed groups redo their members per-query against the live
    // state, so every answer is computed against one consistent index
    // state. A group uniformly on an older *snapshot* state is still swept
    // — the snapshot is immutable and its state bundle alive via the
    // members' shared_ptr.
    const auto& groups = plan.groups();
    pool_->ParallelFor(groups.size(), [&](size_t gi) {
      const pv::Step2Batch::Group& g = groups[gi];
      pv::QueryScratch& scratch = WorkerScratch();
      StopWatch group_watch;
      std::shared_lock<std::shared_mutex> lock(mu_);
      const Step1Outcome& first = s1[g.queries.front()];
      bool stale = false;
      for (uint32_t qi : g.queries) {
        stale |= s1[qi].state != first.state || s1[qi].epoch != first.epoch;
      }
      if (!stale && first.state->snapshot == nullptr) {
        stale |= first.epoch != epoch_.load(std::memory_order_relaxed);
      }
      if (stale) {
        for (uint32_t qi : g.queries) {
          const double step1_ms = unit_ans[qi].latency_ms;
          const std::array<int64_t, kNumQueryStages> step1_ns =
              unit_ans[qi].stage_ns;
          unit_ans[qi] = AnswerOneLocked(units[qi].point);
          // Keep the phase-1 work (and inter-phase wait) in the total.
          unit_ans[qi].latency_ms += step1_ms;
          for (size_t st = 0; st < step1_ns.size(); ++st) {
            unit_ans[qi].stage_ns[st] += step1_ns[st];
          }
        }
        return;
      }
      const ServingState& gstate = *first.state;
      MetricRegistry::Counter* io =
          options_.charge_step2_io ? step2_pages_ : nullptr;
      // Group-level attribution, merged into every member below — the same
      // semantics as latency_ms, which charges the whole sweep to each
      // member because no answer was ready before the group finished.
      StageTimings gtimings;
      StageTimings* gt = options_.stage_timing ? &gtimings : nullptr;
      if (g.queries.size() >= options_.step2_min_group_size &&
          !g.candidates.empty()) {
        std::vector<const uncertain::UncertainObject*> resolved;
        {
          // Candidate-record resolution is planning work, not evaluation.
          ScopedStageTimer plan_timer(gt, QueryStage::kPlan);
          resolved = ResolveGroup(g, first);
        }
        pv::Step2GroupOptions gopts;
        gopts.min_probability = options_.min_probability;
        gopts.max_scratch_bytes = options_.scratch_max_bytes;
        gopts.resolved = resolved;
        pv::Step2BatchStats bstats;
        std::vector<geom::Point> group_queries;
        group_queries.reserve(g.queries.size());
        for (uint32_t qi : g.queries) group_queries.push_back(units[qi].point);
        Status group_status;
        scratch.timings = gt;  // EvaluateGroup charges kStep2 itself
        auto results =
            gstate.step2->EvaluateGroup(group_queries, g.candidates, &scratch,
                                        io, gopts, &bstats, &group_status);
        scratch.timings = nullptr;
        {
          ScopedStageTimer merge_timer(gt, QueryStage::kMerge);
          for (size_t t = 0; t < g.queries.size(); ++t) {
            unit_ans[g.queries[t]].status = group_status;
            unit_ans[g.queries[t]].results = std::move(results[t]);
          }
        }
        const double group_ms = group_watch.ElapsedMillis();
        for (uint32_t qi : g.queries) {
          // The answer was not ready until its whole group swept.
          unit_ans[qi].latency_ms += group_ms;
          for (size_t st = 0; st < gtimings.ns.size(); ++st) {
            unit_ans[qi].stage_ns[st] += gtimings.ns[st];
          }
        }
        groups_swept.fetch_add(1, std::memory_order_relaxed);
        queries_swept.fetch_add(static_cast<int64_t>(g.queries.size()),
                                std::memory_order_relaxed);
        pairs_pruned.fetch_add(bstats.pairs_pruned,
                               std::memory_order_relaxed);
      } else {
        for (uint32_t qi : g.queries) {
          const QueryRequest& qreq = requests[units[qi].req];
          // The stopwatch here spans exactly the evaluation call, which is
          // exactly what the kStep2 scratch hook would measure — so reuse
          // its two clock reads for the stage attribution instead of
          // arming the hook and paying two more.
          StopWatch watch;
          if (qreq.kind == QueryKind::kTopKByProb) {
            // Singleton top-k: the upper-bound early exit abandons
            // candidates that provably miss the top k. Bit-identical to
            // Evaluate + SelectResults (the bound never drops a winner).
            unit_ans[qi].results = gstate.step2->EvaluateTopK(
                units[qi].point, g.candidates, qreq.k, &scratch, io,
                options_.min_probability, &unit_ans[qi].status);
          } else {
            unit_ans[qi].results = gstate.step2->Evaluate(
                units[qi].point, g.candidates, &scratch, io,
                options_.min_probability, &unit_ans[qi].status);
          }
          const double step2_ms = watch.ElapsedMillis();
          unit_ans[qi].latency_ms += step2_ms;
          if (options_.stage_timing) {
            unit_ans[qi].stage_ns[static_cast<size_t>(QueryStage::kStep2)] +=
                std::llround(step2_ms * 1e6);
          }
        }
      }
      if (options_.scratch_max_bytes > 0) {
        scratch.ShrinkToFit(options_.scratch_max_bytes);
      }
    });
  }

  // Phase 3 — per-kind selection, then one deterministic accounting pass in
  // the calling thread: histograms, counters and (when tracing) the
  // sampled/slow JSON lines for every unit — emission order and sampling
  // sequence stay stable regardless of how the pool interleaved the work.
  HistogramData lat;
  const auto record = [&](const PnnAnswer& ua, QueryKind kind) {
    RecordAnswer(ua, kind);
    if (stats != nullptr) {
      stats->queries += 1;
      stats->latency_ms.Add(ua.latency_ms);
      lat.Record(std::llround(ua.latency_ms * 1e6));
      for (size_t st = 0; st < ua.stage_ns.size(); ++st) {
        stats->stage_ms[st] += static_cast<double>(ua.stage_ns[st]) / 1e6;
      }
    }
  };
  for (size_t ri = 0; ri < nreq; ++ri) {
    const QueryRequest& req = requests[ri];
    QueryAnswer& qa = answers[ri];
    if (!qa.status.ok() && unit_count[ri] == 0) {
      // Failed validation: accounted as one failed unit so failure counters
      // and traces see it.
      PnnAnswer failed;
      failed.status = qa.status;
      record(failed, req.kind);
      continue;
    }
    if (req.kind == QueryKind::kTrajectoryPnn) {
      for (uint32_t j = 0; j < unit_count[ri]; ++j) {
        PnnAnswer& ua = unit_ans[first_unit[ri] + j];
        record(ua, req.kind);
        qa.steps[j].results = std::move(ua.results);
        qa.cache_hit |= ua.cache_hit;
        qa.latency_ms += ua.latency_ms;
        for (size_t st = 0; st < ua.stage_ns.size(); ++st) {
          qa.stage_ns[st] += ua.stage_ns[st];
        }
        if (!ua.status.ok() && qa.status.ok()) qa.status = ua.status;
      }
      continue;
    }
    PnnAnswer& ua = unit_ans[first_unit[ri]];
    ua.results = SelectResults(req, std::move(ua.results));
    record(ua, req.kind);
    qa.status = std::move(ua.status);
    qa.results = std::move(ua.results);
    qa.cache_hit = ua.cache_hit;
    qa.latency_ms = ua.latency_ms;
    qa.stage_ns = ua.stage_ns;
  }

  if (stats != nullptr) {
    stats->p50_latency_ms = static_cast<double>(lat.Percentile(50.0)) / 1e6;
    stats->p99_latency_ms = static_cast<double>(lat.Percentile(99.0)) / 1e6;
    stats->step2_groups = groups_swept.load();
    stats->step2_grouped_queries = queries_swept.load();
    stats->step2_pairs_pruned = pairs_pruned.load();
  }
  return answers;
}

std::vector<const uncertain::UncertainObject*> QueryEngine::ResolveGroup(
    const pv::Step2Batch::Group& group, const Step1Outcome& first) const {
  std::vector<const uncertain::UncertainObject*> resolved;
  const ServingState& state = *first.state;
  // Leaf entries the candidates were pruned from: a cached block snapshot
  // or, on the zero-copy path, the snapshot's own id plane (borrowed
  // memory, kept alive by first.state).
  const uncertain::ObjectId* ids = nullptr;
  size_t id_count = 0;
  if (first.has_view) {
    ids = first.view.ids;
    id_count = first.view.count;
  } else if (first.block != nullptr) {
    ids = first.block->ids.data();
    id_count = first.block->size();
  }
  // Canonical candidate ordering is id order, not leaf order — the
  // lockstep walk below would always mismatch, so skip straight to the
  // per-id lookup fallback.
  if (state.cache == nullptr || ids == nullptr ||
      first.leaf_key == pv::kNoLeafId ||
      !state.active->PruneKeepsLeafOrder() || options_.canonical_candidates) {
    return resolved;
  }
  ResultCache::PlanPtr plan = first.plan;
  if (plan == nullptr) {
    ResultCache::Step2LeafPlan fresh;
    fresh.objs.reserve(id_count);
    for (size_t i = 0; i < id_count; ++i) {
      const uncertain::UncertainObject* o = state.objects->FindObject(ids[i]);
      if (o == nullptr) return resolved;  // fall back to per-id lookup
      fresh.objs.push_back(o);
    }
    plan = state.cache->AttachPlan(state.active->kind(), first.leaf_key,
                                   std::move(fresh));
  }
  // Pruning preserved leaf order, so the candidates map onto the plan with
  // one lockstep walk.
  resolved.reserve(group.candidates.size());
  size_t bi = 0;
  for (uncertain::ObjectId id : group.candidates) {
    while (bi < id_count && ids[bi] != id) ++bi;
    if (bi == id_count) {
      resolved.clear();  // order mismatch; fall back to per-id lookup
      return resolved;
    }
    resolved.push_back(plan->objs[bi++]);
  }
  return resolved;
}

std::vector<QueryAnswer> QueryEngine::ExecuteBatch(
    std::span<const QueryRequest> requests, ServiceStats* stats) {
  // Pin the entry state for the batch's cache bookkeeping: a concurrent
  // AdoptSnapshot may retire it mid-batch, and only this shared_ptr keeps
  // the sampled cache alive until the closing reads below.
  const StatePtr entry_state = CurrentState();
  const ResultCache* entry_cache = entry_state->cache.get();
  const int64_t hits_before = entry_cache != nullptr ? entry_cache->hits() : 0;
  const int64_t misses_before =
      entry_cache != nullptr ? entry_cache->misses() : 0;

  StopWatch wall;
  if (stats != nullptr) *stats = ServiceStats{};
  // Per-unit latency Summary, batch-local log-linear histogram percentiles
  // (one pass, no copy, no sort — bounded by the histogram's 1/32 relative
  // resolution, which is what serving dashboards consume anyway) and stage
  // totals are all filled by ExecuteRequests' accounting pass; trajectory
  // requests count one unit per sample there.
  std::vector<QueryAnswer> answers = ExecuteRequests(requests, stats);
  const double wall_ms = wall.ElapsedMillis();
  batches_total_->Increment();

  if (stats != nullptr) {
    stats->threads = pool_->size();
    stats->wall_ms = wall_ms;
    stats->throughput_qps =
        wall_ms > 0.0
            ? static_cast<double>(stats->queries) / (wall_ms / 1e3)
            : 0.0;
    // Hit/miss deltas over the entry state's cache. A snapshot swap landing
    // mid-batch moves later queries onto the new state's fresh cache; the
    // deltas then cover only the pre-swap portion, which is the best
    // consistent number available without blocking the swap.
    if (entry_cache != nullptr) {
      stats->cache_hits = entry_cache->hits() - hits_before;
      stats->cache_misses = entry_cache->misses() - misses_before;
    }
  }
  return answers;
}

std::vector<PnnAnswer> QueryEngine::ExecuteBatch(
    std::span<const geom::Point> queries, ServiceStats* stats) {
  // Legacy shim: a point batch is a batch of kPnn requests. The typed path
  // reproduces the old pipeline exactly for this shape (one unit per point,
  // SelectResults is the identity for kPnn), so answers are bit-identical.
  const std::vector<QueryRequest> requests = PnnRequests(queries);
  std::vector<QueryAnswer> typed = ExecuteBatch(requests, stats);
  std::vector<PnnAnswer> answers(typed.size());
  for (size_t i = 0; i < typed.size(); ++i) {
    answers[i].status = std::move(typed[i].status);
    answers[i].results = std::move(typed[i].results);
    answers[i].cache_hit = typed[i].cache_hit;
    answers[i].latency_ms = typed[i].latency_ms;
    answers[i].stage_ns = typed[i].stage_ns;
  }
  return answers;
}

std::future<QueryAnswer> QueryEngine::Submit(QueryRequest req) {
  auto task = std::make_shared<std::packaged_task<QueryAnswer()>>(
      [this, req = std::move(req)]() mutable { return AnswerRequest(req); });
  std::future<QueryAnswer> future = task->get_future();
  pool_->Submit([task] { (*task)(); });
  return future;
}

std::future<PnnAnswer> QueryEngine::Submit(const geom::Point& q) {
  auto task = std::make_shared<std::packaged_task<PnnAnswer()>>(
      [this, q] { return AnswerOne(q); });
  std::future<PnnAnswer> future = task->get_future();
  pool_->Submit([task] { (*task)(); });
  return future;
}

Status QueryEngine::Insert(uncertain::UncertainObject object) {
  if (pv_index_ == nullptr ||
      CurrentState()->active->kind() != BackendKind::kPvIndex) {
    return Status::NotSupported(
        "mutations require the engine to serve from the PV-index");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Any dataset mutation attempt invalidates record pointers (cached
  // per-leaf Step-2 plans) and strands in-flight grouped batches between
  // their phases: bump the epoch and flush the cache outright — the
  // PV-index listener only fires on success and only covers its own leaves.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  const StatePtr state = CurrentState();
  if (state->cache != nullptr) state->cache->Clear();
  const uncertain::ObjectId id = object.id();
  PVDB_RETURN_NOT_OK(db_->Add(std::move(object)));
  const Status st = pv_index_->InsertObject(*db_, id);
  if (!st.ok()) {
    // Keep dataset and index membership consistent: an object present in
    // the dataset but not the index would skew Step-2 silently.
    (void)db_->Remove(id);
  }
  return st;
}

Status QueryEngine::Delete(uncertain::ObjectId id) {
  if (pv_index_ == nullptr ||
      CurrentState()->active->kind() != BackendKind::kPvIndex) {
    return Status::NotSupported(
        "mutations require the engine to serve from the PV-index");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uncertain::UncertainObject* found = db_->Find(id);
  if (found == nullptr) {
    // Nothing mutated: keep the warm cache.
    return Status::NotFound("object not in the dataset");
  }
  // Same epoch/flush discipline as Insert, for the same reasons.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  const StatePtr state = CurrentState();
  if (state->cache != nullptr) state->cache->Clear();
  const uncertain::UncertainObject removed = *found;
  PVDB_RETURN_NOT_OK(db_->Remove(id));
  const Status st = pv_index_->DeleteObject(*db_, removed);
  if (!st.ok()) {
    // Re-add on failure: the index may still hold entries for `id`, and a
    // query resolving them against a dataset without the object aborts in
    // Step 2. Membership consistency beats a half-rolled-back index.
    (void)db_->Add(removed);
  }
  return st;
}

Status QueryEngine::AdoptSnapshot(
    std::shared_ptr<const pv::IndexSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot adopt a null snapshot");
  }
  const StatePtr current = CurrentState();
  if (current->snapshot == nullptr) {
    return Status::NotSupported(
        "AdoptSnapshot requires snapshot serving (create the engine with a "
        "sealed snapshot); borrowed-index engines mutate through "
        "Insert/Delete instead");
  }
  if (snapshot->dim() != current->snapshot->dim()) {
    return Status::InvalidArgument(
        "adopted snapshot dimensionality " + std::to_string(snapshot->dim()) +
        " does not match the serving dimensionality " +
        std::to_string(current->snapshot->dim()));
  }
  // The swap itself: wait-free for queries — loads before it serve the old
  // bundle (alive via their shared_ptr), loads after it serve the new one.
  state_.store(MakeSnapshotState(std::move(snapshot)),
               std::memory_order_release);
  snapshot_generation_->Add(1);
  snapshot_adopt_ns_.store(TraceNowNs(), std::memory_order_relaxed);
  return Status::OK();
}

std::shared_ptr<const pv::IndexSnapshot> QueryEngine::snapshot() const {
  return CurrentState()->snapshot;
}

BackendKind QueryEngine::active_backend() const {
  return CurrentState()->active->kind();
}

const ResultCache* QueryEngine::cache() const {
  return CurrentState()->cache.get();
}

}  // namespace pvdb::service
