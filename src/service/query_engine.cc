// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/query_engine.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/common/timer.h"

namespace pvdb::service {

QueryEngine::QueryEngine(uncertain::Dataset* db,
                         const QueryEngineOptions& options)
    : db_(db), options_(options), step2_(db) {}

QueryEngine::~QueryEngine() {
  // Join workers first so no task touches the engine during teardown, then
  // unhook from the (caller-owned, possibly longer-lived) PV-index.
  pool_.reset();
  if (pv_index_ != nullptr && pv_listener_id_ >= 0) {
    pv_index_->RemoveUpdateListener(pv_listener_id_);
  }
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    uncertain::Dataset* db, const EngineBackends& backends,
    const QueryEngineOptions& options) {
  PVDB_CHECK(db != nullptr);
  if (options.threads < 1) {
    return Status::InvalidArgument("engine needs at least one thread");
  }
  auto engine =
      std::unique_ptr<QueryEngine>(new QueryEngine(db, options));
  if (backends.pv != nullptr) {
    engine->backends_.push_back(MakePvBackend(backends.pv));
  }
  if (backends.uv != nullptr) {
    engine->backends_.push_back(MakeUvBackend(backends.uv));
  }
  if (backends.rtree != nullptr) {
    engine->backends_.push_back(MakeRtreeBackend(backends.rtree));
  }

  PlanInput input;
  input.dim = db->dim();
  input.dataset_size = db->size();
  for (const auto& b : engine->backends_) input.available.push_back(b->kind());
  input.override = options.backend_override;
  PVDB_ASSIGN_OR_RETURN(Plan plan, PlanBackend(input));
  for (const auto& b : engine->backends_) {
    if (b->kind() == plan.backend) engine->active_ = b.get();
  }
  PVDB_CHECK(engine->active_ != nullptr);
  engine->plan_reason_ = std::move(plan.reason);

  engine->step2_pages_ =
      engine->metrics_.Register(pv::PnnCounters::kPdfPagesRead);
  if (options.cache_capacity > 0) {
    engine->cache_ = std::make_unique<ResultCache>(options.cache_capacity);
  }
  if (backends.pv != nullptr) {
    engine->pv_index_ = backends.pv;
    // Invalidation hook: any PV-index mutation flushes its cached leaves
    // (leaf ids survive in-place page rewrites, so contents must go).
    QueryEngine* raw = engine.get();
    engine->pv_listener_id_ = backends.pv->AddUpdateListener([raw] {
      if (raw->cache_ != nullptr) {
        raw->cache_->Invalidate(BackendKind::kPvIndex);
      }
    });
  }
  engine->pool_ = std::make_unique<ThreadPool>(options.threads);
  return engine;
}

namespace {

/// One scratch arena per worker thread (and per external caller thread):
/// Step-1 block pruning and Step-2 table building reuse its buffers across
/// every query this thread serves, so the steady-state hot path performs
/// no per-query heap allocation beyond the answer vectors.
pv::QueryScratch& WorkerScratch() {
  static thread_local pv::QueryScratch scratch;
  return scratch;
}

}  // namespace

QueryEngine::Step1Outcome QueryEngine::Step1One(
    const geom::Point& q, pv::QueryScratch* scratch,
    bool want_grouping) const {
  Step1Outcome out;
  out.epoch = epoch_.load(std::memory_order_relaxed);
  // Leaf location feeds the result cache and, on the grouped batch path,
  // the grouping key — there it is worth a (page-free) FindLeaf even when
  // the cache is off.
  const bool want_leaf =
      cache_ != nullptr ||
      (want_grouping && options_.batch_step2 &&
       active_->SupportsLeafGrouping());
  if (want_leaf) {
    auto ref_or = active_->FindLeaf(q);
    if (!ref_or.ok()) {
      out.status = ref_or.status();
      return out;
    }
    if (ref_or.value().has_value()) {
      const pv::OctreePrimary::LeafRef ref = *ref_or.value();
      out.leaf_key = ref.id;
      // With the cache off there is no snapshot to fill or reuse: keep the
      // grouping key and fall through to Step1, which prunes straight from
      // the worker scratch (same page reads, no per-query block copy).
      if (cache_ != nullptr) {
        ResultCache::BlockPtr block = cache_->Lookup(active_->kind(), ref.id);
        if (block != nullptr) {
          out.cache_hit = true;
          if (want_grouping) {
            out.plan = cache_->LookupPlan(active_->kind(), ref.id);
          }
        } else {
          auto read = active_->ReadLeafBlock(ref);
          if (!read.ok()) {
            out.status = read.status();
            return out;
          }
          block =
              cache_->Insert(active_->kind(), ref.id, std::move(read).value());
        }
        out.candidates = active_->PruneLeafBlock(*block, q, scratch);
        out.block = std::move(block);
        return out;
      }
    }
  }
  auto step1 = active_->Step1(q, scratch);
  if (!step1.ok()) {
    out.status = step1.status();
    return out;
  }
  out.candidates = std::move(step1).value();
  return out;
}

PnnAnswer QueryEngine::AnswerOne(const geom::Point& q) const {
  StopWatch watch;
  std::shared_lock<std::shared_mutex> lock(mu_);
  PnnAnswer ans = AnswerOneLocked(q);
  // Latency includes the wait for the shared lock (a writer may hold it).
  ans.latency_ms = watch.ElapsedMillis();
  return ans;
}

PnnAnswer QueryEngine::AnswerOneLocked(const geom::Point& q) const {
  PnnAnswer ans;
  StopWatch watch;
  pv::QueryScratch& scratch = WorkerScratch();
  Step1Outcome s1 = Step1One(q, &scratch, /*want_grouping=*/false);
  ans.cache_hit = s1.cache_hit;
  if (!s1.status.ok()) {
    ans.status = s1.status;
    ans.latency_ms = watch.ElapsedMillis();
    return ans;
  }
  ans.results =
      step2_.Evaluate(q, s1.candidates, &scratch,
                      options_.charge_step2_io ? step2_pages_ : nullptr,
                      options_.min_probability);
  ans.latency_ms = watch.ElapsedMillis();
  if (options_.scratch_max_bytes > 0) {
    scratch.ShrinkToFit(options_.scratch_max_bytes);
  }
  return ans;
}

std::vector<PnnAnswer> QueryEngine::ExecutePerQuery(
    std::span<const geom::Point> queries) {
  std::vector<PnnAnswer> answers(queries.size());
  pool_->ParallelFor(queries.size(), [this, &queries, &answers](size_t i) {
    answers[i] = AnswerOne(queries[i]);
  });
  return answers;
}

std::vector<PnnAnswer> QueryEngine::ExecuteGrouped(
    std::span<const geom::Point> queries, ServiceStats* stats) {
  std::vector<PnnAnswer> answers(queries.size());
  std::vector<Step1Outcome> s1(queries.size());

  // Phase 1 — Step 1 for every query, sharded across the pool. Each task
  // holds the shared lock only for its own duration (never across the
  // barrier), and records the mutation epoch it observed.
  pool_->ParallelFor(queries.size(), [this, &queries, &answers, &s1](size_t i) {
    StopWatch watch;
    std::shared_lock<std::shared_mutex> lock(mu_);
    s1[i] = Step1One(queries[i], &WorkerScratch(), /*want_grouping=*/true);
    answers[i].status = s1[i].status;
    answers[i].cache_hit = s1[i].cache_hit;
    answers[i].latency_ms = watch.ElapsedMillis();
  });

  // Plan — group successful queries by identical surviving candidate sets.
  pv::Step2Batch plan;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!s1[i].status.ok()) continue;
    plan.Add(static_cast<uint32_t>(i), s1[i].leaf_key,
             std::move(s1[i].candidates));
  }

  // Phase 2 — one candidate-outer sweep per group, groups sharded across
  // the pool. A group whose epoch went stale (a writer slipped between the
  // phases) redoes its members per-query under the current lock, so every
  // answer is computed against one consistent index state.
  std::atomic<int64_t> groups_swept{0};
  std::atomic<int64_t> queries_swept{0};
  std::atomic<int64_t> pairs_pruned{0};
  const auto& groups = plan.groups();
  pool_->ParallelFor(groups.size(), [&](size_t gi) {
    const pv::Step2Batch::Group& g = groups[gi];
    pv::QueryScratch& scratch = WorkerScratch();
    StopWatch group_watch;
    std::shared_lock<std::shared_mutex> lock(mu_);
    const uint64_t now = epoch_.load(std::memory_order_relaxed);
    bool stale = false;
    for (uint32_t qi : g.queries) stale |= s1[qi].epoch != now;
    if (stale) {
      for (uint32_t qi : g.queries) {
        const double step1_ms = answers[qi].latency_ms;
        answers[qi] = AnswerOneLocked(queries[qi]);
        // Keep the phase-1 work (and inter-phase wait) in the total.
        answers[qi].latency_ms += step1_ms;
      }
      return;
    }
    MetricRegistry::Counter* io =
        options_.charge_step2_io ? step2_pages_ : nullptr;
    if (g.queries.size() >= options_.step2_min_group_size &&
        !g.candidates.empty()) {
      const std::vector<const uncertain::UncertainObject*> resolved =
          ResolveGroup(g, s1[g.queries.front()]);
      pv::Step2GroupOptions gopts;
      gopts.min_probability = options_.min_probability;
      gopts.max_scratch_bytes = options_.scratch_max_bytes;
      gopts.resolved = resolved;
      pv::Step2BatchStats bstats;
      std::vector<geom::Point> group_queries;
      group_queries.reserve(g.queries.size());
      for (uint32_t qi : g.queries) group_queries.push_back(queries[qi]);
      auto results = step2_.EvaluateGroup(group_queries, g.candidates,
                                          &scratch, io, gopts, &bstats);
      const double group_ms = group_watch.ElapsedMillis();
      for (size_t t = 0; t < g.queries.size(); ++t) {
        answers[g.queries[t]].results = std::move(results[t]);
        // The answer was not ready until its whole group swept.
        answers[g.queries[t]].latency_ms += group_ms;
      }
      groups_swept.fetch_add(1, std::memory_order_relaxed);
      queries_swept.fetch_add(static_cast<int64_t>(g.queries.size()),
                              std::memory_order_relaxed);
      pairs_pruned.fetch_add(bstats.pairs_pruned, std::memory_order_relaxed);
    } else {
      for (uint32_t qi : g.queries) {
        StopWatch watch;
        answers[qi].results =
            step2_.Evaluate(queries[qi], g.candidates, &scratch, io,
                            options_.min_probability);
        answers[qi].latency_ms += watch.ElapsedMillis();
      }
    }
    if (options_.scratch_max_bytes > 0) {
      scratch.ShrinkToFit(options_.scratch_max_bytes);
    }
  });

  if (stats != nullptr) {
    stats->step2_groups = groups_swept.load();
    stats->step2_grouped_queries = queries_swept.load();
    stats->step2_pairs_pruned = pairs_pruned.load();
  }
  return answers;
}

std::vector<const uncertain::UncertainObject*> QueryEngine::ResolveGroup(
    const pv::Step2Batch::Group& group, const Step1Outcome& first) const {
  std::vector<const uncertain::UncertainObject*> resolved;
  if (cache_ == nullptr || first.block == nullptr ||
      first.leaf_key == pv::kNoLeafId || !active_->PruneKeepsLeafOrder()) {
    return resolved;
  }
  ResultCache::PlanPtr plan = first.plan;
  if (plan == nullptr) {
    ResultCache::Step2LeafPlan fresh;
    fresh.objs.reserve(first.block->size());
    for (uncertain::ObjectId id : first.block->ids) {
      const uncertain::UncertainObject* o = db_->Find(id);
      if (o == nullptr) return resolved;  // fall back to per-id lookup
      fresh.objs.push_back(o);
    }
    plan = cache_->AttachPlan(active_->kind(), first.leaf_key,
                              std::move(fresh));
  }
  // Pruning preserved leaf order, so the candidates map onto the plan with
  // one lockstep walk.
  resolved.reserve(group.candidates.size());
  size_t bi = 0;
  const auto& ids = first.block->ids;
  for (uncertain::ObjectId id : group.candidates) {
    while (bi < ids.size() && ids[bi] != id) ++bi;
    if (bi == ids.size()) {
      resolved.clear();  // order mismatch; fall back to per-id lookup
      return resolved;
    }
    resolved.push_back(plan->objs[bi++]);
  }
  return resolved;
}

std::vector<PnnAnswer> QueryEngine::ExecuteBatch(
    std::span<const geom::Point> queries, ServiceStats* stats) {
  const int64_t hits_before = cache_ != nullptr ? cache_->hits() : 0;
  const int64_t misses_before = cache_ != nullptr ? cache_->misses() : 0;

  StopWatch wall;
  if (stats != nullptr) *stats = ServiceStats{};
  std::vector<PnnAnswer> answers = options_.batch_step2
                                       ? ExecuteGrouped(queries, stats)
                                       : ExecutePerQuery(queries);
  const double wall_ms = wall.ElapsedMillis();

  if (stats != nullptr) {
    stats->queries = static_cast<int64_t>(queries.size());
    stats->threads = pool_->size();
    stats->wall_ms = wall_ms;
    stats->throughput_qps =
        wall_ms > 0.0 ? static_cast<double>(queries.size()) / (wall_ms / 1e3)
                      : 0.0;
    std::vector<double> latencies;
    latencies.reserve(answers.size());
    for (const PnnAnswer& a : answers) {
      latencies.push_back(a.latency_ms);
      stats->latency_ms.Add(a.latency_ms);
    }
    std::sort(latencies.begin(), latencies.end());
    stats->p50_latency_ms = PercentileSorted(latencies, 50.0);
    stats->p99_latency_ms = PercentileSorted(latencies, 99.0);
    if (cache_ != nullptr) {
      stats->cache_hits = cache_->hits() - hits_before;
      stats->cache_misses = cache_->misses() - misses_before;
    }
  }
  return answers;
}

std::future<PnnAnswer> QueryEngine::Submit(const geom::Point& q) {
  auto task = std::make_shared<std::packaged_task<PnnAnswer()>>(
      [this, q] { return AnswerOne(q); });
  std::future<PnnAnswer> future = task->get_future();
  pool_->Submit([task] { (*task)(); });
  return future;
}

Status QueryEngine::Insert(uncertain::UncertainObject object) {
  if (pv_index_ == nullptr || active_->kind() != BackendKind::kPvIndex) {
    return Status::NotSupported(
        "mutations require the engine to serve from the PV-index");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Any dataset mutation attempt invalidates record pointers (cached
  // per-leaf Step-2 plans) and strands in-flight grouped batches between
  // their phases: bump the epoch and flush the cache outright — the
  // PV-index listener only fires on success and only covers its own leaves.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  if (cache_ != nullptr) cache_->Clear();
  const uncertain::ObjectId id = object.id();
  PVDB_RETURN_NOT_OK(db_->Add(std::move(object)));
  const Status st = pv_index_->InsertObject(*db_, id);
  if (!st.ok()) {
    // Keep dataset and index membership consistent: an object present in
    // the dataset but not the index would skew Step-2 silently.
    (void)db_->Remove(id);
  }
  return st;
}

Status QueryEngine::Delete(uncertain::ObjectId id) {
  if (pv_index_ == nullptr || active_->kind() != BackendKind::kPvIndex) {
    return Status::NotSupported(
        "mutations require the engine to serve from the PV-index");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uncertain::UncertainObject* found = db_->Find(id);
  if (found == nullptr) {
    // Nothing mutated: keep the warm cache.
    return Status::NotFound("object not in the dataset");
  }
  // Same epoch/flush discipline as Insert, for the same reasons.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  if (cache_ != nullptr) cache_->Clear();
  const uncertain::UncertainObject removed = *found;
  PVDB_RETURN_NOT_OK(db_->Remove(id));
  const Status st = pv_index_->DeleteObject(*db_, removed);
  if (!st.ok()) {
    // Re-add on failure: the index may still hold entries for `id`, and a
    // query resolving them against a dataset without the object aborts in
    // Step 2. Membership consistency beats a half-rolled-back index.
    (void)db_->Add(removed);
  }
  return st;
}

}  // namespace pvdb::service
