// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/query_engine.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/common/timer.h"

namespace pvdb::service {

QueryEngine::QueryEngine(uncertain::Dataset* db,
                         const QueryEngineOptions& options)
    : db_(db), options_(options), step2_(db) {}

QueryEngine::~QueryEngine() {
  // Join workers first so no task touches the engine during teardown, then
  // unhook from the (caller-owned, possibly longer-lived) PV-index.
  pool_.reset();
  if (pv_index_ != nullptr && pv_listener_id_ >= 0) {
    pv_index_->RemoveUpdateListener(pv_listener_id_);
  }
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    uncertain::Dataset* db, const EngineBackends& backends,
    const QueryEngineOptions& options) {
  PVDB_CHECK(db != nullptr);
  if (options.threads < 1) {
    return Status::InvalidArgument("engine needs at least one thread");
  }
  auto engine =
      std::unique_ptr<QueryEngine>(new QueryEngine(db, options));
  if (backends.pv != nullptr) {
    engine->backends_.push_back(MakePvBackend(backends.pv));
  }
  if (backends.uv != nullptr) {
    engine->backends_.push_back(MakeUvBackend(backends.uv));
  }
  if (backends.rtree != nullptr) {
    engine->backends_.push_back(MakeRtreeBackend(backends.rtree));
  }

  PlanInput input;
  input.dim = db->dim();
  input.dataset_size = db->size();
  for (const auto& b : engine->backends_) input.available.push_back(b->kind());
  input.override = options.backend_override;
  PVDB_ASSIGN_OR_RETURN(Plan plan, PlanBackend(input));
  for (const auto& b : engine->backends_) {
    if (b->kind() == plan.backend) engine->active_ = b.get();
  }
  PVDB_CHECK(engine->active_ != nullptr);
  engine->plan_reason_ = std::move(plan.reason);

  engine->step2_pages_ =
      engine->metrics_.Register(pv::PnnCounters::kPdfPagesRead);
  if (options.cache_capacity > 0) {
    engine->cache_ = std::make_unique<ResultCache>(options.cache_capacity);
  }
  if (backends.pv != nullptr) {
    engine->pv_index_ = backends.pv;
    // Invalidation hook: any PV-index mutation flushes its cached leaves
    // (leaf ids survive in-place page rewrites, so contents must go).
    QueryEngine* raw = engine.get();
    engine->pv_listener_id_ = backends.pv->AddUpdateListener([raw] {
      if (raw->cache_ != nullptr) {
        raw->cache_->Invalidate(BackendKind::kPvIndex);
      }
    });
  }
  engine->pool_ = std::make_unique<ThreadPool>(options.threads);
  return engine;
}

PnnAnswer QueryEngine::AnswerOne(const geom::Point& q) const {
  PnnAnswer ans;
  StopWatch watch;
  std::shared_lock<std::shared_mutex> lock(mu_);

  // One scratch arena per worker thread (and per external caller thread):
  // Step-1 block pruning and Step-2 table building reuse its buffers across
  // every query this thread serves, so the steady-state hot path performs
  // no per-query heap allocation beyond the answer vectors.
  static thread_local pv::QueryScratch scratch;

  std::vector<uncertain::ObjectId> candidates;
  bool served_from_leaf = false;
  if (cache_ != nullptr) {
    auto ref_or = active_->FindLeaf(q);
    if (!ref_or.ok()) {
      ans.status = ref_or.status();
      ans.latency_ms = watch.ElapsedMillis();
      return ans;
    }
    if (ref_or.value().has_value()) {
      const pv::OctreePrimary::LeafRef ref = *ref_or.value();
      ResultCache::BlockPtr block = cache_->Lookup(active_->kind(), ref.id);
      if (block != nullptr) {
        ans.cache_hit = true;
      } else {
        auto read = active_->ReadLeafBlock(ref);
        if (!read.ok()) {
          ans.status = read.status();
          ans.latency_ms = watch.ElapsedMillis();
          return ans;
        }
        block = cache_->Insert(active_->kind(), ref.id,
                               std::move(read).value());
      }
      candidates = active_->PruneLeafBlock(*block, q, &scratch);
      served_from_leaf = true;
    }
  }
  if (!served_from_leaf) {
    auto step1 = active_->Step1(q, &scratch);
    if (!step1.ok()) {
      ans.status = step1.status();
      ans.latency_ms = watch.ElapsedMillis();
      return ans;
    }
    candidates = std::move(step1).value();
  }

  ans.results =
      step2_.Evaluate(q, candidates, &scratch,
                      options_.charge_step2_io ? step2_pages_ : nullptr,
                      options_.min_probability);
  ans.latency_ms = watch.ElapsedMillis();
  return ans;
}

std::vector<PnnAnswer> QueryEngine::ExecuteBatch(
    std::span<const geom::Point> queries, ServiceStats* stats) {
  std::vector<PnnAnswer> answers(queries.size());
  const int64_t hits_before = cache_ != nullptr ? cache_->hits() : 0;
  const int64_t misses_before = cache_ != nullptr ? cache_->misses() : 0;

  StopWatch wall;
  pool_->ParallelFor(queries.size(), [this, &queries, &answers](size_t i) {
    answers[i] = AnswerOne(queries[i]);
  });
  const double wall_ms = wall.ElapsedMillis();

  if (stats != nullptr) {
    *stats = ServiceStats{};
    stats->queries = static_cast<int64_t>(queries.size());
    stats->threads = pool_->size();
    stats->wall_ms = wall_ms;
    stats->throughput_qps =
        wall_ms > 0.0 ? static_cast<double>(queries.size()) / (wall_ms / 1e3)
                      : 0.0;
    std::vector<double> latencies;
    latencies.reserve(answers.size());
    for (const PnnAnswer& a : answers) {
      latencies.push_back(a.latency_ms);
      stats->latency_ms.Add(a.latency_ms);
    }
    std::sort(latencies.begin(), latencies.end());
    stats->p50_latency_ms = PercentileSorted(latencies, 50.0);
    stats->p99_latency_ms = PercentileSorted(latencies, 99.0);
    if (cache_ != nullptr) {
      stats->cache_hits = cache_->hits() - hits_before;
      stats->cache_misses = cache_->misses() - misses_before;
    }
  }
  return answers;
}

std::future<PnnAnswer> QueryEngine::Submit(const geom::Point& q) {
  auto task = std::make_shared<std::packaged_task<PnnAnswer()>>(
      [this, q] { return AnswerOne(q); });
  std::future<PnnAnswer> future = task->get_future();
  pool_->Submit([task] { (*task)(); });
  return future;
}

Status QueryEngine::Insert(uncertain::UncertainObject object) {
  if (pv_index_ == nullptr || active_->kind() != BackendKind::kPvIndex) {
    return Status::NotSupported(
        "mutations require the engine to serve from the PV-index");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uncertain::ObjectId id = object.id();
  PVDB_RETURN_NOT_OK(db_->Add(std::move(object)));
  const Status st = pv_index_->InsertObject(*db_, id);
  if (!st.ok()) {
    // Keep dataset and index membership consistent: an object present in
    // the dataset but not the index would skew Step-2 silently.
    (void)db_->Remove(id);
  }
  return st;
}

Status QueryEngine::Delete(uncertain::ObjectId id) {
  if (pv_index_ == nullptr || active_->kind() != BackendKind::kPvIndex) {
    return Status::NotSupported(
        "mutations require the engine to serve from the PV-index");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uncertain::UncertainObject* found = db_->Find(id);
  if (found == nullptr) {
    return Status::NotFound("object not in the dataset");
  }
  const uncertain::UncertainObject removed = *found;
  PVDB_RETURN_NOT_OK(db_->Remove(id));
  const Status st = pv_index_->DeleteObject(*db_, removed);
  if (!st.ok()) {
    // Re-add on failure: the index may still hold entries for `id`, and a
    // query resolving them against a dataset without the object aborts in
    // Step 2. Membership consistency beats a half-rolled-back index.
    (void)db_->Add(removed);
  }
  return st;
}

}  // namespace pvdb::service
