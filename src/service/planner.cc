// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/planner.h"

#include <algorithm>
#include <string>

namespace pvdb::service {

namespace {

bool Has(const PlanInput& input, BackendKind kind) {
  return std::find(input.available.begin(), input.available.end(), kind) !=
         input.available.end();
}

}  // namespace

Result<Plan> PlanBackend(const PlanInput& input) {
  if (input.available.empty()) {
    return Status::InvalidArgument("no backends available to plan over");
  }
  if (input.override.has_value()) {
    const BackendKind kind = *input.override;
    if (!Has(input, kind)) {
      return Status::InvalidArgument(
          std::string("override backend not available: ") +
          BackendKindName(kind));
    }
    if (kind == BackendKind::kUvIndex && input.dim != 2) {
      return Status::NotSupported(
          "the UV-index supports 2D data only (see Section II)");
    }
    return Plan{kind, std::string("operator override: ") +
                          BackendKindName(kind)};
  }
  if (Has(input, BackendKind::kSnapshot)) {
    return Plan{BackendKind::kSnapshot,
                "sealed snapshot: immutable serving surface, hot-swappable "
                "without draining queries"};
  }
  if (input.dataset_size < kSmallDatasetRtreeThreshold &&
      Has(input, BackendKind::kRtree)) {
    return Plan{BackendKind::kRtree,
                "small dataset (|S| = " + std::to_string(input.dataset_size) +
                    " < " + std::to_string(kSmallDatasetRtreeThreshold) +
                    "): branch-and-prune beats leaf page chains"};
  }
  if (Has(input, BackendKind::kPvIndex)) {
    return Plan{BackendKind::kPvIndex,
                "PV-index: fastest Step-1 at d = " +
                    std::to_string(input.dim) + " (Figures 9(a)-(h))"};
  }
  if (input.dim == 2 && Has(input, BackendKind::kUvIndex)) {
    return Plan{BackendKind::kUvIndex,
                "UV-index: 2D workload and no PV-index built"};
  }
  if (Has(input, BackendKind::kRtree)) {
    return Plan{BackendKind::kRtree, "R-tree fallback: no octree-carried "
                                     "backend fits this workload"};
  }
  return Status::InvalidArgument(
      "no available backend supports this workload (UV-index requires d = 2)");
}

}  // namespace pvdb::service
