// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/query_request.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace pvdb::service {

namespace {

bool PointIsFinite(const geom::Point& p) {
  for (int d = 0; d < p.dim(); ++d) {
    if (!std::isfinite(p[d])) return false;
  }
  return true;
}

Status CheckQueryPoint(const geom::Point& p, int dim, const char* what) {
  if (p.dim() != dim) {
    return Status::InvalidArgument(std::string(what) + ": dimensionality " +
                                   std::to_string(p.dim()) +
                                   " does not match index dimensionality " +
                                   std::to_string(dim));
  }
  if (!PointIsFinite(p)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": coordinates must be finite");
  }
  return Status::OK();
}

Status CheckProbability(double p, const char* what) {
  // Written as a negated conjunction so NaN (which fails every comparison)
  // is rejected too.
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": probability threshold must be in [0, 1]");
  }
  return Status::OK();
}

/// Total polyline arc length; NaN coordinates were rejected earlier so the
/// sum is finite unless a segment itself overflows.
double PolylineLength(std::span<const geom::Point> polyline) {
  double total = 0.0;
  for (size_t i = 1; i < polyline.size(); ++i) {
    total += polyline[i - 1].DistanceTo(polyline[i]);
  }
  return total;
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPnn:
      return "pnn";
    case QueryKind::kTopKByProb:
      return "topk";
    case QueryKind::kThresholdNN:
      return "threshold";
    case QueryKind::kRangeProb:
      return "range";
    case QueryKind::kTrajectoryPnn:
      return "trajectory";
  }
  return "unknown";
}

QueryRequest QueryRequest::Pnn(const geom::Point& q) {
  QueryRequest req;
  req.kind = QueryKind::kPnn;
  req.point = q;
  return req;
}

QueryRequest QueryRequest::TopKByProb(const geom::Point& q, uint32_t k) {
  QueryRequest req;
  req.kind = QueryKind::kTopKByProb;
  req.point = q;
  req.k = k;
  return req;
}

QueryRequest QueryRequest::ThresholdNN(const geom::Point& q, double p) {
  QueryRequest req;
  req.kind = QueryKind::kThresholdNN;
  req.point = q;
  req.probability = p;
  return req;
}

QueryRequest QueryRequest::RangeProb(const geom::Rect& rect, double p) {
  QueryRequest req;
  req.kind = QueryKind::kRangeProb;
  req.rect = rect;
  req.probability = p;
  return req;
}

QueryRequest QueryRequest::TrajectoryPnn(std::vector<geom::Point> polyline,
                                         double step) {
  QueryRequest req;
  req.kind = QueryKind::kTrajectoryPnn;
  req.polyline = std::move(polyline);
  req.step = step;
  return req;
}

Status ValidateQueryRequest(const QueryRequest& req, int dim) {
  switch (req.kind) {
    case QueryKind::kPnn:
      return CheckQueryPoint(req.point, dim, "pnn query point");

    case QueryKind::kTopKByProb: {
      Status s = CheckQueryPoint(req.point, dim, "topk query point");
      if (!s.ok()) return s;
      if (req.k < 1) {
        return Status::InvalidArgument("topk query: k must be >= 1");
      }
      return Status::OK();
    }

    case QueryKind::kThresholdNN: {
      Status s = CheckQueryPoint(req.point, dim, "threshold query point");
      if (!s.ok()) return s;
      return CheckProbability(req.probability, "threshold query");
    }

    case QueryKind::kRangeProb: {
      if (req.rect.dim() != dim) {
        return Status::InvalidArgument(
            "range query: rect dimensionality " +
            std::to_string(req.rect.dim()) +
            " does not match index dimensionality " + std::to_string(dim));
      }
      for (int d = 0; d < dim; ++d) {
        // !(lo <= hi) also catches NaN bounds.
        if (!(req.rect.lo(d) <= req.rect.hi(d)) ||
            !std::isfinite(req.rect.lo(d)) || !std::isfinite(req.rect.hi(d))) {
          return Status::InvalidArgument(
              "range query: rect must have finite lo <= hi in every "
              "dimension");
        }
      }
      return CheckProbability(req.probability, "range query");
    }

    case QueryKind::kTrajectoryPnn: {
      if (req.polyline.empty()) {
        return Status::InvalidArgument(
            "trajectory query: polyline needs at least one point");
      }
      for (const geom::Point& p : req.polyline) {
        Status s = CheckQueryPoint(p, dim, "trajectory polyline point");
        if (!s.ok()) return s;
      }
      if (!(req.step > 0.0) || !std::isfinite(req.step)) {
        return Status::InvalidArgument(
            "trajectory query: step must be finite and > 0");
      }
      const double length = PolylineLength(req.polyline);
      if (!std::isfinite(length) ||
          length / req.step >
              static_cast<double>(kMaxTrajectorySamples) - 2.0) {
        return Status::InvalidArgument(
            "trajectory query: polyline expands to more than " +
            std::to_string(kMaxTrajectorySamples) +
            " samples at this step length");
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("query request: unknown kind " +
                                 std::to_string(static_cast<int>(req.kind)));
}

std::vector<QueryRequest> PnnRequests(std::span<const geom::Point> points) {
  std::vector<QueryRequest> reqs;
  reqs.reserve(points.size());
  for (const geom::Point& p : points) reqs.push_back(QueryRequest::Pnn(p));
  return reqs;
}

std::vector<geom::Point> SampleTrajectory(std::span<const geom::Point> polyline,
                                          double step) {
  std::vector<geom::Point> samples;
  if (polyline.empty()) return samples;
  samples.push_back(polyline[0]);
  // `next` is the remaining arc length until the next sample is due; it
  // carries across segment boundaries so spacing is uniform along the whole
  // path, not per segment.
  double next = step;
  for (size_t i = 1; i < polyline.size(); ++i) {
    const geom::Point& a = polyline[i - 1];
    const geom::Point& b = polyline[i];
    const double len = a.DistanceTo(b);
    double done = 0.0;
    while (next <= len - done) {
      done += next;
      const double t = done / len;
      geom::Point s(a.dim());
      for (int d = 0; d < a.dim(); ++d) s[d] = a[d] + t * (b[d] - a[d]);
      samples.push_back(s);
      next = step;
    }
    next -= len - done;
  }
  // Always evaluate the destination, unless the last spaced sample landed
  // exactly on it.
  const geom::Point& last = polyline[polyline.size() - 1];
  if (!(samples.back() == last)) samples.push_back(last);
  return samples;
}

std::vector<pv::PnnResult> SelectResults(const QueryRequest& req,
                                         std::vector<pv::PnnResult> full) {
  switch (req.kind) {
    case QueryKind::kPnn:
    case QueryKind::kTrajectoryPnn:
    case QueryKind::kRangeProb:
      return full;

    case QueryKind::kThresholdNN: {
      std::vector<pv::PnnResult> kept;
      kept.reserve(full.size());
      for (const pv::PnnResult& r : full) {
        if (r.probability > req.probability) kept.push_back(r);
      }
      return kept;
    }

    case QueryKind::kTopKByProb: {
      // Evaluate's own sort breaks probability ties arbitrarily (by
      // candidate order); truncation needs a total order, so impose
      // (probability desc, id asc) before cutting to k.
      std::sort(full.begin(), full.end(),
                [](const pv::PnnResult& a, const pv::PnnResult& b) {
                  if (a.probability != b.probability) {
                    return a.probability > b.probability;
                  }
                  return a.id < b.id;
                });
      if (full.size() > req.k) full.resize(req.k);
      return full;
    }
  }
  return full;
}

}  // namespace pvdb::service
