// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/backend.h"

#include <algorithm>

#include "src/pv/pnnq.h"
#include "src/rtree/rtree_pnn.h"

namespace pvdb::service {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPvIndex:
      return "pv";
    case BackendKind::kUvIndex:
      return "uv";
    case BackendKind::kRtree:
      return "rtree";
    case BackendKind::kSnapshot:
      return "snapshot";
  }
  return "unknown";
}

namespace {

/// Shared octree range walk: entries of every leaf overlapping `range`,
/// filtered by their stored uncertainty regions (closed intersect, the same
/// test IndexSnapshot::RangeCandidates applies to its bound planes), then
/// sorted + deduplicated into canonical order.
Result<std::vector<uncertain::ObjectId>> RangeFromOctree(
    const pv::OctreePrimary& primary, const geom::Rect& range) {
  PVDB_ASSIGN_OR_RETURN(std::vector<pv::LeafEntry> entries,
                        primary.CollectOverlapping(range));
  std::vector<uncertain::ObjectId> out;
  out.reserve(entries.size());
  for (const pv::LeafEntry& e : entries) {
    if (e.region.Intersects(range)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

class PvBackend final : public Backend {
 public:
  explicit PvBackend(pv::PvIndex* index) : index_(index) {
    PVDB_CHECK(index_ != nullptr);
  }

  BackendKind kind() const override { return BackendKind::kPvIndex; }

  bool SupportsLeafGrouping() const override { return true; }

  // Step1PruneMinMax keeps entries in page-chain order.
  bool PruneKeepsLeafOrder() const override { return true; }

  Result<std::vector<uncertain::ObjectId>> Step1(
      const geom::Point& q, pv::QueryScratch* scratch) const override {
    return index_->QueryPossibleNN(q, scratch);
  }

  Result<std::optional<pv::OctreePrimary::LeafRef>> FindLeaf(
      const geom::Point& q) const override {
    PVDB_ASSIGN_OR_RETURN(pv::OctreePrimary::LeafRef ref,
                          index_->primary().FindLeaf(q));
    return std::optional<pv::OctreePrimary::LeafRef>{ref};
  }

  Result<pv::LeafBlock> ReadLeafBlock(
      const pv::OctreePrimary::LeafRef& ref) const override {
    return index_->primary().ReadLeafBlock(ref);
  }

  std::vector<uncertain::ObjectId> PruneLeafBlock(
      const pv::LeafBlock& block, const geom::Point& q,
      pv::QueryScratch* scratch) const override {
    return pv::Step1PruneMinMax(block, q, scratch);
  }

  Result<std::vector<uncertain::ObjectId>> RangeCandidates(
      const geom::Rect& range) const override {
    return RangeFromOctree(index_->primary(), range);
  }

 private:
  pv::PvIndex* index_;
};

class UvBackend final : public Backend {
 public:
  explicit UvBackend(const uv::UvIndex* index) : index_(index) {
    PVDB_CHECK(index_ != nullptr);
  }

  BackendKind kind() const override { return BackendKind::kUvIndex; }

  bool SupportsLeafGrouping() const override { return true; }

  // PruneLeafBlock sorts and dedupes, losing leaf order: candidate records
  // resolve through the dataset instead of the cached per-leaf plan.
  bool PruneKeepsLeafOrder() const override { return false; }

  Result<std::vector<uncertain::ObjectId>> Step1(
      const geom::Point& q, pv::QueryScratch* scratch) const override {
    return index_->QueryPossibleNN(q, scratch);
  }

  Result<std::optional<pv::OctreePrimary::LeafRef>> FindLeaf(
      const geom::Point& q) const override {
    PVDB_ASSIGN_OR_RETURN(pv::OctreePrimary::LeafRef ref,
                          index_->primary().FindLeaf(q));
    return std::optional<pv::OctreePrimary::LeafRef>{ref};
  }

  Result<pv::LeafBlock> ReadLeafBlock(
      const pv::OctreePrimary::LeafRef& ref) const override {
    return index_->primary().ReadLeafBlock(ref);
  }

  std::vector<uncertain::ObjectId> PruneLeafBlock(
      const pv::LeafBlock& block, const geom::Point& q,
      pv::QueryScratch* scratch) const override {
    // Mirror UvIndex::QueryPossibleNN exactly: prune, then dedupe.
    std::vector<uncertain::ObjectId> out =
        pv::Step1PruneMinMax(block, q, scratch);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  Result<std::vector<uncertain::ObjectId>> RangeCandidates(
      const geom::Rect& range) const override {
    return RangeFromOctree(index_->primary(), range);
  }

 private:
  const uv::UvIndex* index_;
};

class SnapshotBackend final : public Backend {
 public:
  explicit SnapshotBackend(std::shared_ptr<const pv::IndexSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {
    PVDB_CHECK(snapshot_ != nullptr);
  }

  BackendKind kind() const override { return BackendKind::kSnapshot; }

  bool SupportsLeafGrouping() const override { return true; }

  // Same prune as the PV-index: entry order (page-chain order at seal time)
  // is preserved.
  bool PruneKeepsLeafOrder() const override { return true; }

  Result<std::vector<uncertain::ObjectId>> Step1(
      const geom::Point& q, pv::QueryScratch* scratch) const override {
    return snapshot_->QueryPossibleNN(q, scratch);
  }

  Result<std::optional<pv::OctreePrimary::LeafRef>> FindLeaf(
      const geom::Point& q) const override {
    PVDB_ASSIGN_OR_RETURN(pv::OctreePrimary::LeafRef ref,
                          snapshot_->FindLeaf(q));
    return std::optional<pv::OctreePrimary::LeafRef>{ref};
  }

  Result<pv::LeafBlock> ReadLeafBlock(
      const pv::OctreePrimary::LeafRef& ref) const override {
    // Snapshot leaves are addressed by stable id; the ref's node pointer is
    // meaningless here (and null by construction).
    return snapshot_->ReadLeafBlock(ref.id);
  }

  std::vector<uncertain::ObjectId> PruneLeafBlock(
      const pv::LeafBlock& block, const geom::Point& q,
      pv::QueryScratch* scratch) const override {
    return pv::Step1PruneMinMax(block, q, scratch);
  }

  // v2 snapshots carry the SoA leaf section LeafBlockView points into; v1
  // files keep the decode path above.
  bool ServesLeafViews() const override { return snapshot_->has_leaf_soa(); }

  Result<pv::LeafBlockView> ReadLeafBlockView(
      const pv::OctreePrimary::LeafRef& ref) const override {
    return snapshot_->ReadLeafBlockView(ref.id);
  }

  std::vector<uncertain::ObjectId> PruneLeafBlockView(
      const pv::LeafBlockView& view, const geom::Point& q,
      pv::QueryScratch* scratch) const override {
    return pv::Step1PruneMinMax(view, q, scratch);
  }

  Result<std::vector<uncertain::ObjectId>> RangeCandidates(
      const geom::Rect& range) const override {
    return snapshot_->RangeCandidates(range);
  }

 private:
  std::shared_ptr<const pv::IndexSnapshot> snapshot_;
};

class RtreeBackend final : public Backend {
 public:
  explicit RtreeBackend(const rtree::RStarTree* tree) : tree_(tree) {
    PVDB_CHECK(tree_ != nullptr);
  }

  BackendKind kind() const override { return BackendKind::kRtree; }

  Result<std::vector<uncertain::ObjectId>> Step1(
      const geom::Point& q, pv::QueryScratch* scratch) const override {
    (void)scratch;  // branch-and-prune is inherently sequential; no batching
    return rtree::PnnStep1BranchAndPrune(*tree_, q);
  }

 private:
  const rtree::RStarTree* tree_;
};

}  // namespace

std::unique_ptr<Backend> MakePvBackend(pv::PvIndex* index) {
  return std::make_unique<PvBackend>(index);
}

std::unique_ptr<Backend> MakeUvBackend(const uv::UvIndex* index) {
  return std::make_unique<UvBackend>(index);
}

std::unique_ptr<Backend> MakeRtreeBackend(const rtree::RStarTree* tree) {
  return std::make_unique<RtreeBackend>(tree);
}

std::unique_ptr<Backend> MakeSnapshotBackend(
    std::shared_ptr<const pv::IndexSnapshot> snapshot) {
  return std::make_unique<SnapshotBackend>(std::move(snapshot));
}

std::unique_ptr<rtree::RStarTree> BuildUncertaintyRtree(
    const uncertain::Dataset& db) {
  auto tree = std::make_unique<rtree::RStarTree>(db.dim());
  for (const auto& o : db.objects()) {
    tree->Insert(o.region(), o.id());
  }
  return tree;
}

}  // namespace pvdb::service
