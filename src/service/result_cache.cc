// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/result_cache.h"

#include <utility>

#include "src/common/check.h"

namespace pvdb::service {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {
  PVDB_CHECK(capacity >= 1);
}

uint64_t ResultCache::PackKey(BackendKind backend, uint64_t leaf_id) {
  // Octree leaf ids are monotonically assigned counters; 2^56 leaves is far
  // beyond the 5 MiB node-memory budget.
  PVDB_DCHECK(leaf_id < (uint64_t{1} << 56));
  return (static_cast<uint64_t>(backend) << 56) | leaf_id;
}

ResultCache::BlockPtr ResultCache::Lookup(BackendKind backend,
                                          uint64_t leaf_id) {
  const uint64_t key = PackKey(backend, leaf_id);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.block;
}

ResultCache::BlockPtr ResultCache::Insert(BackendKind backend,
                                          uint64_t leaf_id,
                                          pv::LeafBlock block) {
  const uint64_t key = PackKey(backend, leaf_id);
  auto snapshot = std::make_shared<const pv::LeafBlock>(std::move(block));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.block = snapshot;
    it->second.plan = nullptr;  // new entries invalidate the resolved plan
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return snapshot;
  }
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{snapshot, nullptr, lru_.begin()});
  return snapshot;
}

ResultCache::PlanPtr ResultCache::LookupPlan(BackendKind backend,
                                             uint64_t leaf_id) {
  const uint64_t key = PackKey(backend, leaf_id);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second.plan;
}

ResultCache::PlanPtr ResultCache::AttachPlan(BackendKind backend,
                                             uint64_t leaf_id,
                                             Step2LeafPlan plan) {
  const uint64_t key = PackKey(backend, leaf_id);
  auto snapshot = std::make_shared<const Step2LeafPlan>(std::move(plan));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) it->second.plan = snapshot;
  return snapshot;
}

void ResultCache::Invalidate(BackendKind backend) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if ((it->first >> 56) == static_cast<uint64_t>(backend)) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

int64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace pvdb::service
