// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/result_cache.h"

#include <utility>

#include "src/common/check.h"

namespace pvdb::service {

ResultCache::ResultCache(size_t capacity, size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes) {
  PVDB_CHECK(capacity >= 1);
}

uint64_t ResultCache::PackKey(BackendKind backend, uint64_t leaf_id) {
  // Octree leaf ids are monotonically assigned counters; 2^56 leaves is far
  // beyond the 5 MiB node-memory budget.
  PVDB_DCHECK(leaf_id < (uint64_t{1} << 56));
  return (static_cast<uint64_t>(backend) << 56) | leaf_id;
}

size_t ResultCache::EntryBytes(const Entry& e) {
  size_t bytes = 0;
  if (e.block != nullptr) bytes += e.block->ApproxBytes();
  if (e.plan != nullptr) {
    bytes += e.plan->objs.capacity() *
             sizeof(const uncertain::UncertainObject*);
  }
  return bytes;
}

void ResultCache::EvictTailLocked() {
  auto it = map_.find(lru_.back());
  PVDB_DCHECK(it != map_.end());
  bytes_ -= it->second.bytes;
  map_.erase(it);
  lru_.pop_back();
}

void ResultCache::EnforceBytesLocked(uint64_t keep) {
  if (max_bytes_ == 0) return;
  // Never evict `keep`: an oversized single leaf must still serve, so the
  // budget bounds residency beyond the newest entry rather than gating
  // admission.
  while (bytes_ > max_bytes_ && lru_.back() != keep) EvictTailLocked();
}

ResultCache::BlockPtr ResultCache::Lookup(BackendKind backend,
                                          uint64_t leaf_id) {
  const uint64_t key = PackKey(backend, leaf_id);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second.block == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.block;
}

ResultCache::BlockPtr ResultCache::Insert(BackendKind backend,
                                          uint64_t leaf_id,
                                          pv::LeafBlock block) {
  const uint64_t key = PackKey(backend, leaf_id);
  auto snapshot = std::make_shared<const pv::LeafBlock>(std::move(block));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second.bytes;
    it->second.block = snapshot;
    it->second.plan = nullptr;  // new entries invalidate the resolved plan
    it->second.bytes = EntryBytes(it->second);
    bytes_ += it->second.bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    EnforceBytesLocked(key);
    return snapshot;
  }
  while (map_.size() >= capacity_) EvictTailLocked();
  lru_.push_front(key);
  Entry entry{snapshot, nullptr, lru_.begin(), 0};
  entry.bytes = EntryBytes(entry);
  bytes_ += entry.bytes;
  map_.emplace(key, std::move(entry));
  EnforceBytesLocked(key);
  return snapshot;
}

ResultCache::PlanPtr ResultCache::LookupPlan(BackendKind backend,
                                             uint64_t leaf_id) {
  const uint64_t key = PackKey(backend, leaf_id);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.plan;
}

ResultCache::PlanPtr ResultCache::AttachPlan(BackendKind backend,
                                             uint64_t leaf_id,
                                             Step2LeafPlan plan) {
  const uint64_t key = PackKey(backend, leaf_id);
  auto snapshot = std::make_shared<const Step2LeafPlan>(std::move(plan));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    // Plan-only entry: the zero-copy serving path never materializes
    // blocks, so resolved plans are its whole cache payload.
    while (map_.size() >= capacity_) EvictTailLocked();
    lru_.push_front(key);
    Entry entry{nullptr, snapshot, lru_.begin(), 0};
    entry.bytes = EntryBytes(entry);
    bytes_ += entry.bytes;
    map_.emplace(key, std::move(entry));
    EnforceBytesLocked(key);
    return snapshot;
  }
  bytes_ -= it->second.bytes;
  it->second.plan = snapshot;
  it->second.bytes = EntryBytes(it->second);
  bytes_ += it->second.bytes;
  EnforceBytesLocked(key);
  return snapshot;
}

void ResultCache::Invalidate(BackendKind backend) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if ((it->first >> 56) == static_cast<uint64_t>(backend)) {
      bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace pvdb::service
