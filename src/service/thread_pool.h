// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// A small fixed-size worker pool (std::thread + condition-variable work
// queue, no external dependencies) for the query-serving engine. Tasks are
// opaque closures; ParallelFor adds the engine's sharding pattern — a shared
// atomic cursor so workers self-balance across uneven per-query costs
// (Step-2 time varies with candidate-set size). The pool exposes its queue
// depth as a gauge-ready atomic and, when given a histogram, records every
// task's enqueue→dequeue wait so saturation shows up as queue-wait tail
// latency rather than silent qps loss.

#ifndef PVDB_SERVICE_THREAD_POOL_H_
#define PVDB_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/histogram.h"

namespace pvdb::service {

/// Fixed-size thread pool. Destruction drains the queue: queued tasks run
/// to completion before the workers join.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Tasks currently queued (not yet picked up by a worker). A sustained
  /// non-zero depth means the pool is saturated.
  size_t QueueDepth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// Records every subsequent task's queue wait (enqueue→dequeue, in
  /// nanoseconds) into `h`. Borrowed; the caller keeps it alive for the
  /// pool's lifetime. nullptr (the default) skips the clock reads.
  void SetQueueWaitHistogram(Histogram* h) {
    queue_wait_.store(h, std::memory_order_release);
  }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), sharded across the pool with an
  /// atomic cursor; blocks until all n calls returned. The calling thread
  /// does not participate, so a pool of k threads uses exactly k workers.
  /// Must not be called from inside a pool task (the barrier would wait on
  /// the queue slot it occupies).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  struct Task {
    std::function<void()> fn;
    /// TraceNowNs() at enqueue when the wait histogram is set; 0 otherwise.
    int64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::atomic<size_t> queue_depth_{0};
  std::atomic<Histogram*> queue_wait_{nullptr};
  bool stop_ = false;
};

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_THREAD_POOL_H_
