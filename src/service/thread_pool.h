// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// A small fixed-size worker pool (std::thread + condition-variable work
// queue, no external dependencies) for the query-serving engine. Tasks are
// opaque closures; ParallelFor adds the engine's sharding pattern — a shared
// atomic cursor so workers self-balance across uneven per-query costs
// (Step-2 time varies with candidate-set size).

#ifndef PVDB_SERVICE_THREAD_POOL_H_
#define PVDB_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pvdb::service {

/// Fixed-size thread pool. Destruction drains the queue: queued tasks run
/// to completion before the workers join.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), sharded across the pool with an
  /// atomic cursor; blocks until all n calls returned. The calling thread
  /// does not participate, so a pool of k threads uses exactly k workers.
  /// Must not be called from inside a pool task (the barrier would wait on
  /// the queue slot it occupies).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_THREAD_POOL_H_
