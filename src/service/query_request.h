// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The typed query vocabulary: one tagged request over every query kind the
// engine serves — single-point PNN, top-k-by-probability, probability
// threshold, probabilistic range, and trajectory (moving-point) PNN — plus
// the matching answer shape. The vocabulary is the serving API seam:
// QueryEngine::ExecuteBatch, the wire codecs (net/wire.h) and the shard
// router (shard/router.h) all speak it, so a new query kind lands once here
// and flows end to end.
//
// Every kind reuses the same Step-1 minmax pruning + Step-2 qualification
// machinery over the same index:
//   * kPnn            — the paper's PNNQ: all objects with qualification
//                       probability above the engine's floor.
//   * kTopKByProb     — the k highest qualification probabilities (ties by
//                       ascending object id).
//   * kThresholdNN    — objects with qualification probability > p.
//   * kRangeProb      — objects inside `rect` with probability > p
//                       (P(o ∈ rect) summed over the discrete pdf); Step 1
//                       becomes a bbox overlap walk instead of a point
//                       descent.
//   * kTrajectoryPnn  — PNN re-evaluated at arc-length samples along a
//                       polyline; the engine reuses the previous sample's
//                       octree leaf whenever the next sample stays strictly
//                       inside its cell, skipping the Step-1 descent.
//
// Determinism contract: for a fixed candidate set in canonical (id) order,
// every kind's answer is a pure function of the request — SelectResults
// applies the same per-kind selection in the engine and in the router, so
// distributed answers stay bit-identical to single-engine answers.

#ifndef PVDB_SERVICE_QUERY_REQUEST_H_
#define PVDB_SERVICE_QUERY_REQUEST_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/geom/point.h"
#include "src/geom/rect.h"
#include "src/pv/pnnq.h"

namespace pvdb::service {

/// The query kinds. Values are wire-stable (frame payloads carry them as
/// one byte); never renumber.
enum class QueryKind : uint8_t {
  kPnn = 1,
  kTopKByProb = 2,
  kThresholdNN = 3,
  kRangeProb = 4,
  kTrajectoryPnn = 5,
};

/// Stable lowercase name ("pnn", "topk", "threshold", "range", "trajectory").
const char* QueryKindName(QueryKind kind);

/// Upper bound on the arc-length samples one trajectory request may expand
/// into (ValidateQueryRequest rejects longer ones): a network peer must not
/// be able to turn one frame into an unbounded amount of Step-1 work.
inline constexpr size_t kMaxTrajectorySamples = 65536;

/// One typed query. A tagged union in struct clothing: `kind` selects which
/// fields are meaningful (the factories below set exactly those). Unused
/// fields keep their defaults and are ignored by validation and execution.
struct QueryRequest {
  QueryKind kind = QueryKind::kPnn;
  /// kPnn / kTopKByProb / kThresholdNN: the query point.
  geom::Point point{1};
  /// kTopKByProb: how many results (>= 1).
  uint32_t k = 1;
  /// kThresholdNN / kRangeProb: the probability threshold p in [0, 1];
  /// results must exceed it strictly.
  double probability = 0.0;
  /// kRangeProb: the query rectangle.
  geom::Rect rect{1};
  /// kTrajectoryPnn: the polyline waypoints (>= 1 point).
  std::vector<geom::Point> polyline;
  /// kTrajectoryPnn: arc-length spacing between evaluated samples (> 0).
  double step = 0.0;

  static QueryRequest Pnn(const geom::Point& q);
  static QueryRequest TopKByProb(const geom::Point& q, uint32_t k);
  static QueryRequest ThresholdNN(const geom::Point& q, double p);
  static QueryRequest RangeProb(const geom::Rect& rect, double p);
  static QueryRequest TrajectoryPnn(std::vector<geom::Point> polyline,
                                    double step);
};

/// Request validation, shared by the engine and the network servers (both
/// call it at ingress, so a malformed request degrades to one per-answer
/// kInvalidArgument — never a crash, never a dropped connection). Checks:
/// kind is known, k >= 1, p ∈ [0, 1], rect/polyline non-degenerate with
/// finite coordinates, every dimensionality matches `dim`, and a trajectory
/// expands to at most kMaxTrajectorySamples samples.
Status ValidateQueryRequest(const QueryRequest& req, int dim);

/// Convenience for migrated point-PNN callers: wraps each point as a kPnn
/// request (the typed form of the legacy span<Point> batch).
std::vector<QueryRequest> PnnRequests(std::span<const geom::Point> points);

/// One trajectory sample's answer.
struct TrajectoryStepAnswer {
  /// The evaluated sample point (arc-length resampling of the polyline).
  geom::Point point{1};
  /// PNN results at this sample, same semantics as a kPnn answer.
  std::vector<pv::PnnResult> results;
  /// True when the engine reused the previous sample's leaf (the sample
  /// stayed strictly inside the cached leaf cell, so the Step-1 descent was
  /// skipped). Router-served trajectories always report false — reuse is an
  /// engine-local optimization and never changes the answer bits.
  bool reused_step1 = false;
};

/// One typed query's outcome. Field names mirror PnnAnswer so migrated
/// point-PNN callers read `.results` / `.status` unchanged.
struct QueryAnswer {
  /// Per-request status; results are meaningful only when ok(). For a
  /// trajectory, the first failing sample's status (its step keeps empty
  /// results; the remaining samples still evaluate).
  Status status = Status::OK();
  /// Which kind this answers (echoed from the request).
  QueryKind kind = QueryKind::kPnn;
  /// Point-kind results (empty for kTrajectoryPnn — see `steps`).
  std::vector<pv::PnnResult> results;
  /// kTrajectoryPnn: one entry per arc-length sample, in path order.
  std::vector<TrajectoryStepAnswer> steps;
  /// True when any Step-1 candidates came from the leaf cache.
  bool cache_hit = false;
  /// End-to-end latency in milliseconds (a trajectory sums its samples).
  double latency_ms = 0.0;
  /// Per-stage nanosecond attribution (indexed by QueryStage).
  std::array<int64_t, kNumQueryStages> stage_ns{};
};

/// Arc-length resampling of `polyline` at spacing `step`: the first
/// waypoint, then a sample every `step` of accumulated path length, then
/// the final waypoint (unless it coincides with the last sample). This is
/// THE sampling rule — engine and router share it, so both evaluate the
/// same points and trajectory answers stay comparable bit for bit.
std::vector<geom::Point> SampleTrajectory(std::span<const geom::Point> polyline,
                                          double step);

/// Per-kind selection over a full PNN result list evaluated at the engine's
/// probability floor (sorted descending by probability, candidates in
/// canonical order). kPnn / kTrajectoryPnn pass through; kThresholdNN keeps
/// probability > req.probability preserving order; kTopKByProb re-sorts by
/// (probability desc, id asc) — a total order — and truncates to k.
/// kRangeProb answers are produced final by EvaluateRangeProb and pass
/// through. Engine and router both finish answers here, which is what makes
/// every kind's distributed answer bit-identical to the single-engine one.
std::vector<pv::PnnResult> SelectResults(const QueryRequest& req,
                                         std::vector<pv::PnnResult> full);

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_QUERY_REQUEST_H_
