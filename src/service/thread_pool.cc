// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/service/thread_pool.h"

#include <algorithm>
#include <memory>

#include "src/common/check.h"
#include "src/common/trace.h"

namespace pvdb::service {

ThreadPool::ThreadPool(int threads) {
  PVDB_CHECK(threads >= 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PVDB_CHECK(task != nullptr);
  Task t;
  t.fn = std::move(task);
  if (queue_wait_.load(std::memory_order_acquire) != nullptr) {
    t.enqueue_ns = TraceNowNs();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    PVDB_CHECK(!stop_);
    queue_.push_back(std::move(t));
    // Under the lock so depth can never transiently read below zero: a
    // worker (spuriously) waking and popping first would otherwise
    // decrement before this increment and wrap the unsigned gauge.
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    Histogram* wait_hist = queue_wait_.load(std::memory_order_acquire);
    if (wait_hist != nullptr && task.enqueue_ns != 0) {
      wait_hist->Record(TraceNowNs() - task.enqueue_ns);
    }
    task.fn();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // Shared shard state; `body` outlives the call because we block below.
  struct State {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    size_t live = 0;
  };
  auto state = std::make_shared<State>();
  const size_t shards = std::min(static_cast<size_t>(size()), n);
  state->live = shards;
  for (size_t s = 0; s < shards; ++s) {
    Submit([state, n, &body] {
      for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
           i < n; i = state->next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->live == 0) state->done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->live == 0; });
}

}  // namespace pvdb::service
