// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The concurrent query-serving engine: turns the pvdb library into a
// serving path. Batches of PNNQ points are sharded across a fixed thread
// pool; each query runs Step 1 through a planned backend (PV-index /
// UV-index / R-tree behind one interface), optionally through an LRU cache
// of leaf candidate sets, then Step 2 probability evaluation — producing
// exactly the answers of the sequential QueryPossibleNN + PnnStep2Evaluator
// pipeline. A reader/writer lock makes PV-index insert/delete safe to
// interleave with in-flight queries.

#ifndef PVDB_SERVICE_QUERY_ENGINE_H_
#define PVDB_SERVICE_QUERY_ENGINE_H_

#include <future>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/rtree/rstar_tree.h"
#include "src/service/backend.h"
#include "src/service/planner.h"
#include "src/service/result_cache.h"
#include "src/service/thread_pool.h"
#include "src/uncertain/dataset.h"
#include "src/uv/uv_index.h"

namespace pvdb::service {

/// Engine tunables.
struct QueryEngineOptions {
  /// Worker threads in the pool.
  int threads = 4;
  /// Leaf-result cache capacity in leaves; 0 disables caching.
  size_t cache_capacity = 4096;
  /// Forces a Step-1 backend instead of the planner's heuristic choice.
  std::optional<BackendKind> backend_override;
  /// Step-2 answers with probability <= this are dropped (paper: > 0).
  double min_probability = 0.0;
  /// Charge Step-2 pdf page reads to the engine's MetricRegistry. The
  /// charge goes through a pre-registered atomic counter handle (wait-free,
  /// no name lookup), so it costs one relaxed fetch_add per candidate and
  /// is safe to leave on for throughput serving.
  bool charge_step2_io = true;
};

/// One served query's outcome.
struct PnnAnswer {
  /// Per-query status; results are meaningful only when ok().
  Status status = Status::OK();
  /// Qualification probabilities, sorted descending (Step-2 output).
  std::vector<pv::PnnResult> results;
  /// True when Step-1 candidates came from the leaf cache.
  bool cache_hit = false;
  /// End-to-end latency of this query in milliseconds.
  double latency_ms = 0.0;
};

/// Aggregate statistics of one ExecuteBatch call.
struct ServiceStats {
  int64_t queries = 0;
  int threads = 0;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  /// Per-query latency distribution.
  Summary latency_ms;
  /// Leaf-cache hit/miss deltas over the batch (0/0 when caching is off or
  /// the backend has no leaf structure).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// The indexes an engine may serve from; all borrowed, any subset present.
/// The PV-index pointer is non-const because Insert/Delete route through it.
struct EngineBackends {
  pv::PvIndex* pv = nullptr;
  const uv::UvIndex* uv = nullptr;
  const rtree::RStarTree* rtree = nullptr;
};

/// The serving engine. Thread-safe: ExecuteBatch / Submit may be called
/// from any thread and overlap with Insert / Delete (readers share, writers
/// exclude). The borrowed dataset and indexes must only be mutated through
/// the engine while it is live.
class QueryEngine {
 public:
  /// Plans a backend over whatever `backends` provides and builds the
  /// engine. `db` is borrowed and must stay alive; it is mutated only by
  /// Insert/Delete below.
  static Result<std::unique_ptr<QueryEngine>> Create(
      uncertain::Dataset* db, const EngineBackends& backends,
      const QueryEngineOptions& options);

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answers every query in `queries`, sharded across the pool. Answer i
  /// corresponds to queries[i]; no answers are lost, duplicated or
  /// reordered. Per-query failures (e.g. out-of-domain points) land in the
  /// answer's status, never abort the batch.
  std::vector<PnnAnswer> ExecuteBatch(std::span<const geom::Point> queries,
                                      ServiceStats* stats = nullptr);

  /// Async single-query API: enqueues `q` on the pool and returns a future
  /// for its answer.
  std::future<PnnAnswer> Submit(const geom::Point& q);

  /// Adds `object` to the dataset and the PV-index under the writer lock
  /// (queries in flight finish first; the leaf cache is invalidated via the
  /// index's update hook). Requires the engine to serve from the PV-index —
  /// other backends would go stale.
  Status Insert(uncertain::UncertainObject object);

  /// Removes object `id` from the dataset and the PV-index (same contract
  /// as Insert).
  Status Delete(uncertain::ObjectId id);

  /// The planner's decision for this engine.
  BackendKind active_backend() const { return active_->kind(); }
  const std::string& plan_reason() const { return plan_reason_; }

  int threads() const { return pool_->size(); }

  /// The leaf cache, or nullptr when disabled.
  const ResultCache* cache() const { return cache_.get(); }

  /// Engine-level counters (Step-2 pdf page charges).
  const MetricRegistry& metrics() const { return metrics_; }

 private:
  QueryEngine(uncertain::Dataset* db, const QueryEngineOptions& options);

  /// Serves one query end to end (takes the shared lock itself).
  PnnAnswer AnswerOne(const geom::Point& q) const;

  uncertain::Dataset* db_;
  QueryEngineOptions options_;
  pv::PnnStep2Evaluator step2_;
  std::vector<std::unique_ptr<Backend>> backends_;
  Backend* active_ = nullptr;
  std::string plan_reason_;
  pv::PvIndex* pv_index_ = nullptr;
  int pv_listener_id_ = -1;
  std::unique_ptr<ResultCache> cache_;
  mutable MetricRegistry metrics_;
  // Pre-registered Step-2 I/O counter: workers charge it lock-free instead
  // of taking the registry mutex per candidate.
  MetricRegistry::Counter* step2_pages_ = nullptr;
  mutable std::shared_mutex mu_;
  // Last member: destroyed (joined) first, while the state above is alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_QUERY_ENGINE_H_
