// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The concurrent query-serving engine: turns the pvdb library into a
// serving path. Batches of PNNQ points are sharded across a fixed thread
// pool; each query runs Step 1 through a planned backend (PV-index /
// UV-index / R-tree / sealed IndexSnapshot behind one interface),
// optionally through an LRU cache of leaf candidate sets, then Step 2
// probability evaluation — producing exactly the answers of the sequential
// QueryPossibleNN + PnnStep2Evaluator pipeline.
//
// Two serving modes share the code path:
//   * Borrowed-index mode (legacy): the engine serves from live indexes
//     owned by the caller; Insert/Delete mutate the PV-index under a
//     reader/writer lock that excludes in-flight queries.
//   * Snapshot mode: the engine serves from an immutable
//     pv::IndexSnapshot. There is no write path — a writer process builds
//     and seals a new snapshot off to the side and flips traffic with
//     AdoptSnapshot(), an atomic pointer swap that never blocks or drains
//     in-flight queries (they finish on the snapshot they started on,
//     which their ServingState shared_ptr keeps alive).
//
// All per-snapshot serving state (backend, Step-2 evaluator, leaf-result
// cache) lives in one immutable ServingState bundle so a swap can never
// mix, say, an old snapshot's candidates with a new snapshot's records —
// and a stale in-flight query can never poison the new state's cache.

#ifndef PVDB_SERVICE_QUERY_ENGINE_H_
#define PVDB_SERVICE_QUERY_ENGINE_H_

#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/pv/index_snapshot.h"
#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/rtree/rstar_tree.h"
#include "src/service/backend.h"
#include "src/service/planner.h"
#include "src/service/query_request.h"
#include "src/service/result_cache.h"
#include "src/service/thread_pool.h"
#include "src/uncertain/dataset.h"
#include "src/uv/uv_index.h"

namespace pvdb::service {

/// Engine tunables.
struct QueryEngineOptions {
  /// Worker threads in the pool.
  int threads = 4;
  /// Leaf-result cache capacity in leaves; 0 disables caching.
  size_t cache_capacity = 4096;
  /// Byte budget for the leaf-result cache's payload (blocks + resolved
  /// Step-2 plans, ApproxBytes accounting; exported as the
  /// engine.cache.bytes gauge). When exceeded, least-recently-used leaves
  /// are evicted past the entry-count capacity above. 0 = unbounded bytes.
  size_t cache_max_bytes = 0;
  /// Serve Step 1 from zero-copy leaf views when the backend offers them
  /// (v2-SoA snapshots): pruning runs over the snapshot's own mapped bytes,
  /// no block decode, no block copy in the cache — the cache then memoizes
  /// only resolved Step-2 plans. False forces the decode-and-cache block
  /// path even on view-capable backends (the measured baseline in
  /// bench_memdiet; answers are bit-identical either way).
  bool use_leaf_views = true;
  /// Forces a Step-1 backend instead of the planner's heuristic choice.
  std::optional<BackendKind> backend_override;
  /// Step-2 answers with probability <= this are dropped (paper: > 0).
  double min_probability = 0.0;
  /// Charge Step-2 pdf page reads to the engine's MetricRegistry. The
  /// charge goes through a pre-registered atomic counter handle (wait-free,
  /// no name lookup), so it costs one relaxed fetch_add per candidate and
  /// is safe to leave on for throughput serving.
  bool charge_step2_io = true;
  /// Batched Step 2: ExecuteBatch groups its queries by identical surviving
  /// candidate sets (pv::Step2Batch, keyed off the octree leaf id Step 1
  /// already located) and evaluates each group with one candidate-outer
  /// sweep (PnnStep2Evaluator::EvaluateGroup). Answers are bit-identical to
  /// the per-query path; pdf page reads are charged once per candidate per
  /// group instead of per query. Submit() and groups below
  /// step2_min_group_size always take the per-query path.
  bool batch_step2 = true;
  /// Smallest group routed through the batched evaluator; smaller groups
  /// fall back to per-query Evaluate. Must be >= 1.
  size_t step2_min_group_size = 2;
  /// Sort every query's surviving Step-1 candidate set ascending by object
  /// id before Step 2. Step-2 probabilities are exact either way, but their
  /// floating-point rounding depends on the order candidates are multiplied
  /// in — by default that is the backend's leaf-entry order, which differs
  /// between index builds over different insertion orders. Canonical
  /// ordering makes the bits a function of the candidate SET alone, which
  /// is what lets a scatter-gather router (shard/router.h) merge per-shard
  /// candidate sets and still produce answers bit-identical to this
  /// engine over the union dataset. Costs one small sort per query and
  /// disables the leaf-order lockstep walk in grouped resolution.
  bool canonical_candidates = false;
  /// Bound on a worker's pooled QueryScratch arena: after any query or
  /// group that grew it past this, the worker releases the arena
  /// (QueryScratch::ShrinkToFit) so one pathological leaf doesn't pin the
  /// memory for the worker's lifetime. Also caps the batch-table chunk size
  /// inside EvaluateGroup. 0 never shrinks (and leaves groups unchunked).
  size_t scratch_max_bytes = 64u << 20;
  /// Per-stage nanosecond timing (plan / leaf-cache / Step-1 prune /
  /// Step-2 / merge): populates PnnAnswer::stage_ns, ServiceStats::stage_ms
  /// and the engine's per-stage histograms. Costs two steady_clock reads
  /// per stage per query; false performs no clock reads at all (stage
  /// histograms stay empty and traces carry zero stage attribution).
  bool stage_timing = true;
  /// Sampled query tracing and the slow-query log: 1-in-N completed
  /// queries (and every query at or above trace.slow_query_ms) emit one
  /// JSON line through trace.sink. Off by default; see TraceOptions.
  TraceOptions trace;
};

/// Validates engine tunables at construction time: non-positive (or absurd)
/// thread counts, a zero batching group bound and an out-of-range
/// probability threshold all surface as InvalidArgument here instead of
/// undefined behavior deep in the pool or the sweep.
Status ValidateQueryEngineOptions(const QueryEngineOptions& options);

/// One served query's outcome.
struct PnnAnswer {
  /// Per-query status; results are meaningful only when ok().
  Status status = Status::OK();
  /// Qualification probabilities, sorted descending (Step-2 output).
  std::vector<pv::PnnResult> results;
  /// True when Step-1 candidates came from the leaf cache.
  bool cache_hit = false;
  /// End-to-end latency of this query in milliseconds.
  double latency_ms = 0.0;
  /// Per-stage nanosecond attribution (indexed by QueryStage); all zero
  /// when stage_timing is off. Grouped Step-2 charges the whole group
  /// sweep to every member — consistent with latency_ms, which also
  /// counts the group's wall time for each member.
  std::array<int64_t, kNumQueryStages> stage_ns{};
};

/// Aggregate statistics of one ExecuteBatch call.
struct ServiceStats {
  int64_t queries = 0;
  int threads = 0;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  /// Per-query latency distribution.
  Summary latency_ms;
  /// Leaf-cache hit/miss deltas over the batch (0/0 when caching is off or
  /// the backend has no leaf structure).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Batched-Step-2 plan shape (all 0 when batch_step2 is off): groups that
  /// went through the candidate-outer sweep, queries they served, and
  /// (query, candidate) pairs the threshold bound retired early.
  int64_t step2_groups = 0;
  int64_t step2_grouped_queries = 0;
  int64_t step2_pairs_pruned = 0;
  /// Total milliseconds spent per pipeline stage over the batch (indexed
  /// by QueryStage; all zero when stage_timing is off).
  std::array<double, kNumQueryStages> stage_ms{};
};

/// The indexes an engine may serve from. The borrowed pointers (pv/uv/
/// rtree) must outlive the engine; the snapshot is shared. Any subset may
/// be present. The PV-index pointer is non-const because Insert/Delete
/// route through it.
struct EngineBackends {
  pv::PvIndex* pv = nullptr;
  const uv::UvIndex* uv = nullptr;
  const rtree::RStarTree* rtree = nullptr;
  /// A sealed serving surface; when present the planner prefers it, and
  /// AdoptSnapshot() can hot-swap it later.
  std::shared_ptr<const pv::IndexSnapshot> snapshot;
};

/// The serving engine. Thread-safe: ExecuteBatch / Submit may be called
/// from any thread and overlap with Insert / Delete (borrowed-index mode;
/// readers share, writers exclude) or with AdoptSnapshot (snapshot mode;
/// wait-free swap). Borrowed datasets/indexes must only be mutated through
/// the engine while it is live.
class QueryEngine {
 public:
  /// Plans a backend over whatever `backends` provides and builds the
  /// engine. `db` is borrowed and must stay alive; it is mutated only by
  /// Insert/Delete below. `db` may be nullptr only when a snapshot is the
  /// planned backend — snapshot serving resolves Step-2 records from the
  /// snapshot itself.
  static Result<std::unique_ptr<QueryEngine>> Create(
      uncertain::Dataset* db, const EngineBackends& backends,
      const QueryEngineOptions& options);

  /// Convenience: a self-contained engine over a sealed snapshot (no
  /// dataset, no live indexes — e.g. a fresh process after
  /// IndexSnapshot::Open).
  static Result<std::unique_ptr<QueryEngine>> CreateFromSnapshot(
      std::shared_ptr<const pv::IndexSnapshot> snapshot,
      const QueryEngineOptions& options);

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The typed serving API: answers a heterogeneous batch of QueryRequests
  /// — any mix of kPnn, kTopKByProb, kThresholdNN, kRangeProb and
  /// kTrajectoryPnn — sharded across the pool. Answer i corresponds to
  /// requests[i]; no answers are lost, duplicated or reordered. All kinds
  /// share one pipeline: Step-1 pruning (with the leaf cache and, for
  /// consecutive trajectory samples inside one leaf cell, descent reuse),
  /// one grouped Step-2 sweep over identical candidate sets regardless of
  /// kind, the per-worker scratch arenas, and per-kind result selection at
  /// the end. Requests failing ValidateQueryRequest (and per-query failures
  /// like out-of-domain points) land in the answer's status — never abort
  /// the batch.
  std::vector<QueryAnswer> ExecuteBatch(std::span<const QueryRequest> requests,
                                        ServiceStats* stats = nullptr);

  /// Async single-request API: enqueues `req` on the pool and returns a
  /// future for its answer.
  std::future<QueryAnswer> Submit(QueryRequest req);

  /// Legacy point-PNN batch API: a thin shim over the typed ExecuteBatch
  /// (each point becomes a kPnn request; answers convert field-for-field).
  /// Answers are bit-identical to the typed form. Prefer the QueryRequest
  /// overload in new code.
  std::vector<PnnAnswer> ExecuteBatch(std::span<const geom::Point> queries,
                                      ServiceStats* stats = nullptr);

  /// Legacy async single-query API (kPnn shim over the typed pipeline).
  std::future<PnnAnswer> Submit(const geom::Point& q);

  /// Index dimensionality this engine serves (requests must match it).
  int dim() const { return dim_; }

  /// Adds `object` to the dataset and the PV-index under the writer lock
  /// (queries in flight finish first; the leaf cache is invalidated via the
  /// index's update hook). Requires the engine to serve from the PV-index —
  /// other backends would go stale.
  Status Insert(uncertain::UncertainObject object);

  /// Removes object `id` from the dataset and the PV-index (same contract
  /// as Insert).
  Status Delete(uncertain::ObjectId id);

  /// Atomically flips serving traffic to `snapshot` without blocking or
  /// draining in-flight queries: calls already past their state load finish
  /// against the old snapshot (kept alive by their shared_ptr, including
  /// its leaf cache), later calls serve the new one. Grouped batches that
  /// straddle the swap detect the state change between their phases and
  /// re-answer the affected queries consistently. Requires the engine to be
  /// serving from a snapshot (Create with one, or CreateFromSnapshot) —
  /// this is the bulk-update path that replaces the writer lock.
  Status AdoptSnapshot(std::shared_ptr<const pv::IndexSnapshot> snapshot);

  /// The currently served snapshot; nullptr in borrowed-index mode.
  std::shared_ptr<const pv::IndexSnapshot> snapshot() const;

  /// The planner's decision for this engine.
  BackendKind active_backend() const;
  const std::string& plan_reason() const { return plan_reason_; }

  int threads() const { return pool_->size(); }

  /// The current serving state's leaf cache, or nullptr when disabled.
  /// Snapshot mode: each adopted snapshot starts a fresh cache, so hit/miss
  /// counters reset on AdoptSnapshot — and the returned pointer lives only
  /// as long as that snapshot's serving state, so do not hold it across a
  /// possible AdoptSnapshot (introspection accessor, not a serving API).
  const ResultCache* cache() const;

  /// Engine-level metrics: counters (queries, failures, Step-2 pdf page
  /// charges, leaf block reads), gauges (snapshot generation/age, pool
  /// queue depth, cache occupancy) and histograms (end-to-end latency,
  /// per-stage latency, pool queue wait) — all exportable through
  /// MetricRegistry::ExportPrometheusText() / ExportJson().
  const MetricRegistry& metrics() const { return metrics_; }

  /// The engine's tracer (emission counts for tests/monitoring).
  const Tracer& tracer() const { return tracer_; }

 private:
  /// Everything one query needs to be answered consistently, bundled and
  /// immutable-after-publication. Borrowed-index mode creates exactly one
  /// for the engine's lifetime; snapshot mode creates one per adopted
  /// snapshot. The cache object is internally synchronized (mutable through
  /// the const bundle by design).
  struct ServingState {
    /// Owned snapshot, or nullptr in borrowed-index mode.
    std::shared_ptr<const pv::IndexSnapshot> snapshot;
    /// Snapshot mode: the backend owned by this state.
    std::unique_ptr<Backend> owned_backend;
    /// The Step-1 backend serving queries (owned_backend.get() or a
    /// pointer into the engine's borrowed-backend list).
    Backend* active = nullptr;
    /// Step-2 record resolution: the dataset or the snapshot.
    const uncertain::ObjectSource* objects = nullptr;
    std::unique_ptr<pv::PnnStep2Evaluator> step2;
    std::unique_ptr<ResultCache> cache;
  };
  using StatePtr = std::shared_ptr<const ServingState>;

  QueryEngine(uncertain::Dataset* db, const QueryEngineOptions& options);

  /// Step-1 output of one query, carried from the batch's candidate phase
  /// to its grouped Step-2 phase.
  struct Step1Outcome {
    Status status = Status::OK();
    std::vector<uncertain::ObjectId> candidates;
    uint64_t leaf_key = pv::kNoLeafId;
    /// Leaf block the candidates were pruned from (nullptr off-leaf and on
    /// the zero-copy path, which never materializes blocks).
    ResultCache::BlockPtr block;
    /// Zero-copy path: the view the candidates were pruned from. Borrows
    /// the serving snapshot's memory — `state` below keeps it alive.
    pv::LeafBlockView view;
    bool has_view = false;
    /// Cached per-leaf object plan, when one already existed.
    ResultCache::PlanPtr plan;
    bool cache_hit = false;
    /// The located leaf (id + cell), when the leaf path ran — the next
    /// trajectory sample reuses it as a descent hint if it stays strictly
    /// inside the cell.
    pv::OctreePrimary::LeafRef ref;
    bool has_ref = false;
    /// True when a caller-supplied leaf hint replaced the descent.
    bool used_hint = false;
    /// Serving state the outcome was computed against.
    StatePtr state;
    /// Engine mutation epoch the outcome was computed under.
    uint64_t epoch = 0;
  };

  /// The state queries serve from right now (wait-free load).
  StatePtr CurrentState() const {
    return state_.load(std::memory_order_acquire);
  }

  /// Builds the per-snapshot state bundle (backend + evaluator + cache).
  StatePtr MakeSnapshotState(
      std::shared_ptr<const pv::IndexSnapshot> snapshot) const;

  /// Leaf-descent hint threaded between consecutive trajectory samples:
  /// the previous sample's leaf, reused when the next sample stays strictly
  /// inside its cell (the descent partitions each axis half-open at the
  /// midpoint, so a strict-interior point provably lands in the same leaf —
  /// reuse never changes answer bits). `used` reports whether the last
  /// sample's Step 1 actually skipped its descent.
  struct LeafHint {
    pv::OctreePrimary::LeafRef ref;
    bool valid = false;
    bool used = false;
  };

  /// Serves one point-PNN query end to end (takes the shared lock itself).
  PnnAnswer AnswerOne(const geom::Point& q) const;

  /// AnswerOne's body; the caller holds the shared lock. Loads the current
  /// state and answers against it.
  PnnAnswer AnswerOneLocked(const geom::Point& q) const;

  /// One point evaluation (Step 1 + Step 2) against `state`; the caller
  /// holds the shared lock. `hint`, when provided, seeds and receives the
  /// trajectory leaf-reuse state across consecutive samples.
  PnnAnswer AnswerPointLocked(const StatePtr& state, const geom::Point& q,
                              LeafHint* hint) const;

  /// One range-probability request end to end (takes the shared lock
  /// itself): range Step 1 through the backend (or the linear dataset
  /// fallback), then per-candidate containment probabilities. The returned
  /// results are final (filtered by req.probability, ordered
  /// probability desc / id asc).
  PnnAnswer AnswerRange(const QueryRequest& req) const;

  /// Submit()'s body: one typed request end to end, including validation,
  /// per-kind selection and accounting.
  QueryAnswer AnswerRequest(const QueryRequest& req) const;

  /// Step 1 of one query (leaf location, cache, pruning) against `state`;
  /// the caller holds the shared lock. `want_grouping` is true only on the
  /// grouped batch path, which consumes the leaf key / block / plan — the
  /// per-query path skips that extra work (no off-cache block snapshot, no
  /// plan lookup). `timings` (nullable) receives per-stage attribution:
  /// leaf location → kPlan, cache traffic → kLeafCache, pruning → kStep1.
  /// `hint`, when non-null, replaces the leaf descent (the caller
  /// guarantees `q` lies strictly inside hint->cell); `want_ref` forces
  /// leaf location even without cache/grouping so the outcome carries a
  /// reusable ref for the next trajectory sample.
  Step1Outcome Step1One(const StatePtr& state, const geom::Point& q,
                        pv::QueryScratch* scratch, bool want_grouping,
                        StageTimings* timings,
                        const pv::OctreePrimary::LeafRef* hint = nullptr,
                        bool want_ref = false) const;

  /// Post-completion accounting for one answered query unit: engine
  /// counters (total and per kind), the end-to-end and per-stage
  /// histograms, and (when tracing is on) the sampled / slow-query JSON
  /// line tagged with the query kind. Called once per unit — by the
  /// serving thread on the per-query path, and by the batch caller in one
  /// deterministic pass on the batch path.
  void RecordAnswer(const PnnAnswer& ans,
                    QueryKind kind = QueryKind::kPnn) const;

  /// Candidate records of `group` via the cached per-leaf plan (building
  /// and attaching it on first use); empty when the backend's pruning does
  /// not preserve leaf order or the group was not served from a leaf.
  std::vector<const uncertain::UncertainObject*> ResolveGroup(
      const pv::Step2Batch::Group& group, const Step1Outcome& first) const;

  /// The typed batch body: expands requests into point-evaluation units
  /// (one per point query, one per trajectory sample) plus range tasks,
  /// runs the Step-1 phase across the pool (batch_step2 off: the full
  /// per-unit pipeline instead), sweeps grouped Step 2 over identical
  /// candidate sets, applies per-kind selection, and does one deterministic
  /// accounting pass. Fills the latency/stage/grouping fields of `stats`.
  std::vector<QueryAnswer> ExecuteRequests(
      std::span<const QueryRequest> requests, ServiceStats* stats);

  uncertain::Dataset* db_;
  QueryEngineOptions options_;
  /// Index dimensionality (request validation at ingress).
  int dim_ = 0;
  std::vector<std::unique_ptr<Backend>> backends_;  // borrowed-index mode
  std::string plan_reason_;
  pv::PvIndex* pv_index_ = nullptr;
  int pv_listener_id_ = -1;
  mutable MetricRegistry metrics_;
  // Pre-registered handles: workers charge them lock-free instead of
  // taking the registry mutex per event.
  MetricRegistry::Counter* step2_pages_ = nullptr;
  MetricRegistry::Counter* queries_total_ = nullptr;
  MetricRegistry::Counter* query_failures_ = nullptr;
  MetricRegistry::Counter* batches_total_ = nullptr;
  MetricRegistry::Counter* leaf_block_reads_ = nullptr;
  /// Per-kind unit counters (engine.queries.<kind>), indexed by
  /// QueryKind value - 1.
  std::array<MetricRegistry::Counter*, 5> queries_by_kind_{};
  MetricRegistry::Gauge* snapshot_generation_ = nullptr;
  Histogram* latency_hist_ = nullptr;
  std::array<Histogram*, kNumQueryStages> stage_hists_{};
  Histogram* queue_wait_hist_ = nullptr;
  // Sampled/slow-query trace emission (thread-safe, shared counter).
  mutable Tracer tracer_;
  // The planned backend's stable name, cached for trace lines: the kind
  // never changes after Create (AdoptSnapshot swaps snapshots, not kinds),
  // and resolving it per query would cost an atomic shared_ptr load.
  const char* backend_name_ = "";
  mutable std::atomic<uint64_t> query_seq_{0};
  // TraceNowNs() when the serving snapshot was installed (feeds the
  // engine.snapshot.age_seconds callback gauge); 0 in borrowed-index mode.
  std::atomic<int64_t> snapshot_adopt_ns_{0};
  // The serving state, swapped atomically by AdoptSnapshot. Queries load it
  // once and serve consistently from the loaded bundle.
  std::atomic<StatePtr> state_;
  // Bumped by every Insert/Delete (under the writer lock). The grouped
  // batch path snapshots it during Step 1 and re-checks per group during
  // Step 2, so a borrowed-index mutation landing between the phases
  // triggers a consistent per-query redo instead of evaluating stale
  // candidates — no lock is ever held across a pool barrier. Snapshot
  // swaps are detected by ServingState identity instead (immutable states
  // need no epoch).
  std::atomic<uint64_t> epoch_{0};
  mutable std::shared_mutex mu_;
  // Last member: destroyed (joined) first, while the state above is alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pvdb::service

#endif  // PVDB_SERVICE_QUERY_ENGINE_H_
