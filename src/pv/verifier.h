// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Probabilistic verifiers for PNNQ Step 2 — the approach of Cheng et al.,
// "Probabilistic verifiers: evaluating constrained nearest-neighbor queries
// over uncertain data" (ICDE 2008, reference [11]). For probability-
// threshold queries ("objects with P(nearest) >= τ"), the verifier computes
// cheap lower/upper probability bounds from a coarse distance-binned view
// of each candidate's pdf and classifies candidates as ACCEPT / REJECT
// without the full product-form evaluation; only undecided candidates fall
// back to the exact Step 2. The paper's footnote 11 points out that such
// fast PC implementations *raise* the fraction of query time spent on
// object retrieval — the very cost the PV-index attacks;
// bench_verifier_step2 quantifies that shift.

#ifndef PVDB_PV_VERIFIER_H_
#define PVDB_PV_VERIFIER_H_

#include <span>
#include <vector>

#include "src/pv/pnnq.h"

namespace pvdb::pv {

/// Verifier tuning.
struct VerifierOptions {
  /// Distance bins per candidate pdf; more bins = tighter bounds, more work.
  int bins = 8;
};

/// Classification counters for one query.
struct VerifierStats {
  /// Candidates accepted purely by their lower bound.
  int accepted_by_bounds = 0;
  /// Candidates rejected purely by their upper bound.
  int rejected_by_bounds = 0;
  /// Candidates needing the exact evaluation.
  int exact_fallbacks = 0;
};

/// Lower/upper bounds on one candidate's qualification probability.
struct ProbabilityBounds {
  uncertain::ObjectId id;
  double lower;
  double upper;
};

/// Bound-based Step-2 evaluator.
class ProbabilisticVerifier {
 public:
  /// Borrows `db` (kept alive and unmodified by the caller per evaluation).
  explicit ProbabilisticVerifier(const uncertain::Dataset* db,
                                 VerifierOptions options = VerifierOptions());

  /// Probability bounds for every candidate at query `q`. Guarantees
  /// lower <= exact <= upper for each candidate.
  std::vector<ProbabilityBounds> Bounds(
      const geom::Point& q,
      std::span<const uncertain::ObjectId> candidates) const;

  /// Probability-threshold PNNQ: all candidates with exact probability
  /// >= `tau`, each with its exact probability when it had to be computed
  /// (bound-accepted candidates report their lower bound, which already
  /// certifies the threshold). `tau` must be positive.
  std::vector<PnnResult> EvaluateThreshold(
      const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
      double tau, VerifierStats* stats = nullptr) const;

 private:
  const uncertain::Dataset* db_;
  VerifierOptions options_;
  PnnStep2Evaluator exact_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_VERIFIER_H_
