// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/octree.h"

#include <algorithm>

namespace pvdb::pv {
namespace {

using storage::kInvalidPageId;
using storage::kPageSize;
using storage::Page;
using storage::PageId;

// Leaf page layout: [next: PageId (8)] [count: u32 (4)] [pad (4)] [entries].
constexpr size_t kNextOffset = 0;
constexpr size_t kCountOffset = 8;
constexpr size_t kEntriesOffset = 16;

}  // namespace

struct OctreePrimary::Node {
  bool is_leaf = true;
  // Stable leaf identity for the service layer's leaf-result cache; assigned
  // at creation, retired (never reused) when the leaf splits.
  uint64_t leaf_id = 0;
  // Leaf state: head of the page list and total entry count.
  PageId head = kInvalidPageId;
  uint32_t entry_count = 0;
  // Internal state: 2^d children (present iff !is_leaf).
  std::vector<std::unique_ptr<Node>> children;
};

OctreePrimary::OctreePrimary(geom::Rect domain, storage::Pager* pager,
                             UbrResolver resolver, OctreeOptions options)
    : domain_(std::move(domain)),
      pager_(pager),
      resolver_(std::move(resolver)),
      options_(options) {
  PVDB_CHECK(pager_ != nullptr);
  PVDB_CHECK(resolver_ != nullptr);
  root_ = std::make_unique<Node>();
  root_->leaf_id = next_leaf_id_++;
  node_count_ = 1;
  leaf_count_ = 1;
  memory_used_ = NodeBytes(/*internal=*/false);
}

OctreePrimary::~OctreePrimary() = default;
OctreePrimary::OctreePrimary(OctreePrimary&&) noexcept = default;
OctreePrimary& OctreePrimary::operator=(OctreePrimary&&) noexcept = default;

size_t OctreePrimary::EntryBytes() const {
  return sizeof(uint64_t) + 2 * sizeof(double) * static_cast<size_t>(dim());
}

size_t OctreePrimary::PageCapacity() const {
  return (kPageSize - kEntriesOffset) / EntryBytes();
}

size_t OctreePrimary::NodeBytes(bool internal) const {
  // Header plus, for internal nodes, 2^d child pointers.
  return sizeof(Node) +
         (internal ? (size_t{1} << dim()) * sizeof(std::unique_ptr<Node>) : 0);
}

bool OctreePrimary::CanAffordSplit() const {
  // A split turns a leaf into an internal node and adds 2^d leaf children.
  const size_t cost = (NodeBytes(true) - NodeBytes(false)) +
                      (size_t{1} << dim()) * NodeBytes(false);
  return memory_used_ + cost <= options_.memory_budget_bytes;
}

geom::Rect OctreePrimary::ChildRegion(const geom::Rect& region,
                                      unsigned child) const {
  geom::Point lo(dim()), hi(dim());
  for (int i = 0; i < dim(); ++i) {
    const double mid = 0.5 * (region.lo(i) + region.hi(i));
    if ((child >> i) & 1u) {
      lo[i] = mid;
      hi[i] = region.hi(i);
    } else {
      lo[i] = region.lo(i);
      hi[i] = mid;
    }
  }
  return geom::Rect(lo, hi);
}

// ---------------------------------------------------------------------------
// Leaf page I/O
// ---------------------------------------------------------------------------

template <typename Visitor>
Status OctreePrimary::VisitLeafEntries(const Node* leaf,
                                       Visitor&& visit) const {
  double lo[geom::kMaxDim];
  double hi[geom::kMaxDim];
  PageId id = leaf->head;
  while (id != kInvalidPageId) {
    Page page;
    PVDB_RETURN_NOT_OK(pager_->Read(id, &page));
    const uint32_t count = page.ReadAt<uint32_t>(kCountOffset);
    size_t off = kEntriesOffset;
    for (uint32_t k = 0; k < count; ++k) {
      const uint64_t entry_id = page.ReadAt<uint64_t>(off);
      off += sizeof(uint64_t);
      for (int i = 0; i < dim(); ++i) {
        lo[i] = page.ReadAt<double>(off);
        off += sizeof(double);
        hi[i] = page.ReadAt<double>(off);
        off += sizeof(double);
      }
      visit(entry_id, lo, hi);
    }
    id = page.ReadAt<PageId>(kNextOffset);
  }
  return Status::OK();
}

Result<std::vector<LeafEntry>> OctreePrimary::ReadLeafEntries(
    const Node* leaf) const {
  std::vector<LeafEntry> out;
  out.reserve(leaf->entry_count);
  PVDB_RETURN_NOT_OK(VisitLeafEntries(
      leaf, [&](uint64_t id, const double* lo, const double* hi) {
        geom::Point plo(dim()), phi(dim());
        for (int i = 0; i < dim(); ++i) {
          plo[i] = lo[i];
          phi[i] = hi[i];
        }
        out.push_back(LeafEntry{id, geom::Rect(plo, phi)});
      }));
  return out;
}

Result<LeafBlock> OctreePrimary::ReadLeafEntriesBlock(const Node* leaf) const {
  // Same page walk, decoding each entry's interleaved (lo, hi) pairs into
  // the per-dimension SoA arrays instead of a Rect.
  LeafBlock out;
  out.Reset(dim());
  out.Reserve(leaf->entry_count);
  PVDB_RETURN_NOT_OK(VisitLeafEntries(
      leaf, [&](uint64_t id, const double* lo, const double* hi) {
        out.ids.push_back(id);
        out.rects.PushBackBounds(lo, hi);
      }));
  return out;
}

Status OctreePrimary::WriteLeafEntries(Node* leaf,
                                       const std::vector<LeafEntry>& entries) {
  // Free the old chain, then write a fresh one (head page filled last so
  // subsequent appends go to a partially filled head).
  PageId id = leaf->head;
  while (id != kInvalidPageId) {
    Page page;
    PVDB_RETURN_NOT_OK(pager_->Read(id, &page));
    const PageId next = page.ReadAt<PageId>(kNextOffset);
    PVDB_RETURN_NOT_OK(pager_->Free(id));
    id = next;
  }
  leaf->head = kInvalidPageId;
  leaf->entry_count = 0;

  const size_t cap = PageCapacity();
  size_t pos = 0;
  while (pos < entries.size()) {
    const size_t chunk = std::min(cap, entries.size() - pos);
    PVDB_ASSIGN_OR_RETURN(PageId pid, pager_->Allocate());
    Page page;
    page.WriteAt<PageId>(kNextOffset, leaf->head);
    page.WriteAt<uint32_t>(kCountOffset, static_cast<uint32_t>(chunk));
    size_t off = kEntriesOffset;
    for (size_t k = 0; k < chunk; ++k) {
      const LeafEntry& e = entries[pos + k];
      page.WriteAt<uint64_t>(off, e.id);
      off += sizeof(uint64_t);
      for (int i = 0; i < dim(); ++i) {
        page.WriteAt<double>(off, e.region.lo(i));
        off += sizeof(double);
        page.WriteAt<double>(off, e.region.hi(i));
        off += sizeof(double);
      }
    }
    PVDB_RETURN_NOT_OK(pager_->Write(pid, page));
    leaf->head = pid;
    leaf->entry_count += static_cast<uint32_t>(chunk);
    pos += chunk;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

Status OctreePrimary::Insert(uncertain::ObjectId id, const geom::Rect& uregion,
                             const geom::Rect& ubr) {
  if (!domain_.Intersects(ubr)) {
    return Status::InvalidArgument("UBR lies outside the domain");
  }
  return InsertRec(root_.get(), domain_, 0, id, uregion, ubr, ubr, nullptr);
}

Status OctreePrimary::InsertDiff(uncertain::ObjectId id,
                                 const geom::Rect& uregion,
                                 const geom::Rect& include,
                                 const geom::Rect& exclude) {
  return InsertRec(root_.get(), domain_, 0, id, uregion, include, include,
                   &exclude);
}

Status OctreePrimary::InsertFiltered(uncertain::ObjectId id,
                                     const geom::Rect& uregion,
                                     const geom::Rect& range,
                                     const LeafFilter& filter) {
  return InsertFilteredRec(root_.get(), domain_, 0, id, uregion, range,
                           filter);
}

Status OctreePrimary::InsertFilteredRec(Node* node, const geom::Rect& region,
                                        int node_depth,
                                        uncertain::ObjectId id,
                                        const geom::Rect& uregion,
                                        const geom::Rect& range,
                                        const LeafFilter& filter) {
  if (!node->is_leaf) {
    for (unsigned c = 0; c < (1u << dim()); ++c) {
      const geom::Rect child_region = ChildRegion(region, c);
      if (!child_region.Intersects(range)) continue;
      PVDB_RETURN_NOT_OK(InsertFilteredRec(node->children[c].get(),
                                           child_region, node_depth + 1, id,
                                           uregion, range, filter));
    }
    return Status::OK();
  }
  if (!filter(region)) return Status::OK();
  // After a split triggered below, redistribution falls back to plain
  // range-overlap dispatch (a conservative superset of the filter).
  return InsertIntoLeaf(node, region, node_depth, id, uregion, range);
}

Status OctreePrimary::InsertRec(Node* node, const geom::Rect& region,
                                int node_depth, uncertain::ObjectId id,
                                const geom::Rect& uregion,
                                const geom::Rect& ubr,
                                const geom::Rect& include,
                                const geom::Rect* exclude) {
  if (!node->is_leaf) {
    for (unsigned c = 0; c < (1u << dim()); ++c) {
      const geom::Rect child_region = ChildRegion(region, c);
      if (!child_region.Intersects(include)) continue;
      PVDB_RETURN_NOT_OK(InsertRec(node->children[c].get(), child_region,
                                   node_depth + 1, id, uregion, ubr, include,
                                   exclude));
    }
    return Status::OK();
  }
  // The exclude test is a leaf-level predicate: leaf regions are disjoint,
  // so "overlaps exclude" exactly identifies members of the old leaf set N.
  if (exclude != nullptr && region.Intersects(*exclude)) return Status::OK();
  return InsertIntoLeaf(node, region, node_depth, id, uregion, ubr);
}

Status OctreePrimary::InsertIntoLeaf(Node* leaf, const geom::Rect& region,
                                     int node_depth, uncertain::ObjectId id,
                                     const geom::Rect& uregion,
                                     const geom::Rect& ubr) {
  if (leaf->head == kInvalidPageId) {
    PVDB_ASSIGN_OR_RETURN(PageId pid, pager_->Allocate());
    Page page;
    page.WriteAt<PageId>(kNextOffset, kInvalidPageId);
    page.WriteAt<uint32_t>(kCountOffset, 0);
    PVDB_RETURN_NOT_OK(pager_->Write(pid, page));
    leaf->head = pid;
  }

  Page head;
  PVDB_RETURN_NOT_OK(pager_->Read(leaf->head, &head));
  const uint32_t count = head.ReadAt<uint32_t>(kCountOffset);
  if (static_cast<size_t>(count) < PageCapacity()) {
    // Section VI-A step 2: room in the first page of the list.
    size_t off = kEntriesOffset + count * EntryBytes();
    head.WriteAt<uint64_t>(off, id);
    off += sizeof(uint64_t);
    for (int i = 0; i < dim(); ++i) {
      head.WriteAt<double>(off, uregion.lo(i));
      off += sizeof(double);
      head.WriteAt<double>(off, uregion.hi(i));
      off += sizeof(double);
    }
    head.WriteAt<uint32_t>(kCountOffset, count + 1);
    PVDB_RETURN_NOT_OK(pager_->Write(leaf->head, head));
    leaf->entry_count += 1;
    return Status::OK();
  }

  // Section VI-A step 3: head page full. Split if memory allows, else chain.
  if (CanAffordSplit() && node_depth < options_.max_depth) {
    PVDB_RETURN_NOT_OK(SplitLeaf(leaf, region, node_depth));
    // The leaf became internal; re-dispatch this insertion to its children.
    return InsertRec(leaf, region, node_depth, id, uregion, ubr, ubr, nullptr);
  }

  PVDB_ASSIGN_OR_RETURN(PageId pid, pager_->Allocate());
  Page page;
  page.WriteAt<PageId>(kNextOffset, leaf->head);
  page.WriteAt<uint32_t>(kCountOffset, 1);
  size_t off = kEntriesOffset;
  page.WriteAt<uint64_t>(off, id);
  off += sizeof(uint64_t);
  for (int i = 0; i < dim(); ++i) {
    page.WriteAt<double>(off, uregion.lo(i));
    off += sizeof(double);
    page.WriteAt<double>(off, uregion.hi(i));
    off += sizeof(double);
  }
  PVDB_RETURN_NOT_OK(pager_->Write(pid, page));
  leaf->head = pid;
  leaf->entry_count += 1;
  return Status::OK();
}

Status OctreePrimary::SplitLeaf(Node* leaf, const geom::Rect& region,
                                int node_depth) {
  PVDB_ASSIGN_OR_RETURN(std::vector<LeafEntry> entries, ReadLeafEntries(leaf));

  // Release the old chain.
  PageId id = leaf->head;
  while (id != kInvalidPageId) {
    Page page;
    PVDB_RETURN_NOT_OK(pager_->Read(id, &page));
    const PageId next = page.ReadAt<PageId>(kNextOffset);
    PVDB_RETURN_NOT_OK(pager_->Free(id));
    id = next;
  }

  // Convert to an internal node with 2^d fresh leaf children.
  leaf->is_leaf = false;
  leaf->head = kInvalidPageId;
  leaf->entry_count = 0;
  const unsigned fanout = 1u << dim();
  leaf->children.resize(fanout);
  for (unsigned c = 0; c < fanout; ++c) {
    leaf->children[c] = std::make_unique<Node>();
    leaf->children[c]->leaf_id = next_leaf_id_++;
  }
  memory_used_ += (NodeBytes(true) - NodeBytes(false)) +
                  static_cast<size_t>(fanout) * NodeBytes(false);
  node_count_ += fanout;
  leaf_count_ += fanout - 1;
  depth_ = std::max(depth_, node_depth + 1);

  // Redistribute: each entry goes to every child its *UBR* overlaps. The
  // UBRs are not stored in leaf entries; fetch them from the secondary
  // index through the resolver (Section VI-A step 3).
  for (const LeafEntry& e : entries) {
    PVDB_ASSIGN_OR_RETURN(geom::Rect ubr, resolver_(e.id));
    PVDB_RETURN_NOT_OK(InsertRec(leaf, region, node_depth, e.id, e.region, ubr,
                                 ubr, nullptr));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Bulk loading
// ---------------------------------------------------------------------------

Status OctreePrimary::BulkLoad(const std::vector<BulkEntry>& entries) {
  if (!root_->is_leaf || root_->head != kInvalidPageId) {
    return Status::InvalidArgument("BulkLoad requires an empty octree");
  }
  std::vector<size_t> items(entries.size());
  for (size_t i = 0; i < items.size(); ++i) items[i] = i;
  return BulkBuildRec(root_.get(), domain_, 0, entries, items);
}

Status OctreePrimary::BulkBuildRec(Node* node, const geom::Rect& region,
                                   int node_depth,
                                   const std::vector<BulkEntry>& entries,
                                   const std::vector<size_t>& items) {
  // Leaf condition mirrors incremental construction: a leaf keeps at most
  // one page of entries unless the memory budget (or depth guard) forces
  // chaining.
  if (items.size() <= PageCapacity() || !CanAffordSplit() ||
      node_depth >= options_.max_depth) {
    std::vector<LeafEntry> leaf_entries;
    leaf_entries.reserve(items.size());
    for (size_t i : items) {
      leaf_entries.push_back(LeafEntry{entries[i].id, entries[i].uregion});
    }
    return WriteLeafEntries(node, leaf_entries);
  }

  const unsigned fanout = 1u << dim();
  node->is_leaf = false;
  node->children.resize(fanout);
  memory_used_ += (NodeBytes(true) - NodeBytes(false)) +
                  static_cast<size_t>(fanout) * NodeBytes(false);
  node_count_ += fanout;
  leaf_count_ += fanout - 1;
  depth_ = std::max(depth_, node_depth + 1);
  for (unsigned c = 0; c < fanout; ++c) {
    node->children[c] = std::make_unique<Node>();
    node->children[c]->leaf_id = next_leaf_id_++;
    const geom::Rect child_region = ChildRegion(region, c);
    std::vector<size_t> child_items;
    for (size_t i : items) {
      if (entries[i].ubr.Intersects(child_region)) child_items.push_back(i);
    }
    PVDB_RETURN_NOT_OK(BulkBuildRec(node->children[c].get(), child_region,
                                    node_depth + 1, entries, child_items));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Removal
// ---------------------------------------------------------------------------

Status OctreePrimary::Remove(uncertain::ObjectId id,
                             const geom::Rect& include) {
  return RemoveRec(root_.get(), domain_, id, include, nullptr);
}

Status OctreePrimary::RemoveDiff(uncertain::ObjectId id,
                                 const geom::Rect& include,
                                 const geom::Rect& exclude) {
  return RemoveRec(root_.get(), domain_, id, include, &exclude);
}

Status OctreePrimary::RemoveRec(Node* node, const geom::Rect& region,
                                uncertain::ObjectId id,
                                const geom::Rect& include,
                                const geom::Rect* exclude) {
  if (!node->is_leaf) {
    for (unsigned c = 0; c < (1u << dim()); ++c) {
      const geom::Rect child_region = ChildRegion(region, c);
      if (!child_region.Intersects(include)) continue;
      PVDB_RETURN_NOT_OK(
          RemoveRec(node->children[c].get(), child_region, id, include,
                    exclude));
    }
    return Status::OK();
  }
  if (exclude != nullptr && region.Intersects(*exclude)) return Status::OK();
  if (leaf_count_ == 0 || node->head == kInvalidPageId) return Status::OK();

  PVDB_ASSIGN_OR_RETURN(std::vector<LeafEntry> entries, ReadLeafEntries(node));
  const size_t before = entries.size();
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](const LeafEntry& e) { return e.id == id; }),
                entries.end());
  if (entries.size() == before) return Status::OK();
  return WriteLeafEntries(node, entries);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

Result<OctreePrimary::LeafRef> OctreePrimary::FindLeaf(
    const geom::Point& q) const {
  if (!domain_.Contains(q)) {
    return Status::InvalidArgument("query point outside the domain");
  }
  const Node* node = root_.get();
  geom::Rect region = domain_;
  while (!node->is_leaf) {
    unsigned child = 0;
    for (int i = 0; i < dim(); ++i) {
      const double mid = 0.5 * (region.lo(i) + region.hi(i));
      if (q[i] >= mid) child |= 1u << i;
    }
    region = ChildRegion(region, child);
    node = node->children[child].get();
  }
  return LeafRef{node->leaf_id, node, region};
}

Result<std::vector<LeafEntry>> OctreePrimary::ReadLeaf(
    const LeafRef& ref) const {
  PVDB_CHECK(ref.node != nullptr && ref.node->is_leaf);
  return ReadLeafEntries(ref.node);
}

Result<LeafBlock> OctreePrimary::ReadLeafBlock(const LeafRef& ref) const {
  PVDB_CHECK(ref.node != nullptr && ref.node->is_leaf);
  return ReadLeafEntriesBlock(ref.node);
}

Result<std::vector<LeafEntry>> OctreePrimary::QueryPoint(
    const geom::Point& q) const {
  PVDB_ASSIGN_OR_RETURN(LeafRef ref, FindLeaf(q));
  return ReadLeafEntries(ref.node);
}

Result<LeafBlock> OctreePrimary::QueryPointBlock(const geom::Point& q) const {
  PVDB_ASSIGN_OR_RETURN(LeafRef ref, FindLeaf(q));
  return ReadLeafEntriesBlock(ref.node);
}

Status OctreePrimary::CollectRec(const Node* node, const geom::Rect& region,
                                 const geom::Rect& range,
                                 std::vector<LeafEntry>* out) const {
  if (node->is_leaf) {
    PVDB_ASSIGN_OR_RETURN(std::vector<LeafEntry> entries,
                          ReadLeafEntries(node));
    out->insert(out->end(), entries.begin(), entries.end());
    return Status::OK();
  }
  for (unsigned c = 0; c < (1u << dim()); ++c) {
    const geom::Rect child_region = ChildRegion(region, c);
    if (!child_region.Intersects(range)) continue;
    PVDB_RETURN_NOT_OK(CollectRec(node->children[c].get(), child_region,
                                  range, out));
  }
  return Status::OK();
}

Result<std::vector<LeafEntry>> OctreePrimary::CollectOverlapping(
    const geom::Rect& range) const {
  std::vector<LeafEntry> out;
  PVDB_RETURN_NOT_OK(CollectRec(root_.get(), domain_, range, &out));
  return out;
}

Status OctreePrimary::ExportFlat(std::vector<FlatNode>* nodes,
                                 std::vector<LeafEntry>* entries) const {
  PVDB_CHECK(nodes != nullptr && entries != nullptr);
  nodes->clear();
  entries->clear();
  nodes->reserve(node_count_);
  // BFS: the worklist index i is also the flat index of the node it names,
  // so children enqueued while visiting i land contiguously after it.
  std::vector<const Node*> order;
  order.reserve(node_count_);
  order.push_back(root_.get());
  for (size_t i = 0; i < order.size(); ++i) {
    const Node* node = order[i];
    FlatNode flat;
    flat.is_leaf = node->is_leaf ? 1 : 0;
    if (node->is_leaf) {
      flat.leaf_id = node->leaf_id;
      flat.entry_begin = entries->size();
      PVDB_ASSIGN_OR_RETURN(std::vector<LeafEntry> leaf_entries,
                            ReadLeafEntries(node));
      flat.entry_count = static_cast<uint32_t>(leaf_entries.size());
      entries->insert(entries->end(), leaf_entries.begin(),
                      leaf_entries.end());
    } else {
      flat.first_child = order.size();
      for (const auto& child : node->children) order.push_back(child.get());
    }
    nodes->push_back(flat);
  }
  return Status::OK();
}

}  // namespace pvdb::pv
