// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// PvIndexBuilder: the mutable half of the snapshot lifecycle. The builder
// owns its pager and wraps the live PvIndex with the full mutation API
// (Build / Insert / Delete); Seal() freezes the current state into an
// immutable IndexSnapshot and Save() writes the same image to disk, where
// IndexSnapshot::Open() mmaps it back in another process. The lifecycle in
// types:
//
//   builder (writer process)                 server (serving process)
//   ─────────────────────────                ────────────────────────
//   PvIndexBuilder::Build(db)
//   builder->Insert/Delete(...)
//   builder->Save("pv.snap")        ──────►  IndexSnapshot::Open("pv.snap")
//   builder->Seal()  (same process)          engine->AdoptSnapshot(snap)
//
// Sealing does not disturb the builder: the image is serialized from the
// octree's flat export plus the secondary index's records, and the builder
// keeps accepting updates afterwards (seal again for a newer snapshot).

#ifndef PVDB_PV_PV_INDEX_BUILDER_H_
#define PVDB_PV_PV_INDEX_BUILDER_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/pv/index_snapshot.h"
#include "src/pv/pv_index.h"
#include "src/storage/pager.h"
#include "src/storage/snapshot_file.h"
#include "src/uncertain/record_codec.h"

namespace pvdb::pv {

/// Seal-time knobs: which on-disk format to emit and how to store the pdf
/// records. Defaults produce the current format (v2: 64-byte-aligned SoA
/// leaf planes the serving path maps zero-copy) with raw v1 record bodies;
/// set `pack` to shrink the records section (kLossless decodes
/// bit-identically, kFloat32 trades a documented coordinate ulp for ~60%
/// smaller records — see uncertain/record_codec.h). format_version = 1
/// emits the exact legacy layout older readers expect; packing requires
/// v2 (v1 readers cannot decode packed bodies).
struct SealOptions {
  uint32_t format_version = storage::kSnapshotFormatVersion;
  uncertain::RecordPack pack = uncertain::RecordPack::kRaw;
};

/// Owns pager + live PV-index; produces sealed snapshots.
class PvIndexBuilder {
 public:
  /// Builds the index over `db` on a builder-owned in-memory pager.
  static Result<std::unique_ptr<PvIndexBuilder>> Build(
      const uncertain::Dataset& db, const PvIndexOptions& options = {},
      BuildStats* stats = nullptr);

  /// Incremental maintenance, same contracts as PvIndex::InsertObject /
  /// DeleteObject (db_after is the dataset state after the change).
  Status Insert(const uncertain::Dataset& db_after, uncertain::ObjectId new_id,
                UpdateStats* stats = nullptr);
  Status Delete(const uncertain::Dataset& db_after,
                const uncertain::UncertainObject& removed,
                UpdateStats* stats = nullptr);

  /// Serializes the current state into a snapshot image (the on-disk byte
  /// layout, checksums included).
  Result<std::vector<uint8_t>> SealImage(const SealOptions& options = {}) const;

  /// Serializes the current state restricted to `keep`: the snapshot keeps
  /// the SAME octree structure and the SAME (SE-tightened) UBRs as
  /// SealImage, but each leaf's entry list and the record section carry
  /// only ids in `keep`. Step-1 over the filtered snapshot is therefore
  /// exactly the full index's Step-1 restricted to `keep` — same cell for
  /// any query point, same per-entry distances, same τ semantics over the
  /// surviving subset. This is the carrier for shard snapshots whose
  /// merged answers must be bit-identical to the union index
  /// (src/shard/partitioner.h).
  Result<std::vector<uint8_t>> SealFilteredImage(
      std::span<const uncertain::ObjectId> keep,
      const SealOptions& options = {}) const;

  /// SealFilteredImage through the same durable write path as Save.
  Status SaveFiltered(const std::string& path,
                      std::span<const uncertain::ObjectId> keep,
                      const SealOptions& options = {},
                      storage::Env* env = nullptr) const;

  /// Seals the current state into an immutable in-memory snapshot.
  Result<std::shared_ptr<const IndexSnapshot>> Seal(
      const SealOptions& options = {}) const;

  /// Writes the sealed image to `path` (temp file + fsync + rename +
  /// directory fsync, through `env` — nullptr means storage::Env::Default()).
  Status Save(const std::string& path, const SealOptions& options = {},
              storage::Env* env = nullptr) const;

  /// The live index (library-level queries, tests, benchmarks).
  PvIndex& index() { return *index_; }
  const PvIndex& index() const { return *index_; }
  storage::Pager& pager() { return *pager_; }

 private:
  PvIndexBuilder() = default;

  /// Shared seal body; `keep == nullptr` serializes everything.
  Result<std::vector<uint8_t>> SealImageInternal(
      const SealOptions& options,
      const std::unordered_set<uncertain::ObjectId>* keep) const;

  std::unique_ptr<storage::InMemoryPager> pager_;
  std::unique_ptr<PvIndex> index_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_PV_INDEX_BUILDER_H_
