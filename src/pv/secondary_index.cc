// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/secondary_index.h"

#include <cstring>

namespace pvdb::pv {
namespace {

// Record layout:
//   [dim: u32][pad: u32]
//   [ubr lo/hi interleaved: 2·d doubles]
//   [uregion lo/hi interleaved: 2·d doubles]
//   [object payload: UncertainObject::AppendTo]

void AppendRect(std::vector<uint8_t>* out, const geom::Rect& r) {
  for (int i = 0; i < r.dim(); ++i) {
    const double lo = r.lo(i), hi = r.hi(i);
    const auto* plo = reinterpret_cast<const uint8_t*>(&lo);
    const auto* phi = reinterpret_cast<const uint8_t*>(&hi);
    out->insert(out->end(), plo, plo + sizeof(double));
    out->insert(out->end(), phi, phi + sizeof(double));
  }
}

Result<geom::Rect> ParseRect(const std::vector<uint8_t>& bytes, size_t* off,
                             int dim) {
  if (*off + 2 * sizeof(double) * static_cast<size_t>(dim) > bytes.size()) {
    return Status::Corruption("secondary record truncated rect");
  }
  geom::Point lo(dim), hi(dim);
  for (int i = 0; i < dim; ++i) {
    double l, h;
    std::memcpy(&l, bytes.data() + *off, sizeof(double));
    *off += sizeof(double);
    std::memcpy(&h, bytes.data() + *off, sizeof(double));
    *off += sizeof(double);
    lo[i] = l;
    hi[i] = h;
  }
  return geom::Rect(lo, hi);
}

}  // namespace

size_t SecondaryIndex::HeaderBytes(int dim) {
  return 2 * sizeof(uint32_t) + 4 * sizeof(double) * static_cast<size_t>(dim);
}

SecondaryIndex::SecondaryIndex(storage::Pager* pager)
    : pager_(pager),
      store_(std::make_unique<storage::RecordStore>(pager)) {}

Result<SecondaryIndex> SecondaryIndex::Create(storage::Pager* pager) {
  PVDB_CHECK(pager != nullptr);
  SecondaryIndex index(pager);
  PVDB_ASSIGN_OR_RETURN(storage::ExtendibleHash hash,
                        storage::ExtendibleHash::Create(pager));
  index.hash_ = std::make_unique<storage::ExtendibleHash>(std::move(hash));
  return index;
}

Status SecondaryIndex::Put(const uncertain::UncertainObject& o,
                           const geom::Rect& ubr) {
  std::vector<uint8_t> bytes;
  const uint32_t dim = static_cast<uint32_t>(o.dim());
  const uint32_t pad = 0;
  const auto* pdim = reinterpret_cast<const uint8_t*>(&dim);
  const auto* ppad = reinterpret_cast<const uint8_t*>(&pad);
  bytes.insert(bytes.end(), pdim, pdim + sizeof(dim));
  bytes.insert(bytes.end(), ppad, ppad + sizeof(pad));
  AppendRect(&bytes, ubr);
  AppendRect(&bytes, o.region());
  o.AppendTo(&bytes);

  // Replace semantics: drop any existing record first.
  auto existing = hash_->Get(o.id());
  if (existing.ok()) {
    PVDB_RETURN_NOT_OK(store_->Delete(existing.value()));
  }
  PVDB_ASSIGN_OR_RETURN(storage::RecordRef ref, store_->Put(bytes));
  return hash_->Put(o.id(), ref);
}

Result<SecondaryIndex::Header> SecondaryIndex::GetHeader(
    uncertain::ObjectId id) const {
  PVDB_ASSIGN_OR_RETURN(storage::RecordRef ref, hash_->Get(id));
  // Read dim first (one page holds the whole header anyway).
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> head,
                        store_->GetPrefix(ref, std::min<size_t>(
                                                   ref.length,
                                                   HeaderBytes(geom::kMaxDim))));
  if (head.size() < 2 * sizeof(uint32_t)) {
    return Status::Corruption("secondary record too short");
  }
  uint32_t dim;
  std::memcpy(&dim, head.data(), sizeof(dim));
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim) ||
      head.size() < HeaderBytes(static_cast<int>(dim))) {
    return Status::Corruption("secondary record bad header");
  }
  size_t off = 2 * sizeof(uint32_t);
  PVDB_ASSIGN_OR_RETURN(geom::Rect ubr,
                        ParseRect(head, &off, static_cast<int>(dim)));
  PVDB_ASSIGN_OR_RETURN(geom::Rect ureg,
                        ParseRect(head, &off, static_cast<int>(dim)));
  return Header(std::move(ubr), std::move(ureg));
}

Result<geom::Rect> SecondaryIndex::GetUbr(uncertain::ObjectId id) const {
  PVDB_ASSIGN_OR_RETURN(Header header, GetHeader(id));
  return header.ubr;
}

Result<uncertain::UncertainObject> SecondaryIndex::GetObject(
    uncertain::ObjectId id) const {
  PVDB_ASSIGN_OR_RETURN(storage::RecordRef ref, hash_->Get(id));
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, store_->Get(ref));
  if (bytes.size() < 2 * sizeof(uint32_t)) {
    return Status::Corruption("secondary record too short");
  }
  uint32_t dim;
  std::memcpy(&dim, bytes.data(), sizeof(dim));
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("secondary record bad dim");
  }
  size_t off = HeaderBytes(static_cast<int>(dim));
  return uncertain::UncertainObject::ParseFrom(bytes, &off);
}

Status SecondaryIndex::UpdateUbr(uncertain::ObjectId id,
                                 const geom::Rect& ubr) {
  PVDB_ASSIGN_OR_RETURN(storage::RecordRef ref, hash_->Get(id));
  // Rewrite [dim, pad, ubr] — the leading slice of the header.
  std::vector<uint8_t> prefix;
  const uint32_t dim = static_cast<uint32_t>(ubr.dim());
  const uint32_t pad = 0;
  const auto* pdim = reinterpret_cast<const uint8_t*>(&dim);
  const auto* ppad = reinterpret_cast<const uint8_t*>(&pad);
  prefix.insert(prefix.end(), pdim, pdim + sizeof(dim));
  prefix.insert(prefix.end(), ppad, ppad + sizeof(pad));
  AppendRect(&prefix, ubr);
  return store_->WritePrefix(ref, prefix);
}

Status SecondaryIndex::Remove(uncertain::ObjectId id) {
  PVDB_ASSIGN_OR_RETURN(storage::RecordRef ref, hash_->Get(id));
  PVDB_RETURN_NOT_OK(store_->Delete(ref));
  return hash_->Delete(id);
}

}  // namespace pvdb::pv
