// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/pv_index_builder.h"

#include <algorithm>
#include <cstring>

namespace pvdb::pv {

namespace {

void AppendRaw(std::vector<uint8_t>* out, const void* src, size_t len) {
  const auto* b = static_cast<const uint8_t*>(src);
  out->insert(out->end(), b, b + len);
}

template <typename T>
void Append(std::vector<uint8_t>* out, T v) {
  AppendRaw(out, &v, sizeof(T));
}

size_t AlignUp64(size_t n) { return (n + 63) & ~static_cast<size_t>(63); }

/// Serializes the v2 SoA leaf section: leaves in flat-node (BFS) order,
/// each leaf a run of 64-byte-aligned per-dimension bound planes
/// (lo0, hi0, lo1, hi1, ...) followed by the id plane — exactly the shape
/// pv::LeafBlockView points into, so the serving path maps it zero-copy.
/// The layout is deterministic in (nodes, dim): readers recompute every
/// leaf's offset by the same walk, nothing position-bearing is stored.
std::vector<uint8_t> BuildLeafSoA(
    const std::vector<OctreePrimary::FlatNode>& nodes,
    const std::vector<LeafEntry>& entries, int dim) {
  std::vector<uint8_t> soa;
  for (const auto& node : nodes) {
    if (!node.is_leaf) continue;
    const size_t n = node.entry_count;
    const size_t base = AlignUp64(soa.size());
    const size_t plane_stride = AlignUp64(n * sizeof(double));
    const size_t planes = 2 * static_cast<size_t>(dim) + 1;
    soa.resize(base + planes * plane_stride, 0);
    for (size_t k = 0; k < n; ++k) {
      const LeafEntry& e = entries[static_cast<size_t>(node.entry_begin) + k];
      for (int d = 0; d < dim; ++d) {
        const double lo = e.region.lo(d);
        const double hi = e.region.hi(d);
        std::memcpy(soa.data() + base + (2 * static_cast<size_t>(d)) * plane_stride +
                        k * sizeof(double),
                    &lo, sizeof(double));
        std::memcpy(soa.data() + base + (2 * static_cast<size_t>(d) + 1) * plane_stride +
                        k * sizeof(double),
                    &hi, sizeof(double));
      }
      std::memcpy(soa.data() + base + 2 * static_cast<size_t>(dim) * plane_stride +
                      k * sizeof(uint64_t),
                  &e.id, sizeof(uint64_t));
    }
  }
  return soa;
}

}  // namespace

Result<std::unique_ptr<PvIndexBuilder>> PvIndexBuilder::Build(
    const uncertain::Dataset& db, const PvIndexOptions& options,
    BuildStats* stats) {
  auto builder = std::unique_ptr<PvIndexBuilder>(new PvIndexBuilder());
  builder->pager_ = std::make_unique<storage::InMemoryPager>();
  PVDB_ASSIGN_OR_RETURN(
      builder->index_,
      PvIndex::Build(db, builder->pager_.get(), options, stats));
  return builder;
}

Status PvIndexBuilder::Insert(const uncertain::Dataset& db_after,
                              uncertain::ObjectId new_id, UpdateStats* stats) {
  return index_->InsertObject(db_after, new_id, stats);
}

Status PvIndexBuilder::Delete(const uncertain::Dataset& db_after,
                              const uncertain::UncertainObject& removed,
                              UpdateStats* stats) {
  return index_->DeleteObject(db_after, removed, stats);
}

Result<std::vector<uint8_t>> PvIndexBuilder::SealImage(
    const SealOptions& options) const {
  return SealImageInternal(options, nullptr);
}

Result<std::vector<uint8_t>> PvIndexBuilder::SealFilteredImage(
    std::span<const uncertain::ObjectId> keep,
    const SealOptions& options) const {
  const std::unordered_set<uncertain::ObjectId> keep_set(keep.begin(),
                                                         keep.end());
  return SealImageInternal(options, &keep_set);
}

Result<std::vector<uint8_t>> PvIndexBuilder::SealImageInternal(
    const SealOptions& options,
    const std::unordered_set<uncertain::ObjectId>* keep) const {
  if (options.format_version < storage::kMinSnapshotFormatVersion ||
      options.format_version > storage::kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "cannot seal snapshot format version " +
        std::to_string(options.format_version) + "; this build writes " +
        std::to_string(storage::kMinSnapshotFormatVersion) + ".." +
        std::to_string(storage::kSnapshotFormatVersion));
  }
  if (options.format_version < 2 &&
      options.pack != uncertain::RecordPack::kRaw) {
    return Status::InvalidArgument(
        "packed pdf records require snapshot format version 2 (v1 readers "
        "only understand raw record bodies)");
  }
  const int dim = index_->primary().dim();

  // Flatten the octree: BFS nodes + every leaf's entries in page-chain
  // order (the order that makes snapshot Step-1 answers bit-identical).
  std::vector<OctreePrimary::FlatNode> nodes;
  std::vector<LeafEntry> entries;
  PVDB_RETURN_NOT_OK(index_->primary().ExportFlat(&nodes, &entries));
  if (keep != nullptr) {
    // Filtered seal: drop non-member entries leaf by leaf, preserving the
    // node structure and within-leaf entry order. Emptied leaves stay
    // (they serialize as zero-length SoA runs), so FindLeaf still resolves
    // every in-domain point to the same cell the full index uses.
    std::vector<LeafEntry> filtered;
    filtered.reserve(entries.size());
    for (auto& n : nodes) {
      if (!n.is_leaf) continue;
      const uint64_t begin = filtered.size();
      for (uint32_t k = 0; k < n.entry_count; ++k) {
        const LeafEntry& e =
            entries[static_cast<size_t>(n.entry_begin) + k];
        if (keep->contains(e.id)) filtered.push_back(e);
      }
      n.entry_begin = begin;
      n.entry_count = static_cast<uint32_t>(filtered.size() - begin);
    }
    entries = std::move(filtered);
  }
  uint64_t leaf_count = 0;
  for (const auto& n : nodes) leaf_count += n.is_leaf;

  // The object catalog: every id indexed by the primary (each object's UBR
  // overlaps at least one leaf, so the leaf entries enumerate the whole
  // secondary index), deduplicated and sorted for the directory.
  std::vector<uncertain::ObjectId> ids;
  ids.reserve(entries.size());
  for (const LeafEntry& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  // Meta word 1 (reserved in v1, always written 0 there) carries the v2
  // format flags; bit 0 marks packed record bodies.
  const uint32_t meta_flags =
      options.pack != uncertain::RecordPack::kRaw ? 1u : 0u;
  std::vector<uint8_t> meta;
  Append<uint32_t>(&meta, static_cast<uint32_t>(dim));
  Append<uint32_t>(&meta, meta_flags);
  Append<uint64_t>(&meta, ids.size());
  Append<uint64_t>(&meta, nodes.size());
  Append<uint64_t>(&meta, leaf_count);
  Append<uint64_t>(&meta, entries.size());

  std::vector<uint8_t> domain;
  for (int i = 0; i < dim; ++i) {
    Append<double>(&domain, index_->domain().lo(i));
    Append<double>(&domain, index_->domain().hi(i));
  }

  std::vector<uint8_t> node_bytes;
  node_bytes.reserve(nodes.size() * 32);
  for (const auto& n : nodes) {
    Append<uint64_t>(&node_bytes, n.leaf_id);
    Append<uint64_t>(&node_bytes, n.first_child);
    Append<uint64_t>(&node_bytes, n.entry_begin);
    Append<uint32_t>(&node_bytes, n.entry_count);
    Append<uint32_t>(&node_bytes, n.is_leaf);
  }

  // Leaf payload: v2 stores pre-swizzled SoA planes served zero-copy; v1
  // keeps the interleaved per-entry records older readers decode.
  std::vector<uint8_t> entry_bytes;
  if (options.format_version >= 2) {
    entry_bytes = BuildLeafSoA(nodes, entries, dim);
  } else {
    entry_bytes.reserve(entries.size() * (8 + 2 * sizeof(double) * dim));
    for (const LeafEntry& e : entries) {
      Append<uint64_t>(&entry_bytes, e.id);
      for (int i = 0; i < dim; ++i) {
        Append<double>(&entry_bytes, e.region.lo(i));
        Append<double>(&entry_bytes, e.region.hi(i));
      }
    }
  }

  std::vector<uint8_t> dir_bytes;
  std::vector<uint8_t> record_bytes;
  dir_bytes.reserve(ids.size() * 24);
  for (uncertain::ObjectId id : ids) {
    PVDB_ASSIGN_OR_RETURN(geom::Rect ubr, index_->GetUbr(id));
    PVDB_ASSIGN_OR_RETURN(uncertain::UncertainObject object,
                          index_->GetObject(id));
    const uint64_t offset = record_bytes.size();
    // The UBR stays raw doubles in every mode: GetUbr is a one-field read
    // and the packed body delta-encodes against exactly these bounds.
    for (int i = 0; i < dim; ++i) {
      Append<double>(&record_bytes, ubr.lo(i));
      Append<double>(&record_bytes, ubr.hi(i));
    }
    if (options.pack == uncertain::RecordPack::kRaw) {
      object.AppendTo(&record_bytes);
    } else {
      uncertain::EncodePackedObject(object, ubr, options.pack, &record_bytes);
    }
    Append<uint64_t>(&dir_bytes, id);
    Append<uint64_t>(&dir_bytes, offset);
    Append<uint64_t>(&dir_bytes, record_bytes.size() - offset);
  }

  storage::SnapshotWriter writer;
  writer.AddSection(SnapshotSections::kMeta, std::move(meta));
  writer.AddSection(SnapshotSections::kDomain, std::move(domain));
  writer.AddSection(SnapshotSections::kNodes, std::move(node_bytes));
  if (options.format_version >= 2) {
    // 64-byte section alignment keeps every SoA plane cache-line-aligned
    // in the file (plane strides are 64-byte multiples within the section).
    writer.AddSection(SnapshotSections::kLeafSoA, std::move(entry_bytes),
                      /*alignment=*/64);
  } else {
    writer.AddSection(SnapshotSections::kLeafEntries, std::move(entry_bytes));
  }
  writer.AddSection(SnapshotSections::kObjectDir, std::move(dir_bytes));
  writer.AddSection(SnapshotSections::kObjectRecords,
                    std::move(record_bytes));
  return writer.Finish(options.format_version);
}

Result<std::shared_ptr<const IndexSnapshot>> PvIndexBuilder::Seal(
    const SealOptions& options) const {
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> image, SealImage(options));
  return IndexSnapshot::FromImage(std::move(image));
}

Status PvIndexBuilder::Save(const std::string& path,
                            const SealOptions& options,
                            storage::Env* env) const {
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> image, SealImage(options));
  return storage::SnapshotWriter::WriteFile(
      env != nullptr ? env : storage::Env::Default(), path,
      std::span<const uint8_t>(image.data(), image.size()));
}

Status PvIndexBuilder::SaveFiltered(const std::string& path,
                                    std::span<const uncertain::ObjectId> keep,
                                    const SealOptions& options,
                                    storage::Env* env) const {
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> image,
                        SealFilteredImage(keep, options));
  return storage::SnapshotWriter::WriteFile(
      env != nullptr ? env : storage::Env::Default(), path,
      std::span<const uint8_t>(image.data(), image.size()));
}

}  // namespace pvdb::pv
