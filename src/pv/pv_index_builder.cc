// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/pv_index_builder.h"

#include <algorithm>
#include <cstring>

namespace pvdb::pv {

namespace {

void AppendRaw(std::vector<uint8_t>* out, const void* src, size_t len) {
  const auto* b = static_cast<const uint8_t*>(src);
  out->insert(out->end(), b, b + len);
}

template <typename T>
void Append(std::vector<uint8_t>* out, T v) {
  AppendRaw(out, &v, sizeof(T));
}

}  // namespace

Result<std::unique_ptr<PvIndexBuilder>> PvIndexBuilder::Build(
    const uncertain::Dataset& db, const PvIndexOptions& options,
    BuildStats* stats) {
  auto builder = std::unique_ptr<PvIndexBuilder>(new PvIndexBuilder());
  builder->pager_ = std::make_unique<storage::InMemoryPager>();
  PVDB_ASSIGN_OR_RETURN(
      builder->index_,
      PvIndex::Build(db, builder->pager_.get(), options, stats));
  return builder;
}

Status PvIndexBuilder::Insert(const uncertain::Dataset& db_after,
                              uncertain::ObjectId new_id, UpdateStats* stats) {
  return index_->InsertObject(db_after, new_id, stats);
}

Status PvIndexBuilder::Delete(const uncertain::Dataset& db_after,
                              const uncertain::UncertainObject& removed,
                              UpdateStats* stats) {
  return index_->DeleteObject(db_after, removed, stats);
}

Result<std::vector<uint8_t>> PvIndexBuilder::SealImage() const {
  const int dim = index_->primary().dim();

  // Flatten the octree: BFS nodes + every leaf's entries in page-chain
  // order (the order that makes snapshot Step-1 answers bit-identical).
  std::vector<OctreePrimary::FlatNode> nodes;
  std::vector<LeafEntry> entries;
  PVDB_RETURN_NOT_OK(index_->primary().ExportFlat(&nodes, &entries));
  uint64_t leaf_count = 0;
  for (const auto& n : nodes) leaf_count += n.is_leaf;

  // The object catalog: every id indexed by the primary (each object's UBR
  // overlaps at least one leaf, so the leaf entries enumerate the whole
  // secondary index), deduplicated and sorted for the directory.
  std::vector<uncertain::ObjectId> ids;
  ids.reserve(entries.size());
  for (const LeafEntry& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  std::vector<uint8_t> meta;
  Append<uint32_t>(&meta, static_cast<uint32_t>(dim));
  Append<uint32_t>(&meta, 0);  // reserved
  Append<uint64_t>(&meta, ids.size());
  Append<uint64_t>(&meta, nodes.size());
  Append<uint64_t>(&meta, leaf_count);
  Append<uint64_t>(&meta, entries.size());

  std::vector<uint8_t> domain;
  for (int i = 0; i < dim; ++i) {
    Append<double>(&domain, index_->domain().lo(i));
    Append<double>(&domain, index_->domain().hi(i));
  }

  std::vector<uint8_t> node_bytes;
  node_bytes.reserve(nodes.size() * 32);
  for (const auto& n : nodes) {
    Append<uint64_t>(&node_bytes, n.leaf_id);
    Append<uint64_t>(&node_bytes, n.first_child);
    Append<uint64_t>(&node_bytes, n.entry_begin);
    Append<uint32_t>(&node_bytes, n.entry_count);
    Append<uint32_t>(&node_bytes, n.is_leaf);
  }

  std::vector<uint8_t> entry_bytes;
  entry_bytes.reserve(entries.size() * (8 + 2 * sizeof(double) * dim));
  for (const LeafEntry& e : entries) {
    Append<uint64_t>(&entry_bytes, e.id);
    for (int i = 0; i < dim; ++i) {
      Append<double>(&entry_bytes, e.region.lo(i));
      Append<double>(&entry_bytes, e.region.hi(i));
    }
  }

  std::vector<uint8_t> dir_bytes;
  std::vector<uint8_t> record_bytes;
  dir_bytes.reserve(ids.size() * 24);
  for (uncertain::ObjectId id : ids) {
    PVDB_ASSIGN_OR_RETURN(geom::Rect ubr, index_->GetUbr(id));
    PVDB_ASSIGN_OR_RETURN(uncertain::UncertainObject object,
                          index_->GetObject(id));
    const uint64_t offset = record_bytes.size();
    for (int i = 0; i < dim; ++i) {
      Append<double>(&record_bytes, ubr.lo(i));
      Append<double>(&record_bytes, ubr.hi(i));
    }
    object.AppendTo(&record_bytes);
    Append<uint64_t>(&dir_bytes, id);
    Append<uint64_t>(&dir_bytes, offset);
    Append<uint64_t>(&dir_bytes, record_bytes.size() - offset);
  }

  storage::SnapshotWriter writer;
  writer.AddSection(SnapshotSections::kMeta, std::move(meta));
  writer.AddSection(SnapshotSections::kDomain, std::move(domain));
  writer.AddSection(SnapshotSections::kNodes, std::move(node_bytes));
  writer.AddSection(SnapshotSections::kLeafEntries, std::move(entry_bytes));
  writer.AddSection(SnapshotSections::kObjectDir, std::move(dir_bytes));
  writer.AddSection(SnapshotSections::kObjectRecords,
                    std::move(record_bytes));
  return writer.Finish();
}

Result<std::shared_ptr<const IndexSnapshot>> PvIndexBuilder::Seal() const {
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> image, SealImage());
  return IndexSnapshot::FromImage(std::move(image));
}

Status PvIndexBuilder::Save(const std::string& path) const {
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> image, SealImage());
  return storage::SnapshotWriter::WriteFile(
      path, std::span<const uint8_t>(image.data(), image.size()));
}

}  // namespace pvdb::pv
