// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/index_snapshot.h"

#include <cstring>
#include <limits>

#include "src/uncertain/record_codec.h"

namespace pvdb::pv {

namespace {

// Fixed record sizes of the snapshot sections (all little-endian).
constexpr size_t kMetaBytes = 40;
constexpr size_t kNodeBytes = 32;
constexpr size_t kDirEntryBytes = 24;

constexpr size_t kNpos = std::numeric_limits<size_t>::max();

template <typename T>
T ReadField(std::span<const uint8_t> bytes, size_t off) {
  T v;
  std::memcpy(&v, bytes.data() + off, sizeof(T));
  return v;
}

/// Decoded view of one flat node record.
struct NodeView {
  uint64_t leaf_id;
  uint64_t first_child;
  uint64_t entry_begin;
  uint32_t entry_count;
  uint32_t is_leaf;
};

NodeView ReadNode(std::span<const uint8_t> nodes, uint64_t index) {
  const size_t off = static_cast<size_t>(index) * kNodeBytes;
  NodeView n;
  n.leaf_id = ReadField<uint64_t>(nodes, off);
  n.first_child = ReadField<uint64_t>(nodes, off + 8);
  n.entry_begin = ReadField<uint64_t>(nodes, off + 16);
  n.entry_count = ReadField<uint32_t>(nodes, off + 24);
  n.is_leaf = ReadField<uint32_t>(nodes, off + 28);
  return n;
}

uint64_t ReadDirId(std::span<const uint8_t> dir, size_t slot) {
  return ReadField<uint64_t>(dir, slot * kDirEntryBytes);
}

}  // namespace

IndexSnapshot::~IndexSnapshot() {
  if (objects_ == nullptr) return;
  for (uint64_t i = 0; i < object_count_; ++i) {
    delete objects_[i].load(std::memory_order_relaxed);
  }
}

Result<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::Open(
    const std::string& path, const SnapshotOpenOptions& options) {
  PVDB_ASSIGN_OR_RETURN(std::shared_ptr<const storage::SnapshotReader> reader,
                        storage::SnapshotReader::OpenFile(path));
  return Build(std::move(reader), options);
}

Result<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::FromImage(
    std::vector<uint8_t> image, const SnapshotOpenOptions& options) {
  PVDB_ASSIGN_OR_RETURN(std::shared_ptr<const storage::SnapshotReader> reader,
                        storage::SnapshotReader::FromImage(std::move(image)));
  return Build(std::move(reader), options);
}

Result<std::shared_ptr<const IndexSnapshot>> IndexSnapshot::Build(
    std::shared_ptr<const storage::SnapshotReader> reader,
    const SnapshotOpenOptions& options) {
  auto snap = std::shared_ptr<IndexSnapshot>(new IndexSnapshot());
  snap->reader_ = std::move(reader);
  const storage::SnapshotReader& r = *snap->reader_;

  // Structural sections are always checksum-verified: Open touches them
  // anyway (descent structure, directory) and they are small next to the
  // records payload, which stays lazy unless verify_payload asks.
  const bool soa_leaves = r.version() >= 2;
  PVDB_RETURN_NOT_OK(r.VerifySection(SnapshotSections::kMeta));
  PVDB_RETURN_NOT_OK(r.VerifySection(SnapshotSections::kDomain));
  PVDB_RETURN_NOT_OK(r.VerifySection(SnapshotSections::kNodes));
  PVDB_RETURN_NOT_OK(r.VerifySection(soa_leaves
                                         ? SnapshotSections::kLeafSoA
                                         : SnapshotSections::kLeafEntries));
  PVDB_RETURN_NOT_OK(r.VerifySection(SnapshotSections::kObjectDir));
  if (options.verify_payload) {
    PVDB_RETURN_NOT_OK(r.VerifySection(SnapshotSections::kObjectRecords));
  }

  PVDB_ASSIGN_OR_RETURN(std::span<const uint8_t> meta,
                        r.Section(SnapshotSections::kMeta));
  if (meta.size() != kMetaBytes) {
    return Status::Corruption("snapshot meta section has wrong size");
  }
  const uint32_t dim = ReadField<uint32_t>(meta, 0);
  if (dim < 1 || dim > static_cast<uint32_t>(geom::kMaxDim)) {
    return Status::Corruption("snapshot dimensionality out of range: " +
                              std::to_string(dim));
  }
  snap->dim_ = static_cast<int>(dim);
  snap->meta_flags_ = ReadField<uint32_t>(meta, 4);
  if ((snap->meta_flags_ & ~SnapshotMetaFlags::kKnownMask) != 0) {
    return Status::NotSupported(
        "snapshot meta carries unknown format flags 0x" +
        std::to_string(snap->meta_flags_) +
        "; this build cannot decode them (re-seal or upgrade the reader)");
  }
  if (snap->packed_records() && !soa_leaves) {
    return Status::Corruption(
        "v1 snapshot claims packed records (flag requires format v2)");
  }
  snap->object_count_ = ReadField<uint64_t>(meta, 8);
  snap->node_count_ = ReadField<uint64_t>(meta, 16);
  snap->leaf_count_ = ReadField<uint64_t>(meta, 24);
  snap->entry_count_ = ReadField<uint64_t>(meta, 32);

  PVDB_ASSIGN_OR_RETURN(std::span<const uint8_t> domain,
                        r.Section(SnapshotSections::kDomain));
  if (domain.size() != 2 * sizeof(double) * dim) {
    return Status::Corruption("snapshot domain section has wrong size");
  }
  geom::Point lo(snap->dim_), hi(snap->dim_);
  for (uint32_t i = 0; i < dim; ++i) {
    lo[static_cast<int>(i)] = ReadField<double>(domain, i * 16);
    hi[static_cast<int>(i)] = ReadField<double>(domain, i * 16 + 8);
    if (!(lo[static_cast<int>(i)] <= hi[static_cast<int>(i)])) {
      return Status::Corruption("snapshot domain is not a valid rectangle");
    }
  }
  snap->domain_ = geom::Rect(lo, hi);

  // Counts are validated by division against the section sizes, never by
  // count * stride: a crafted 64-bit count must not be able to wrap the
  // multiplication into a passing check (and then drive out-of-bounds
  // reads or absurd allocations).
  PVDB_ASSIGN_OR_RETURN(snap->nodes_, r.Section(SnapshotSections::kNodes));
  if (snap->node_count_ == 0 || snap->nodes_.size() % kNodeBytes != 0 ||
      snap->node_count_ != snap->nodes_.size() / kNodeBytes) {
    return Status::Corruption("snapshot node section size mismatch");
  }
  if (soa_leaves) {
    PVDB_ASSIGN_OR_RETURN(snap->leaf_soa_,
                          r.Section(SnapshotSections::kLeafSoA));
  } else {
    PVDB_ASSIGN_OR_RETURN(snap->entries_,
                          r.Section(SnapshotSections::kLeafEntries));
    const size_t entry_stride = 8 + 2 * sizeof(double) * dim;
    if (snap->entries_.size() % entry_stride != 0 ||
        snap->entry_count_ != snap->entries_.size() / entry_stride) {
      return Status::Corruption("snapshot leaf-entry section size mismatch");
    }
  }

  // Structural validation of the flat tree: child ranges in bounds and
  // strictly forward (descent terminates), entry slices in bounds, leaf
  // ids unique and nonzero. A snapshot passing this cannot send a query
  // into a cycle or out of the arrays.
  const uint64_t fanout = uint64_t{1} << snap->dim_;
  // Bound the declared leaf count before sizing anything from it: a
  // crafted meta section must fail with Corruption, not bad_alloc.
  if (snap->leaf_count_ > snap->node_count_) {
    return Status::Corruption("snapshot declares more leaves than nodes");
  }
  uint64_t leaves_seen = 0;
  // v2: recompute every leaf's SoA offset by the builder's deterministic
  // walk (flat-node order, 64-byte-aligned planes), bounds-checking the
  // cursor as it goes — a view handed out later never leaves the section.
  uint64_t soa_cursor = 0;
  const size_t plane_count = 2 * static_cast<size_t>(dim) + 1;
  snap->leaf_index_.reserve(snap->leaf_count_);
  for (uint64_t i = 0; i < snap->node_count_; ++i) {
    const NodeView n = ReadNode(snap->nodes_, i);
    if (n.is_leaf != 0) {
      ++leaves_seen;
      if (n.leaf_id == kNoLeafId) {
        return Status::Corruption("snapshot leaf has the reserved id 0");
      }
      if (n.entry_begin > snap->entry_count_ ||
          n.entry_count > snap->entry_count_ - n.entry_begin) {
        return Status::Corruption(
            "snapshot leaf entry slice lies outside the entry array");
      }
      uint64_t soa_offset = 0;
      if (soa_leaves) {
        const uint64_t base = (soa_cursor + 63) & ~uint64_t{63};
        const uint64_t plane_stride =
            (uint64_t{n.entry_count} * sizeof(double) + 63) & ~uint64_t{63};
        const uint64_t leaf_bytes = plane_count * plane_stride;
        if (base > snap->leaf_soa_.size() ||
            leaf_bytes > snap->leaf_soa_.size() - base) {
          return Status::Corruption(
              "snapshot SoA leaf section is too small for its leaves");
        }
        soa_offset = base;
        soa_cursor = base + leaf_bytes;
      }
      if (!snap->leaf_index_.emplace(n.leaf_id, LeafLoc{i, soa_offset})
               .second) {
        return Status::Corruption("duplicate snapshot leaf id " +
                                  std::to_string(n.leaf_id));
      }
    } else {
      if (n.first_child <= i || fanout > snap->node_count_ ||
          n.first_child > snap->node_count_ - fanout) {
        return Status::Corruption(
            "snapshot internal node has out-of-range children");
      }
    }
  }
  if (leaves_seen != snap->leaf_count_) {
    return Status::Corruption("snapshot leaf count mismatch");
  }
  if (soa_leaves && soa_cursor != snap->leaf_soa_.size()) {
    return Status::Corruption("snapshot SoA leaf section size mismatch");
  }

  PVDB_ASSIGN_OR_RETURN(snap->dir_, r.Section(SnapshotSections::kObjectDir));
  if (snap->dir_.size() % kDirEntryBytes != 0 ||
      snap->object_count_ != snap->dir_.size() / kDirEntryBytes) {
    return Status::Corruption("snapshot object directory size mismatch");
  }
  PVDB_ASSIGN_OR_RETURN(snap->records_,
                        r.Section(SnapshotSections::kObjectRecords));
  const size_t ubr_bytes = 2 * sizeof(double) * dim;
  for (uint64_t i = 0; i < snap->object_count_; ++i) {
    const size_t off = static_cast<size_t>(i) * kDirEntryBytes;
    const uint64_t rec_off = ReadField<uint64_t>(snap->dir_, off + 8);
    const uint64_t rec_bytes = ReadField<uint64_t>(snap->dir_, off + 16);
    if (rec_bytes < ubr_bytes || rec_off > snap->records_.size() ||
        rec_bytes > snap->records_.size() - rec_off) {
      return Status::Corruption(
          "snapshot object record lies outside the records section");
    }
    if (i > 0 && ReadDirId(snap->dir_, i - 1) >= ReadDirId(snap->dir_, i)) {
      return Status::Corruption(
          "snapshot object directory is not sorted by id");
    }
  }

  if (snap->object_count_ > 0) {
    snap->objects_ =
        std::make_unique<std::atomic<const uncertain::UncertainObject*>[]>(
            snap->object_count_);
    for (uint64_t i = 0; i < snap->object_count_; ++i) {
      snap->objects_[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  return std::shared_ptr<const IndexSnapshot>(std::move(snap));
}

// ---------------------------------------------------------------------------
// Step 1 off the mapping
// ---------------------------------------------------------------------------

Result<OctreePrimary::LeafRef> IndexSnapshot::FindLeaf(
    const geom::Point& q) const {
  if (!domain_.Contains(q)) {
    return Status::InvalidArgument("query point outside the domain");
  }
  // Same descent arithmetic as OctreePrimary::FindLeaf, over the flat
  // image: midpoint split per dimension, child code from the >= tests.
  geom::Rect region = domain_;
  uint64_t index = 0;
  NodeView node = ReadNode(nodes_, index);
  while (node.is_leaf == 0) {
    unsigned child = 0;
    geom::Point lo(dim_), hi(dim_);
    for (int i = 0; i < dim_; ++i) {
      const double mid = 0.5 * (region.lo(i) + region.hi(i));
      if (q[i] >= mid) {
        child |= 1u << i;
        lo[i] = mid;
        hi[i] = region.hi(i);
      } else {
        lo[i] = region.lo(i);
        hi[i] = mid;
      }
    }
    region = geom::Rect(lo, hi);
    index = node.first_child + child;
    node = ReadNode(nodes_, index);
  }
  return OctreePrimary::LeafRef{node.leaf_id, nullptr, region};
}

Result<LeafBlock> IndexSnapshot::ReadLeafBlock(uint64_t leaf_id) const {
  const auto it = leaf_index_.find(leaf_id);
  if (it == leaf_index_.end()) {
    return Status::NotFound("snapshot has no leaf with id " +
                            std::to_string(leaf_id));
  }
  const NodeView node = ReadNode(nodes_, it->second.node_index);
  LeafBlock block;
  block.Reset(dim_);
  block.Reserve(node.entry_count);
  if (has_leaf_soa()) {
    // Decode fallback: reconstitute the owned block from the SoA planes.
    // Entry order is plane order, which the builder wrote in the v1
    // entry order — identical blocks either way.
    PVDB_ASSIGN_OR_RETURN(LeafBlockView view, ReadLeafBlockView(leaf_id));
    double lo[geom::kMaxDim];
    double hi[geom::kMaxDim];
    for (size_t k = 0; k < view.count; ++k) {
      block.ids.push_back(view.ids[k]);
      for (int d = 0; d < dim_; ++d) {
        lo[d] = view.lo[d][k];
        hi[d] = view.hi[d][k];
      }
      block.rects.PushBackBounds(lo, hi);
    }
    return block;
  }
  const size_t entry_stride = 8 + 2 * sizeof(double) * dim_;
  size_t off = static_cast<size_t>(node.entry_begin) * entry_stride;
  double lo[geom::kMaxDim];
  double hi[geom::kMaxDim];
  for (uint32_t k = 0; k < node.entry_count; ++k) {
    block.ids.push_back(ReadField<uint64_t>(entries_, off));
    off += sizeof(uint64_t);
    for (int i = 0; i < dim_; ++i) {
      lo[i] = ReadField<double>(entries_, off);
      off += sizeof(double);
      hi[i] = ReadField<double>(entries_, off);
      off += sizeof(double);
    }
    block.rects.PushBackBounds(lo, hi);
  }
  return block;
}

Result<LeafBlockView> IndexSnapshot::ReadLeafBlockView(uint64_t leaf_id) const {
  if (!has_leaf_soa()) {
    return Status::NotSupported(
        "snapshot format v1 has no SoA leaf section; use ReadLeafBlock "
        "(re-seal with the current builder for zero-copy serving)");
  }
  const auto it = leaf_index_.find(leaf_id);
  if (it == leaf_index_.end()) {
    return Status::NotFound("snapshot has no leaf with id " +
                            std::to_string(leaf_id));
  }
  const NodeView node = ReadNode(nodes_, it->second.node_index);
  const size_t n = node.entry_count;
  const size_t plane_stride = (n * sizeof(double) + 63) & ~size_t{63};
  const uint8_t* base = leaf_soa_.data() + it->second.soa_offset;
  LeafBlockView view;
  view.count = n;
  view.dim = dim_;
  for (int d = 0; d < dim_; ++d) {
    view.lo[d] = reinterpret_cast<const double*>(
        base + (2 * static_cast<size_t>(d)) * plane_stride);
    view.hi[d] = reinterpret_cast<const double*>(
        base + (2 * static_cast<size_t>(d) + 1) * plane_stride);
  }
  view.ids = reinterpret_cast<const uncertain::ObjectId*>(
      base + 2 * static_cast<size_t>(dim_) * plane_stride);
  return view;
}

Result<std::vector<uncertain::ObjectId>> IndexSnapshot::QueryPossibleNN(
    const geom::Point& q, QueryScratch* scratch) const {
  PVDB_ASSIGN_OR_RETURN(OctreePrimary::LeafRef ref, FindLeaf(q));
  if (has_leaf_soa()) {
    // Zero-copy Step 1: prune straight off the mmap'd SoA planes.
    PVDB_ASSIGN_OR_RETURN(LeafBlockView view, ReadLeafBlockView(ref.id));
    return Step1PruneMinMax(view, q, scratch);
  }
  PVDB_ASSIGN_OR_RETURN(LeafBlock block, ReadLeafBlock(ref.id));
  return Step1PruneMinMax(block, q, scratch);
}

Result<std::vector<uncertain::ObjectId>> IndexSnapshot::RangeCandidates(
    const geom::Rect& range) const {
  std::vector<uncertain::ObjectId> out;
  if (!domain_.Intersects(range)) return out;
  // Explicit-stack walk of the flat node image, carrying each node's cell.
  // Child cells use the same midpoint arithmetic as FindLeaf, so pruning is
  // exact against the cells the builder partitioned by.
  struct Frame {
    uint64_t index;
    geom::Rect cell;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, domain_});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const NodeView node = ReadNode(nodes_, f.index);
    if (node.is_leaf != 0) {
      if (node.entry_count == 0) continue;
      // Filter the leaf's entries by their stored uncertainty-region bound
      // planes (closed-interval overlap per dimension).
      LeafBlock owned;
      LeafBlockView view;
      if (has_leaf_soa()) {
        PVDB_ASSIGN_OR_RETURN(view, ReadLeafBlockView(node.leaf_id));
      } else {
        PVDB_ASSIGN_OR_RETURN(owned, ReadLeafBlock(node.leaf_id));
        view = owned.View();
      }
      for (size_t i = 0; i < view.count; ++i) {
        bool overlaps = true;
        for (int d = 0; d < dim_ && overlaps; ++d) {
          overlaps = view.lo[d][i] <= range.hi(d) && view.hi[d][i] >= range.lo(d);
        }
        if (overlaps) out.push_back(view.ids[i]);
      }
      continue;
    }
    for (unsigned child = 0; child < (1u << dim_); ++child) {
      geom::Point lo(dim_), hi(dim_);
      bool hit = true;
      for (int i = 0; i < dim_ && hit; ++i) {
        const double mid = 0.5 * (f.cell.lo(i) + f.cell.hi(i));
        if ((child >> i) & 1u) {
          lo[i] = mid;
          hi[i] = f.cell.hi(i);
        } else {
          lo[i] = f.cell.lo(i);
          hi[i] = mid;
        }
        hit = lo[i] <= range.hi(i) && hi[i] >= range.lo(i);
      }
      if (!hit) continue;
      stack.push_back(Frame{node.first_child + child, geom::Rect(lo, hi)});
    }
  }
  // Canonical form: ascending ids, one entry per object (UBRs straddling
  // leaf boundaries appear in several leaves).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Step 2 record resolution
// ---------------------------------------------------------------------------

size_t IndexSnapshot::FindDirSlot(uncertain::ObjectId id) const {
  size_t lo = 0;
  size_t hi = static_cast<size_t>(object_count_);
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const uint64_t mid_id = ReadDirId(dir_, mid);
    if (mid_id == id) return mid;
    if (mid_id < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return kNpos;
}

std::span<const uint8_t> IndexSnapshot::RecordAt(size_t slot) const {
  const size_t off = slot * kDirEntryBytes;
  const uint64_t rec_off = ReadField<uint64_t>(dir_, off + 8);
  const uint64_t rec_bytes = ReadField<uint64_t>(dir_, off + 16);
  return records_.subspan(static_cast<size_t>(rec_off),
                          static_cast<size_t>(rec_bytes));
}

Result<uncertain::UncertainObject> IndexSnapshot::ParseRecord(
    size_t slot) const {
  const std::span<const uint8_t> record = RecordAt(slot);
  // Record layout: UBR doubles first (GetUbr's one-field read), then the
  // serialized object — raw (AppendTo) or packed per the meta flag.
  size_t offset = 2 * sizeof(double) * static_cast<size_t>(dim_);
  Result<uncertain::UncertainObject> parsed = [&] {
    if (!packed_records()) {
      return uncertain::UncertainObject::ParseFrom(record, &offset);
    }
    // The packed body delta-encodes against the UBR, so read and validate
    // it before handing it to the codec (Rect construction requires
    // lo <= hi; the bytes are unverified by default).
    geom::Point lo(dim_), hi(dim_);
    for (int i = 0; i < dim_; ++i) {
      lo[i] = ReadField<double>(record, static_cast<size_t>(i) * 16);
      hi[i] = ReadField<double>(record, static_cast<size_t>(i) * 16 + 8);
      if (!(lo[i] <= hi[i])) {
        return Result<uncertain::UncertainObject>(
            Status::Corruption("snapshot UBR is not a valid rectangle"));
      }
    }
    return uncertain::DecodePackedObject(record, &offset,
                                         geom::Rect(lo, hi));
  }();
  PVDB_RETURN_NOT_OK(parsed.status());
  uncertain::UncertainObject object = std::move(parsed).value();
  if (object.id() != ReadDirId(dir_, slot) || object.dim() != dim_) {
    return Status::Corruption("snapshot object record does not match its "
                              "directory entry");
  }
  return object;
}

const uncertain::UncertainObject* IndexSnapshot::FindObject(
    uncertain::ObjectId id) const {
  const size_t slot = FindDirSlot(id);
  if (slot == kNpos) return nullptr;
  const uncertain::UncertainObject* cached =
      objects_[slot].load(std::memory_order_acquire);
  if (cached != nullptr) return cached;
  Result<uncertain::UncertainObject> parsed = ParseRecord(slot);
  if (!parsed.ok()) return nullptr;
  auto* fresh = new uncertain::UncertainObject(std::move(parsed).value());
  const uncertain::UncertainObject* expected = nullptr;
  if (objects_[slot].compare_exchange_strong(expected, fresh,
                                             std::memory_order_release,
                                             std::memory_order_acquire)) {
    return fresh;
  }
  // Another thread published first; its copy is identical.
  delete fresh;
  return expected;
}

Result<uncertain::UncertainObject> IndexSnapshot::GetObject(
    uncertain::ObjectId id) const {
  const size_t slot = FindDirSlot(id);
  if (slot == kNpos) {
    return Status::NotFound("snapshot has no object with id " +
                            std::to_string(id));
  }
  return ParseRecord(slot);
}

Result<geom::Rect> IndexSnapshot::GetUbr(uncertain::ObjectId id) const {
  const size_t slot = FindDirSlot(id);
  if (slot == kNpos) {
    return Status::NotFound("snapshot has no object with id " +
                            std::to_string(id));
  }
  const std::span<const uint8_t> record = RecordAt(slot);
  geom::Point lo(dim_), hi(dim_);
  for (int i = 0; i < dim_; ++i) {
    lo[i] = ReadField<double>(record, static_cast<size_t>(i) * 16);
    hi[i] = ReadField<double>(record, static_cast<size_t>(i) * 16 + 8);
    if (!(lo[i] <= hi[i])) {
      return Status::Corruption("snapshot UBR is not a valid rectangle");
    }
  }
  return geom::Rect(lo, hi);
}

std::vector<uncertain::ObjectId> IndexSnapshot::ObjectIds() const {
  std::vector<uncertain::ObjectId> ids;
  ids.reserve(object_count_);
  for (uint64_t i = 0; i < object_count_; ++i) {
    ids.push_back(ReadDirId(dir_, i));
  }
  return ids;
}

Status IndexSnapshot::VerifyPayload() const {
  return reader_->VerifySection(SnapshotSections::kObjectRecords);
}

}  // namespace pvdb::pv
