// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The PV-index's primary index (Section VI-A): a 2^d-way space-partitioning
// octree (quadtree when d = 2). Non-leaf nodes live in a byte-budgeted
// main-memory arena and store no regions (each child's region is 1/2^d of
// its parent's, derived during descent). A leaf is a linked list of disk
// pages holding (object id, u(o)) entries for every object whose UBR
// overlaps the leaf's region. When a leaf's head page is full, the leaf is
// split into 2^d children if memory allows, otherwise a page is chained —
// exactly the construction procedure of Section VI-A.
//
// Octrees were chosen over an R-tree for the primary index because node
// regions never overlap, so a point query touches exactly one leaf
// (footnote 3 of the paper); this is what drives the Figure 9(c)/(g) I/O
// advantage.

#ifndef PVDB_PV_OCTREE_H_
#define PVDB_PV_OCTREE_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/geom/distance_batch.h"
#include "src/geom/rect.h"
#include "src/storage/pager.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::pv {

/// Octree tuning (defaults match the paper's experimental setup).
struct OctreeOptions {
  /// Main-memory budget for non-leaf (and leaf) node headers: 5 MiB.
  size_t memory_budget_bytes = 5u * 1024u * 1024u;
  /// Depth guard: beyond this, pages are chained instead of splitting.
  int max_depth = 24;
};

/// One (object id, uncertainty region) entry stored in a leaf.
struct LeafEntry {
  uncertain::ObjectId id;
  geom::Rect region;
};

/// Leaf ids are assigned from 1 and never reused, so 0 never names a leaf.
/// Layers that key query state off leaf ids — the service leaf-result cache
/// and the batched-Step-2 query grouping (Step2Batch) — use this sentinel
/// for "no leaf" (backends without a point-addressable leaf structure).
inline constexpr uint64_t kNoLeafId = 0;

/// Structure-of-arrays mirror of a leaf's entry list: ids plus per-dimension
/// contiguous lo/hi spans, the input format of the batched distance kernels
/// (geom::MinDistSqBatch / MaxDistSqBatch — runtime-dispatched to the
/// widest SIMD level the CPU offers; see geom/simd_dispatch.h). Position i
/// is the same entry in
/// both views — block order is the page-chain order, identical to the
/// std::vector<LeafEntry> the row-wise readers return. This is the serving
/// path's leaf currency: leaf reads decode pages straight into a LeafBlock,
/// the service layer caches LeafBlock snapshots, and Step-1 pruning runs the
/// two-pass block kernel over it.
struct LeafBlockView;

struct LeafBlock {
  std::vector<uncertain::ObjectId> ids;
  geom::RectSoA rects;

  size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }

  /// Heap bytes held by this block (cache budget accounting).
  size_t ApproxBytes() const {
    return ids.capacity() * sizeof(uncertain::ObjectId) + rects.ApproxBytes();
  }

  /// Non-owning view over this block's arrays; valid while the block is.
  LeafBlockView View() const;

  /// Drops all entries and fixes the dimensionality.
  void Reset(int dim) {
    ids.clear();
    rects.Reset(dim);
  }

  void Reserve(size_t n) {
    ids.reserve(n);
    rects.Reserve(n);
  }

  void PushBack(uncertain::ObjectId id, const geom::Rect& region) {
    ids.push_back(id);
    rects.PushBack(region);
  }

  /// Row-wise view of entry i (tests and slow paths).
  LeafEntry At(size_t i) const { return LeafEntry{ids[i], rects.At(i)}; }

  /// Converts a row-wise entry list, preserving order.
  static LeafBlock FromEntries(std::span<const LeafEntry> entries, int dim) {
    LeafBlock block;
    block.Reset(dim);
    block.Reserve(entries.size());
    for (const LeafEntry& e : entries) block.PushBack(e.id, e.region);
    return block;
  }
};

/// Non-owning SoA view of a leaf's entries: the same positional layout as
/// LeafBlock (index i across ids and every per-dimension bound plane is one
/// entry), but as raw pointers instead of owned vectors. This is the
/// zero-copy serving currency: a v2 snapshot stores leaf sections
/// pre-swizzled in exactly this shape, so IndexSnapshot::ReadLeafBlockView
/// points straight into the mmap'd pages and Step-1 pruning runs the
/// batched kernels over the file's own bytes — no decode, no heap block,
/// no duplicate cache copy. Views borrow their storage: from a snapshot
/// they live as long as the snapshot mapping; from LeafBlock::View() as
/// long as the block.
struct LeafBlockView {
  const uncertain::ObjectId* ids = nullptr;
  const double* lo[geom::kMaxDim] = {};
  const double* hi[geom::kMaxDim] = {};
  size_t count = 0;
  int dim = 0;

  size_t size() const { return count; }
  bool empty() const { return count == 0; }

  /// Reconstitutes entry i (tests and slow paths).
  LeafEntry At(size_t i) const {
    PVDB_DCHECK(i < count);
    geom::Point plo(dim), phi(dim);
    for (int d = 0; d < dim; ++d) {
      plo[d] = lo[d][i];
      phi[d] = hi[d][i];
    }
    return LeafEntry{ids[i], geom::Rect(plo, phi)};
  }
};

inline LeafBlockView LeafBlock::View() const {
  LeafBlockView v;
  v.ids = ids.data();
  v.count = ids.size();
  v.dim = rects.dim();
  for (int d = 0; d < v.dim; ++d) {
    v.lo[d] = rects.lo(d).data();
    v.hi[d] = rects.hi(d).data();
  }
  return v;
}

/// The primary index. Pages are owned by the supplied pager; node headers
/// are owned in memory by this object.
class OctreePrimary {
 public:
  struct Node;

  /// Fetches the current UBR of an object; needed when a leaf splits and its
  /// entries must be redistributed by UBR overlap (the UBRs themselves live
  /// in the secondary index). Typically bound to SecondaryIndex::GetUbr.
  using UbrResolver = std::function<Result<geom::Rect>(uncertain::ObjectId)>;

  OctreePrimary(geom::Rect domain, storage::Pager* pager, UbrResolver resolver,
                OctreeOptions options);
  ~OctreePrimary();

  OctreePrimary(const OctreePrimary&) = delete;
  OctreePrimary& operator=(const OctreePrimary&) = delete;
  OctreePrimary(OctreePrimary&&) noexcept;
  OctreePrimary& operator=(OctreePrimary&&) noexcept;

  /// Inserts the entry (id, uregion) into every leaf whose region overlaps
  /// `ubr` (the object's Uncertain Bounding Rectangle).
  Status Insert(uncertain::ObjectId id, const geom::Rect& uregion,
                const geom::Rect& ubr);

  /// One object prepared for bulk loading.
  struct BulkEntry {
    uncertain::ObjectId id;
    geom::Rect uregion;
    geom::Rect ubr;
  };

  /// Top-down bulk construction (the "bulkloading" precomputation the
  /// paper's conclusion proposes): recursively partitions the domain until
  /// each leaf's entry set fits its page budget, then writes every leaf
  /// chain exactly once — no per-insert head-page rewrites and no
  /// split-time redistribution. Requires an empty tree; produces the same
  /// query answers as incremental construction.
  Status BulkLoad(const std::vector<BulkEntry>& entries);

  /// Inserts into leaves overlapping `include` but NOT overlapping
  /// `exclude` — the N' − N step of the incremental update (Section VI-B).
  /// Leaf regions are disjoint, so region tests are exact set difference.
  Status InsertDiff(uncertain::ObjectId id, const geom::Rect& uregion,
                    const geom::Rect& include, const geom::Rect& exclude);

  /// Inserts into leaves overlapping `range` for which `filter(leaf_region)`
  /// also holds — lets callers index non-rectangular conservative regions
  /// (the UV baseline's cell covers) through the same carrier.
  using LeafFilter = std::function<bool(const geom::Rect& leaf_region)>;
  Status InsertFiltered(uncertain::ObjectId id, const geom::Rect& uregion,
                        const geom::Rect& range, const LeafFilter& filter);

  /// Removes all entries of `id` from leaves overlapping `include`.
  Status Remove(uncertain::ObjectId id, const geom::Rect& include);

  /// Removes entries of `id` from leaves overlapping `include` but not
  /// `exclude` (the N − N' step of insertion updates).
  Status RemoveDiff(uncertain::ObjectId id, const geom::Rect& include,
                    const geom::Rect& exclude);

  /// PNNQ Step-1 carrier: all entries of the unique leaf containing `q`.
  /// Every page of the leaf's list is read (and counted by the pager).
  Result<std::vector<LeafEntry>> QueryPoint(const geom::Point& q) const;

  /// Same leaf, same page reads, same entry order — decoded straight into
  /// the SoA block the batched Step-1 kernels consume.
  Result<LeafBlock> QueryPointBlock(const geom::Point& q) const;

  /// Handle to the unique leaf containing a query point: a stable id (never
  /// reused, retired when the leaf splits) plus the node for page reads.
  /// Invalidated by any mutation of the tree — the serving path holds a
  /// reader lock across FindLeaf + ReadLeaf, and its leaf cache is flushed
  /// on every index update.
  struct LeafRef {
    uint64_t id = 0;
    const Node* node = nullptr;
    /// The leaf's cell (the domain octant the descent ended in). A point
    /// STRICTLY inside the cell descends to this same leaf — the descent
    /// partitions each axis half-open at the midpoint, so only boundary
    /// points are ambiguous. The trajectory path uses this to skip the
    /// descent for consecutive samples sharing a cell.
    geom::Rect cell{1};
  };

  /// Locates the leaf containing `q` by in-memory descent, reading no pages.
  /// The returned id keys the service layer's leaf-result cache.
  Result<LeafRef> FindLeaf(const geom::Point& q) const;

  /// Reads all entries of a leaf previously located with FindLeaf (counted
  /// by the pager, same as QueryPoint).
  Result<std::vector<LeafEntry>> ReadLeaf(const LeafRef& ref) const;

  /// Block variant of ReadLeaf: identical page reads and entry order.
  Result<LeafBlock> ReadLeafBlock(const LeafRef& ref) const;

  /// Entries of every leaf overlapping `range`; may contain duplicates when
  /// an object's UBR spans several leaves (callers dedupe by id).
  Result<std::vector<LeafEntry>> CollectOverlapping(const geom::Rect& range) const;

  /// One node of the flattened tree image (snapshot serialization). The
  /// flat form is BFS order: children of an internal node are 2^d
  /// contiguous slots (child code c at first_child + c) strictly after the
  /// node itself, so a point descent walks monotonically increasing
  /// indices. Leaves carry a slice [entry_begin, entry_begin + entry_count)
  /// of the flat entry array, in page-chain order — the exact order
  /// ReadLeafBlock decodes, so Step-1 answers off the flat image are
  /// bit-identical to answers off the page chains.
  struct FlatNode {
    uint64_t leaf_id = 0;      // 0 for internal nodes
    uint64_t first_child = 0;  // internal nodes only
    uint64_t entry_begin = 0;  // leaves only
    uint32_t entry_count = 0;  // leaves only
    uint32_t is_leaf = 0;
  };

  /// Flattens the tree: every node in BFS order plus all leaf entries
  /// concatenated. Reads every leaf page once (counted by the pager).
  Status ExportFlat(std::vector<FlatNode>* nodes,
                    std::vector<LeafEntry>* entries) const;

  const geom::Rect& domain() const { return domain_; }
  int dim() const { return domain_.dim(); }

  /// In-memory bytes consumed by node headers (the 5 MiB budget consumer).
  size_t memory_used() const { return memory_used_; }
  /// Total node count (leaves + internal).
  size_t node_count() const { return node_count_; }
  /// Number of leaf nodes.
  size_t leaf_count() const { return leaf_count_; }
  /// Deepest node level created (root = 0).
  int depth() const { return depth_; }

  /// Entries per 4 KiB leaf page for this dimensionality.
  size_t PageCapacity() const;

 private:
  geom::Rect ChildRegion(const geom::Rect& region, unsigned child) const;
  Status InsertRec(Node* node, const geom::Rect& region, int node_depth,
                   uncertain::ObjectId id, const geom::Rect& uregion,
                   const geom::Rect& ubr, const geom::Rect& include,
                   const geom::Rect* exclude);
  Status InsertFilteredRec(Node* node, const geom::Rect& region,
                           int node_depth, uncertain::ObjectId id,
                           const geom::Rect& uregion, const geom::Rect& range,
                           const LeafFilter& filter);
  Status InsertIntoLeaf(Node* leaf, const geom::Rect& region, int node_depth,
                        uncertain::ObjectId id, const geom::Rect& uregion,
                        const geom::Rect& ubr);
  Status SplitLeaf(Node* leaf, const geom::Rect& region, int node_depth);
  Status RemoveRec(Node* node, const geom::Rect& region,
                   uncertain::ObjectId id, const geom::Rect& include,
                   const geom::Rect* exclude);
  /// Walks every entry of a leaf's page chain in storage order, invoking
  /// visit(id, lo, hi) with the decoded per-dimension bounds — the single
  /// copy of the on-page entry layout, shared by the row-wise and block
  /// readers below.
  template <typename Visitor>
  Status VisitLeafEntries(const Node* leaf, Visitor&& visit) const;
  Result<std::vector<LeafEntry>> ReadLeafEntries(const Node* leaf) const;
  Result<LeafBlock> ReadLeafEntriesBlock(const Node* leaf) const;
  Status WriteLeafEntries(Node* leaf, const std::vector<LeafEntry>& entries);
  Status CollectRec(const Node* node, const geom::Rect& region,
                    const geom::Rect& range,
                    std::vector<LeafEntry>* out) const;
  Status BulkBuildRec(Node* node, const geom::Rect& region, int node_depth,
                      const std::vector<BulkEntry>& entries,
                      const std::vector<size_t>& items);

  size_t EntryBytes() const;
  size_t NodeBytes(bool internal) const;
  bool CanAffordSplit() const;

  geom::Rect domain_;
  storage::Pager* pager_;
  UbrResolver resolver_;
  OctreeOptions options_;
  std::unique_ptr<Node> root_;
  uint64_t next_leaf_id_ = 1;
  size_t memory_used_ = 0;
  size_t node_count_ = 0;
  size_t leaf_count_ = 0;
  int depth_ = 0;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_OCTREE_H_
