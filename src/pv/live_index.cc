// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/live_index.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

namespace pvdb::pv {

namespace {

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(v));
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::string FormatManifest(uint64_t gen, uint64_t delta, uint64_t seq,
                           uint64_t wal_seg) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "gen %" PRIu64 " delta %" PRIu64 " seq %" PRIu64
                " wal %" PRIu64 "\n",
                gen, delta, seq, wal_seg);
  return buf;
}

bool ParseManifest(const std::string& text, uint64_t* gen, uint64_t* delta,
                   uint64_t* seq, uint64_t* wal_seg) {
  return std::sscanf(text.c_str(),
                     "gen %" SCNu64 " delta %" SCNu64 " seq %" SCNu64
                     " wal %" SCNu64,
                     gen, delta, seq, wal_seg) == 4;
}

}  // namespace

LiveIndex::LiveIndex(storage::Env* env, std::string dir,
                     LiveIndexOptions options)
    : env_(env), dir_(std::move(dir)), options_(std::move(options)) {}

std::string LiveIndex::BasePath(uint64_t gen) const {
  return dir_ + "/base-" + std::to_string(gen) + ".snap";
}

std::string LiveIndex::DeltaPath(uint64_t gen, uint64_t delta) const {
  return dir_ + "/delta-" + std::to_string(gen) + "-" +
         std::to_string(delta) + ".snap";
}

std::string LiveIndex::WalPath(uint64_t wal_seg) const {
  return dir_ + "/wal-" + std::to_string(wal_seg) + ".log";
}

std::string LiveIndex::CurrentPath() const { return dir_ + "/CURRENT"; }

Status LiveIndex::WriteManifest(uint64_t gen, uint64_t delta, uint64_t seq,
                                uint64_t wal_seg) {
  const std::string text = FormatManifest(gen, delta, seq, wal_seg);
  return storage::WriteFileAtomic(
      env_, CurrentPath(),
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

int LiveIndex::ProbeManifest(uint64_t gen, uint64_t delta, uint64_t seq,
                             uint64_t wal_seg) {
  std::vector<uint8_t> bytes;
  if (!env_->ReadFile(CurrentPath(), &bytes).ok()) return -1;
  uint64_t g, d, s, w;
  if (!ParseManifest(std::string(bytes.begin(), bytes.end()), &g, &d, &s, &w)) {
    return -1;
  }
  return (g == gen && d == delta && s == seq && w == wal_seg) ? 1 : 0;
}

Result<std::unique_ptr<LiveIndex>> LiveIndex::Open(
    storage::Env* env, std::string dir, const uncertain::Dataset& bootstrap,
    LiveIndexOptions options, LiveRecoveryStats* recovery) {
  LiveRecoveryStats local;
  if (recovery == nullptr) recovery = &local;
  *recovery = LiveRecoveryStats{};

  PVDB_RETURN_NOT_OK(env->CreateDirIfMissing(dir));
  auto li = std::unique_ptr<LiveIndex>(
      new LiveIndex(env, std::move(dir), std::move(options)));
  if (env->FileExists(li->CurrentPath())) {
    PVDB_RETURN_NOT_OK(li->Recover(recovery));
  } else {
    PVDB_RETURN_NOT_OK(li->Bootstrap(bootstrap));
  }
  {
    std::lock_guard<std::mutex> lock(li->mu_);
    li->GarbageCollectLocked();
  }
  if (li->options_.publish) li->options_.publish(li->current_snapshot_);
  if (li->options_.background_compaction) {
    li->compactor_ = std::thread(&LiveIndex::CompactorLoop, li.get());
  }
  return li;
}

Status LiveIndex::Bootstrap(const uncertain::Dataset& bootstrap) {
  db_ = std::make_unique<uncertain::Dataset>(bootstrap);
  PVDB_ASSIGN_OR_RETURN(builder_, PvIndexBuilder::Build(*db_, options_.index));
  gen_ = 1;
  delta_ = 0;
  seq_ = 0;
  checkpoint_seq_ = 0;
  base_seq_ = 0;
  wal_seg_ = 1;
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> image,
                        builder_->SealImage(options_.seal));
  PVDB_RETURN_NOT_OK(storage::WriteFileAtomic(
      env_, BasePath(gen_),
      std::span<const uint8_t>(image.data(), image.size())));
  PVDB_ASSIGN_OR_RETURN(wal_,
                        storage::WalWriter::Open(env_, WalPath(wal_seg_),
                                                 options_.wal));
  PVDB_RETURN_NOT_OK(env_->SyncDir(dir_));
  // CURRENT last: until it exists, the directory reads as "not bootstrapped"
  // and the next Open simply bootstraps again over the stray files.
  PVDB_RETURN_NOT_OK(WriteManifest(gen_, delta_, seq_, wal_seg_));
  PVDB_ASSIGN_OR_RETURN(current_snapshot_, IndexSnapshot::Open(BasePath(gen_)));
  return Status::OK();
}

Status LiveIndex::Recover(LiveRecoveryStats* stats) {
  std::vector<uint8_t> bytes;
  PVDB_RETURN_NOT_OK(env_->ReadFile(CurrentPath(), &bytes));
  const std::string text(bytes.begin(), bytes.end());
  if (!ParseManifest(text, &gen_, &delta_, &checkpoint_seq_, &wal_seg_)) {
    return Status::Corruption("CURRENT manifest unparseable: \"" + text +
                              "\"");
  }
  seq_ = checkpoint_seq_;
  base_seq_ = checkpoint_seq_;

  // Base: mmap the sealed snapshot and rebuild the mutable dataset from its
  // object records (ids ascending; full payload verification is implied by
  // GetObject's bounds-checked parse plus the structural checksums at open).
  PVDB_ASSIGN_OR_RETURN(std::shared_ptr<const IndexSnapshot> base,
                        IndexSnapshot::Open(BasePath(gen_)));
  db_ = std::make_unique<uncertain::Dataset>(base->domain());
  for (uncertain::ObjectId id : base->ObjectIds()) {
    PVDB_ASSIGN_OR_RETURN(uncertain::UncertainObject object,
                          base->GetObject(id));
    PVDB_RETURN_NOT_OK(db_->Add(std::move(object)));
  }
  stats->base_objects = db_->size();

  // Delta: cumulative changes since the base — deletes first, then upserts
  // (an upsert may replace a base object that was deleted and re-inserted).
  if (delta_ > 0) {
    PVDB_ASSIGN_OR_RETURN(
        std::shared_ptr<const storage::SnapshotReader> reader,
        storage::SnapshotReader::OpenFile(DeltaPath(gen_, delta_)));
    PVDB_RETURN_NOT_OK(reader->VerifyAllSections());
    PVDB_ASSIGN_OR_RETURN(std::span<const uint8_t> meta,
                          reader->Section(DeltaSections::kMeta));
    if (meta.size() != 48) {
      return Status::Corruption("delta meta section malformed");
    }
    const uint32_t dim = ReadU32(meta.data());
    const uint64_t base_gen = ReadU64(meta.data() + 8);
    const uint64_t file_delta = ReadU64(meta.data() + 16);
    const uint64_t applied_seq = ReadU64(meta.data() + 24);
    const uint64_t n_deletes = ReadU64(meta.data() + 32);
    const uint64_t n_upserts = ReadU64(meta.data() + 40);
    if (dim != static_cast<uint32_t>(db_->dim()) || base_gen != gen_ ||
        file_delta != delta_ || applied_seq != checkpoint_seq_) {
      return Status::Corruption(
          "delta file disagrees with the CURRENT manifest (base gen " +
          std::to_string(base_gen) + " delta " + std::to_string(file_delta) +
          " seq " + std::to_string(applied_seq) + ")");
    }
    PVDB_ASSIGN_OR_RETURN(std::span<const uint8_t> del_bytes,
                          reader->Section(DeltaSections::kDeletes));
    if (del_bytes.size() != n_deletes * sizeof(uint64_t)) {
      return Status::Corruption("delta deletes section malformed");
    }
    for (uint64_t i = 0; i < n_deletes; ++i) {
      const uncertain::ObjectId id = ReadU64(del_bytes.data() + i * 8);
      if (db_->Find(id) != nullptr) PVDB_RETURN_NOT_OK(db_->Remove(id));
      delta_deletes_.insert(id);
    }
    PVDB_ASSIGN_OR_RETURN(std::span<const uint8_t> up_bytes,
                          reader->Section(DeltaSections::kUpserts));
    size_t off = 0;
    for (uint64_t i = 0; i < n_upserts; ++i) {
      PVDB_ASSIGN_OR_RETURN(uncertain::UncertainObject object,
                            uncertain::UncertainObject::ParseFrom(up_bytes,
                                                                  &off));
      const uncertain::ObjectId id = object.id();
      if (db_->Find(id) != nullptr) PVDB_RETURN_NOT_OK(db_->Remove(id));
      PVDB_RETURN_NOT_OK(db_->Add(std::move(object)));
      delta_upserts_.insert(id);
    }
    if (off != up_bytes.size()) {
      return Status::Corruption("delta upserts section has trailing bytes");
    }
    stats->delta_deletes = n_deletes;
    stats->delta_upserts = n_upserts;
  }

  PVDB_ASSIGN_OR_RETURN(builder_, PvIndexBuilder::Build(*db_, options_.index));

  // WAL suffix: apply records past the checkpoint, stop at a torn tail.
  storage::WalReplayStats wal_stats;
  uint64_t prev_seq = 0;
  bool seen_record = false;
  Status replay = storage::WalReplay(
      env_, WalPath(wal_seg_),
      [&](uint8_t type, std::span<const uint8_t> payload) -> Status {
        if (payload.size() < sizeof(uint64_t)) {
          return Status::Corruption("WAL record too short for its seq");
        }
        const uint64_t rec_seq = ReadU64(payload.data());
        if (seen_record && rec_seq <= prev_seq) {
          return Status::Corruption(
              "WAL seq not strictly increasing (" +
              std::to_string(prev_seq) + " then " + std::to_string(rec_seq) +
              ")");
        }
        prev_seq = rec_seq;
        seen_record = true;
        if (rec_seq <= checkpoint_seq_) {
          ++stats->wal_records_skipped;
          return Status::OK();
        }
        PVDB_RETURN_NOT_OK(
            ApplyWalRecord(type, payload.subspan(sizeof(uint64_t)), rec_seq));
        seq_ = rec_seq;
        ++stats->wal_records_applied;
        return Status::OK();
      },
      &wal_stats);
  if (replay.code() == StatusCode::kNotFound) {
    // The protocol creates + dir-syncs a WAL segment before any manifest
    // references it, so a missing segment is real damage, not a crash.
    return Status::Corruption("CURRENT references missing WAL segment " +
                              WalPath(wal_seg_));
  }
  PVDB_RETURN_NOT_OK(replay);
  stats->wal_bytes_dropped = wal_stats.bytes_dropped;
  stats->wal_tail_corrupt = wal_stats.tail_corrupt;
  stats->wal_tail_detail = wal_stats.tail_detail;

  // Reopen for appending (truncates the torn tail the scan just reported).
  PVDB_ASSIGN_OR_RETURN(wal_,
                        storage::WalWriter::Open(env_, WalPath(wal_seg_),
                                                 options_.wal));
  current_snapshot_ = std::move(base);
  stats->recovered = true;
  return Status::OK();
}

Status LiveIndex::ApplyWalRecord(uint8_t type,
                                 std::span<const uint8_t> payload,
                                 uint64_t seq) {
  switch (type) {
    case LiveWalRecord::kInsert: {
      size_t off = 0;
      PVDB_ASSIGN_OR_RETURN(uncertain::UncertainObject object,
                            uncertain::UncertainObject::ParseFrom(payload,
                                                                  &off));
      if (off != payload.size()) {
        return Status::Corruption("WAL insert record (seq " +
                                  std::to_string(seq) +
                                  ") has trailing bytes");
      }
      const uncertain::ObjectId id = object.id();
      if (db_->Find(id) != nullptr) {
        return Status::Corruption("WAL insert (seq " + std::to_string(seq) +
                                  ") replays over existing object id " +
                                  std::to_string(id));
      }
      PVDB_RETURN_NOT_OK(db_->Add(std::move(object)));
      PVDB_RETURN_NOT_OK(builder_->Insert(*db_, id));
      delta_deletes_.erase(id);
      delta_upserts_.insert(id);
      return Status::OK();
    }
    case LiveWalRecord::kDelete: {
      if (payload.size() != sizeof(uint64_t)) {
        return Status::Corruption("WAL delete record (seq " +
                                  std::to_string(seq) + ") malformed");
      }
      const uncertain::ObjectId id = ReadU64(payload.data());
      const uncertain::UncertainObject* found = db_->Find(id);
      if (found == nullptr) {
        return Status::Corruption("WAL delete (seq " + std::to_string(seq) +
                                  ") of unknown object id " +
                                  std::to_string(id));
      }
      uncertain::UncertainObject removed = *found;
      PVDB_RETURN_NOT_OK(db_->Remove(id));
      PVDB_RETURN_NOT_OK(builder_->Delete(*db_, removed));
      delta_upserts_.erase(id);
      delta_deletes_.insert(id);
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown WAL record type " +
                                std::to_string(type) + " (seq " +
                                std::to_string(seq) + ")");
  }
}

Status LiveIndex::Insert(uncertain::UncertainObject object) {
  std::lock_guard<std::mutex> lock(mu_);
  PVDB_RETURN_NOT_OK(broken_);
  // Validate up front (mirroring Dataset::Add) so bad input is rejected
  // BEFORE it reaches the log: the WAL must replay cleanly by construction.
  if (object.dim() != db_->dim()) {
    return Status::InvalidArgument("object dimensionality mismatch");
  }
  if (!db_->domain().ContainsRect(object.region())) {
    return Status::InvalidArgument("object region escapes the domain");
  }
  if (db_->Find(object.id()) != nullptr) {
    return Status::AlreadyExists("object id " + std::to_string(object.id()));
  }

  const uint64_t seq = seq_ + 1;
  std::vector<uint8_t> payload;
  AppendU64(&payload, seq);
  object.AppendTo(&payload);
  PVDB_RETURN_NOT_OK(wal_->Append(LiveWalRecord::kInsert, payload));
  seq_ = seq;

  const uncertain::ObjectId id = object.id();
  Status st = db_->Add(std::move(object));
  if (st.ok()) st = builder_->Insert(*db_, id);
  if (!st.ok()) {
    broken_ = Status::Internal(
        "live index diverged from its WAL (reopen to replay): " +
        st.message());
    return broken_;
  }
  delta_deletes_.erase(id);
  delta_upserts_.insert(id);
  MaybeCheckpointLocked();
  return Status::OK();
}

Status LiveIndex::Delete(uncertain::ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  PVDB_RETURN_NOT_OK(broken_);
  const uncertain::UncertainObject* found = db_->Find(id);
  if (found == nullptr) {
    return Status::NotFound("object id " + std::to_string(id));
  }

  const uint64_t seq = seq_ + 1;
  std::vector<uint8_t> payload;
  AppendU64(&payload, seq);
  AppendU64(&payload, id);
  PVDB_RETURN_NOT_OK(wal_->Append(LiveWalRecord::kDelete, payload));
  seq_ = seq;

  uncertain::UncertainObject removed = *found;
  Status st = db_->Remove(id);
  if (st.ok()) st = builder_->Delete(*db_, removed);
  if (!st.ok()) {
    broken_ = Status::Internal(
        "live index diverged from its WAL (reopen to replay): " +
        st.message());
    return broken_;
  }
  delta_upserts_.erase(id);
  delta_deletes_.insert(id);
  MaybeCheckpointLocked();
  return Status::OK();
}

void LiveIndex::MaybeCheckpointLocked() {
  if (options_.delta_seal_every_n > 0 && !compacting_ &&
      seq_ - checkpoint_seq_ >= options_.delta_seal_every_n) {
    // Graceful degradation: a failed auto-seal never fails the mutation —
    // the WAL still holds everything, the log just keeps growing until a
    // later seal succeeds. The outcome is visible via last_seal_status().
    last_seal_status_ = SealDeltaLocked();
  }
  if (options_.background_compaction && options_.compact_after_records > 0 &&
      seq_ - base_seq_ >= options_.compact_after_records && !compacting_ &&
      !compact_requested_) {
    compact_requested_ = true;
    compact_cv_.notify_all();
  }
}

Result<std::vector<uint8_t>> LiveIndex::BuildDeltaImage(
    uint64_t delta_seq) const {
  std::vector<uint8_t> meta;
  AppendU32(&meta, static_cast<uint32_t>(db_->dim()));
  AppendU32(&meta, 0);  // pad
  AppendU64(&meta, gen_);
  AppendU64(&meta, delta_seq);
  AppendU64(&meta, seq_);
  AppendU64(&meta, delta_deletes_.size());
  AppendU64(&meta, delta_upserts_.size());

  std::vector<uint8_t> deletes;
  deletes.reserve(delta_deletes_.size() * sizeof(uint64_t));
  for (uncertain::ObjectId id : delta_deletes_) AppendU64(&deletes, id);

  std::vector<uint8_t> upserts;
  for (uncertain::ObjectId id : delta_upserts_) {
    const uncertain::UncertainObject* object = db_->Find(id);
    if (object == nullptr) {
      return Status::Internal("delta upsert id " + std::to_string(id) +
                              " missing from the live dataset");
    }
    object->AppendTo(&upserts);
  }

  storage::SnapshotWriter writer;
  writer.AddSection(DeltaSections::kMeta, std::move(meta));
  writer.AddSection(DeltaSections::kDeletes, std::move(deletes));
  writer.AddSection(DeltaSections::kUpserts, std::move(upserts));
  return writer.Finish();
}

Status LiveIndex::SealDelta() {
  std::lock_guard<std::mutex> lock(mu_);
  PVDB_RETURN_NOT_OK(broken_);
  return SealDeltaLocked();
}

Status LiveIndex::SealDeltaLocked() {
  if (compacting_) {
    return Status::ResourceExhausted(
        "delta seal refused: a compaction is in flight");
  }
  if (seq_ == checkpoint_seq_) return Status::OK();

  const uint64_t new_delta = delta_ + 1;
  const uint64_t new_seg = wal_seg_ + 1;
  PVDB_ASSIGN_OR_RETURN(std::vector<uint8_t> image,
                        BuildDeltaImage(new_delta));
  PVDB_RETURN_NOT_OK(storage::WriteFileAtomic(
      env_, DeltaPath(gen_, new_delta),
      std::span<const uint8_t>(image.data(), image.size())));

  // Rotate: the fresh segment must exist durably before CURRENT names it.
  auto wal_or =
      storage::WalWriter::Open(env_, WalPath(new_seg), options_.wal);
  Status st = wal_or.ok() ? env_->SyncDir(dir_) : wal_or.status();
  if (st.ok()) st = WriteManifest(gen_, new_delta, seq_, new_seg);
  if (!st.ok()) {
    if (ProbeManifest(gen_, new_delta, seq_, new_seg) == 0) {
      // The old manifest survived intact: roll the attempt back fully.
      env_->DeleteFile(DeltaPath(gen_, new_delta));
      if (wal_or.ok()) {
        wal_or.value()->Close();
        env_->DeleteFile(WalPath(new_seg));
      }
      return st;
    }
    // The rename may have happened but its durability is unknown: a crash
    // could resurface either manifest. Keep BOTH file chains (each one is
    // self-consistent: records <= seq_ live in both the old segment and the
    // new delta) and stop acknowledging — only a reopen can re-establish a
    // single authoritative state.
    broken_ = Status::Internal(
        "delta seal left the manifest in an unknown state: " + st.message());
    return broken_;
  }

  wal_->Close();  // old segment is fully covered by the delta; drop it
  wal_ = std::move(wal_or).value();
  env_->DeleteFile(WalPath(wal_seg_));
  if (delta_ > 0) env_->DeleteFile(DeltaPath(gen_, delta_));
  wal_seg_ = new_seg;
  delta_ = new_delta;
  checkpoint_seq_ = seq_;
  return Status::OK();
}

Status LiveIndex::Compact() {
  if (options_.background_compaction) {
    TriggerCompaction();
    return WaitForCompaction();
  }
  return CompactImpl();
}

void LiveIndex::TriggerCompaction() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.background_compaction) return;
  compact_requested_ = true;
  compact_cv_.notify_all();
}

Status LiveIndex::WaitForCompaction() {
  std::unique_lock<std::mutex> lock(mu_);
  compact_cv_.wait(lock, [&] {
    return !compact_requested_ && !compact_running_ && !compacting_;
  });
  return last_compaction_status_;
}

Status LiveIndex::CompactImpl() {
  // Phase 1 (locked): freeze the image + seal point, adopt empty delta sets
  // so mutations landing during the file write accumulate relative to the
  // new base.
  std::vector<uint8_t> image;
  uint64_t snap_seq = 0;
  uint64_t new_gen = 0;
  std::set<uncertain::ObjectId> saved_upserts;
  std::set<uncertain::ObjectId> saved_deletes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!broken_.ok()) {
      last_compaction_status_ = broken_;
      compact_cv_.notify_all();
      return broken_;
    }
    if (compacting_) {
      return Status::ResourceExhausted("compaction already in flight");
    }
    auto image_or = builder_->SealImage(options_.seal);
    if (!image_or.ok()) {
      last_compaction_status_ = image_or.status();
      compact_cv_.notify_all();
      return image_or.status();
    }
    image = std::move(image_or).value();
    snap_seq = seq_;
    new_gen = gen_ + 1;
    saved_upserts.swap(delta_upserts_);
    saved_deletes.swap(delta_deletes_);
    compacting_ = true;
  }

  // Phase 2 (unlocked): the heavy file write; ingest keeps running.
  Status st = storage::WriteFileAtomic(
      env_, BasePath(new_gen),
      std::span<const uint8_t>(image.data(), image.size()));
  std::shared_ptr<const IndexSnapshot> snap;
  if (st.ok()) {
    auto snap_or = IndexSnapshot::Open(BasePath(new_gen));
    if (snap_or.ok()) {
      snap = std::move(snap_or).value();
    } else {
      st = snap_or.status();
    }
  }

  // Phase 3 (locked): publish or roll back.
  std::shared_ptr<const IndexSnapshot> to_publish;
  Status ret;
  {
    std::lock_guard<std::mutex> lock(mu_);
    compacting_ = false;
    auto restore_sets = [&] {
      // The saved sets are OLDER than whatever accumulated during phase 2;
      // a later mutation on the same id wins.
      for (uncertain::ObjectId id : saved_upserts) {
        if (delta_deletes_.count(id) == 0) delta_upserts_.insert(id);
      }
      for (uncertain::ObjectId id : saved_deletes) {
        if (delta_upserts_.count(id) == 0) delta_deletes_.insert(id);
      }
    };
    if (!st.ok()) {
      restore_sets();
      env_->DeleteFile(BasePath(new_gen));
      last_compaction_status_ = st;
      ret = st;
    } else {
      Status mst = WriteManifest(new_gen, 0, snap_seq, wal_seg_);
      if (mst.ok()) {
        gen_ = new_gen;
        delta_ = 0;
        checkpoint_seq_ = snap_seq;
        base_seq_ = snap_seq;
        current_snapshot_ = snap;
        to_publish = snap;
        GarbageCollectLocked();
        last_compaction_status_ = Status::OK();
        ret = Status::OK();
      } else if (ProbeManifest(new_gen, 0, snap_seq, wal_seg_) == 0) {
        // Old manifest intact: clean rollback, previous generation serves.
        restore_sets();
        env_->DeleteFile(BasePath(new_gen));
        last_compaction_status_ = mst;
        ret = mst;
      } else {
        // Manifest state unknown on disk (see SealDeltaLocked): keep both
        // generations' files, stop acknowledging, require a reopen.
        broken_ = Status::Internal(
            "compaction left the manifest in an unknown state: " +
            mst.message());
        last_compaction_status_ = mst;
        ret = broken_;
      }
    }
    compact_cv_.notify_all();
  }
  if (to_publish && options_.publish) options_.publish(to_publish);
  return ret;
}

void LiveIndex::CompactorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    compact_cv_.wait(lock, [&] { return shutdown_ || compact_requested_; });
    if (shutdown_) return;
    compact_requested_ = false;
    compact_running_ = true;
    lock.unlock();
    CompactImpl();  // takes its own locks, notifies waiters
    lock.lock();
    compact_running_ = false;
    compact_cv_.notify_all();
  }
}

void LiveIndex::GarbageCollectLocked() {
  auto children_or = env_->GetChildren(dir_);
  if (!children_or.ok()) return;  // best-effort; retried at the next Open
  const std::string keep_base = "base-" + std::to_string(gen_) + ".snap";
  const std::string keep_delta = "delta-" + std::to_string(gen_) + "-" +
                                 std::to_string(delta_) + ".snap";
  const std::string keep_wal = "wal-" + std::to_string(wal_seg_) + ".log";
  for (const std::string& name : children_or.value()) {
    const bool ours = name.rfind("base-", 0) == 0 ||
                      name.rfind("delta-", 0) == 0 ||
                      name.rfind("wal-", 0) == 0 ||
                      (name.size() > 4 &&
                       name.compare(name.size() - 4, 4, ".tmp") == 0);
    if (!ours) continue;
    if (name == keep_base || name == keep_wal) continue;
    if (delta_ > 0 && name == keep_delta) continue;
    env_->DeleteFile(dir_ + "/" + name);
  }
}

std::shared_ptr<const IndexSnapshot> LiveIndex::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_snapshot_;
}

uint64_t LiveIndex::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gen_;
}

uint64_t LiveIndex::delta_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_;
}

uint64_t LiveIndex::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

uint64_t LiveIndex::records_since_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_ - checkpoint_seq_;
}

uint64_t LiveIndex::wal_synced_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ ? wal_->synced_records() : 0;
}

Status LiveIndex::last_seal_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seal_status_;
}

Status LiveIndex::last_compaction_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_compaction_status_;
}

LiveIndex::~LiveIndex() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    compact_cv_.notify_all();
  }
  if (compactor_.joinable()) compactor_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_) wal_->Close();
}

}  // namespace pvdb::pv
