// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The PV-index (Section VI): orchestrates the SE algorithm, the octree
// primary index and the extensible-hash secondary index into the paper's
// headline structure. Supports:
//   * construction (one UBR per object, Section VI-A),
//   * PNNQ Step-1 point queries (leaf lookup + minmax pruning),
//   * incremental object insertion and deletion (Section VI-B) using the
//     Lemma-8 affected-object filters and Lemma-9 warm-started SE runs.

#ifndef PVDB_PV_PV_INDEX_H_
#define PVDB_PV_PV_INDEX_H_

#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/timer.h"
#include "src/pv/cset.h"
#include "src/pv/octree.h"
#include "src/pv/pnnq.h"
#include "src/pv/se.h"
#include "src/pv/secondary_index.h"
#include "src/rtree/rstar_tree.h"
#include "src/uncertain/dataset.h"

namespace pvdb::pv {

/// Construction insertion order.
enum class BuildOrder {
  /// Database order (the paper's construction, Section VI-A).
  kInsertion,
  /// Z-order of object mean positions: a bulk-loading mode (the
  /// "bulkloading" precomputation suggested in the paper's conclusion) that
  /// groups spatially adjacent UBRs so leaves fill before they split.
  kMorton,
};

/// All PV-index tunables in one options struct (RocksDB idiom); defaults are
/// the paper's Table I bold values.
struct PvIndexOptions {
  SeOptions se;
  CSetOptions cset;
  OctreeOptions octree;
  BuildOrder build_order = BuildOrder::kInsertion;
  /// Top-down bulk construction of the primary octree (writes each leaf
  /// chain once instead of per-insert head-page rewrites). Identical query
  /// answers; see OctreePrimary::BulkLoad.
  bool bulk_primary = false;
};

/// Construction instrumentation (Figures 10(b)–10(f)).
struct BuildStats {
  /// Wall time in chooseCSet across all objects (Fig 10(e) left bar).
  double choose_cset_ms = 0.0;
  /// Wall time computing UBRs via SE (Fig 10(e) right bar).
  double compute_ubr_ms = 0.0;
  /// Wall time inserting UBRs into primary+secondary.
  double insert_ms = 0.0;
  /// End-to-end construction wall time.
  double total_ms = 0.0;
  /// Distribution of C-set sizes (IS vs FS comparison, Section VII-C(b)).
  Summary cset_size;
  /// Aggregated SE counters.
  SeStats se;
  /// Pages written while populating the primary octree (bulk-load ablation).
  int64_t primary_page_writes = 0;
};

/// Incremental-update instrumentation (Figures 10(h)/(i)).
struct UpdateStats {
  /// Objects found in leaves overlapping the trigger UBR.
  int candidates = 0;
  /// Objects surviving the Lemma-8 filters (UBRs recomputed).
  int affected = 0;
  /// Wall time of the update.
  double total_ms = 0.0;
  /// Wall time inside warm-started SE runs.
  double se_ms = 0.0;
};

/// The PV-index.
class PvIndex {
 public:
  /// Builds the index over `db`, storing pages on `pager` (borrowed).
  static Result<std::unique_ptr<PvIndex>> Build(const uncertain::Dataset& db,
                                                storage::Pager* pager,
                                                const PvIndexOptions& options,
                                                BuildStats* stats = nullptr);

  /// PNNQ Step 1: ids of all objects with non-zero probability of being the
  /// nearest neighbor of `q` (conservative candidate set after minmax
  /// pruning — identical to the R-tree baseline's answer set). Runs the
  /// batched block kernel over the leaf's SoA view; `scratch` pools the
  /// per-query distance buffer (nullptr allocates locally).
  Result<std::vector<uncertain::ObjectId>> QueryPossibleNN(
      const geom::Point& q, QueryScratch* scratch = nullptr) const;

  /// Incremental maintenance (Section VI-B). `db_after` is the database
  /// state *after* the change; for insertion the new object must already be
  /// in `db_after`, for deletion `removed` is the just-removed object.
  Status InsertObject(const uncertain::Dataset& db_after,
                      uncertain::ObjectId new_id, UpdateStats* stats = nullptr);
  Status DeleteObject(const uncertain::Dataset& db_after,
                      const uncertain::UncertainObject& removed,
                      UpdateStats* stats = nullptr);

  /// Registers a callback invoked after every successful InsertObject /
  /// DeleteObject — the invalidation hook for layered components that
  /// memoize query state (the service layer's leaf-result cache). Returns a
  /// handle for RemoveUpdateListener; callers whose lifetime is shorter than
  /// the index's must deregister. Registration, deregistration and
  /// notification are internally synchronized (a small mutex taken only on
  /// these mutation-time calls, never on the query path), so listeners may
  /// be added or removed from any thread. Caveat: notification snapshots the
  /// listener list and invokes outside the lock, so RemoveUpdateListener
  /// does NOT wait for an in-flight notification — a removed listener may
  /// fire once more. Don't destroy state a callback captures while a
  /// mutation can be running (the engine joins its workers and holds no
  /// mutation when it deregisters).
  int AddUpdateListener(std::function<void()> listener);
  void RemoveUpdateListener(int id);

  /// Current UBR of an object (test/inspection access).
  Result<geom::Rect> GetUbr(uncertain::ObjectId id) const {
    return secondary_->GetUbr(id);
  }

  /// Full stored record of an object.
  Result<uncertain::UncertainObject> GetObject(uncertain::ObjectId id) const {
    return secondary_->GetObject(id);
  }

  const OctreePrimary& primary() const { return *primary_; }
  const SecondaryIndex& secondary() const { return *secondary_; }
  storage::Pager* pager() const { return pager_; }
  const PvIndexOptions& options() const { return options_; }
  const geom::Rect& domain() const { return domain_; }

 private:
  PvIndex(geom::Rect domain, storage::Pager* pager, PvIndexOptions options);

  /// Recomputes one object's C-set against `db` (uses the mean-position
  /// R-tree maintained incrementally across updates).
  CSetResult ChooseCSetFor(const uncertain::UncertainObject& o,
                           const uncertain::Dataset& db) const;

  Status InsertObjectImpl(const uncertain::Dataset& db_after,
                          uncertain::ObjectId new_id, UpdateStats* stats);
  Status DeleteObjectImpl(const uncertain::Dataset& db_after,
                          const uncertain::UncertainObject& removed,
                          UpdateStats* stats);
  void NotifyUpdateListeners() const;

  geom::Rect domain_;
  PvIndexOptions options_;
  storage::Pager* pager_;
  SeAlgorithm se_;
  std::unique_ptr<SecondaryIndex> secondary_;
  std::unique_ptr<OctreePrimary> primary_;
  std::unique_ptr<rtree::RStarTree> mean_tree_;
  mutable std::mutex listeners_mu_;  // guards the two members below
  std::vector<std::pair<int, std::function<void()>>> update_listeners_;
  int next_listener_id_ = 0;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_PV_INDEX_H_
