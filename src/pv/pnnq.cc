// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/pnnq.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/random.h"
#include "src/storage/record_store.h"

namespace pvdb::pv {

std::vector<uncertain::ObjectId> Step1BruteForce(const uncertain::Dataset& db,
                                                 const geom::Point& q) {
  std::vector<uncertain::ObjectId> out;
  if (db.size() == 0) return out;
  double tau_sq = std::numeric_limits<double>::infinity();
  for (const auto& o : db.objects()) {
    tau_sq = std::min(tau_sq, geom::MaxDistSq(o.region(), q));
  }
  for (const auto& o : db.objects()) {
    if (geom::MinDistSq(o.region(), q) <= tau_sq) out.push_back(o.id());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uncertain::ObjectId> Step1PruneMinMax(
    std::span<const LeafEntry> entries, const geom::Point& q) {
  std::vector<uncertain::ObjectId> out;
  if (entries.empty()) return out;
  double tau_sq = std::numeric_limits<double>::infinity();
  for (const LeafEntry& e : entries) {
    tau_sq = std::min(tau_sq, geom::MaxDistSq(e.region, q));
  }
  out.reserve(entries.size());
  for (const LeafEntry& e : entries) {
    if (geom::MinDistSq(e.region, q) <= tau_sq) out.push_back(e.id);
  }
  return out;
}

std::vector<uncertain::ObjectId> Step1PruneMinMax(const LeafBlock& block,
                                                  const geom::Point& q,
                                                  QueryScratch* scratch) {
  std::vector<uncertain::ObjectId> out;
  const size_t n = block.size();
  if (n == 0) return out;
  QueryScratch local;
  QueryScratch* s = scratch != nullptr ? scratch : &local;
  s->min_dist_sq.resize(n);
  s->max_dist_sq.resize(n);
  const std::span<double> min_d(s->min_dist_sq.data(), n);
  const std::span<double> max_d(s->max_dist_sq.data(), n);
  geom::MinMaxDistSqBatch(block.rects, q, min_d, max_d);

  // Pass 1: τ² = min over entries of MaxDistSq. min is order-insensitive,
  // so four independent accumulator chains (ILP) give the exact value the
  // scalar loop's sequential reduce produces.
  double t0 = std::numeric_limits<double>::infinity();
  double t1 = t0, t2 = t0, t3 = t0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    t0 = std::min(t0, max_d[i]);
    t1 = std::min(t1, max_d[i + 1]);
    t2 = std::min(t2, max_d[i + 2]);
    t3 = std::min(t3, max_d[i + 3]);
  }
  for (; i < n; ++i) t0 = std::min(t0, max_d[i]);
  const double tau_sq = std::min(std::min(t0, t1), std::min(t2, t3));

  // Pass 2: keep entries with MinDistSq <= τ², preserving block order.
  // Branchless compaction into the scratch staging buffer (unconditional
  // store + predicated advance), then one exact-size copy out.
  s->candidate_ids.resize(n);
  uncertain::ObjectId* staged = s->candidate_ids.data();
  size_t count = 0;
  for (size_t k = 0; k < n; ++k) {
    staged[count] = block.ids[k];
    count += min_d[k] <= tau_sq ? 1 : 0;
  }
  out.assign(staged, staged + count);
  return out;
}

PnnStep2Evaluator::PnnStep2Evaluator(const uncertain::Dataset* db) : db_(db) {
  PVDB_CHECK(db_ != nullptr);
}

int64_t PnnStep2Evaluator::RecordPages(
    const uncertain::UncertainObject& o) const {
  // Secondary-index record: header (dim/pad + 2 rects) + serialized object.
  const size_t d = static_cast<size_t>(o.dim());
  const size_t header = 2 * sizeof(uint32_t) + 4 * sizeof(double) * d;
  const size_t object = sizeof(uint64_t) + 2 * sizeof(uint32_t) +
                        2 * sizeof(double) * d +
                        o.pdf().size() * (sizeof(double) * d + sizeof(double));
  return static_cast<int64_t>(
      storage::RecordStore::PagesNeeded(header + object));
}

std::vector<PnnResult> PnnStep2Evaluator::Evaluate(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    MetricRegistry* io, double min_probability) const {
  QueryScratch scratch;
  MetricRegistry::Counter* counter =
      io != nullptr ? io->Register(PnnCounters::kPdfPagesRead) : nullptr;
  return Evaluate(q, candidates, &scratch, counter, min_probability);
}

std::vector<PnnResult> PnnStep2Evaluator::Evaluate(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    QueryScratch* scratch, MetricRegistry::Counter* io,
    double min_probability) const {
  PVDB_CHECK(scratch != nullptr);

  auto& objs = scratch->objs;
  objs.clear();
  objs.reserve(candidates.size());
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = db_->Find(id);
    PVDB_CHECK(o != nullptr);
    objs.push_back(o);
    if (io != nullptr) {
      io->Increment(RecordPages(*o));
    }
  }

  // Per-candidate sorted distance distributions with suffix probability
  // sums — survival(t) = P(dist(o', q) > t) in O(log n) — built into the
  // scratch arena's flat arrays: candidate i occupies
  // [offsets[i], offsets[i+1]) of inst_dist / dist / suffix.
  auto& offsets = scratch->offsets;
  offsets.clear();
  offsets.reserve(objs.size() + 1);
  size_t total = 0;
  offsets.push_back(0);
  for (const auto* o : objs) {
    total += o->pdf().size();
    offsets.push_back(total);
  }
  auto& inst_dist = scratch->inst_dist;
  auto& dist = scratch->dist;
  auto& suffix = scratch->suffix;
  inst_dist.resize(total);
  dist.resize(total);
  suffix.resize(total);

  auto& pairs = scratch->pairs;
  for (size_t i = 0; i < objs.size(); ++i) {
    const auto& pdf = objs[i]->pdf();
    const size_t base = offsets[i];
    pairs.clear();
    pairs.reserve(pdf.size());
    for (size_t k = 0; k < pdf.size(); ++k) {
      const double d = pdf[k].position.DistanceTo(q);
      inst_dist[base + k] = d;
      pairs.emplace_back(d, pdf[k].probability);
    }
    std::sort(pairs.begin(), pairs.end());
    double run = 0.0;
    for (size_t k = pairs.size(); k-- > 0;) {
      run += pairs[k].second;
      dist[base + k] = pairs[k].first;
      suffix[base + k] = run;
    }
  }

  // First sorted index with dist > t (strict: ties do not count as
  // "farther"), read off candidate j's slice.
  const auto survival = [&](size_t j, double t) {
    const double* begin = dist.data() + offsets[j];
    const double* end = dist.data() + offsets[j + 1];
    const double* it = std::upper_bound(begin, end, t);
    return it == end ? 0.0 : suffix[offsets[j] + static_cast<size_t>(it - begin)];
  };

  std::vector<PnnResult> out;
  for (size_t i = 0; i < objs.size(); ++i) {
    const auto& pdf = objs[i]->pdf();
    const size_t base = offsets[i];
    double prob = 0.0;
    for (size_t k = 0; k < pdf.size(); ++k) {
      const double d = inst_dist[base + k];
      double world = pdf[k].probability;
      for (size_t j = 0; j < objs.size() && world > 0.0; ++j) {
        if (j == i) continue;
        world *= survival(j, d);
      }
      prob += world;
    }
    if (prob > min_probability) {
      out.push_back(PnnResult{objs[i]->id(), prob});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PnnResult& a, const PnnResult& b) {
              return a.probability > b.probability;
            });
  return out;
}

std::vector<PnnResult> PnnStep2Evaluator::EstimateByMonteCarlo(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    int trials, uint64_t seed) const {
  PVDB_CHECK(trials > 0);
  std::vector<const uncertain::UncertainObject*> objs;
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = db_->Find(id);
    PVDB_CHECK(o != nullptr);
    objs.push_back(o);
  }
  // Precompute instance distances; sampling then picks one instance per
  // object per world (instances are uniform-weight in our generators; the
  // general weighted case uses inverse-CDF sampling).
  std::vector<std::vector<double>> dists(objs.size());
  std::vector<std::vector<double>> cdfs(objs.size());
  for (size_t i = 0; i < objs.size(); ++i) {
    double run = 0.0;
    for (const auto& inst : objs[i]->pdf()) {
      dists[i].push_back(inst.position.DistanceTo(q));
      run += inst.probability;
      cdfs[i].push_back(run);
    }
  }
  std::vector<int64_t> wins(objs.size(), 0);
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i < objs.size(); ++i) {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(cdfs[i].begin(), cdfs[i].end(), u);
      const size_t k = std::min<size_t>(
          static_cast<size_t>(it - cdfs[i].begin()), dists[i].size() - 1);
      const double d = dists[i][k];
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    ++wins[best_i];
  }
  std::vector<PnnResult> out;
  for (size_t i = 0; i < objs.size(); ++i) {
    out.push_back(PnnResult{objs[i]->id(),
                            static_cast<double>(wins[i]) / trials});
  }
  std::sort(out.begin(), out.end(),
            [](const PnnResult& a, const PnnResult& b) {
              return a.probability > b.probability;
            });
  return out;
}

}  // namespace pvdb::pv
