// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/pnnq.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <type_traits>

#include "src/common/random.h"
#include "src/storage/record_store.h"

namespace pvdb::pv {

namespace {

template <typename T>
size_t CapacityBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

size_t QueryScratch::ApproxBytes() const {
  return CapacityBytes(min_dist_sq) + CapacityBytes(max_dist_sq) +
         CapacityBytes(candidate_ids) + CapacityBytes(objs) +
         CapacityBytes(pairs) + CapacityBytes(inst_dist) + CapacityBytes(dist) +
         CapacityBytes(suffix) + CapacityBytes(offsets) +
         CapacityBytes(batch_dist) + CapacityBytes(batch_suffix) +
         CapacityBytes(batch_perm) + CapacityBytes(batch_w) +
         CapacityBytes(batch_alive) + CapacityBytes(batch_alive_left);
}

void QueryScratch::ShrinkToFit(size_t max_bytes) {
  if (ApproxBytes() <= max_bytes) return;
  // Move-assigning a fresh scratch releases every buffer at once; the next
  // query re-grows only what it touches.
  *this = QueryScratch();
}

std::vector<uncertain::ObjectId> Step1BruteForce(const uncertain::Dataset& db,
                                                 const geom::Point& q) {
  std::vector<uncertain::ObjectId> out;
  if (db.size() == 0) return out;
  double tau_sq = std::numeric_limits<double>::infinity();
  for (const auto& o : db.objects()) {
    tau_sq = std::min(tau_sq, geom::MaxDistSq(o.region(), q));
  }
  for (const auto& o : db.objects()) {
    if (geom::MinDistSq(o.region(), q) <= tau_sq) out.push_back(o.id());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uncertain::ObjectId> Step1PruneMinMax(
    std::span<const LeafEntry> entries, const geom::Point& q) {
  std::vector<uncertain::ObjectId> out;
  if (entries.empty()) return out;
  double tau_sq = std::numeric_limits<double>::infinity();
  for (const LeafEntry& e : entries) {
    tau_sq = std::min(tau_sq, geom::MaxDistSq(e.region, q));
  }
  out.reserve(entries.size());
  for (const LeafEntry& e : entries) {
    if (geom::MinDistSq(e.region, q) <= tau_sq) out.push_back(e.id);
  }
  return out;
}

std::vector<uncertain::ObjectId> Step1PruneMinMax(const LeafBlock& block,
                                                  const geom::Point& q,
                                                  QueryScratch* scratch) {
  // The view is a positional mirror of the block's RectSoA/id arrays, so
  // delegating makes block- and view-based pruning bit-identical by
  // construction.
  return Step1PruneMinMax(block.View(), q, scratch);
}

std::vector<uncertain::ObjectId> Step1PruneMinMax(const LeafBlockView& view,
                                                  const geom::Point& q,
                                                  QueryScratch* scratch) {
  std::vector<uncertain::ObjectId> out;
  const size_t n = view.count;
  if (n == 0) return out;
  QueryScratch local;
  QueryScratch* s = scratch != nullptr ? scratch : &local;
  s->min_dist_sq.resize(n);
  s->max_dist_sq.resize(n);
  double* min_d = s->min_dist_sq.data();
  double* max_d = s->max_dist_sq.data();
  geom::MinMaxDistSqBatch(view.lo, view.hi, q, view.dim, n, min_d, max_d);

  // Pass 1: τ² = min over entries of MaxDistSq — the dispatched horizontal
  // reduce. Squared distances are ordered non-negatives, so the reduce is
  // order-insensitive and bit-identical at every SIMD width.
  const double tau_sq = geom::MinReduce(max_d, n);

  // Pass 2: keep entries with MinDistSq <= τ², preserving block order —
  // the dispatched compress kernel (AVX-512 masked compress-store, AVX2
  // shuffle table, scalar predicated loop; geom::CompressIdsLe) staged into
  // the scratch buffer, then one exact-size copy out. The kept sequence is
  // identical at every SIMD level.
  static_assert(std::is_same_v<uncertain::ObjectId, uint64_t>,
                "compress kernel carries ids as uint64_t lanes");
  s->candidate_ids.resize(n);
  uncertain::ObjectId* staged = s->candidate_ids.data();
  const size_t count =
      geom::CompressIdsLe(min_d, n, tau_sq, view.ids, staged);
  out.assign(staged, staged + count);
  return out;
}

uint64_t Step2Batch::HashCandidates(
    std::span<const uncertain::ObjectId> candidates) {
  // FNV-1a over the id sequence; order-sensitive on purpose (groups must
  // share the exact Step-1 order for bit-identical evaluation).
  uint64_t h = 14695981039346656037ull;
  for (uncertain::ObjectId id : candidates) {
    h ^= id;
    h *= 1099511628211ull;
  }
  return h;
}

void Step2Batch::Add(uint32_t query_index, uint64_t leaf_key,
                     std::vector<uncertain::ObjectId> candidates) {
  const uint64_t h = HashCandidates(candidates);
  for (size_t idx : by_hash_[h]) {
    if (groups_[idx].candidates == candidates) {
      groups_[idx].queries.push_back(query_index);
      return;
    }
  }
  by_hash_[h].push_back(groups_.size());
  Group g;
  g.leaf_key = leaf_key;
  g.candidates = std::move(candidates);
  g.queries.push_back(query_index);
  groups_.push_back(std::move(g));
}

PnnStep2Evaluator::PnnStep2Evaluator(const uncertain::ObjectSource* objects)
    : objects_(objects) {
  PVDB_CHECK(objects_ != nullptr);
}

int64_t PnnStep2Evaluator::RecordPages(
    const uncertain::UncertainObject& o) const {
  // Secondary-index record: header (dim/pad + 2 rects) + serialized object.
  const size_t d = static_cast<size_t>(o.dim());
  const size_t header = 2 * sizeof(uint32_t) + 4 * sizeof(double) * d;
  const size_t object = sizeof(uint64_t) + 2 * sizeof(uint32_t) +
                        2 * sizeof(double) * d +
                        o.pdf().size() * (sizeof(double) * d + sizeof(double));
  return static_cast<int64_t>(
      storage::RecordStore::PagesNeeded(header + object));
}

std::vector<PnnResult> PnnStep2Evaluator::Evaluate(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    MetricRegistry* io, double min_probability) const {
  QueryScratch scratch;
  MetricRegistry::Counter* counter =
      io != nullptr ? io->Register(PnnCounters::kPdfPagesRead) : nullptr;
  return Evaluate(q, candidates, &scratch, counter, min_probability);
}

namespace {

// A pdf is an AoS uncertain::Instance array whose Point coordinates sit at
// offset 0 of each record — a strided coordinate matrix the dispatched
// geom::PointDistBatch consumes directly (bit-identical to per-element
// Point::DistanceTo). The stride must be whole doubles and the coords must
// lead the record; both are layout facts the asserts pin down.
static_assert(sizeof(uncertain::Instance) % sizeof(double) == 0,
              "Instance stride must be a whole number of doubles");
constexpr size_t kInstanceStrideDoubles =
    sizeof(uncertain::Instance) / sizeof(double);

const double* InstanceCoordBase(const std::vector<uncertain::Instance>& pdf) {
  if (pdf.empty()) return nullptr;
  const double* base = pdf.front().position.data();
  PVDB_DCHECK(static_cast<const void*>(base) ==
              static_cast<const void*>(pdf.data()));
  return base;
}

/// Shared miss handling for candidate-record resolution: with a status
/// channel the miss becomes a Corruption (damaged snapshot record); without
/// one it is a caller bug and aborts.
bool ReportMissingRecord(uncertain::ObjectId id, Status* status) {
  if (status != nullptr) {
    *status = Status::Corruption(
        "candidate record " + std::to_string(id) +
        " is missing or undecodable (damaged snapshot payload? open with "
        "verify_payload to check integrity up front)");
    return true;
  }
  PVDB_CHECK(false && "Step-2 candidate missing from the object source");
  return false;
}

}  // namespace

std::vector<PnnResult> PnnStep2Evaluator::Evaluate(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    QueryScratch* scratch, MetricRegistry::Counter* io,
    double min_probability, Status* status) const {
  PVDB_CHECK(scratch != nullptr);
  ScopedStageTimer stage_timer(scratch->timings, QueryStage::kStep2);
  if (status != nullptr) *status = Status::OK();

  auto& objs = scratch->objs;
  objs.clear();
  objs.reserve(candidates.size());
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = objects_->FindObject(id);
    if (o == nullptr) {
      ReportMissingRecord(id, status);
      return {};
    }
    objs.push_back(o);
    if (io != nullptr) {
      io->Increment(RecordPages(*o));
    }
  }

  // Per-candidate sorted distance distributions with suffix probability
  // sums — survival(t) = P(dist(o', q) > t) in O(log n) — built into the
  // scratch arena's flat arrays: candidate i occupies
  // [offsets[i], offsets[i+1]) of inst_dist / dist / suffix.
  auto& offsets = scratch->offsets;
  offsets.clear();
  offsets.reserve(objs.size() + 1);
  size_t total = 0;
  offsets.push_back(0);
  for (const auto* o : objs) {
    total += o->pdf().size();
    offsets.push_back(total);
  }
  auto& inst_dist = scratch->inst_dist;
  auto& dist = scratch->dist;
  auto& suffix = scratch->suffix;
  inst_dist.resize(total);
  dist.resize(total);
  suffix.resize(total);

  auto& pairs = scratch->pairs;
  for (size_t i = 0; i < objs.size(); ++i) {
    const auto& pdf = objs[i]->pdf();
    const size_t base = offsets[i];
    geom::PointDistBatch(InstanceCoordBase(pdf), kInstanceStrideDoubles, q,
                         pdf.size(), inst_dist.data() + base);
    pairs.clear();
    pairs.reserve(pdf.size());
    for (size_t k = 0; k < pdf.size(); ++k) {
      pairs.emplace_back(inst_dist[base + k], pdf[k].probability);
    }
    std::sort(pairs.begin(), pairs.end());
    double run = 0.0;
    for (size_t k = pairs.size(); k-- > 0;) {
      run += pairs[k].second;
      dist[base + k] = pairs[k].first;
      suffix[base + k] = run;
    }
  }

  // First sorted index with dist > t (strict: ties do not count as
  // "farther"), read off candidate j's slice.
  const auto survival = [&](size_t j, double t) {
    const double* begin = dist.data() + offsets[j];
    const double* end = dist.data() + offsets[j + 1];
    const double* it = std::upper_bound(begin, end, t);
    return it == end ? 0.0 : suffix[offsets[j] + static_cast<size_t>(it - begin)];
  };

  std::vector<PnnResult> out;
  for (size_t i = 0; i < objs.size(); ++i) {
    const auto& pdf = objs[i]->pdf();
    const size_t base = offsets[i];
    double prob = 0.0;
    for (size_t k = 0; k < pdf.size(); ++k) {
      const double d = inst_dist[base + k];
      double world = pdf[k].probability;
      for (size_t j = 0; j < objs.size() && world > 0.0; ++j) {
        if (j == i) continue;
        world *= survival(j, d);
      }
      prob += world;
    }
    if (prob > min_probability) {
      out.push_back(PnnResult{objs[i]->id(), prob});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PnnResult& a, const PnnResult& b) {
              return a.probability > b.probability;
            });
  return out;
}

std::vector<PnnResult> PnnStep2Evaluator::EvaluateTopK(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    uint32_t k, QueryScratch* scratch, MetricRegistry::Counter* io,
    double min_probability, Status* status, int64_t* early_exits) const {
  PVDB_CHECK(scratch != nullptr);
  PVDB_CHECK(k >= 1);
  PVDB_CHECK(min_probability >= 0.0);
  ScopedStageTimer stage_timer(scratch->timings, QueryStage::kStep2);
  if (status != nullptr) *status = Status::OK();

  auto& objs = scratch->objs;
  objs.clear();
  objs.reserve(candidates.size());
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = objects_->FindObject(id);
    if (o == nullptr) {
      ReportMissingRecord(id, status);
      return {};
    }
    objs.push_back(o);
    if (io != nullptr) {
      io->Increment(RecordPages(*o));
    }
  }

  // The same per-candidate sorted-distance tables Evaluate builds — every
  // candidate needs one even if its own probability is abandoned early,
  // because it keeps competing in the other candidates' survival products.
  auto& offsets = scratch->offsets;
  offsets.clear();
  offsets.reserve(objs.size() + 1);
  size_t total = 0;
  offsets.push_back(0);
  for (const auto* o : objs) {
    total += o->pdf().size();
    offsets.push_back(total);
  }
  auto& inst_dist = scratch->inst_dist;
  auto& dist = scratch->dist;
  auto& suffix = scratch->suffix;
  inst_dist.resize(total);
  dist.resize(total);
  suffix.resize(total);

  auto& pairs = scratch->pairs;
  for (size_t i = 0; i < objs.size(); ++i) {
    const auto& pdf = objs[i]->pdf();
    const size_t base = offsets[i];
    geom::PointDistBatch(InstanceCoordBase(pdf), kInstanceStrideDoubles, q,
                         pdf.size(), inst_dist.data() + base);
    pairs.clear();
    pairs.reserve(pdf.size());
    for (size_t kk = 0; kk < pdf.size(); ++kk) {
      pairs.emplace_back(inst_dist[base + kk], pdf[kk].probability);
    }
    std::sort(pairs.begin(), pairs.end());
    double run = 0.0;
    for (size_t kk = pairs.size(); kk-- > 0;) {
      run += pairs[kk].second;
      dist[base + kk] = pairs[kk].first;
      suffix[base + kk] = run;
    }
  }

  // Remaining pdf weight per instance position, in pdf order: wsuf[base + t]
  // = sum of pdf weights from instance t on. prob-so-far + wsuf is a true
  // upper bound on the candidate's final probability (every future world
  // contributes at most its bare pdf weight).
  auto& wsuf = scratch->batch_w;
  wsuf.resize(total);
  for (size_t i = 0; i < objs.size(); ++i) {
    const auto& pdf = objs[i]->pdf();
    const size_t base = offsets[i];
    double run = 0.0;
    for (size_t kk = pdf.size(); kk-- > 0;) {
      run += pdf[kk].probability;
      wsuf[base + kk] = run;
    }
  }

  const auto survival = [&](size_t j, double t) {
    const double* begin = dist.data() + offsets[j];
    const double* end = dist.data() + offsets[j + 1];
    const double* it = std::upper_bound(begin, end, t);
    return it == end ? 0.0 : suffix[offsets[j] + static_cast<size_t>(it - begin)];
  };

  // Same slack as EvaluateGroup's early exit: the bound and the exact
  // accumulation round differently, so give the bound one ulp-scale nudge
  // upward before comparing — never abandon a candidate the exact path
  // would keep.
  constexpr double kBoundSlack = 1e-9;
  // Min-heap of the k highest finished probabilities; top() is the bar a
  // candidate must still be able to reach.
  std::priority_queue<double, std::vector<double>, std::greater<double>> top;
  std::vector<PnnResult> finished;
  for (size_t i = 0; i < objs.size(); ++i) {
    const auto& pdf = objs[i]->pdf();
    const size_t base = offsets[i];
    double prob = 0.0;
    bool abandoned = false;
    for (size_t kk = 0; kk < pdf.size(); ++kk) {
      const double bound = prob + wsuf[base + kk];
      const double scaled = bound * (1.0 + kBoundSlack);
      const bool below_floor =
          bound == 0.0 ? 0.0 <= min_probability : scaled <= min_probability;
      // Strict <: a candidate that can still TIE the k-th probability must
      // finish, because the (probability desc, id asc) order may seat it.
      const bool out_of_topk = top.size() >= k && scaled < top.top();
      if (below_floor || out_of_topk) {
        abandoned = true;
        if (early_exits != nullptr) ++*early_exits;
        break;
      }
      const double d = inst_dist[base + kk];
      double world = pdf[kk].probability;
      for (size_t j = 0; j < objs.size() && world > 0.0; ++j) {
        if (j == i) continue;
        world *= survival(j, d);
      }
      prob += world;
    }
    if (abandoned) continue;
    if (prob > min_probability) {
      finished.push_back(PnnResult{objs[i]->id(), prob});
      if (top.size() < k) {
        top.push(prob);
      } else if (prob > top.top()) {
        top.pop();
        top.push(prob);
      }
    }
  }

  // Total (probability desc, id asc) order before truncating: every true
  // top-k member finished (the bound never abandons one), so sorting the
  // survivors and cutting to k equals sorting Evaluate's full answer.
  std::sort(finished.begin(), finished.end(),
            [](const PnnResult& a, const PnnResult& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.id < b.id;
            });
  if (finished.size() > k) finished.resize(k);
  return finished;
}

std::vector<PnnResult> PnnStep2Evaluator::EvaluateRangeProb(
    const geom::Rect& range, std::span<const uncertain::ObjectId> candidates,
    MetricRegistry::Counter* io, double threshold, Status* status) const {
  if (status != nullptr) *status = Status::OK();
  std::vector<PnnResult> out;
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = objects_->FindObject(id);
    if (o == nullptr) {
      ReportMissingRecord(id, status);
      return {};
    }
    if (io != nullptr) {
      io->Increment(RecordPages(*o));
    }
    // P(o inside range): pdf weights summed in pdf order (the summation
    // order is part of the bit-identity contract).
    double prob = 0.0;
    for (const uncertain::Instance& inst : o->pdf()) {
      if (range.Contains(inst.position)) prob += inst.probability;
    }
    if (prob > threshold) {
      out.push_back(PnnResult{o->id(), prob});
    }
  }
  // (probability desc, id asc) is total, so the answer depends only on the
  // candidate SET — a router's merged candidate order matches by
  // construction.
  std::sort(out.begin(), out.end(), [](const PnnResult& a, const PnnResult& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.id < b.id;
  });
  return out;
}

std::vector<std::vector<PnnResult>> PnnStep2Evaluator::EvaluateGroup(
    std::span<const geom::Point> queries,
    std::span<const uncertain::ObjectId> candidates, QueryScratch* scratch,
    MetricRegistry::Counter* io, const Step2GroupOptions& options,
    Step2BatchStats* stats, Status* status) const {
  PVDB_CHECK(scratch != nullptr);
  ScopedStageTimer stage_timer(scratch->timings, QueryStage::kStep2);
  if (status != nullptr) *status = Status::OK();
  const size_t nq = queries.size();
  const size_t nc = candidates.size();
  std::vector<std::vector<PnnResult>> out(nq);

  auto& objs = scratch->objs;
  objs.clear();
  objs.reserve(nc);
  if (!options.resolved.empty()) {
    PVDB_CHECK(options.resolved.size() == nc);
    objs.assign(options.resolved.begin(), options.resolved.end());
  } else {
    for (uncertain::ObjectId id : candidates) {
      const uncertain::UncertainObject* o = objects_->FindObject(id);
      if (o == nullptr) {
        ReportMissingRecord(id, status);
        return out;
      }
      objs.push_back(o);
    }
  }
  if (nq == 0 || nc == 0) return out;
  // One page charge per candidate for the whole group: every member query
  // evaluates the same records, so the batch path fetches each record once.
  if (io != nullptr) {
    for (const auto* o : objs) io->Increment(RecordPages(*o));
  }

  size_t total = 0;
  for (const auto* o : objs) total += o->pdf().size();
  // Query-chunking keeps the per-(query, candidate) tables inside the caller
  // bound; queries are independent, so re-slicing the query axis changes
  // nothing but arena size.
  const size_t bytes_per_query =
      total * (3 * sizeof(double) + sizeof(uint32_t)) + nc;
  size_t chunk = nq;
  if (options.max_scratch_bytes > 0 && bytes_per_query > 0) {
    chunk = std::max<size_t>(1, options.max_scratch_bytes / bytes_per_query);
    chunk = std::min(chunk, nq);
  }
  for (size_t begin = 0; begin < nq; begin += chunk) {
    const size_t n = std::min(chunk, nq - begin);
    EvaluateGroupChunk(queries.subspan(begin, n), candidates, scratch,
                       options.min_probability,
                       std::span<std::vector<PnnResult>>(out.data() + begin, n),
                       stats);
  }
  return out;
}

void PnnStep2Evaluator::EvaluateGroupChunk(
    std::span<const geom::Point> queries,
    std::span<const uncertain::ObjectId> candidates, QueryScratch* scratch,
    double min_probability, std::span<std::vector<PnnResult>> out,
    Step2BatchStats* stats) const {
  const size_t nq = queries.size();
  const size_t nc = candidates.size();
  const auto& objs = scratch->objs;  // resolved by EvaluateGroup

  auto& offsets = scratch->offsets;
  offsets.clear();
  offsets.reserve(nc + 1);
  size_t total = 0;
  offsets.push_back(0);
  for (const auto* o : objs) {
    total += o->pdf().size();
    offsets.push_back(total);
  }

  scratch->batch_dist.resize(nq * total);
  scratch->batch_suffix.resize(nq * total);
  scratch->batch_perm.resize(nq * total);
  scratch->batch_w.resize(nq * total);
  scratch->batch_alive.assign(nq * nc, 1);
  scratch->batch_alive_left.assign(nq, static_cast<uint32_t>(nc));

  // Build phase, candidate-outer: candidate i's pdf (positions and weights)
  // streams through cache once while its sorted-distance table is built for
  // every query in the chunk. The sort runs on a permutation with the same
  // (distance, probability) order as the per-query path's pair sort — equal
  // pairs are interchangeable — so dist/suffix come out bit-identical.
  auto& inst = scratch->inst_dist;
  for (size_t i = 0; i < nc; ++i) {
    const auto& pdf = objs[i]->pdf();
    const size_t m = pdf.size();
    const size_t base = offsets[i];
    inst.resize(m);
    for (size_t qi = 0; qi < nq; ++qi) {
      const geom::Point& q = queries[qi];
      const size_t off = qi * total + base;
      double* w = scratch->batch_w.data() + off;
      geom::PointDistBatch(InstanceCoordBase(pdf), kInstanceStrideDoubles, q,
                           m, inst.data());
      for (size_t k = 0; k < m; ++k) w[k] = pdf[k].probability;
      uint32_t* perm = scratch->batch_perm.data() + off;
      // Group members are near each other, so the previous query's sort
      // order usually still holds — seed from it and verify in O(m),
      // falling back to a fresh sort. Any non-decreasing (distance,
      // probability) arrangement yields the same dist/suffix arrays (equal
      // pairs are interchangeable), so reuse stays bit-identical.
      const auto less = [&](uint32_t a, uint32_t b) {
        if (inst[a] != inst[b]) return inst[a] < inst[b];
        return pdf[a].probability < pdf[b].probability;
      };
      bool seeded = false;
      if (qi > 0) {
        const uint32_t* prev = scratch->batch_perm.data() + off - total;
        std::copy(prev, prev + m, perm);
        seeded = std::is_sorted(perm, perm + m, less);
      }
      if (!seeded) {
        std::iota(perm, perm + m, 0u);
        std::sort(perm, perm + m, less);
      }
      double* dist = scratch->batch_dist.data() + off;
      double* suffix = scratch->batch_suffix.data() + off;
      for (size_t s = 0; s < m; ++s) dist[s] = inst[perm[s]];
      double run = 0.0;
      for (size_t s = m; s-- > 0;) {
        run += pdf[perm[s]].probability;
        suffix[s] = run;
      }
    }
  }

  // Sweep phase, candidate-outer / query-inner: candidate j's table streams
  // against every other candidate's instances of every query before the
  // next table is touched. Because j's table and i's probe distances are
  // both ascending, survival(j, t) — the first suffix entry past t, exactly
  // the per-query path's upper_bound — falls out of a linear merge instead
  // of a binary search per instance. Products accumulate in ascending j,
  // the same multiplication order as the per-query path, so every surviving
  // probability is bit-identical.
  int64_t pruned = 0;
  uint8_t* alive = scratch->batch_alive.data();
  uint32_t* alive_left = scratch->batch_alive_left.data();
  for (size_t j = 0; j < nc; ++j) {
    const size_t jbase = offsets[j];
    const size_t mj = offsets[j + 1] - jbase;
    for (size_t qi = 0; qi < nq; ++qi) {
      // Nothing left for j's table to discount? (j's own probability is
      // updated by the other candidates' sweeps, never its own.)
      const uint32_t others = alive_left[qi] - (alive[qi * nc + j] ? 1u : 0u);
      if (others == 0) continue;
      const double* dj = scratch->batch_dist.data() + qi * total + jbase;
      const double* sj = scratch->batch_suffix.data() + qi * total + jbase;
      for (size_t i = 0; i < nc; ++i) {
        if (i == j || !alive[qi * nc + i]) continue;
        const size_t ibase = offsets[i];
        const size_t mi = offsets[i + 1] - ibase;
        const double* probes = scratch->batch_dist.data() + qi * total + ibase;
        const uint32_t* perm = scratch->batch_perm.data() + qi * total + ibase;
        double* w = scratch->batch_w.data() + qi * total + ibase;
        size_t ptr = 0;
        double bound = 0.0;
        for (size_t s = 0; s < mi; ++s) {
          while (ptr < mj && dj[ptr] <= probes[s]) ++ptr;
          const double surv = ptr == mj ? 0.0 : sj[ptr];
          const double wv = w[perm[s]] * surv;
          w[perm[s]] = wv;
          bound += wv;
        }
        // `bound` sums i's partial products — an upper bound on its final
        // qualification probability, since the remaining survival factors
        // are all <= 1. The final gather sums the same non-negative terms
        // in pdf order, so it can exceed this s-order sum by rounding; the
        // slack factor absorbs that (relative reorder error is < m·eps,
        // and suffix heads round above 1 by at most m·eps) — a pruned pair
        // is guaranteed at or below the threshold in the per-query path
        // too, keeping the filtered answer sets identical. bound == 0 is
        // exact: every product is exactly zero, and so is their sum in any
        // order.
        constexpr double kBoundSlack = 1e-9;
        if (bound == 0.0 ? 0.0 <= min_probability
                         : bound * (1.0 + kBoundSlack) <= min_probability) {
          alive[qi * nc + i] = 0;
          --alive_left[qi];
          ++pruned;
        }
      }
    }
  }
  if (stats != nullptr) stats->pairs_pruned += pruned;

  // Gather: finished products summed in pdf order — the per-query path's
  // accumulation order — then the same filter and sort.
  for (size_t qi = 0; qi < nq; ++qi) {
    auto& res = out[qi];
    res.clear();
    for (size_t i = 0; i < nc; ++i) {
      if (!alive[qi * nc + i]) continue;
      const double* w = scratch->batch_w.data() + qi * total + offsets[i];
      const size_t m = offsets[i + 1] - offsets[i];
      double prob = 0.0;
      for (size_t k = 0; k < m; ++k) prob += w[k];
      if (prob > min_probability) res.push_back(PnnResult{candidates[i], prob});
    }
    std::sort(res.begin(), res.end(),
              [](const PnnResult& a, const PnnResult& b) {
                return a.probability > b.probability;
              });
  }
}

std::vector<PnnResult> PnnStep2Evaluator::EstimateByMonteCarlo(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    int trials, uint64_t seed) const {
  PVDB_CHECK(trials > 0);
  std::vector<const uncertain::UncertainObject*> objs;
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = objects_->FindObject(id);
    PVDB_CHECK(o != nullptr);
    objs.push_back(o);
  }
  // Precompute instance distances; sampling then picks one instance per
  // object per world (instances are uniform-weight in our generators; the
  // general weighted case uses inverse-CDF sampling).
  std::vector<std::vector<double>> dists(objs.size());
  std::vector<std::vector<double>> cdfs(objs.size());
  for (size_t i = 0; i < objs.size(); ++i) {
    double run = 0.0;
    for (const auto& inst : objs[i]->pdf()) {
      dists[i].push_back(inst.position.DistanceTo(q));
      run += inst.probability;
      cdfs[i].push_back(run);
    }
  }
  std::vector<int64_t> wins(objs.size(), 0);
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i < objs.size(); ++i) {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(cdfs[i].begin(), cdfs[i].end(), u);
      const size_t k = std::min<size_t>(
          static_cast<size_t>(it - cdfs[i].begin()), dists[i].size() - 1);
      const double d = dists[i][k];
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    ++wins[best_i];
  }
  std::vector<PnnResult> out;
  for (size_t i = 0; i < objs.size(); ++i) {
    out.push_back(PnnResult{objs[i]->id(),
                            static_cast<double>(wins[i]) / trials});
  }
  std::sort(out.begin(), out.end(),
            [](const PnnResult& a, const PnnResult& b) {
              return a.probability > b.probability;
            });
  return out;
}

}  // namespace pvdb::pv
