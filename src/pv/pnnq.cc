// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/pnnq.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/random.h"
#include "src/storage/record_store.h"

namespace pvdb::pv {

std::vector<uncertain::ObjectId> Step1BruteForce(const uncertain::Dataset& db,
                                                 const geom::Point& q) {
  std::vector<uncertain::ObjectId> out;
  if (db.size() == 0) return out;
  double tau_sq = std::numeric_limits<double>::infinity();
  for (const auto& o : db.objects()) {
    tau_sq = std::min(tau_sq, geom::MaxDistSq(o.region(), q));
  }
  for (const auto& o : db.objects()) {
    if (geom::MinDistSq(o.region(), q) <= tau_sq) out.push_back(o.id());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uncertain::ObjectId> Step1PruneMinMax(
    std::span<const LeafEntry> entries, const geom::Point& q) {
  std::vector<uncertain::ObjectId> out;
  if (entries.empty()) return out;
  double tau_sq = std::numeric_limits<double>::infinity();
  for (const LeafEntry& e : entries) {
    tau_sq = std::min(tau_sq, geom::MaxDistSq(e.region, q));
  }
  out.reserve(entries.size());
  for (const LeafEntry& e : entries) {
    if (geom::MinDistSq(e.region, q) <= tau_sq) out.push_back(e.id);
  }
  return out;
}

PnnStep2Evaluator::PnnStep2Evaluator(const uncertain::Dataset* db) : db_(db) {
  PVDB_CHECK(db_ != nullptr);
}

int64_t PnnStep2Evaluator::RecordPages(
    const uncertain::UncertainObject& o) const {
  // Secondary-index record: header (dim/pad + 2 rects) + serialized object.
  const size_t d = static_cast<size_t>(o.dim());
  const size_t header = 2 * sizeof(uint32_t) + 4 * sizeof(double) * d;
  const size_t object = sizeof(uint64_t) + 2 * sizeof(uint32_t) +
                        2 * sizeof(double) * d +
                        o.pdf().size() * (sizeof(double) * d + sizeof(double));
  return static_cast<int64_t>(
      storage::RecordStore::PagesNeeded(header + object));
}

namespace {

// Per-candidate sorted distance distribution with suffix probability sums:
// survival(t) = P(dist(o', q) > t) in O(log n).
struct DistanceTable {
  std::vector<double> dist;     // ascending
  std::vector<double> suffix;   // suffix[i] = sum of probs of dist[i..]

  double Survival(double t) const {
    // First index with dist > t (strict: ties do not count as "farther").
    const auto it = std::upper_bound(dist.begin(), dist.end(), t);
    const size_t i = static_cast<size_t>(it - dist.begin());
    return i < suffix.size() ? suffix[i] : 0.0;
  }
};

DistanceTable BuildTable(const uncertain::UncertainObject& o,
                         const geom::Point& q) {
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(o.pdf().size());
  for (const auto& inst : o.pdf()) {
    pairs.emplace_back(inst.position.DistanceTo(q), inst.probability);
  }
  std::sort(pairs.begin(), pairs.end());
  DistanceTable table;
  table.dist.resize(pairs.size());
  table.suffix.resize(pairs.size());
  double run = 0.0;
  for (size_t i = pairs.size(); i-- > 0;) {
    run += pairs[i].second;
    table.dist[i] = pairs[i].first;
    table.suffix[i] = run;
  }
  return table;
}

}  // namespace

std::vector<PnnResult> PnnStep2Evaluator::Evaluate(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    MetricRegistry* io, double min_probability) const {
  std::vector<const uncertain::UncertainObject*> objs;
  objs.reserve(candidates.size());
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = db_->Find(id);
    PVDB_CHECK(o != nullptr);
    objs.push_back(o);
    if (io != nullptr) {
      io->Increment(PnnCounters::kPdfPagesRead, RecordPages(*o));
    }
  }

  std::vector<DistanceTable> tables;
  tables.reserve(objs.size());
  for (const auto* o : objs) tables.push_back(BuildTable(*o, q));

  std::vector<PnnResult> out;
  for (size_t i = 0; i < objs.size(); ++i) {
    double prob = 0.0;
    for (const auto& inst : objs[i]->pdf()) {
      const double d = inst.position.DistanceTo(q);
      double world = inst.probability;
      for (size_t j = 0; j < objs.size() && world > 0.0; ++j) {
        if (j == i) continue;
        world *= tables[j].Survival(d);
      }
      prob += world;
    }
    if (prob > min_probability) {
      out.push_back(PnnResult{objs[i]->id(), prob});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PnnResult& a, const PnnResult& b) {
              return a.probability > b.probability;
            });
  return out;
}

std::vector<PnnResult> PnnStep2Evaluator::EstimateByMonteCarlo(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    int trials, uint64_t seed) const {
  PVDB_CHECK(trials > 0);
  std::vector<const uncertain::UncertainObject*> objs;
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = db_->Find(id);
    PVDB_CHECK(o != nullptr);
    objs.push_back(o);
  }
  // Precompute instance distances; sampling then picks one instance per
  // object per world (instances are uniform-weight in our generators; the
  // general weighted case uses inverse-CDF sampling).
  std::vector<std::vector<double>> dists(objs.size());
  std::vector<std::vector<double>> cdfs(objs.size());
  for (size_t i = 0; i < objs.size(); ++i) {
    double run = 0.0;
    for (const auto& inst : objs[i]->pdf()) {
      dists[i].push_back(inst.position.DistanceTo(q));
      run += inst.probability;
      cdfs[i].push_back(run);
    }
  }
  std::vector<int64_t> wins(objs.size(), 0);
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i < objs.size(); ++i) {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(cdfs[i].begin(), cdfs[i].end(), u);
      const size_t k = std::min<size_t>(
          static_cast<size_t>(it - cdfs[i].begin()), dists[i].size() - 1);
      const double d = dists[i][k];
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    ++wins[best_i];
  }
  std::vector<PnnResult> out;
  for (size_t i = 0; i < objs.size(); ++i) {
    out.push_back(PnnResult{objs[i]->id(),
                            static_cast<double>(wins[i]) / trials});
  }
  std::sort(out.begin(), out.end(),
            [](const PnnResult& a, const PnnResult& b) {
              return a.probability > b.probability;
            });
  return out;
}

}  // namespace pvdb::pv
