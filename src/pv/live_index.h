// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// LiveIndex: the durable, continuously-ingesting PV-index. It closes the
// gap between the read-only snapshot replica (PR 4) and a production
// writer: every Insert/Delete is written ahead to a CRC-checked WAL before
// it touches the in-memory index, periodic *delta seals* checkpoint the
// accumulated changes and truncate the log, and a (optionally background)
// compactor merges everything into a fresh full base snapshot that is
// published to serving through the wait-free QueryEngine::AdoptSnapshot
// hook. A crash at ANY point recovers to exactly the acknowledged-durable
// prefix of the mutation stream — the property tests/crash_recovery_test.cc
// proves across a matrix of injected crash points.
//
// On-disk layout of a LiveIndex directory (all writes through storage::Env):
//
//   CURRENT             "gen <G> delta <D> seq <S> wal <W>\n" — the
//                       manifest, replaced atomically (tmp + rename + dir
//                       fsync). Everything else is discovered through it.
//   base-<G>.snap       full sealed snapshot (the PR 4 format, mmap-able)
//   delta-<G>-<D>.snap  cumulative changes since base G (same checksummed
//                       section container; recovery-only, not served)
//   wal-<W>.log         mutations after checkpoint seq S (storage/wal.h)
//
// Mutation protocol (the write-ahead invariant):
//   1. validate against the live dataset (bad input never reaches the log);
//   2. append {seq, object image} to the WAL — group-commit fsync per
//      WalOptions; a failure here returns the error with NO state change;
//   3. apply to the dataset + PV-index builder.
// An acknowledged (OK) mutation is durable once the WAL policy synced it:
// with sync_every_n = 1 every ack is durable; with group commit a crash
// loses at most the last n-1 acknowledged records — never a middle record,
// never a torn half-apply.
//
// Checkpoint chain: recovery opens base-G.snap, applies delta-G-D.snap,
// rebuilds the mutable index, then replays wal-W.log skipping records with
// seq <= S (already inside the checkpoint) and stopping cleanly at a torn
// or corrupt tail. Delta seals rotate + truncate the WAL; compaction
// replaces the whole chain with a new base. Failures degrade gracefully:
// a failed seal or compaction leaves the previous generation serving and
// the WAL growing, and is retried later — ingest never stops, queries
// never see a partial generation.

#ifndef PVDB_PV_LIVE_INDEX_H_
#define PVDB_PV_LIVE_INDEX_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/pv/index_snapshot.h"
#include "src/pv/pv_index_builder.h"
#include "src/storage/env.h"
#include "src/storage/wal.h"
#include "src/uncertain/dataset.h"

namespace pvdb::pv {

/// WAL record types of the live-update pipeline (payloads are
/// little-endian, always prefixed by the record's u64 sequence number).
struct LiveWalRecord {
  /// seq u64 | UncertainObject::AppendTo image.
  static constexpr uint8_t kInsert = 1;
  /// seq u64 | object id u64.
  static constexpr uint8_t kDelete = 2;
};

/// Section kinds of a delta-seal file (disjoint from SnapshotSections so a
/// delta can never be mistaken for a serveable base image).
struct DeltaSections {
  /// dim u32 | pad u32 | base_gen u64 | delta_seq u64 | applied_seq u64 |
  /// n_deletes u64 | n_upserts u64.
  static constexpr uint32_t kMeta = 32;
  /// n_deletes object ids (u64 each), ascending.
  static constexpr uint32_t kDeletes = 33;
  /// n_upserts UncertainObject::AppendTo images, ascending id.
  static constexpr uint32_t kUpserts = 34;
};

struct LiveIndexOptions {
  /// Group-commit policy of the WAL (see storage/wal.h).
  storage::WalOptions wal;
  /// Options for the underlying PV-index (rebuilds + recovery rebuilds).
  PvIndexOptions index;
  /// Format/packing of sealed base snapshots.
  SealOptions seal;
  /// Automatically SealDelta() after this many acknowledged mutations
  /// since the last checkpoint (0 = manual seals only).
  uint64_t delta_seal_every_n = 0;
  /// With background_compaction, trigger a compaction once this many
  /// mutations accumulated since the current base (0 = manual only).
  uint64_t compact_after_records = 0;
  /// Run compactions on a background thread (TriggerCompaction /
  /// compact_after_records). Ingest continues during the file write; only
  /// the in-memory seal serializes briefly with mutations.
  bool background_compaction = false;
  /// Called with each newly published serving snapshot: the recovered base
  /// at Open, then every compacted generation. Wire this to
  /// QueryEngine::AdoptSnapshot for live serving. Invoked without internal
  /// locks held (from Open/Compact callers or the compactor thread).
  std::function<void(std::shared_ptr<const IndexSnapshot>)> publish;
};

/// What Open() found and did (observability + test assertions).
struct LiveRecoveryStats {
  /// False when the directory was empty and the bootstrap dataset seeded it.
  bool recovered = false;
  uint64_t base_objects = 0;
  uint64_t delta_upserts = 0;
  uint64_t delta_deletes = 0;
  /// WAL records applied (seq beyond the checkpoint).
  uint64_t wal_records_applied = 0;
  /// WAL records skipped because the checkpoint already contained them.
  uint64_t wal_records_skipped = 0;
  /// Torn/corrupt tail bytes dropped from the WAL (crash signature).
  uint64_t wal_bytes_dropped = 0;
  bool wal_tail_corrupt = false;
  std::string wal_tail_detail;
};

/// The durable live-update pipeline. Thread-safe: Insert/Delete/SealDelta/
/// Compact may be called from any thread; mutations are serialized
/// internally (the WAL is an ordered log).
class LiveIndex {
 public:
  /// Opens (recovering) or bootstraps (from `bootstrap`, used only when the
  /// directory has no CURRENT manifest) a LiveIndex in `dir`. A fresh
  /// bootstrap immediately seals base-1 so the durability floor exists
  /// before the first mutation is acknowledged.
  static Result<std::unique_ptr<LiveIndex>> Open(
      storage::Env* env, std::string dir, const uncertain::Dataset& bootstrap,
      LiveIndexOptions options = {}, LiveRecoveryStats* recovery = nullptr);

  /// Stops the compactor and syncs + closes the WAL.
  ~LiveIndex();

  LiveIndex(const LiveIndex&) = delete;
  LiveIndex& operator=(const LiveIndex&) = delete;

  /// Adds `object`: WAL append first, then dataset + index apply. On a
  /// non-OK return nothing was acknowledged (a WAL-side failure leaves no
  /// state change; validation failures never reach the log).
  Status Insert(uncertain::UncertainObject object);

  /// Removes the object with `id`, same write-ahead contract.
  Status Delete(uncertain::ObjectId id);

  /// Checkpoints the cumulative changes since the current base into a new
  /// delta file, rotates the WAL and truncates the old segment. Cheap:
  /// proportional to the changed-object set, not the database.
  Status SealDelta();

  /// Seals a full new base snapshot, publishes it (options.publish),
  /// updates CURRENT and garbage-collects the old generation. With
  /// background_compaction, prefer TriggerCompaction().
  Status Compact();

  /// Nudges the background compactor (no-op without background_compaction).
  void TriggerCompaction();

  /// Blocks until no compaction is in flight and returns the status of the
  /// last one that ran (OK when none ever did).
  Status WaitForCompaction();

  /// The most recently published serving snapshot (recovered base at Open,
  /// then each compacted generation). Never nullptr after a successful
  /// Open.
  std::shared_ptr<const IndexSnapshot> CurrentSnapshot() const;

  /// The live dataset / index (library-level queries and tests; answers
  /// include every acknowledged mutation, ahead of CurrentSnapshot()).
  const uncertain::Dataset& db() const { return *db_; }
  const PvIndex& index() const { return builder_->index(); }

  uint64_t generation() const;
  uint64_t delta_seq() const;
  /// Sequence number of the last acknowledged mutation.
  uint64_t last_seq() const;
  /// Mutations acknowledged but not yet covered by a delta seal/compaction.
  uint64_t records_since_checkpoint() const;
  /// Durable floor of the WAL (see WalWriter::synced_records()).
  uint64_t wal_synced_records() const;
  /// Outcome of the most recent automatic delta seal (degradation is
  /// graceful: a failed auto-seal never fails the mutation that tripped it,
  /// the WAL simply keeps growing — this is where the failure is visible).
  Status last_seal_status() const;
  /// Outcome of the most recent compaction (OK when none ran yet).
  Status last_compaction_status() const;

 private:
  LiveIndex(storage::Env* env, std::string dir, LiveIndexOptions options);

  /// First open of an empty directory: seed from the bootstrap dataset and
  /// seal base-1 before acknowledging anything.
  Status Bootstrap(const uncertain::Dataset& bootstrap);
  /// Open of an existing directory: CURRENT -> base -> delta -> WAL suffix.
  Status Recover(LiveRecoveryStats* stats);

  std::string BasePath(uint64_t gen) const;
  std::string DeltaPath(uint64_t gen, uint64_t delta) const;
  std::string WalPath(uint64_t wal_seg) const;
  std::string CurrentPath() const;

  /// Writes the CURRENT manifest atomically for the given state.
  Status WriteManifest(uint64_t gen, uint64_t delta, uint64_t seq,
                       uint64_t wal_seg);

  /// After a failed manifest write: does the on-disk CURRENT show the given
  /// state? 1 = yes (the rename happened before the failure), 0 = no (the
  /// old manifest survived intact), -1 = unreadable.
  int ProbeManifest(uint64_t gen, uint64_t delta, uint64_t seq,
                    uint64_t wal_seg);

  /// Auto delta seal / compaction trigger after an acknowledged mutation.
  void MaybeCheckpointLocked();

  /// Applies one replayed WAL record to dataset + builder + delta sets.
  Status ApplyWalRecord(uint8_t type, std::span<const uint8_t> payload,
                        uint64_t seq);

  /// Serializes the cumulative delta sets into a delta-file image.
  Result<std::vector<uint8_t>> BuildDeltaImage(uint64_t delta_seq) const;

  /// Deletes files in dir_ that the manifest no longer references
  /// (best-effort; leftovers are re-collected at the next Open).
  void GarbageCollectLocked();

  Status SealDeltaLocked();
  Status CompactImpl();
  void CompactorLoop();

  storage::Env* env_;
  const std::string dir_;
  LiveIndexOptions options_;

  mutable std::mutex mu_;
  std::unique_ptr<uncertain::Dataset> db_;
  std::unique_ptr<PvIndexBuilder> builder_;
  std::unique_ptr<storage::WalWriter> wal_;
  /// First non-OK apply after a successful WAL append poisons the instance:
  /// memory and log have diverged, only a re-Open (replay) reconciles them.
  Status broken_ = Status::OK();

  uint64_t gen_ = 0;        // current base generation
  uint64_t delta_ = 0;      // current delta seq within the generation
  uint64_t seq_ = 0;        // last acknowledged mutation seq
  uint64_t checkpoint_seq_ = 0;  // seq covered by base + delta chain
  uint64_t base_seq_ = 0;        // seq covered by the base alone
  uint64_t wal_seg_ = 0;    // current WAL segment number

  /// Net changed-object sets since the current base (what a delta stores).
  std::set<uncertain::ObjectId> delta_upserts_;
  std::set<uncertain::ObjectId> delta_deletes_;

  std::shared_ptr<const IndexSnapshot> current_snapshot_;

  Status last_seal_status_ = Status::OK();

  // Background compactor.
  std::condition_variable compact_cv_;
  bool compacting_ = false;       // phase 1..3 of a CompactImpl in flight
  bool compact_requested_ = false;
  bool compact_running_ = false;  // the compactor thread is inside a run
  bool shutdown_ = false;
  Status last_compaction_status_ = Status::OK();
  std::thread compactor_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_LIVE_INDEX_H_
