// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// IndexSnapshot: the sealed, read-only serving surface of a PV-index. A
// snapshot is produced by PvIndexBuilder::Seal() (in-memory image) or
// opened from a file saved by PvIndexBuilder::Save() — Open() mmaps the
// file and serves PNNQ Step 1 (octree descent + leaf-block decode + minmax
// prune) and Step 2 (pdf records via the ObjectSource seam) straight from
// the mapping: no octree rebuild, no full-file read, pdf pages faulted in
// on first touch. Answers are bit-identical to the builder's live index —
// the flat image preserves leaf entry order (page-chain order) and the
// descent arithmetic, and pruning/evaluation run the exact same kernels.
//
// The type is deeply immutable: every method is const and thread-safe, so
// the service layer shares one snapshot across all workers through a
// shared_ptr and hot-swaps it atomically (QueryEngine::AdoptSnapshot)
// without draining in-flight queries.
//
// Snapshot section kinds (inside the storage::SnapshotReader container):
//   meta           dim + object/node/leaf/entry counts
//   domain         per-dimension (lo, hi) doubles
//   nodes          flattened BFS octree (OctreePrimary::ExportFlat image)
//   leaf entries   (object id, per-dim lo/hi) per entry, page-chain order
//   object dir     sorted (id, offset, bytes) into the records section
//   object records per object: UBR doubles + UncertainObject::AppendTo
//
// Open always verifies the header plus the structural sections it descends
// through (meta, domain, nodes, directory, leaf entries). The bulk pdf
// records section — typically >90% of the file — is verified only with
// verify_payload, preserving lazy mmap semantics by default.

#ifndef PVDB_PV_INDEX_SNAPSHOT_H_
#define PVDB_PV_INDEX_SNAPSHOT_H_

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/pv/octree.h"
#include "src/pv/pnnq.h"
#include "src/storage/snapshot_file.h"
#include "src/uncertain/object_source.h"

namespace pvdb::pv {

/// Section kinds of the PV snapshot format. A file carries exactly one
/// leaf section: kLeafEntries (v1, interleaved per-entry records) or
/// kLeafSoA (v2, 64-byte-aligned per-dimension bound planes + id plane per
/// leaf, in flat-node order — the shape LeafBlockView serves zero-copy).
struct SnapshotSections {
  static constexpr uint32_t kMeta = 1;
  static constexpr uint32_t kDomain = 2;
  static constexpr uint32_t kNodes = 3;
  static constexpr uint32_t kLeafEntries = 4;
  static constexpr uint32_t kObjectDir = 5;
  static constexpr uint32_t kObjectRecords = 6;
  static constexpr uint32_t kLeafSoA = 7;
};

/// Meta-section flag bits (u32 at offset 4; reserved-zero in v1 files).
struct SnapshotMetaFlags {
  /// Pdf record bodies are packed (uncertain/record_codec.h) instead of
  /// raw UncertainObject::AppendTo images.
  static constexpr uint32_t kPackedRecords = 1u << 0;
  /// Any bit outside this mask fails Open: flags change decoding, so an
  /// unknown one cannot be skipped safely.
  static constexpr uint32_t kKnownMask = kPackedRecords;
};

struct SnapshotOpenOptions {
  /// Also verify the pdf-records checksum at open: a full-file read, for
  /// integrity-first deployments. Off by default so Open stays O(structure)
  /// and record pages are faulted lazily by queries.
  ///
  /// Integrity contract of the lazy default: the header and every
  /// structural section (descent, leaf entries, directory) are always
  /// verified, so Step 1 never reads unchecked bytes. Record payloads are
  /// not — a bit flip there is caught per record only if it breaks the
  /// record's framing (FindObject returns nullptr and the serving path
  /// fails that query with a Corruption status); value-level flips inside
  /// doubles are undetectable without the checksum. Open files from
  /// untrusted or unreliable storage with verify_payload = true.
  bool verify_payload = false;
};

/// An immutable, queryable PV-index image.
class IndexSnapshot final : public uncertain::ObjectSource {
 public:
  /// mmaps `path` and validates it; every failure mode (missing file,
  /// truncation, foreign magic, wrong format version, checksum mismatch,
  /// inconsistent structure) is a descriptive Status, never a crash.
  static Result<std::shared_ptr<const IndexSnapshot>> Open(
      const std::string& path, const SnapshotOpenOptions& options = {});

  /// Same validation over a sealed in-memory image (the Seal() path).
  static Result<std::shared_ptr<const IndexSnapshot>> FromImage(
      std::vector<uint8_t> image, const SnapshotOpenOptions& options = {});

  ~IndexSnapshot() override;

  int dim() const { return dim_; }
  const geom::Rect& domain() const { return domain_; }
  uint64_t object_count() const { return object_count_; }
  uint64_t node_count() const { return node_count_; }
  uint64_t leaf_count() const { return leaf_count_; }
  /// True when served from an mmap'd file (false for FromImage).
  bool mapped() const { return reader_->mapped(); }
  size_t file_bytes() const { return reader_->file_bytes(); }
  /// Container format version of the underlying file (1 or 2).
  uint32_t format_version() const { return reader_->version(); }
  /// True when the leaf payload is the v2 SoA section, i.e.
  /// ReadLeafBlockView serves Step 1 zero-copy.
  bool has_leaf_soa() const { return reader_->version() >= 2; }
  /// True when pdf record bodies are packed (record_codec.h).
  bool packed_records() const {
    return (meta_flags_ & SnapshotMetaFlags::kPackedRecords) != 0;
  }

  /// Locates the unique leaf containing `q` by descending the flat node
  /// image — same arithmetic as OctreePrimary::FindLeaf, no page access.
  /// The returned LeafRef carries the stable leaf id with a null node
  /// pointer (snapshot leaves are addressed by id, not by octree node).
  Result<OctreePrimary::LeafRef> FindLeaf(const geom::Point& q) const;

  /// Decodes one leaf's entries into the SoA block the Step-1 kernels
  /// consume; entry order is the original page-chain order. For v2 files
  /// this copies out of the SoA section (the decode fallback); prefer
  /// ReadLeafBlockView on the serving path.
  Result<LeafBlock> ReadLeafBlock(uint64_t leaf_id) const;

  /// Zero-copy view of one leaf: per-dimension bound-plane and id pointers
  /// straight into the mmap'd (or owned) v2 SoA section — no bytes copied
  /// or decoded. The view borrows the snapshot's memory: it is valid only
  /// while this snapshot is alive. NotSupported on v1 files (use
  /// ReadLeafBlock); entry order is identical to ReadLeafBlock's.
  Result<LeafBlockView> ReadLeafBlockView(uint64_t leaf_id) const;

  /// PNNQ Step 1, bit-identical to PvIndex::QueryPossibleNN on the sealed
  /// state: descent + block decode + batched minmax prune.
  Result<std::vector<uncertain::ObjectId>> QueryPossibleNN(
      const geom::Point& q, QueryScratch* scratch = nullptr) const;

  /// Range-query Step 1: ids of every object whose indexed uncertainty
  /// region intersects `range` (closed-box test), i.e. every object with
  /// possibly-nonzero probability of lying inside it. Walks the flat node
  /// image pruning subtrees whose cells miss the range, filters each
  /// surviving leaf's entries by their stored bound planes, and returns the
  /// ids sorted ascending and deduplicated (an object's UBR may span
  /// several leaves) — canonical order, so the result is a pure function of
  /// the range.
  Result<std::vector<uncertain::ObjectId>> RangeCandidates(
      const geom::Rect& range) const;

  /// ObjectSource: the record of `id`, parsed lazily out of the mapping on
  /// first access and cached for the snapshot's lifetime (lock-free CAS
  /// publication; concurrent first touches are safe). nullptr when the id
  /// is absent or its record fails to decode.
  const uncertain::UncertainObject* FindObject(
      uncertain::ObjectId id) const override;

  /// Parsing copy of the record of `id` (tests/tools; no caching).
  Result<uncertain::UncertainObject> GetObject(uncertain::ObjectId id) const;

  /// The stored UBR of `id`.
  Result<geom::Rect> GetUbr(uncertain::ObjectId id) const;

  /// All object ids in the snapshot, ascending.
  std::vector<uncertain::ObjectId> ObjectIds() const;

  /// Verifies the pdf-records checksum (the part Open skips by default).
  Status VerifyPayload() const;

 private:
  IndexSnapshot() = default;

  static Result<std::shared_ptr<const IndexSnapshot>> Build(
      std::shared_ptr<const storage::SnapshotReader> reader,
      const SnapshotOpenOptions& options);

  /// Directory slot of `id`, or npos.
  size_t FindDirSlot(uncertain::ObjectId id) const;
  /// Record payload (UBR + serialized object) of directory slot `slot`.
  std::span<const uint8_t> RecordAt(size_t slot) const;
  Result<uncertain::UncertainObject> ParseRecord(size_t slot) const;

  std::shared_ptr<const storage::SnapshotReader> reader_;
  int dim_ = 0;
  uint32_t meta_flags_ = 0;
  geom::Rect domain_{1};
  uint64_t object_count_ = 0;
  uint64_t node_count_ = 0;
  uint64_t leaf_count_ = 0;
  uint64_t entry_count_ = 0;
  std::span<const uint8_t> nodes_;
  std::span<const uint8_t> entries_;   // v1 leaf payload (empty in v2)
  std::span<const uint8_t> leaf_soa_;  // v2 leaf payload (empty in v1)
  std::span<const uint8_t> dir_;
  std::span<const uint8_t> records_;
  /// Where a leaf lives: its flat-node index and (v2) its byte offset into
  /// the SoA section. Offsets are recomputed at open by the same
  /// deterministic walk the builder serialized with.
  struct LeafLoc {
    uint64_t node_index;
    uint64_t soa_offset;
  };
  /// leaf id -> location, built once at open.
  std::unordered_map<uint64_t, LeafLoc> leaf_index_;
  /// Lazily parsed records, one slot per directory entry.
  std::unique_ptr<std::atomic<const uncertain::UncertainObject*>[]> objects_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_INDEX_SNAPSHOT_H_
