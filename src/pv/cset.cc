// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/cset.h"

#include <algorithm>
#include <functional>

namespace pvdb::pv {
namespace {

using uncertain::ObjectId;
using uncertain::UncertainObject;

CSetResult ChooseAll(const UncertainObject& o, const uncertain::Dataset& db) {
  CSetResult out;
  out.ids.reserve(db.size());
  out.regions.reserve(db.size());
  for (const auto& other : db.objects()) {
    if (other.id() == o.id()) continue;
    out.ids.push_back(other.id());
    out.regions.push_back(other.region());
  }
  out.examined = static_cast<int>(db.size());
  return out;
}

CSetResult ChooseFixed(const UncertainObject& o, const uncertain::Dataset& db,
                       const rtree::RStarTree& mean_tree, int k) {
  CSetResult out;
  auto it = mean_tree.BrowseNearest(o.MeanPosition());
  while (static_cast<int>(out.ids.size()) < k && it.HasNext()) {
    const auto item = it.Next();
    ++out.examined;
    if (item.value == o.id()) continue;
    const UncertainObject* other = db.Find(item.value);
    PVDB_DCHECK(other != nullptr);
    // FS keeps overlapping objects too — one of its documented weaknesses
    // (Section V-A): they can never constrain V(o) yet inflate the C-set.
    out.ids.push_back(other->id());
    out.regions.push_back(other->region());
  }
  return out;
}

// Quadrant masks of domain partitions (around o's mean) that `region`
// intersects: bit i of a mask selects the high (1) or low (0) side of
// dimension i.
void ForEachIntersectedQuadrant(const geom::Rect& region,
                                const geom::Point& pivot,
                                const std::function<void(unsigned)>& fn) {
  const int d = region.dim();
  const unsigned quadrants = 1u << d;
  for (unsigned mask = 0; mask < quadrants; ++mask) {
    bool hit = true;
    for (int i = 0; i < d && hit; ++i) {
      if ((mask >> i) & 1u) {
        hit = region.hi(i) >= pivot[i];
      } else {
        hit = region.lo(i) <= pivot[i];
      }
    }
    if (hit) fn(mask);
  }
}

CSetResult ChooseIncremental(const UncertainObject& o,
                             const uncertain::Dataset& db,
                             const rtree::RStarTree& mean_tree,
                             int k_partition, int k_global) {
  CSetResult out;
  const geom::Point pivot = o.MeanPosition();
  const int d = o.dim();
  const unsigned quadrants = 1u << d;
  std::vector<int> counters(quadrants, 0);
  int satisfied = 0;

  auto it = mean_tree.BrowseNearest(pivot);
  while (out.examined < k_global && it.HasNext()) {
    const auto item = it.Next();
    if (item.value == o.id()) continue;
    ++out.examined;
    const UncertainObject* other = db.Find(item.value);
    PVDB_DCHECK(other != nullptr);
    // Skip objects overlapping u(o): dom(n, o) = ∅ (Lemma 2), so they can
    // never shrink h(o).
    if (other->region().Intersects(o.region())) continue;
    out.ids.push_back(other->id());
    out.regions.push_back(other->region());
    ForEachIntersectedQuadrant(other->region(), pivot, [&](unsigned mask) {
      if (counters[mask] == k_partition - 1) ++satisfied;
      ++counters[mask];
    });
    if (satisfied == static_cast<int>(quadrants)) break;
  }
  return out;
}

}  // namespace

const char* CSetStrategyName(CSetStrategy s) {
  switch (s) {
    case CSetStrategy::kAll:
      return "ALL";
    case CSetStrategy::kFixed:
      return "FS";
    case CSetStrategy::kIncremental:
      return "IS";
  }
  return "?";
}

CSetResult ChooseCSet(const uncertain::UncertainObject& o,
                      const uncertain::Dataset& db,
                      const rtree::RStarTree& mean_tree,
                      const CSetOptions& options) {
  switch (options.strategy) {
    case CSetStrategy::kAll:
      return ChooseAll(o, db);
    case CSetStrategy::kFixed:
      return ChooseFixed(o, db, mean_tree, options.k);
    case CSetStrategy::kIncremental:
      return ChooseIncremental(o, db, mean_tree, options.k_partition,
                               options.k_global);
  }
  PVDB_CHECK(false);
  return CSetResult{};
}

}  // namespace pvdb::pv
