// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The PV-index's secondary index (Section VI-A): an extensible hash table
// keyed by object id whose records hold the object's UBR B(o), its
// uncertainty region u(o) and its discrete pdf. Records live in a paged
// record store (a 500-sample pdf spans several 4 KiB pages); the UBR and
// region sit in a fixed-size header at the front of each record so that
// UBR reads and updates touch a single page.

#ifndef PVDB_PV_SECONDARY_INDEX_H_
#define PVDB_PV_SECONDARY_INDEX_H_

#include <optional>

#include "src/storage/extendible_hash.h"
#include "src/storage/record_store.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::pv {

/// Disk-backed object catalog: id → (UBR, u(o), pdf).
class SecondaryIndex {
 public:
  /// Fixed-size record header available via one-page reads.
  struct Header {
    geom::Rect ubr;
    geom::Rect uregion;
    Header(geom::Rect u, geom::Rect r)
        : ubr(std::move(u)), uregion(std::move(r)) {}
  };

  /// Creates an empty index on `pager` (which the caller keeps alive).
  static Result<SecondaryIndex> Create(storage::Pager* pager);

  /// Inserts (or replaces) the record of `o` with UBR `ubr`.
  Status Put(const uncertain::UncertainObject& o, const geom::Rect& ubr);

  /// Reads only the record header (UBR + uncertainty region): at most two
  /// page reads (hash bucket + record head page).
  Result<Header> GetHeader(uncertain::ObjectId id) const;

  /// Reads only the UBR.
  Result<geom::Rect> GetUbr(uncertain::ObjectId id) const;

  /// Reads the full record including the pdf.
  Result<uncertain::UncertainObject> GetObject(uncertain::ObjectId id) const;

  /// Overwrites the stored UBR in place (single-page write).
  Status UpdateUbr(uncertain::ObjectId id, const geom::Rect& ubr);

  /// Removes the record of `id`.
  Status Remove(uncertain::ObjectId id);

  /// Number of stored objects.
  uint64_t Size() const { return hash_->Size(); }

 private:
  SecondaryIndex(storage::Pager* pager);

  static size_t HeaderBytes(int dim);

  storage::Pager* pager_;
  std::unique_ptr<storage::RecordStore> store_;
  std::unique_ptr<storage::ExtendibleHash> hash_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_SECONDARY_INDEX_H_
