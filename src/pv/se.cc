// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/se.h"

#include <algorithm>

namespace pvdb::pv {
namespace {

// Iteration safety valve per direction: 2^64 halvings exceed any double's
// resolution, so a run that long indicates a logic error.
constexpr int kMaxRoundsPerDirection = 64;

}  // namespace

geom::Rect SeAlgorithm::ComputeUbr(const uncertain::UncertainObject& o,
                                   std::span<const geom::Rect> cset,
                                   SeStats* stats) const {
  return Run(o, o.region(), domain_, cset, stats);
}

geom::Rect SeAlgorithm::ComputeUbrAfterDeletion(
    const uncertain::UncertainObject& o, const geom::Rect& old_ubr,
    std::span<const geom::Rect> cset, SeStats* stats) const {
  // l may overshoot M(S', o) (footnote 4); h = D keeps the result sound.
  return Run(o, old_ubr, domain_, cset, stats);
}

geom::Rect SeAlgorithm::ComputeUbrAfterInsertion(
    const uncertain::UncertainObject& o, const geom::Rect& old_ubr,
    std::span<const geom::Rect> cset, SeStats* stats) const {
  // V(S', o) ⊆ V(S, o) ⊆ old UBR (Lemma 9), so h can start from it.
  return Run(o, o.region(), old_ubr, cset, stats);
}

geom::Rect SeAlgorithm::Run(const uncertain::UncertainObject& o, geom::Rect l,
                            geom::Rect h, std::span<const geom::Rect> cset,
                            SeStats* stats) const {
  SeStats local;
  SeStats* st = stats ? stats : &local;
  *st = SeStats{};

  const int d = domain_.dim();
  PVDB_CHECK(o.dim() == d);
  PVDB_CHECK(h.ContainsRect(l));

  // With an empty C-set no slab can ever be proven empty; h is the answer.
  if (cset.empty()) return h;

  // Round-robin over (dimension, direction) pairs until every gap < Δ, as in
  // Algorithm 1's per-iteration sweep over all 2d directions.
  for (int round = 0; round < kMaxRoundsPerDirection; ++round) {
    bool any_gap = false;
    for (int j = 0; j < d; ++j) {
      for (int dir = 0; dir < 2; ++dir) {  // 0 = low, 1 = high
        const bool high = dir == 1;
        const double h_bound = high ? h.hi(j) : h.lo(j);
        const double l_bound = high ? l.hi(j) : l.lo(j);
        const double gap = high ? h_bound - l_bound : l_bound - h_bound;
        PVDB_DCHECK(gap >= -1e-9);
        if (gap < options_.delta) continue;
        any_gap = true;

        // Step 7: mid-plane between h and l in this direction.
        const double mid = 0.5 * (h_bound + l_bound);
        // Step 8: slab R between the mid-plane and h's boundary, spanning h
        // in every other dimension.
        geom::Rect slab = h;
        if (high) {
          slab.set_lo(j, mid);
        } else {
          slab.set_hi(j, mid);
        }

        // Step 9: does the slab provably avoid I(Cset, o)?
        ++st->slab_tests;
        geom::PartitionStats pstats;
        const bool outside = geom::ProvenOutsidePVCell(
            slab, o.region(), cset, options_.max_partitions, &pstats);
        st->cells_examined += pstats.cells_examined;
        if (outside) {
          // Step 10: shrink h to the mid-plane.
          ++st->shrinks;
          if (high) {
            h.set_hi(j, mid);
          } else {
            h.set_lo(j, mid);
          }
        } else {
          // Step 12: expand l to the mid-plane.
          ++st->expands;
          if (high) {
            l.set_hi(j, mid);
          } else {
            l.set_lo(j, mid);
          }
        }
      }
    }
    if (!any_gap) break;
  }
  PVDB_DCHECK(h.ContainsRect(l));
  return h;
}

}  // namespace pvdb::pv
