// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/verifier.h"

#include <algorithm>
#include <cmath>

namespace pvdb::pv {
namespace {

// Sorted (distance, weight) view of one candidate's pdf w.r.t. the query,
// with suffix mass sums for O(log n) survival lookups.
struct SurvivalTable {
  std::vector<double> dist;
  std::vector<double> suffix;

  double Survival(double t) const {
    const auto it = std::upper_bound(dist.begin(), dist.end(), t);
    const size_t i = static_cast<size_t>(it - dist.begin());
    return i < suffix.size() ? suffix[i] : 0.0;
  }
};

SurvivalTable BuildSurvival(const uncertain::UncertainObject& o,
                            const geom::Point& q) {
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(o.pdf().size());
  for (const auto& inst : o.pdf()) {
    pairs.emplace_back(inst.position.DistanceTo(q), inst.probability);
  }
  std::sort(pairs.begin(), pairs.end());
  SurvivalTable table;
  table.dist.resize(pairs.size());
  table.suffix.resize(pairs.size());
  double run = 0.0;
  for (size_t i = pairs.size(); i-- > 0;) {
    run += pairs[i].second;
    table.dist[i] = pairs[i].first;
    table.suffix[i] = run;
  }
  return table;
}

// One contiguous distance bin of a candidate's sorted samples.
struct Bin {
  double lo_dist;
  double hi_dist;
  double mass;
};

std::vector<Bin> MakeBins(const SurvivalTable& table, int bins) {
  const size_t n = table.dist.size();
  const size_t b = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(bins), n));
  std::vector<Bin> out;
  out.reserve(b);
  const size_t chunk = (n + b - 1) / b;
  for (size_t start = 0; start < n; start += chunk) {
    const size_t end = std::min(n, start + chunk);
    const double mass = table.suffix[start] -
                        (end < n ? table.suffix[end] : 0.0);
    out.push_back(Bin{table.dist[start], table.dist[end - 1], mass});
  }
  return out;
}

}  // namespace

ProbabilisticVerifier::ProbabilisticVerifier(const uncertain::Dataset* db,
                                             VerifierOptions options)
    : db_(db), options_(options), exact_(db) {
  PVDB_CHECK(db_ != nullptr);
  PVDB_CHECK(options_.bins >= 1);
}

std::vector<ProbabilityBounds> ProbabilisticVerifier::Bounds(
    const geom::Point& q,
    std::span<const uncertain::ObjectId> candidates) const {
  std::vector<const uncertain::UncertainObject*> objs;
  objs.reserve(candidates.size());
  for (uncertain::ObjectId id : candidates) {
    const uncertain::UncertainObject* o = db_->Find(id);
    PVDB_CHECK(o != nullptr);
    objs.push_back(o);
  }
  std::vector<SurvivalTable> tables;
  tables.reserve(objs.size());
  for (const auto* o : objs) tables.push_back(BuildSurvival(*o, q));

  std::vector<ProbabilityBounds> out;
  out.reserve(objs.size());
  for (size_t i = 0; i < objs.size(); ++i) {
    const std::vector<Bin> bins = MakeBins(tables[i], options_.bins);
    double lower = 0.0, upper = 0.0;
    for (const Bin& bin : bins) {
      // Pessimistic: all of the bin's mass at its farthest distance;
      // optimistic: all of it at its nearest distance. Survival functions
      // are non-increasing, so these bracket every sample's true factor.
      double lo_product = bin.mass;
      double hi_product = bin.mass;
      for (size_t j = 0; j < objs.size() && (lo_product > 0 || hi_product > 0);
           ++j) {
        if (j == i) continue;
        lo_product *= tables[j].Survival(bin.hi_dist);
        hi_product *= tables[j].Survival(bin.lo_dist);
      }
      lower += lo_product;
      upper += hi_product;
    }
    upper = std::min(upper, 1.0);
    lower = std::min(lower, upper);
    out.push_back(ProbabilityBounds{objs[i]->id(), lower, upper});
  }
  return out;
}

std::vector<PnnResult> ProbabilisticVerifier::EvaluateThreshold(
    const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
    double tau, VerifierStats* stats) const {
  PVDB_CHECK(tau > 0.0);
  VerifierStats local;
  VerifierStats* st = stats ? stats : &local;
  *st = VerifierStats{};

  const std::vector<ProbabilityBounds> bounds = Bounds(q, candidates);
  std::vector<PnnResult> out;
  std::vector<uncertain::ObjectId> undecided;
  for (const ProbabilityBounds& b : bounds) {
    if (b.lower >= tau) {
      ++st->accepted_by_bounds;
      out.push_back(PnnResult{b.id, b.lower});
    } else if (b.upper < tau) {
      ++st->rejected_by_bounds;
    } else {
      ++st->exact_fallbacks;
      undecided.push_back(b.id);
    }
  }
  if (!undecided.empty()) {
    // One exact pass decides every undecided candidate (the evaluation is
    // shared across candidates anyway).
    const auto exact = exact_.Evaluate(q, candidates);
    for (uncertain::ObjectId id : undecided) {
      for (const PnnResult& r : exact) {
        if (r.id == id && r.probability >= tau) {
          out.push_back(r);
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PnnResult& a, const PnnResult& b) {
              return a.probability > b.probability;
            });
  return out;
}

}  // namespace pvdb::pv
