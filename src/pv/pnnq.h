// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Probabilistic Nearest Neighbor Query evaluation. Step 1 (candidate
// retrieval) is pluggable — PV-index, R-tree branch-and-prune, UV-index or
// the linear-scan oracle below; Step 2 computes qualification probabilities
// with the method of Cheng et al. [8] instantiated on the discrete pdf model
// the paper's experiments use (Section VII-A): for each instance x_i of o,
// P(o = NN | o.a = x_i) = Π_{o' ≠ o} P(dist(o', q) > dist(x_i, q)), read off
// per-object sorted distance arrays.

#ifndef PVDB_PV_PNNQ_H_
#define PVDB_PV_PNNQ_H_

#include <span>
#include <vector>

#include "src/common/stats.h"
#include "src/geom/distance.h"
#include "src/pv/octree.h"
#include "src/uncertain/dataset.h"

namespace pvdb::pv {

/// One PNNQ answer: an object and its qualification probability.
struct PnnResult {
  uncertain::ObjectId id;
  double probability;
};

/// Counter names charged by Step 2.
struct PnnCounters {
  /// Pages read to fetch candidate pdf records (secondary-index model; the
  /// charge is identical whichever Step-1 index produced the candidates,
  /// matching the equal-PC observation of Figure 9(b)).
  static constexpr const char* kPdfPagesRead = "pnnq.pdf_pages_read";
};

/// PNNQ Step 1 oracle: linear-scan minmax filter
/// {o : MinDist(u(o), q) <= min_{o'} MaxDist(u(o'), q)}. Ground truth for
/// index correctness tests and the ultimate fallback implementation.
std::vector<uncertain::ObjectId> Step1BruteForce(const uncertain::Dataset& db,
                                                 const geom::Point& q);

/// Minmax pruning over one leaf's raw entries (Section VI-A): drops every
/// object whose MinDist to `q` exceeds the smallest MaxDist among the
/// entries. Shared by the octree-carrier Step-1 paths (PV-index, UV-index)
/// and the service layer's leaf-result cache, so that pruning cached entries
/// is bit-identical to the index's own query. Preserves entry order.
std::vector<uncertain::ObjectId> Step1PruneMinMax(
    std::span<const LeafEntry> entries, const geom::Point& q);

/// Step 2 evaluator over a database's discrete pdfs.
class PnnStep2Evaluator {
 public:
  /// Borrows `db`; the caller keeps it alive and unmodified per evaluation.
  explicit PnnStep2Evaluator(const uncertain::Dataset* db);

  /// Computes qualification probabilities for `candidates` at query `q`.
  /// Results with probability <= `min_probability` are dropped (the paper's
  /// PNNQ returns objects with probability > 0). Pdf page reads are charged
  /// to `io` when provided.
  std::vector<PnnResult> Evaluate(const geom::Point& q,
                                  std::span<const uncertain::ObjectId> candidates,
                                  MetricRegistry* io = nullptr,
                                  double min_probability = 0.0) const;

  /// Monte-Carlo estimator of the same probabilities by joint possible-world
  /// sampling (test oracle; `trials` independent worlds).
  std::vector<PnnResult> EstimateByMonteCarlo(
      const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
      int trials, uint64_t seed) const;

  /// Pages a candidate's pdf record occupies (the Step-2 I/O charge).
  int64_t RecordPages(const uncertain::UncertainObject& o) const;

 private:
  const uncertain::Dataset* db_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_PNNQ_H_
