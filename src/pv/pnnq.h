// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Probabilistic Nearest Neighbor Query evaluation. Step 1 (candidate
// retrieval) is pluggable — PV-index, R-tree branch-and-prune, UV-index or
// the linear-scan oracle below; Step 2 computes qualification probabilities
// with the method of Cheng et al. [8] instantiated on the discrete pdf model
// the paper's experiments use (Section VII-A): for each instance x_i of o,
// P(o = NN | o.a = x_i) = Π_{o' ≠ o} P(dist(o', q) > dist(x_i, q)), read off
// per-object sorted distance arrays.

#ifndef PVDB_PV_PNNQ_H_
#define PVDB_PV_PNNQ_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/geom/distance.h"
#include "src/geom/distance_batch.h"
#include "src/geom/rect.h"
#include "src/pv/octree.h"
#include "src/uncertain/dataset.h"

namespace pvdb::pv {

/// Reusable per-query working memory for the PNNQ hot path. Step-1 block
/// pruning writes its batched distance values here, and Step-2 builds every
/// per-object sorted-distance table into the pooled flat arrays instead of
/// fresh heap allocations per query. One scratch serves one query at a time;
/// the service layer keeps one per worker thread, so steady-state serving
/// does no per-query allocation beyond the answer vectors themselves.
/// Contents carry no state between queries — every user overwrites what it
/// reads — so reuse is safe and bit-transparent.
struct QueryScratch {
  /// Step 1: batched MinDistSq / MaxDistSq values, one slot per leaf entry.
  std::vector<double> min_dist_sq;
  std::vector<double> max_dist_sq;
  /// Step 1: branchless-compaction staging buffer for surviving ids.
  std::vector<uncertain::ObjectId> candidate_ids;

  /// Step 2: borrowed candidate records, in candidate order.
  std::vector<const uncertain::UncertainObject*> objs;
  /// Step 2: (distance, probability) sort buffer for one object's pdf.
  std::vector<std::pair<double, double>> pairs;
  /// Step 2: per-candidate instance distances in pdf order, concatenated;
  /// candidate i spans [offsets[i], offsets[i+1]).
  std::vector<double> inst_dist;
  /// Step 2: per-candidate ascending distances (same layout as inst_dist).
  std::vector<double> dist;
  /// Step 2: suffix probability sums aligned with `dist`.
  std::vector<double> suffix;
  /// Step 2: candidate slice boundaries into the flat arrays (size n + 1).
  std::vector<size_t> offsets;

  /// Batched Step 2 (EvaluateGroup): per-(query, candidate) tables, flat.
  /// With `total` = sum of candidate pdf sizes, query qi owns
  /// [qi * total, (qi + 1) * total) of each array, and candidate i the
  /// sub-slice [offsets[i], offsets[i + 1]) within it.
  /// Ascending instance distances (the per-candidate sorted table).
  std::vector<double> batch_dist;
  /// Suffix probability sums aligned with `batch_dist`.
  std::vector<double> batch_suffix;
  /// Sort permutation: batch_perm[s] is the pdf position of sorted slot s.
  std::vector<uint32_t> batch_perm;
  /// Running survival products per instance, in pdf order.
  std::vector<double> batch_w;
  /// Early-exit flags per (query, candidate), row-major by query.
  std::vector<uint8_t> batch_alive;
  /// Alive candidates left per query.
  std::vector<uint32_t> batch_alive_left;

  /// Serving-path trace hook: when non-null, the Step-2 evaluator charges
  /// its elapsed time here (QueryStage::kStep2). The engine points this at
  /// the active query's (or group sweep's) StageTimings around each
  /// evaluation; library callers leave it null and pay no clock reads.
  /// Borrowed, never owned — users must clear it before the pointee dies.
  StageTimings* timings = nullptr;

  /// Heap bytes currently reserved across every pooled buffer (capacities,
  /// not sizes — the number ShrinkToFit compares against its bound).
  size_t ApproxBytes() const;

  /// Releases every buffer when ApproxBytes() exceeds `max_bytes`, so one
  /// pathological query (a huge leaf, an oversized batch group) doesn't pin
  /// arena memory for the owning worker's lifetime. Below the bound this is
  /// a no-op and the arenas stay warm.
  void ShrinkToFit(size_t max_bytes);
};

/// One PNNQ answer: an object and its qualification probability.
struct PnnResult {
  uncertain::ObjectId id;
  double probability;
};

/// Counter names charged by Step 2.
struct PnnCounters {
  /// Pages read to fetch candidate pdf records (secondary-index model; the
  /// charge is identical whichever Step-1 index produced the candidates,
  /// matching the equal-PC observation of Figure 9(b)).
  static constexpr const char* kPdfPagesRead = "pnnq.pdf_pages_read";
};

/// PNNQ Step 1 oracle: linear-scan minmax filter
/// {o : MinDist(u(o), q) <= min_{o'} MaxDist(u(o'), q)}. Ground truth for
/// index correctness tests and the ultimate fallback implementation.
std::vector<uncertain::ObjectId> Step1BruteForce(const uncertain::Dataset& db,
                                                 const geom::Point& q);

/// Minmax pruning over one leaf's raw entries (Section VI-A): drops every
/// object whose MinDist to `q` exceeds the smallest MaxDist among the
/// entries. Shared by the octree-carrier Step-1 paths (PV-index, UV-index)
/// and the service layer's leaf-result cache, so that pruning cached entries
/// is bit-identical to the index's own query. Preserves entry order.
std::vector<uncertain::ObjectId> Step1PruneMinMax(
    std::span<const LeafEntry> entries, const geom::Point& q);

/// Block form of the same pruning: two passes of the batched kernels (min
/// over MaxDistSq fixes the threshold, then a MinDistSq filter compacted by
/// geom::CompressIdsLe) over the SoA leaf block. Both passes run the
/// runtime-dispatched SIMD kernels (geom::ActiveSimdLevel — SSE2/AVX2/
/// AVX-512 per CPUID, PVDB_SIMD_LEVEL to force). Candidate set and order
/// are bit-identical to the scalar entry-list overload above at every
/// level; that overload remains the reference implementation. `scratch`
/// pools the batched distance buffer; pass nullptr to allocate locally.
std::vector<uncertain::ObjectId> Step1PruneMinMax(
    const LeafBlock& block, const geom::Point& q,
    QueryScratch* scratch = nullptr);

/// Zero-copy form of the block prune: the same two passes run directly on a
/// non-owning LeafBlockView — per-dimension bound planes and the id array
/// living wherever the view points, typically an mmap'd v2 snapshot's SoA
/// leaf section — with τ² reduced by the dispatched geom::MinReduce. No leaf
/// bytes are copied or decoded. This is the core implementation; the
/// LeafBlock overload above delegates here through LeafBlock::View(), so
/// view-based and block-based pruning are bit-identical by construction at
/// every SIMD level.
std::vector<uncertain::ObjectId> Step1PruneMinMax(
    const LeafBlockView& view, const geom::Point& q,
    QueryScratch* scratch = nullptr);

/// Batched-Step-2 plan: an engine batch's queries grouped by identical
/// surviving candidate sets. Queries landing in the same octree leaf tend to
/// survive the same minmax prune, so a serving batch collapses into few
/// groups; each group is evaluated by one EvaluateGroup sweep that builds
/// every candidate table once per (candidate, query) with the candidate's
/// pdf streaming through cache across the whole group. Groups are identified
/// by the exact candidate vector (same ids, same order) — the leaf id that
/// located the candidates upstream (ResultCache's key) seeds the Group for
/// bookkeeping, but equal candidate sets group even across leaves. Hash
/// collisions are resolved by full-vector comparison, never by trust.
class Step2Batch {
 public:
  struct Group {
    /// Octree leaf id of the first member's Step-1 carrier (kNoLeafId when
    /// the backend has no leaf structure).
    uint64_t leaf_key = kNoLeafId;
    /// The shared candidate set, in Step-1 order.
    std::vector<uncertain::ObjectId> candidates;
    /// Batch positions of the member queries, in Add order.
    std::vector<uint32_t> queries;
  };

  /// Files batch position `query_index` under its candidate set, creating a
  /// new group on first sight of the vector.
  void Add(uint32_t query_index, uint64_t leaf_key,
           std::vector<uncertain::ObjectId> candidates);

  const std::vector<Group>& groups() const { return groups_; }

 private:
  static uint64_t HashCandidates(
      std::span<const uncertain::ObjectId> candidates);

  std::vector<Group> groups_;
  /// Candidate-vector hash -> indexes into groups_ (collision chain).
  std::unordered_map<uint64_t, std::vector<size_t>> by_hash_;
};

/// Introspection counters of EvaluateGroup calls (accumulating).
struct Step2BatchStats {
  /// (query, candidate) pairs retired early because the running survival
  /// upper bound fell to or below min_probability.
  int64_t pairs_pruned = 0;
};

/// Knobs of one EvaluateGroup call.
struct Step2GroupOptions {
  /// Results with probability <= this are dropped, and a (query, candidate)
  /// pair leaves the sweep as soon as its survival upper bound sinks to or
  /// below it.
  double min_probability = 0.0;
  /// Soft cap on the batch arenas: the group is processed in query chunks
  /// whose tables fit this many bytes (0 = one chunk). Chunking only
  /// re-slices the query axis; per-query results are unaffected.
  size_t max_scratch_bytes = 0;
  /// Pre-resolved candidate records aligned with the candidate list (e.g.
  /// from a cached per-leaf plan); empty means resolve via dataset lookup.
  std::span<const uncertain::UncertainObject* const> resolved = {};
};

/// Step 2 evaluator over a database's discrete pdfs. Candidate records
/// resolve through the ObjectSource seam, so the same evaluator serves from
/// the in-memory Dataset or from a sealed IndexSnapshot's mmap'd records.
class PnnStep2Evaluator {
 public:
  /// Borrows `objects` (a Dataset, an IndexSnapshot, ...); the caller keeps
  /// it alive and unmodified per evaluation.
  explicit PnnStep2Evaluator(const uncertain::ObjectSource* objects);

  /// Computes qualification probabilities for `candidates` at query `q`.
  /// Results with probability <= `min_probability` are dropped (the paper's
  /// PNNQ returns objects with probability > 0). Pdf page reads are charged
  /// to `io` when provided. Allocates a fresh QueryScratch per call;
  /// probabilities are bit-identical to the scratch overload below.
  std::vector<PnnResult> Evaluate(const geom::Point& q,
                                  std::span<const uncertain::ObjectId> candidates,
                                  MetricRegistry* io = nullptr,
                                  double min_probability = 0.0) const;

  /// Hot-path overload: builds the per-object sorted-distance tables into
  /// `scratch`'s pooled buffers (no per-query heap allocation at steady
  /// state) and charges pdf page reads to the pre-registered `io` handle
  /// lock-free. Same math, same order, bit-identical results.
  ///
  /// `status`, when supplied, turns an unresolvable candidate record into a
  /// per-call Corruption status with an empty result — the serving path's
  /// contract for snapshots whose lazily-read records turn out damaged.
  /// Without it, a missing record is treated as a caller bug and aborts
  /// (the Dataset invariant: Step-1 candidates exist in the database).
  std::vector<PnnResult> Evaluate(const geom::Point& q,
                                  std::span<const uncertain::ObjectId> candidates,
                                  QueryScratch* scratch,
                                  MetricRegistry::Counter* io = nullptr,
                                  double min_probability = 0.0,
                                  Status* status = nullptr) const;

  /// Batched Step 2 over one plan group: every query shares `candidates`,
  /// and result slot t answers queries[t]. Probabilities are bit-identical
  /// to per-query Evaluate(queries[t], candidates, ...): the sweep runs
  /// candidate-outer / query-inner — one candidate's sorted-distance table
  /// is built and streamed against all queries before the next — with the
  /// per-instance survival products multiplied in the same candidate order
  /// and summed in the same pdf order as the per-query path. Early exit
  /// drops a (query, candidate) pair once the sum of its partial products
  /// (a true upper bound on its qualification probability, since every
  /// remaining survival factor is <= 1) reaches min_probability — only
  /// answers the per-query path would filter anyway. Pdf page reads are
  /// charged to `io` once per candidate for the whole group (the batch path
  /// fetches each record once, not once per query).
  /// `status` follows the Evaluate contract above (group-wide: one damaged
  /// record fails the whole group's call, results come back empty).
  std::vector<std::vector<PnnResult>> EvaluateGroup(
      std::span<const geom::Point> queries,
      std::span<const uncertain::ObjectId> candidates, QueryScratch* scratch,
      MetricRegistry::Counter* io = nullptr,
      const Step2GroupOptions& options = Step2GroupOptions(),
      Step2BatchStats* stats = nullptr, Status* status = nullptr) const;

  /// Top-k-by-probability variant: the k highest qualification probabilities
  /// at `q`, ordered (probability desc, id asc). Probabilities of returned
  /// objects are bit-identical to Evaluate — the accumulation is the same
  /// loop — and the answer equals sorting Evaluate's full result by
  /// (probability desc, id asc) and truncating to k. What top-k adds is a
  /// second early-exit: a candidate is abandoned once the sum of its partial
  /// products plus its remaining pdf weight (a true upper bound, every
  /// survival factor being <= 1) provably cannot reach the current k-th best
  /// finished probability. The bound check is strict (<) so a candidate that
  /// could tie the k-th probability — and win the id tie-break — is never
  /// dropped. `early_exits`, when provided, accumulates abandoned
  /// candidates (bench instrumentation). Results with probability <=
  /// `min_probability` are dropped first, exactly as Evaluate does;
  /// `min_probability` must be >= 0.
  std::vector<PnnResult> EvaluateTopK(
      const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
      uint32_t k, QueryScratch* scratch, MetricRegistry::Counter* io = nullptr,
      double min_probability = 0.0, Status* status = nullptr,
      int64_t* early_exits = nullptr) const;

  /// Probabilistic range variant: P(o inside `range`) for each candidate —
  /// the candidate's pdf weights summed in pdf order over instances whose
  /// position the closed rect contains. Results with probability <=
  /// `threshold` are dropped; survivors are ordered (probability desc,
  /// id asc) — a total order, so the answer is a pure function of the
  /// candidate SET (any candidate order, e.g. a router's merged set, yields
  /// identical bits). Pdf page reads are charged per candidate as in
  /// Evaluate; `status` follows the Evaluate contract.
  std::vector<PnnResult> EvaluateRangeProb(
      const geom::Rect& range, std::span<const uncertain::ObjectId> candidates,
      MetricRegistry::Counter* io = nullptr, double threshold = 0.0,
      Status* status = nullptr) const;

  /// Monte-Carlo estimator of the same probabilities by joint possible-world
  /// sampling (test oracle; `trials` independent worlds).
  std::vector<PnnResult> EstimateByMonteCarlo(
      const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
      int trials, uint64_t seed) const;

  /// Pages a candidate's pdf record occupies (the Step-2 I/O charge).
  int64_t RecordPages(const uncertain::UncertainObject& o) const;

 private:
  /// One query chunk of EvaluateGroup: builds the per-(query, candidate)
  /// tables into `scratch` and runs the candidate-outer sweep.
  void EvaluateGroupChunk(std::span<const geom::Point> queries,
                          std::span<const uncertain::ObjectId> candidates,
                          QueryScratch* scratch, double min_probability,
                          std::span<std::vector<PnnResult>> out,
                          Step2BatchStats* stats) const;

  const uncertain::ObjectSource* objects_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_PNNQ_H_
