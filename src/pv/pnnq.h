// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Probabilistic Nearest Neighbor Query evaluation. Step 1 (candidate
// retrieval) is pluggable — PV-index, R-tree branch-and-prune, UV-index or
// the linear-scan oracle below; Step 2 computes qualification probabilities
// with the method of Cheng et al. [8] instantiated on the discrete pdf model
// the paper's experiments use (Section VII-A): for each instance x_i of o,
// P(o = NN | o.a = x_i) = Π_{o' ≠ o} P(dist(o', q) > dist(x_i, q)), read off
// per-object sorted distance arrays.

#ifndef PVDB_PV_PNNQ_H_
#define PVDB_PV_PNNQ_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/geom/distance.h"
#include "src/geom/distance_batch.h"
#include "src/pv/octree.h"
#include "src/uncertain/dataset.h"

namespace pvdb::pv {

/// Reusable per-query working memory for the PNNQ hot path. Step-1 block
/// pruning writes its batched distance values here, and Step-2 builds every
/// per-object sorted-distance table into the pooled flat arrays instead of
/// fresh heap allocations per query. One scratch serves one query at a time;
/// the service layer keeps one per worker thread, so steady-state serving
/// does no per-query allocation beyond the answer vectors themselves.
/// Contents carry no state between queries — every user overwrites what it
/// reads — so reuse is safe and bit-transparent.
struct QueryScratch {
  /// Step 1: batched MinDistSq / MaxDistSq values, one slot per leaf entry.
  std::vector<double> min_dist_sq;
  std::vector<double> max_dist_sq;
  /// Step 1: branchless-compaction staging buffer for surviving ids.
  std::vector<uncertain::ObjectId> candidate_ids;

  /// Step 2: borrowed candidate records, in candidate order.
  std::vector<const uncertain::UncertainObject*> objs;
  /// Step 2: (distance, probability) sort buffer for one object's pdf.
  std::vector<std::pair<double, double>> pairs;
  /// Step 2: per-candidate instance distances in pdf order, concatenated;
  /// candidate i spans [offsets[i], offsets[i+1]).
  std::vector<double> inst_dist;
  /// Step 2: per-candidate ascending distances (same layout as inst_dist).
  std::vector<double> dist;
  /// Step 2: suffix probability sums aligned with `dist`.
  std::vector<double> suffix;
  /// Step 2: candidate slice boundaries into the flat arrays (size n + 1).
  std::vector<size_t> offsets;
};

/// One PNNQ answer: an object and its qualification probability.
struct PnnResult {
  uncertain::ObjectId id;
  double probability;
};

/// Counter names charged by Step 2.
struct PnnCounters {
  /// Pages read to fetch candidate pdf records (secondary-index model; the
  /// charge is identical whichever Step-1 index produced the candidates,
  /// matching the equal-PC observation of Figure 9(b)).
  static constexpr const char* kPdfPagesRead = "pnnq.pdf_pages_read";
};

/// PNNQ Step 1 oracle: linear-scan minmax filter
/// {o : MinDist(u(o), q) <= min_{o'} MaxDist(u(o'), q)}. Ground truth for
/// index correctness tests and the ultimate fallback implementation.
std::vector<uncertain::ObjectId> Step1BruteForce(const uncertain::Dataset& db,
                                                 const geom::Point& q);

/// Minmax pruning over one leaf's raw entries (Section VI-A): drops every
/// object whose MinDist to `q` exceeds the smallest MaxDist among the
/// entries. Shared by the octree-carrier Step-1 paths (PV-index, UV-index)
/// and the service layer's leaf-result cache, so that pruning cached entries
/// is bit-identical to the index's own query. Preserves entry order.
std::vector<uncertain::ObjectId> Step1PruneMinMax(
    std::span<const LeafEntry> entries, const geom::Point& q);

/// Block form of the same pruning: two passes of the batched kernels (min
/// over MaxDistSq fixes the threshold, then a MinDistSq filter) over the SoA
/// leaf block. Candidate set and order are bit-identical to the scalar
/// entry-list overload above, which remains the reference implementation.
/// `scratch` pools the batched distance buffer; pass nullptr to allocate
/// locally.
std::vector<uncertain::ObjectId> Step1PruneMinMax(
    const LeafBlock& block, const geom::Point& q,
    QueryScratch* scratch = nullptr);

/// Step 2 evaluator over a database's discrete pdfs.
class PnnStep2Evaluator {
 public:
  /// Borrows `db`; the caller keeps it alive and unmodified per evaluation.
  explicit PnnStep2Evaluator(const uncertain::Dataset* db);

  /// Computes qualification probabilities for `candidates` at query `q`.
  /// Results with probability <= `min_probability` are dropped (the paper's
  /// PNNQ returns objects with probability > 0). Pdf page reads are charged
  /// to `io` when provided. Allocates a fresh QueryScratch per call;
  /// probabilities are bit-identical to the scratch overload below.
  std::vector<PnnResult> Evaluate(const geom::Point& q,
                                  std::span<const uncertain::ObjectId> candidates,
                                  MetricRegistry* io = nullptr,
                                  double min_probability = 0.0) const;

  /// Hot-path overload: builds the per-object sorted-distance tables into
  /// `scratch`'s pooled buffers (no per-query heap allocation at steady
  /// state) and charges pdf page reads to the pre-registered `io` handle
  /// lock-free. Same math, same order, bit-identical results.
  std::vector<PnnResult> Evaluate(const geom::Point& q,
                                  std::span<const uncertain::ObjectId> candidates,
                                  QueryScratch* scratch,
                                  MetricRegistry::Counter* io = nullptr,
                                  double min_probability = 0.0) const;

  /// Monte-Carlo estimator of the same probabilities by joint possible-world
  /// sampling (test oracle; `trials` independent worlds).
  std::vector<PnnResult> EstimateByMonteCarlo(
      const geom::Point& q, std::span<const uncertain::ObjectId> candidates,
      int trials, uint64_t seed) const;

  /// Pages a candidate's pdf record occupies (the Step-2 I/O charge).
  int64_t RecordPages(const uncertain::UncertainObject& o) const;

 private:
  const uncertain::Dataset* db_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_PNNQ_H_
