// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/pv/pv_index.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/geom/distance.h"
#include "src/geom/morton.h"

namespace pvdb::pv {

PvIndex::PvIndex(geom::Rect domain, storage::Pager* pager,
                 PvIndexOptions options)
    : domain_(std::move(domain)),
      options_(options),
      pager_(pager),
      se_(domain_, options.se) {}

Result<std::unique_ptr<PvIndex>> PvIndex::Build(const uncertain::Dataset& db,
                                                storage::Pager* pager,
                                                const PvIndexOptions& options,
                                                BuildStats* stats) {
  PVDB_CHECK(pager != nullptr);
  BuildStats local;
  BuildStats* st = stats ? stats : &local;
  *st = BuildStats{};
  StopWatch total;

  auto index = std::unique_ptr<PvIndex>(
      new PvIndex(db.domain(), pager, options));
  PVDB_ASSIGN_OR_RETURN(SecondaryIndex secondary,
                        SecondaryIndex::Create(pager));
  index->secondary_ = std::make_unique<SecondaryIndex>(std::move(secondary));
  SecondaryIndex* secondary_ptr = index->secondary_.get();
  index->primary_ = std::make_unique<OctreePrimary>(
      db.domain(), pager,
      [secondary_ptr](uncertain::ObjectId id) {
        return secondary_ptr->GetUbr(id);
      },
      options.octree);
  index->mean_tree_ = std::make_unique<rtree::RStarTree>(db.dim());
  for (const auto& o : db.objects()) {
    index->mean_tree_->Insert(geom::Rect::FromPoint(o.MeanPosition()), o.id());
  }

  // Bulk-loading mode: process objects in Z-order so that neighboring UBRs
  // arrive together and octree leaves split once instead of churning.
  std::vector<size_t> order(db.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.build_order == BuildOrder::kMorton) {
    std::vector<uint64_t> keys(db.size());
    for (size_t i = 0; i < db.size(); ++i) {
      keys[i] = geom::MortonKey(db.objects()[i].MeanPosition(), db.domain());
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  }

  auto& pager_metrics = pager->metrics();
  std::vector<OctreePrimary::BulkEntry> bulk_entries;
  if (options.bulk_primary) bulk_entries.reserve(db.size());

  for (size_t pos : order) {
    const auto& o = db.objects()[pos];
    // Phase 1: chooseCSet (Fig 10(e) component 1).
    StopWatch cset_watch;
    const CSetResult cset = index->ChooseCSetFor(o, db);
    st->choose_cset_ms += cset_watch.ElapsedMillis();
    st->cset_size.Add(static_cast<double>(cset.ids.size()));

    // Phase 2: SE (Fig 10(e) component 2).
    StopWatch se_watch;
    SeStats se_stats;
    const geom::Rect ubr = index->se_.ComputeUbr(o, cset.regions, &se_stats);
    st->compute_ubr_ms += se_watch.ElapsedMillis();
    st->se.slab_tests += se_stats.slab_tests;
    st->se.shrinks += se_stats.shrinks;
    st->se.expands += se_stats.expands;
    st->se.cells_examined += se_stats.cells_examined;

    // Phase 3: insert. The secondary record must exist before the primary
    // insert: leaf splits resolve UBRs through the secondary index.
    StopWatch insert_watch;
    PVDB_RETURN_NOT_OK(index->secondary_->Put(o, ubr));
    if (options.bulk_primary) {
      bulk_entries.push_back({o.id(), o.region(), ubr});
    } else {
      const int64_t writes_before =
          pager_metrics.Get(storage::PagerCounters::kWrites);
      PVDB_RETURN_NOT_OK(index->primary_->Insert(o.id(), o.region(), ubr));
      st->primary_page_writes +=
          pager_metrics.Get(storage::PagerCounters::kWrites) - writes_before;
    }
    st->insert_ms += insert_watch.ElapsedMillis();
  }

  if (options.bulk_primary) {
    StopWatch bulk_watch;
    const int64_t writes_before =
        pager_metrics.Get(storage::PagerCounters::kWrites);
    PVDB_RETURN_NOT_OK(index->primary_->BulkLoad(bulk_entries));
    st->primary_page_writes +=
        pager_metrics.Get(storage::PagerCounters::kWrites) - writes_before;
    st->insert_ms += bulk_watch.ElapsedMillis();
  }
  st->total_ms = total.ElapsedMillis();
  return index;
}

CSetResult PvIndex::ChooseCSetFor(const uncertain::UncertainObject& o,
                                  const uncertain::Dataset& db) const {
  return ChooseCSet(o, db, *mean_tree_, options_.cset);
}

Result<std::vector<uncertain::ObjectId>> PvIndex::QueryPossibleNN(
    const geom::Point& q, QueryScratch* scratch) const {
  PVDB_ASSIGN_OR_RETURN(LeafBlock block, primary_->QueryPointBlock(q));
  // Minmax pruning (Section VI-A): an object whose minimum distance exceeds
  // some other candidate's maximum distance can never be the NN.
  return Step1PruneMinMax(block, q, scratch);
}

int PvIndex::AddUpdateListener(std::function<void()> listener) {
  PVDB_CHECK(listener != nullptr);
  std::lock_guard<std::mutex> lock(listeners_mu_);
  const int id = next_listener_id_++;
  update_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void PvIndex::RemoveUpdateListener(int id) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  std::erase_if(update_listeners_,
                [id](const auto& entry) { return entry.first == id; });
}

void PvIndex::NotifyUpdateListeners() const {
  // Snapshot under the lock, invoke outside it: a listener is free to call
  // Add/RemoveUpdateListener re-entrantly without deadlocking.
  std::vector<std::function<void()>> listeners;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    listeners.reserve(update_listeners_.size());
    for (const auto& [_, listener] : update_listeners_) {
      listeners.push_back(listener);
    }
  }
  for (const auto& listener : listeners) listener();
}

// ---------------------------------------------------------------------------
// Incremental updates (Section VI-B)
// ---------------------------------------------------------------------------

namespace {

/// Deduplicates leaf entries by object id, keeping one region per id.
std::unordered_map<uncertain::ObjectId, geom::Rect> DedupeCandidates(
    const std::vector<LeafEntry>& entries, uncertain::ObjectId exclude_id) {
  std::unordered_map<uncertain::ObjectId, geom::Rect> out;
  for (const LeafEntry& e : entries) {
    if (e.id == exclude_id) continue;
    out.emplace(e.id, e.region);
  }
  return out;
}

}  // namespace

Status PvIndex::DeleteObject(const uncertain::Dataset& db_after,
                             const uncertain::UncertainObject& removed,
                             UpdateStats* stats) {
  const Status st = DeleteObjectImpl(db_after, removed, stats);
  // Notify even on failure: the update may have rewritten leaves before the
  // error, and stale memoized state is worse than a spurious cache flush.
  NotifyUpdateListeners();
  return st;
}

Status PvIndex::DeleteObjectImpl(const uncertain::Dataset& db_after,
                                 const uncertain::UncertainObject& removed,
                                 UpdateStats* stats) {
  UpdateStats local;
  UpdateStats* st = stats ? stats : &local;
  *st = UpdateStats{};
  StopWatch total;

  const uncertain::ObjectId oid = removed.id();
  if (db_after.Find(oid) != nullptr) {
    return Status::InvalidArgument("db_after still contains the object");
  }

  // Step 1: the trigger's old UBR from the secondary index.
  PVDB_ASSIGN_OR_RETURN(SecondaryIndex::Header trigger,
                        secondary_->GetHeader(oid));
  const geom::Rect& trigger_ubr = trigger.ubr;

  // Step 2: candidate objects = entries of leaves overlapping B(S, o').
  PVDB_ASSIGN_OR_RETURN(std::vector<LeafEntry> leaf_entries,
                        primary_->CollectOverlapping(trigger_ubr));
  auto candidates = DedupeCandidates(leaf_entries, oid);
  st->candidates = static_cast<int>(candidates.size());

  // Lemma 8 filters: (3) intersecting uncertainty regions mean o' never
  // constrained V(o); (1) disjoint UBRs imply disjoint PV-cells.
  struct Affected {
    uncertain::ObjectId id;
    geom::Rect old_ubr;
  };
  std::vector<Affected> affected;
  for (const auto& [cid, cregion] : candidates) {
    if (cregion.Intersects(removed.region())) continue;  // condition (3)
    PVDB_ASSIGN_OR_RETURN(geom::Rect old_ubr, secondary_->GetUbr(cid));
    if (!old_ubr.Intersects(trigger_ubr)) continue;  // condition (1)
    affected.push_back({cid, std::move(old_ubr)});
  }
  st->affected = static_cast<int>(affected.size());

  // Step 4a: drop the trigger from both index parts and the mean tree.
  PVDB_RETURN_NOT_OK(primary_->Remove(oid, trigger_ubr));
  PVDB_RETURN_NOT_OK(secondary_->Remove(oid));
  mean_tree_->Erase(geom::Rect::FromPoint(removed.MeanPosition()), oid);

  // Steps 3 + 4b: recompute UBRs of affected objects with the warm-started
  // SE (l = old UBR; Lemma 9 guarantees growth) and patch the leaf sets:
  // N' ⊇ N, so only leaves overlapping the new UBR but not the old one
  // receive entries.
  for (const Affected& a : affected) {
    const uncertain::UncertainObject* obj = db_after.Find(a.id);
    if (obj == nullptr) {
      return Status::Internal("affected object missing from db_after");
    }
    const CSetResult cset = ChooseCSetFor(*obj, db_after);
    StopWatch se_watch;
    const geom::Rect new_ubr =
        se_.ComputeUbrAfterDeletion(*obj, a.old_ubr, cset.regions);
    st->se_ms += se_watch.ElapsedMillis();
    PVDB_DCHECK(new_ubr.ContainsRect(a.old_ubr));
    // Secondary first: primary splits resolve UBRs through it.
    PVDB_RETURN_NOT_OK(secondary_->UpdateUbr(a.id, new_ubr));
    PVDB_RETURN_NOT_OK(
        primary_->InsertDiff(a.id, obj->region(), new_ubr, a.old_ubr));
  }
  st->total_ms = total.ElapsedMillis();
  return Status::OK();
}

Status PvIndex::InsertObject(const uncertain::Dataset& db_after,
                             uncertain::ObjectId new_id, UpdateStats* stats) {
  const Status st = InsertObjectImpl(db_after, new_id, stats);
  NotifyUpdateListeners();  // see DeleteObject
  return st;
}

Status PvIndex::InsertObjectImpl(const uncertain::Dataset& db_after,
                                 uncertain::ObjectId new_id,
                                 UpdateStats* stats) {
  UpdateStats local;
  UpdateStats* st = stats ? stats : &local;
  *st = UpdateStats{};
  StopWatch total;

  const uncertain::UncertainObject* inserted = db_after.Find(new_id);
  if (inserted == nullptr) {
    return Status::InvalidArgument("db_after does not contain the new object");
  }

  // Step 1: B(S', o') by a full SE run over the post-insertion database.
  mean_tree_->Insert(geom::Rect::FromPoint(inserted->MeanPosition()), new_id);
  const CSetResult trigger_cset = ChooseCSetFor(*inserted, db_after);
  StopWatch se_watch_trigger;
  const geom::Rect trigger_ubr =
      se_.ComputeUbr(*inserted, trigger_cset.regions);
  st->se_ms += se_watch_trigger.ElapsedMillis();

  // Step 2: candidates from leaves overlapping B(S', o'), filtered by
  // Lemma 8 conditions (3) and (2).
  PVDB_ASSIGN_OR_RETURN(std::vector<LeafEntry> leaf_entries,
                        primary_->CollectOverlapping(trigger_ubr));
  auto candidates = DedupeCandidates(leaf_entries, new_id);
  st->candidates = static_cast<int>(candidates.size());

  struct Affected {
    uncertain::ObjectId id;
    geom::Rect old_ubr;
  };
  std::vector<Affected> affected;
  for (const auto& [cid, cregion] : candidates) {
    if (cregion.Intersects(inserted->region())) continue;  // condition (3)
    PVDB_ASSIGN_OR_RETURN(geom::Rect old_ubr, secondary_->GetUbr(cid));
    if (!old_ubr.Intersects(trigger_ubr)) continue;  // condition (2)
    affected.push_back({cid, std::move(old_ubr)});
  }
  st->affected = static_cast<int>(affected.size());

  // Step 3 + 4: shrink affected UBRs with warm-started SE (h = old UBR,
  // Lemma 9) and remove their entries from leaves they no longer reach
  // (N − N').
  for (const Affected& a : affected) {
    const uncertain::UncertainObject* obj = db_after.Find(a.id);
    if (obj == nullptr) {
      return Status::Internal("affected object missing from db_after");
    }
    const CSetResult cset = ChooseCSetFor(*obj, db_after);
    StopWatch se_watch;
    const geom::Rect new_ubr =
        se_.ComputeUbrAfterInsertion(*obj, a.old_ubr, cset.regions);
    st->se_ms += se_watch.ElapsedMillis();
    PVDB_DCHECK(a.old_ubr.ContainsRect(new_ubr));
    PVDB_RETURN_NOT_OK(secondary_->UpdateUbr(a.id, new_ubr));
    PVDB_RETURN_NOT_OK(primary_->RemoveDiff(a.id, a.old_ubr, new_ubr));
  }

  // Finally insert the trigger itself (secondary first; see Build).
  PVDB_RETURN_NOT_OK(secondary_->Put(*inserted, trigger_ubr));
  PVDB_RETURN_NOT_OK(
      primary_->Insert(new_id, inserted->region(), trigger_ubr));
  st->total_ms = total.ElapsedMillis();
  return Status::OK();
}

}  // namespace pvdb::pv
