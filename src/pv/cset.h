// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// chooseCSet (Section V-A): selects the candidate set Cset(o) ⊆ S used by
// the SE algorithm. By Lemma 7 any non-empty subset of S is a valid C-set —
// the strategies differ only in how tight the resulting UBR gets and how
// much Step 9 work each SE iteration costs.
//
//   ALL — the whole database (exact V-set by Lemma 4; intractably slow).
//   FS  — the k objects whose mean positions are nearest to o's.
//   IS  — incremental NN browsing [39] with 2^d quadrant counters around o:
//         stop once every quadrant saw k_partition non-overlapping objects
//         or k_global neighbors were examined; objects whose uncertainty
//         regions overlap u(o) are skipped (they cannot constrain V(o),
//         Lemma 2).

#ifndef PVDB_PV_CSET_H_
#define PVDB_PV_CSET_H_

#include <vector>

#include "src/rtree/rstar_tree.h"
#include "src/uncertain/dataset.h"

namespace pvdb::pv {

/// Which chooseCSet implementation to run.
enum class CSetStrategy { kAll, kFixed, kIncremental };

/// Human-readable strategy name ("ALL" / "FS" / "IS").
const char* CSetStrategyName(CSetStrategy s);

/// Tuning parameters (defaults = Table I bold values).
struct CSetOptions {
  CSetStrategy strategy = CSetStrategy::kIncremental;
  /// FS: number of nearest mean positions returned.
  int k = 200;
  /// IS: minimum neighbors per domain quadrant.
  int k_partition = 10;
  /// IS: hard cap on examined nearest neighbors.
  int k_global = 200;
};

/// A chosen candidate set: ids plus their uncertainty regions, aligned.
struct CSetResult {
  std::vector<uncertain::ObjectId> ids;
  std::vector<geom::Rect> regions;
  /// Number of NN candidates the strategy examined (IS instrumentation).
  int examined = 0;
};

/// Runs the configured strategy for object `o` over database `db`.
///
/// `mean_tree` indexes the mean positions of all objects in `db` (degenerate
/// rectangles keyed by object id); FS and IS browse it with incremental NN
/// search. `o` itself is never part of the result.
CSetResult ChooseCSet(const uncertain::UncertainObject& o,
                      const uncertain::Dataset& db,
                      const rtree::RStarTree& mean_tree,
                      const CSetOptions& options);

}  // namespace pvdb::pv

#endif  // PVDB_PV_CSET_H_
