// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The Shrink-and-Expand (SE) algorithm (Section V, Algorithm 1): computes an
// Uncertain Bounding Rectangle B(o) ⊇ V(o) without ever materializing the
// PV-cell. M(o) is sandwiched between a lower rectangle l(o) (initially
// u(o), Lemma 5) and an upper rectangle h(o) (initially the domain D,
// Lemma 4). Each iteration halves the gap in one (dimension, direction):
// the slab R between the mid-plane and h's boundary is tested against
// I(Cset, o) with the domination-count machinery; a proven-empty slab
// shrinks h, otherwise l expands. h is returned once every gap is < Δ.
//
// Only h carries correctness: it shrinks exclusively on proofs, so
// V(o) ⊆ h(o) is invariant — including in the warm-started variants of
// Section VI-B, where l (deletion) or h (insertion) starts from the
// pre-update UBR (footnote 4 of the paper).

#ifndef PVDB_PV_SE_H_
#define PVDB_PV_SE_H_

#include <span>

#include "src/geom/region_partition.h"
#include "src/uncertain/uncertain_object.h"

namespace pvdb::pv {

/// SE tuning parameters (defaults = Table I bold values).
struct SeOptions {
  /// Δ: terminate once every directional gap |h−l| falls below this.
  double delta = 1.0;
  /// m_max: partition budget of each Step-9 emptiness test.
  int max_partitions = 10;
};

/// Instrumentation of one SE run.
struct SeStats {
  /// Slab emptiness tests performed (Step 9 executions).
  int slab_tests = 0;
  /// Tests that proved emptiness (h was shrunk).
  int shrinks = 0;
  /// Tests that failed to prove emptiness (l was expanded).
  int expands = 0;
  /// Total sub-rectangles examined across all domination-count tests.
  int cells_examined = 0;
};

/// Shrink-and-Expand UBR computation over a fixed domain D.
class SeAlgorithm {
 public:
  SeAlgorithm(geom::Rect domain, SeOptions options)
      : domain_(std::move(domain)), options_(options) {
    PVDB_CHECK(options_.delta > 0.0);
    PVDB_CHECK(options_.max_partitions >= 1);
  }

  const geom::Rect& domain() const { return domain_; }
  const SeOptions& options() const { return options_; }

  /// Computes B(o) from scratch: l = u(o), h = D (Algorithm 1).
  /// `cset` holds the uncertainty regions of Cset(o) (o excluded).
  geom::Rect ComputeUbr(const uncertain::UncertainObject& o,
                        std::span<const geom::Rect> cset,
                        SeStats* stats = nullptr) const;

  /// Warm start after deleting another object (Section VI-B): V(o) can only
  /// grow (Lemma 9), so the old UBR seeds l while h restarts from D.
  geom::Rect ComputeUbrAfterDeletion(const uncertain::UncertainObject& o,
                                     const geom::Rect& old_ubr,
                                     std::span<const geom::Rect> cset,
                                     SeStats* stats = nullptr) const;

  /// Warm start after inserting another object (Section VI-B): V(o) can only
  /// shrink (Lemma 9), so the old UBR seeds h while l restarts from u(o).
  geom::Rect ComputeUbrAfterInsertion(const uncertain::UncertainObject& o,
                                      const geom::Rect& old_ubr,
                                      std::span<const geom::Rect> cset,
                                      SeStats* stats = nullptr) const;

 private:
  geom::Rect Run(const uncertain::UncertainObject& o, geom::Rect l,
                 geom::Rect h, std::span<const geom::Rect> cset,
                 SeStats* stats) const;

  geom::Rect domain_;
  SeOptions options_;
};

}  // namespace pvdb::pv

#endif  // PVDB_PV_SE_H_
