// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/distance.h"

#include <algorithm>
#include <cmath>

namespace pvdb::geom {

double MinDistSq(const Rect& r, const Point& p) {
  PVDB_DCHECK(r.dim() == p.dim());
  double s = 0.0;
  for (int i = 0; i < r.dim(); ++i) {
    double d = 0.0;
    if (p[i] < r.lo(i)) {
      d = r.lo(i) - p[i];
    } else if (p[i] > r.hi(i)) {
      d = p[i] - r.hi(i);
    }
    s += d * d;
  }
  return s;
}

double MaxDistSq(const Rect& r, const Point& p) {
  PVDB_DCHECK(r.dim() == p.dim());
  double s = 0.0;
  for (int i = 0; i < r.dim(); ++i) {
    const double dlo = std::abs(p[i] - r.lo(i));
    const double dhi = std::abs(p[i] - r.hi(i));
    const double d = std::max(dlo, dhi);
    s += d * d;
  }
  return s;
}

double MinDist(const Rect& r, const Point& p) { return std::sqrt(MinDistSq(r, p)); }

double MaxDist(const Rect& r, const Point& p) { return std::sqrt(MaxDistSq(r, p)); }

double MinDistSq(const Rect& a, const Rect& b) {
  PVDB_DCHECK(a.dim() == b.dim());
  double s = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    double d = 0.0;
    if (b.hi(i) < a.lo(i)) {
      d = a.lo(i) - b.hi(i);
    } else if (b.lo(i) > a.hi(i)) {
      d = b.lo(i) - a.hi(i);
    }
    s += d * d;
  }
  return s;
}

double MaxDistSq(const Rect& a, const Rect& b) {
  PVDB_DCHECK(a.dim() == b.dim());
  double s = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    const double d =
        std::max(std::abs(a.hi(i) - b.lo(i)), std::abs(b.hi(i) - a.lo(i)));
    s += d * d;
  }
  return s;
}

double MinDist(const Rect& a, const Rect& b) { return std::sqrt(MinDistSq(a, b)); }

double MaxDist(const Rect& a, const Rect& b) { return std::sqrt(MaxDistSq(a, b)); }

bool OnBisector(const Rect& a, const Rect& b, const Point& p, double tol) {
  return std::abs(MaxDist(a, p) - MinDist(b, p)) <= tol;
}

}  // namespace pvdb::geom
