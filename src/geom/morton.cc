// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/morton.h"

#include <algorithm>

namespace pvdb::geom {

uint64_t MortonKey(const Point& p, const Rect& domain) {
  PVDB_DCHECK(p.dim() == domain.dim());
  const int d = p.dim();
  const int bits = 64 / d;
  uint64_t key = 0;
  for (int i = 0; i < d; ++i) {
    const double side = domain.Side(i);
    double t = side > 0 ? (p[i] - domain.lo(i)) / side : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const auto cell = static_cast<uint64_t>(
        std::min<double>(t * static_cast<double>(1ULL << bits),
                         static_cast<double>((1ULL << bits) - 1)));
    // Interleave: bit b of dimension i lands at position b*d + i.
    for (int b = 0; b < bits; ++b) {
      key |= ((cell >> b) & 1ULL) << (static_cast<uint64_t>(b) * d + i);
    }
  }
  return key;
}

}  // namespace pvdb::geom
