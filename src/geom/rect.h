// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Axis-parallel hyper-rectangles. Rectangles are the universal currency of
// this library: uncertainty regions u(o), UBRs B(o), octree node regions,
// R-tree MBRs and SE's slabs are all Rect instances.

#ifndef PVDB_GEOM_RECT_H_
#define PVDB_GEOM_RECT_H_

#include <string>

#include "src/geom/point.h"

namespace pvdb::geom {

/// A (possibly degenerate) axis-parallel hyper-rectangle [lo, hi].
///
/// Invariant: lo[i] <= hi[i] in every dimension for non-empty rectangles.
/// A degenerate rectangle (lo == hi in some dimension) is valid and denotes
/// a lower-dimensional slab; points are modeled as fully degenerate rects.
class Rect {
 public:
  /// The empty rectangle convention: lo > hi in dimension 0.
  explicit Rect(int dim) : lo_(dim), hi_(dim) {}

  /// Rectangle from explicit corners. Requires lo[i] <= hi[i] for all i.
  Rect(const Point& lo, const Point& hi) : lo_(lo), hi_(hi) {
    PVDB_DCHECK(lo.dim() == hi.dim());
    for (int i = 0; i < lo.dim(); ++i) PVDB_DCHECK(lo[i] <= hi[i]);
  }

  /// The degenerate rectangle {p}.
  static Rect FromPoint(const Point& p) { return Rect(p, p); }

  /// Rectangle centered at `c` with half-width `half[i]` per dimension.
  static Rect FromCenterHalfWidths(const Point& c, const Point& half);

  /// The d-dimensional cube [lo, hi]^d.
  static Rect Cube(int dim, double lo, double hi);

  /// Smallest rectangle containing both inputs.
  static Rect Union(const Rect& a, const Rect& b);

  /// Intersection; returns an empty/degenerate marker when disjoint
  /// (check with Intersects() first when emptiness matters).
  static Rect Intersection(const Rect& a, const Rect& b);

  int dim() const { return lo_.dim(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }
  double lo(int i) const { return lo_[i]; }
  double hi(int i) const { return hi_[i]; }

  /// Mutable boundary access (used by SE's shrink/expand steps).
  void set_lo(int i, double v) { lo_[i] = v; }
  void set_hi(int i, double v) { hi_[i] = v; }

  /// Center point.
  Point Center() const;

  /// Side length in dimension i.
  double Side(int i) const { return hi_[i] - lo_[i]; }

  /// Longest side length, and the dimension attaining it.
  double MaxSide() const;
  int LongestDim() const;

  /// d-dimensional volume (product of sides).
  double Volume() const;

  /// Sum of side lengths (the R*-tree "margin" measure).
  double Margin() const;

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True iff `r` lies entirely inside or on the boundary.
  bool ContainsRect(const Rect& r) const;

  /// True iff the closed rectangles share at least one point.
  bool Intersects(const Rect& r) const;

  /// True iff the open interiors intersect (shared boundary not enough).
  bool InteriorIntersects(const Rect& r) const;

  /// The corner selected by `mask`: bit i of `mask` picks hi (1) or lo (0)
  /// in dimension i. There are 2^d corners.
  Point Corner(unsigned mask) const;

  /// Returns a copy grown by `delta` on every side (shrunk if negative).
  Rect Inflated(double delta) const;

  /// Nearest point of the rectangle to `p` (clamping).
  Point ClampPoint(const Point& p) const;

  bool operator==(const Rect& o) const { return lo_ == o.lo_ && hi_ == o.hi_; }
  bool operator!=(const Rect& o) const { return !(*this == o); }

  /// "[lo .. hi]" human-readable form.
  std::string ToString() const;

 private:
  Point lo_;
  Point hi_;
};

}  // namespace pvdb::geom

#endif  // PVDB_GEOM_RECT_H_
