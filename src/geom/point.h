// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// d-dimensional points with runtime dimensionality (2..kMaxDim). Storage is a
// fixed inline array: uncertain-database workloads in the paper use d ≤ 5, so
// points never touch the heap and copy in a handful of instructions.

#ifndef PVDB_GEOM_POINT_H_
#define PVDB_GEOM_POINT_H_

#include <array>
#include <cmath>
#include <initializer_list>
#include <string>

#include "src/common/check.h"

namespace pvdb::geom {

/// Maximum supported dimensionality. The paper evaluates d ∈ {2,3,4,5};
/// eight leaves headroom while keeping Point trivially copyable and compact.
inline constexpr int kMaxDim = 8;

/// A point in d-dimensional Euclidean space (d fixed at construction).
class Point {
 public:
  /// Origin of the given dimensionality.
  explicit Point(int dim) : dim_(dim) {
    PVDB_DCHECK(dim >= 1 && dim <= kMaxDim);
    coords_.fill(0.0);
  }

  /// Point from an explicit coordinate list, e.g. Point({1.0, 2.0}).
  Point(std::initializer_list<double> coords)
      : dim_(static_cast<int>(coords.size())) {
    PVDB_DCHECK(dim_ >= 1 && dim_ <= kMaxDim);
    coords_.fill(0.0);
    int i = 0;
    for (double c : coords) coords_[i++] = c;
  }

  /// Dimensionality d.
  int dim() const { return dim_; }

  double operator[](int i) const {
    PVDB_DCHECK(i >= 0 && i < dim_);
    return coords_[i];
  }
  double& operator[](int i) {
    PVDB_DCHECK(i >= 0 && i < dim_);
    return coords_[i];
  }

  /// Raw coordinate storage (dim() live doubles at the front). Coordinates
  /// sit at offset 0 of the object, which is what lets batched kernels
  /// treat an array of Point-headed structs as strided coordinate rows
  /// (geom::PointDistBatch).
  const double* data() const { return coords_.data(); }

  bool operator==(const Point& o) const {
    if (dim_ != o.dim_) return false;
    for (int i = 0; i < dim_; ++i)
      if (coords_[i] != o.coords_[i]) return false;
    return true;
  }
  bool operator!=(const Point& o) const { return !(*this == o); }

  /// Squared Euclidean distance to another point of equal dimensionality.
  double DistanceSqTo(const Point& o) const {
    PVDB_DCHECK(dim_ == o.dim_);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) {
      const double d = coords_[i] - o.coords_[i];
      s += d * d;
    }
    return s;
  }

  /// Euclidean distance to another point.
  double DistanceTo(const Point& o) const { return std::sqrt(DistanceSqTo(o)); }

  /// "(x0, x1, ...)" with six significant digits.
  std::string ToString() const;

 private:
  std::array<double, kMaxDim> coords_;
  int dim_;
};

}  // namespace pvdb::geom

#endif  // PVDB_GEOM_POINT_H_
