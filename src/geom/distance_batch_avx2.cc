// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Explicit 4-lane AVX2 batch kernels (simd::kAvx2Table), compiled with
// -mavx2 -ffp-contract=off and ONLY ever entered through the dispatch table
// after a CPUID probe. Per-lane operation order matches the scalar
// reference exactly (see distance_batch_isa.h): sub / MAXPD-select / abs /
// mul / add, tails scalar, no FMA — forced levels are bit-identical.
//
// CompressIdsLeAvx2 is the AVX2 stand-in for AVX-512's vpcompressq: a
// 16-entry shuffle table keyed by the 4-bit comparison movemask permutes
// the kept 64-bit ids to the vector front (as two 32-bit lanes each via
// vpermd, which crosses 128-bit lanes; there is no 64-bit cross-lane
// permute in AVX2), then one unconditional store + popcount advance.

#include "src/geom/distance_batch_isa.h"

#if defined(PVDB_SIMD_COMPILE_AVX2)

#include <immintrin.h>

namespace pvdb::geom::simd {

namespace {

inline __m256d MinDistLanes(__m256d lo, __m256d hi, __m256d p) {
  const __m256d below = _mm256_sub_pd(lo, p);
  const __m256d above = _mm256_sub_pd(p, hi);
  // MAXPD(a, b) = a > b ? a : b, ties/NaN to b — the scalar ternary.
  const __m256d big = _mm256_max_pd(below, above);
  return _mm256_max_pd(big, _mm256_setzero_pd());
}

inline __m256d MaxDistLanes(__m256d lo, __m256d hi, __m256d p) {
  const __m256d sign =
      _mm256_castsi256_pd(_mm256_set1_epi64x(static_cast<int64_t>(1) << 63));
  const __m256d dlo = _mm256_andnot_pd(sign, _mm256_sub_pd(p, lo));
  const __m256d dhi = _mm256_andnot_pd(sign, _mm256_sub_pd(p, hi));
  return _mm256_max_pd(dlo, dhi);
}

/// vpermd index table: row m compacts the 64-bit lanes whose mask bits are
/// set (each as its two 32-bit halves) to the front, in ascending lane
/// order — compress must preserve the input sequence. Tail rows repeat
/// lane 0; those slots land at or past the write cursor's advance and are
/// scratch by the CompressIdsLe contract.
struct CompressTable {
  alignas(32) uint32_t perm[16][8];
};

constexpr CompressTable MakeCompressTable() {
  CompressTable t{};
  for (int m = 0; m < 16; ++m) {
    int out = 0;
    for (int b = 0; b < 4; ++b) {
      if ((m >> b) & 1) {
        t.perm[m][2 * out] = static_cast<uint32_t>(2 * b);
        t.perm[m][2 * out + 1] = static_cast<uint32_t>(2 * b + 1);
        ++out;
      }
    }
    for (; out < 4; ++out) {
      t.perm[m][2 * out] = 0;
      t.perm[m][2 * out + 1] = 1;
    }
  }
  return t;
}

constexpr CompressTable kCompressTable = MakeCompressTable();

}  // namespace

void MinDistSqBatchAvx2(const double* const* lo, const double* const* hi,
                        const double* q, int dim, size_t n, double* out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m256d pv = _mm256_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 4 <= n; i += 4) {
        const __m256d dist =
            MinDistLanes(_mm256_loadu_pd(lod + i), _mm256_loadu_pd(hid + i),
                         pv);
        _mm256_storeu_pd(out + i, _mm256_mul_pd(dist, dist));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMinDist(lod[i], hid[i], p);
        out[i] = dist * dist;
      }
    } else {
      for (; i + 4 <= n; i += 4) {
        const __m256d dist =
            MinDistLanes(_mm256_loadu_pd(lod + i), _mm256_loadu_pd(hid + i),
                         pv);
        _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                                                _mm256_mul_pd(dist, dist)));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMinDist(lod[i], hid[i], p);
        out[i] += dist * dist;
      }
    }
  }
}

void MaxDistSqBatchAvx2(const double* const* lo, const double* const* hi,
                        const double* q, int dim, size_t n, double* out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m256d pv = _mm256_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 4 <= n; i += 4) {
        const __m256d dist =
            MaxDistLanes(_mm256_loadu_pd(lod + i), _mm256_loadu_pd(hid + i),
                         pv);
        _mm256_storeu_pd(out + i, _mm256_mul_pd(dist, dist));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMaxDist(lod[i], hid[i], p);
        out[i] = dist * dist;
      }
    } else {
      for (; i + 4 <= n; i += 4) {
        const __m256d dist =
            MaxDistLanes(_mm256_loadu_pd(lod + i), _mm256_loadu_pd(hid + i),
                         pv);
        _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                                                _mm256_mul_pd(dist, dist)));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMaxDist(lod[i], hid[i], p);
        out[i] += dist * dist;
      }
    }
  }
}

void MinMaxDistSqBatchAvx2(const double* const* lo, const double* const* hi,
                           const double* q, int dim, size_t n, double* min_out,
                           double* max_out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m256d pv = _mm256_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 4 <= n; i += 4) {
        const __m256d lov = _mm256_loadu_pd(lod + i);
        const __m256d hiv = _mm256_loadu_pd(hid + i);
        const __m256d mind = MinDistLanes(lov, hiv, pv);
        const __m256d maxd = MaxDistLanes(lov, hiv, pv);
        _mm256_storeu_pd(min_out + i, _mm256_mul_pd(mind, mind));
        _mm256_storeu_pd(max_out + i, _mm256_mul_pd(maxd, maxd));
      }
      for (; i < n; ++i) {
        const double mind = ScalarMinDist(lod[i], hid[i], p);
        const double maxd = ScalarMaxDist(lod[i], hid[i], p);
        min_out[i] = mind * mind;
        max_out[i] = maxd * maxd;
      }
    } else {
      for (; i + 4 <= n; i += 4) {
        const __m256d lov = _mm256_loadu_pd(lod + i);
        const __m256d hiv = _mm256_loadu_pd(hid + i);
        const __m256d mind = MinDistLanes(lov, hiv, pv);
        const __m256d maxd = MaxDistLanes(lov, hiv, pv);
        _mm256_storeu_pd(min_out + i, _mm256_add_pd(_mm256_loadu_pd(min_out + i),
                                                    _mm256_mul_pd(mind, mind)));
        _mm256_storeu_pd(max_out + i, _mm256_add_pd(_mm256_loadu_pd(max_out + i),
                                                    _mm256_mul_pd(maxd, maxd)));
      }
      for (; i < n; ++i) {
        const double mind = ScalarMinDist(lod[i], hid[i], p);
        const double maxd = ScalarMaxDist(lod[i], hid[i], p);
        min_out[i] += mind * mind;
        max_out[i] += maxd * maxd;
      }
    }
  }
}

size_t CompressIdsLeAvx2(const double* keys, size_t n, double threshold,
                         const uint64_t* ids, uint64_t* out) {
  const __m256d tv = _mm256_set1_pd(threshold);
  size_t count = 0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // LE_OQ == the scalar `<=` (ordered, false on NaN).
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(keys + k), tv, _CMP_LE_OQ));
    const __m256i id4 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + k));
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kCompressTable.perm[m]));
    // Full-vector store: count <= k here, so out[count .. count+3] stays
    // inside the n slots the contract reserves; popcount advances past
    // only the kept lanes.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + count),
                        _mm256_permutevar8x32_epi32(id4, perm));
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  for (; k < n; ++k) {
    out[count] = ids[k];
    count += keys[k] <= threshold ? 1 : 0;
  }
  return count;
}

double MinReduceAvx2(const double* x, size_t n) {
  // MINPD over 4 lanes; ordered non-negative inputs make the combining
  // order irrelevant to the resulting bits.
  __m256d acc = _mm256_set1_pd(HUGE_VAL);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_min_pd(acc, _mm256_loadu_pd(x + i));
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  const double a = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  const double b = lanes[2] < lanes[3] ? lanes[2] : lanes[3];
  double m = a < b ? a : b;
  for (; i < n; ++i) m = x[i] < m ? x[i] : m;
  return m;
}

void PointDistBatchAvx2(const double* base, size_t stride_doubles,
                        const double* q, int dim, size_t n, double* out) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const double* p0 = base + k * stride_doubles;
    const double* p1 = p0 + stride_doubles;
    const double* p2 = p1 + stride_doubles;
    const double* p3 = p2 + stride_doubles;
    __m256d s = _mm256_setzero_pd();
    for (int d = 0; d < dim; ++d) {
      // Strided lane loads assembled scalar-wise (AVX2 gathers lose to
      // plain loads at this stride); AVX-512 uses real gathers.
      const __m256d xv = _mm256_set_pd(p3[d], p2[d], p1[d], p0[d]);
      const __m256d diff = _mm256_sub_pd(xv, _mm256_set1_pd(q[d]));
      s = _mm256_add_pd(s, _mm256_mul_pd(diff, diff));
    }
    // VSQRTPD is exactly rounded — bit-identical to std::sqrt per lane.
    _mm256_storeu_pd(out + k, _mm256_sqrt_pd(s));
  }
  if (k < n) {
    PointDistBatchScalar(base + k * stride_doubles, stride_doubles, q, dim,
                         n - k, out + k);
  }
}

const KernelTable kAvx2Table = {
    MinDistSqBatchAvx2,  MaxDistSqBatchAvx2, MinMaxDistSqBatchAvx2,
    CompressIdsLeAvx2,   MinReduceAvx2,      PointDistBatchAvx2,
    SimdLevel::kAvx2,    /*width_doubles=*/4,
    "avx2",
};

}  // namespace pvdb::geom::simd

#endif  // PVDB_SIMD_COMPILE_AVX2
