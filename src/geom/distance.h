// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Min/max Euclidean distances between points and rectangles. These realize
// the paper's distmin(o, p) and distmax(o, p) (Section III-A) for rectangular
// uncertainty regions, plus the rect-rect bounds used by the R-tree and the
// Lemma-8 affected-object filters.

#ifndef PVDB_GEOM_DISTANCE_H_
#define PVDB_GEOM_DISTANCE_H_

#include "src/geom/rect.h"

namespace pvdb::geom {

/// Squared minimum distance from `p` to any point of `r` (0 when inside).
double MinDistSq(const Rect& r, const Point& p);

/// Squared maximum distance from `p` to any point of `r` (attained at the
/// farthest corner).
double MaxDistSq(const Rect& r, const Point& p);

/// distmin(r, p): minimum Euclidean distance from p to r.
double MinDist(const Rect& r, const Point& p);

/// distmax(r, p): maximum Euclidean distance from p to r.
double MaxDist(const Rect& r, const Point& p);

/// Squared minimum distance between two rectangles (0 when intersecting).
double MinDistSq(const Rect& a, const Rect& b);

/// Squared maximum distance between two rectangles (farthest corner pair).
double MaxDistSq(const Rect& a, const Rect& b);

/// Minimum Euclidean distance between two rectangles.
double MinDist(const Rect& a, const Rect& b);

/// Maximum Euclidean distance between two rectangles.
double MaxDist(const Rect& a, const Rect& b);

/// True iff p lies on the bisector surface H_{a,b} = {p : distmax(a, p) =
/// distmin(b, p)} up to `tol` (used by tests and boundary probing).
bool OnBisector(const Rect& a, const Rect& b, const Point& p,
                double tol = 1e-9);

}  // namespace pvdb::geom

#endif  // PVDB_GEOM_DISTANCE_H_
