// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Runtime SIMD dispatch for the batched distance kernels
// (geom::MinDistSqBatch / MaxDistSqBatch / MinMaxDistSqBatch /
// CompressIdsLe). The kernels exist in up to four implementations — the
// portable scalar reference plus explicit SSE2, AVX2 and AVX-512 intrinsic
// versions, each compiled in its own translation unit with its own -m
// flags — and all public entry points route through one function-pointer
// table resolved exactly once:
//
//   1. compile-time ceiling: the highest level the build produced
//      (MaxCompiledSimdLevel; non-x86 builds contain only the scalar TU),
//   2. runtime ceiling: the highest level this CPU reports via CPUID
//      (DetectCpuSimdLevel; AVX-512 requires F+DQ+VL),
//   3. optional override: the PVDB_SIMD_LEVEL environment variable
//      ("scalar" / "sse2" / "avx2" / "avx512"), read at first kernel use.
//      Values above the usable ceiling are clamped with a warning, never
//      trusted.
//
// Every level is bit-identical to the scalar reference: identical
// per-lane operations in identical order (sub / max-select / abs / mul /
// add — all exactly-rounded IEEE ops), tails handled by the scalar code,
// and no FMA contraction anywhere (the per-ISA TUs compile with
// -ffp-contract=off and without -mfma). Forcing any two levels on the same
// input yields the same bytes; tests/simd_dispatch_test.cc asserts this
// property per level, including every tail-lane remainder.

#ifndef PVDB_GEOM_SIMD_DISPATCH_H_
#define PVDB_GEOM_SIMD_DISPATCH_H_

#include <string_view>

namespace pvdb::geom {

/// Kernel implementation tiers, ordered: a level implies the ones below it.
/// kScalar is the reference C++ loops (the compiler may still autovectorize
/// them to 16-byte SSE2 at -O3 — "scalar" means no explicit intrinsics);
/// kSse2/kAvx2/kAvx512 are the hand-written 2/4/8-lane double kernels.
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Highest level this binary contains kernels for (build-time ceiling).
SimdLevel MaxCompiledSimdLevel();

/// Highest level this CPU supports (CPUID; AVX-512 requires F+DQ+VL).
/// Independent of what the build compiled in.
SimdLevel DetectCpuSimdLevel();

/// min(MaxCompiledSimdLevel, DetectCpuSimdLevel) — the dispatch ceiling.
SimdLevel MaxUsableSimdLevel();

/// The level the batched kernels currently dispatch to. Resolved at first
/// kernel use (or first call here) from the usable ceiling and the
/// PVDB_SIMD_LEVEL override.
SimdLevel ActiveSimdLevel();

/// Re-points dispatch at `level`'s kernels. Returns false (and changes
/// nothing) when `level` exceeds MaxUsableSimdLevel — callers must not be
/// able to force a path the CPU would fault on. Takes effect for subsequent
/// kernel calls; intended for tests and benchmarks (flip between queries,
/// not concurrently with them).
bool ForceSimdLevel(SimdLevel level);

/// Stable lowercase name: "scalar" / "sse2" / "avx2" / "avx512".
const char* SimdLevelName(SimdLevel level);

/// Parses a SimdLevelName (case-sensitive, exact). Returns false on
/// anything else; *out is untouched then.
bool ParseSimdLevel(std::string_view text, SimdLevel* out);

/// Vector width of a level's kernels in doubles: 1 / 2 / 4 / 8.
int SimdLaneWidthDoubles(SimdLevel level);

}  // namespace pvdb::geom

#endif  // PVDB_GEOM_SIMD_DISPATCH_H_
