// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/region_partition.h"

#include <vector>

namespace pvdb::geom {
namespace {

// Below this edge length, further bisection cannot change the outcome of a
// floating-point domination test; give up instead of looping.
constexpr double kMinSplittableSide = 1e-9;

}  // namespace

bool AdaptiveCover(const Rect& region,
                   const std::function<bool(const Rect&)>& discharged,
                   int max_partitions, PartitionStats* stats) {
  PartitionStats local;
  PartitionStats* st = stats ? stats : &local;
  *st = PartitionStats{};

  std::vector<Rect> pending;
  pending.push_back(region);
  while (!pending.empty()) {
    const Rect cell = pending.back();
    pending.pop_back();
    if (st->cells_examined >= max_partitions) return false;
    ++st->cells_examined;
    if (discharged(cell)) continue;

    // Undischarged: bisect if budget and geometry allow, else fail.
    const int axis = cell.LongestDim();
    if (cell.Side(axis) < kMinSplittableSide) return false;
    // Both halves must fit in the remaining examination budget.
    const int remaining =
        max_partitions - st->cells_examined - static_cast<int>(pending.size());
    if (remaining < 2) return false;
    const double mid = 0.5 * (cell.lo(axis) + cell.hi(axis));
    Rect left = cell;
    Rect right = cell;
    left.set_hi(axis, mid);
    right.set_lo(axis, mid);
    ++st->splits;
    pending.push_back(left);
    pending.push_back(right);
  }
  st->proven = true;
  return true;
}

bool ProvenOutsidePVCell(const Rect& region, const Rect& o_region,
                         std::span<const Rect> cset, int max_partitions,
                         PartitionStats* stats) {
  auto discharged = [&](const Rect& cell) {
    for (const Rect& c : cset) {
      // Lemma 2: candidates overlapping u(o) have dom(c, o) = ∅.
      if (c.Intersects(o_region)) continue;
      if (Dominates(c, o_region, cell)) return true;
    }
    return false;
  };
  return AdaptiveCover(region, discharged, max_partitions, stats);
}

}  // namespace pvdb::geom
