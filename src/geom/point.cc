// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/point.h"

#include <cstdio>

namespace pvdb::geom {

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (int i = 0; i < dim_; ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", coords_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace pvdb::geom
