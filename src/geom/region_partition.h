// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Domination-count emptiness test (Section V-B). SE's Step 9 must decide
// whether a slab R intersects I(Cset, o); equivalently whether R is fully
// covered by the dominated union U(Cset, o). No single object need dominate
// all of R (Figure 6(b)), so R is adaptively partitioned: a sub-rectangle is
// discharged once some candidate dominates it, otherwise it is bisected along
// its longest edge until a partition budget m_max is exhausted. The test is
// conservative exactly the way the paper requires: "not proven" answers make
// SE expand l(o) instead of shrinking h(o), never producing an invalid UBR.

#ifndef PVDB_GEOM_REGION_PARTITION_H_
#define PVDB_GEOM_REGION_PARTITION_H_

#include <functional>
#include <span>

#include "src/geom/domination.h"
#include "src/geom/rect.h"

namespace pvdb::geom {

/// Instrumentation for one emptiness test.
struct PartitionStats {
  /// Number of sub-rectangles on which the discharge predicate ran.
  int cells_examined = 0;
  /// Number of bisections performed.
  int splits = 0;
  /// Whether coverage was proven within budget.
  bool proven = false;
};

/// Attempts to prove that every point of `region` satisfies some per-cell
/// certificate: `discharged(cell)` must certify that the *entire* cell is
/// covered. Bisects undischarged cells along their longest edge. At most
/// `max_partitions` cells are examined in total (the paper's |part(R)|
/// budget, parameter m_max of Table I). Returns true only on proof.
bool AdaptiveCover(const Rect& region,
                   const std::function<bool(const Rect&)>& discharged,
                   int max_partitions, PartitionStats* stats = nullptr);

/// SE Step 9 specialization: true iff proven that
/// `region` ∩ I(cset, o) = ∅, i.e. every partition of `region` is inside
/// dom(c, o) for some candidate region c in `cset` (Definition 5/6,
/// Lemma 3). `cset` holds the uncertainty regions of the C-set objects.
/// Candidates intersecting u(o) can never discharge a cell (Lemma 2) and are
/// skipped. Cost O(|part(region)| · |cset| · d) as stated in Section V-B.
bool ProvenOutsidePVCell(const Rect& region, const Rect& o_region,
                         std::span<const Rect> cset, int max_partitions,
                         PartitionStats* stats = nullptr);

}  // namespace pvdb::geom

#endif  // PVDB_GEOM_REGION_PARTITION_H_
