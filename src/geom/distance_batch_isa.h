// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Internal seam between the dispatched batch-kernel wrappers
// (distance_batch.cc), the resolver (simd_dispatch.cc) and the per-ISA
// kernel translation units (distance_batch_{sse2,avx2,avx512}.cc). Not part
// of the public API.
//
// Everything here is raw-pointer shaped on purpose: the per-ISA TUs compile
// with -mavx2/-mavx512* flags, and any header-defined inline function they
// instantiate could be emitted as a linker-shared comdat containing wide
// (VEX/EVEX) encodings that the linker may then pick for *baseline* callers
// — an illegal-instruction fault on older CPUs. So this header includes no
// geom types, and the only inline helpers are `static` (internal linkage:
// each TU keeps its own copy, nothing is shared through the linker).
//
// Kernel contract (identical at every level, bit for bit):
//   - lo/hi are `dim` per-dimension pointers to n contiguous doubles each
//     (the RectSoA arrays); q is the query point's first `dim` coords.
//   - Accumulation runs dimension-outer in ascending d: out[i] is written
//     at d == 0 and summed into for d > 0 — the scalar reference's exact
//     partial-sum sequence per element.
//   - Per-lane ops are sub, max-select (a > b ? a : b, ties and NaN
//     resolving to b — MAXPD semantics), abs (sign-bit clear), mul, add.
//     All are exactly-rounded IEEE double ops, so equal inputs give equal
//     bytes at every width. No FMA, no reassociation.
//   - Tail lanes (n % width) run the scalar helpers below.

#ifndef PVDB_GEOM_DISTANCE_BATCH_ISA_H_
#define PVDB_GEOM_DISTANCE_BATCH_ISA_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "src/geom/simd_dispatch.h"

namespace pvdb::geom::simd {

/// out[i] = sum over d of the per-dimension min/max distance contribution.
using BatchDistFn = void (*)(const double* const* lo, const double* const* hi,
                             const double* q, int dim, size_t n, double* out);

/// Fused form writing both bounds per element in one traversal.
using BatchMinMaxFn = void (*)(const double* const* lo,
                               const double* const* hi, const double* q,
                               int dim, size_t n, double* min_out,
                               double* max_out);

/// Ordered masked compress; see geom::CompressIdsLe for the contract.
using CompressIdsFn = size_t (*)(const double* keys, size_t n,
                                 double threshold, const uint64_t* ids,
                                 uint64_t* out);

/// Horizontal minimum of x[0..n); +inf for n == 0. Inputs must be ordered
/// non-negatives (no NaN, no -0.0) — what squared distances are — so the
/// minimum is a unique bit pattern regardless of comparison order and every
/// width reduces to identical bytes. The Step-1 τ² reduce.
using MinReduceFn = double (*)(const double* x, size_t n);

/// out[k] = sqrt(sum over d of (base[k*stride + d] - q[d])^2), the sum
/// accumulated in ascending d — Point::DistanceTo's exact op sequence, and
/// sqrt is exactly rounded, so every lane reproduces the scalar reference
/// bit for bit. `base`/`stride` describe an array-of-structs point layout
/// (the Step-2 pdf Instance array: coords at struct offset 0, stride
/// sizeof(Instance)/8 doubles); the wide levels gather the strided lanes.
using PointDistFn = void (*)(const double* base, size_t stride_doubles,
                             const double* q, int dim, size_t n, double* out);

/// One ISA level's kernel set. Tables are immutable statics defined in the
/// TU that owns the level's kernels, so a table exists iff its code was
/// compiled.
struct KernelTable {
  BatchDistFn min_dist;
  BatchDistFn max_dist;
  BatchMinMaxFn min_max;
  CompressIdsFn compress_ids_le;
  MinReduceFn min_reduce;
  PointDistFn point_dist;
  SimdLevel level;
  int width_doubles;
  const char* name;
};

/// The table dispatch currently points at (resolving it on first use).
const KernelTable& ActiveTable();

// Scalar per-element reference ops, shared source of truth for every TU's
// tail lanes and for the scalar kernels themselves. `static`: see header
// comment — compiled per-TU, never linker-shared across ISA boundaries.

/// max(lo - p, p - hi, 0): distance from p to [lo, hi] on one axis. The
/// ternaries match MAXPD exactly (ties and the -0.0/+0.0 cases resolve to
/// the second operand).
static inline double ScalarMinDist(double lo, double hi, double p) {
  const double below = lo - p;
  const double above = p - hi;
  const double big = below > above ? below : above;
  return big > 0.0 ? big : 0.0;
}

/// max(|p - lo|, |p - hi|): farthest-corner distance on one axis.
static inline double ScalarMaxDist(double lo, double hi, double p) {
  const double dlo = std::abs(p - lo);
  const double dhi = std::abs(p - hi);
  return dlo > dhi ? dlo : dhi;
}

// Scalar kernels (distance_batch.cc, baseline codegen) — kScalarTable's
// entries, and the compress fallback for levels without a native one.
void MinDistSqBatchScalar(const double* const* lo, const double* const* hi,
                          const double* q, int dim, size_t n, double* out);
void MaxDistSqBatchScalar(const double* const* lo, const double* const* hi,
                          const double* q, int dim, size_t n, double* out);
void MinMaxDistSqBatchScalar(const double* const* lo, const double* const* hi,
                             const double* q, int dim, size_t n,
                             double* min_out, double* max_out);
size_t CompressIdsLeScalar(const double* keys, size_t n, double threshold,
                           const uint64_t* ids, uint64_t* out);
double MinReduceScalar(const double* x, size_t n);
void PointDistBatchScalar(const double* base, size_t stride_doubles,
                          const double* q, int dim, size_t n, double* out);

extern const KernelTable kScalarTable;
#if defined(PVDB_SIMD_X86)
extern const KernelTable kSse2Table;
#endif
#if defined(PVDB_SIMD_COMPILE_AVX2)
extern const KernelTable kAvx2Table;
#endif
#if defined(PVDB_SIMD_COMPILE_AVX512)
extern const KernelTable kAvx512Table;
#endif

}  // namespace pvdb::geom::simd

#endif  // PVDB_GEOM_DISTANCE_BATCH_ISA_H_
