// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/rect.h"

#include <algorithm>

namespace pvdb::geom {

Rect Rect::FromCenterHalfWidths(const Point& c, const Point& half) {
  Point lo(c.dim()), hi(c.dim());
  for (int i = 0; i < c.dim(); ++i) {
    PVDB_DCHECK(half[i] >= 0.0);
    lo[i] = c[i] - half[i];
    hi[i] = c[i] + half[i];
  }
  return Rect(lo, hi);
}

Rect Rect::Cube(int dim, double lo, double hi) {
  PVDB_DCHECK(lo <= hi);
  Point l(dim), h(dim);
  for (int i = 0; i < dim; ++i) {
    l[i] = lo;
    h[i] = hi;
  }
  return Rect(l, h);
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  PVDB_DCHECK(a.dim() == b.dim());
  Point lo(a.dim()), hi(a.dim());
  for (int i = 0; i < a.dim(); ++i) {
    lo[i] = std::min(a.lo_[i], b.lo_[i]);
    hi[i] = std::max(a.hi_[i], b.hi_[i]);
  }
  return Rect(lo, hi);
}

Rect Rect::Intersection(const Rect& a, const Rect& b) {
  PVDB_DCHECK(a.dim() == b.dim());
  Rect out(a.dim());
  Point lo(a.dim()), hi(a.dim());
  for (int i = 0; i < a.dim(); ++i) {
    lo[i] = std::max(a.lo_[i], b.lo_[i]);
    hi[i] = std::min(a.hi_[i], b.hi_[i]);
    if (lo[i] > hi[i]) return out;  // disjoint: empty marker
  }
  return Rect(lo, hi);
}

Point Rect::Center() const {
  Point c(dim());
  for (int i = 0; i < dim(); ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
  return c;
}

double Rect::MaxSide() const {
  double m = 0.0;
  for (int i = 0; i < dim(); ++i) m = std::max(m, Side(i));
  return m;
}

int Rect::LongestDim() const {
  int best = 0;
  double m = Side(0);
  for (int i = 1; i < dim(); ++i) {
    if (Side(i) > m) {
      m = Side(i);
      best = i;
    }
  }
  return best;
}

double Rect::Volume() const {
  double v = 1.0;
  for (int i = 0; i < dim(); ++i) v *= Side(i);
  return v;
}

double Rect::Margin() const {
  double m = 0.0;
  for (int i = 0; i < dim(); ++i) m += Side(i);
  return m;
}

bool Rect::Contains(const Point& p) const {
  PVDB_DCHECK(p.dim() == dim());
  for (int i = 0; i < dim(); ++i)
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  return true;
}

bool Rect::ContainsRect(const Rect& r) const {
  PVDB_DCHECK(r.dim() == dim());
  for (int i = 0; i < dim(); ++i)
    if (r.lo_[i] < lo_[i] || r.hi_[i] > hi_[i]) return false;
  return true;
}

bool Rect::Intersects(const Rect& r) const {
  PVDB_DCHECK(r.dim() == dim());
  for (int i = 0; i < dim(); ++i)
    if (r.hi_[i] < lo_[i] || r.lo_[i] > hi_[i]) return false;
  return true;
}

bool Rect::InteriorIntersects(const Rect& r) const {
  PVDB_DCHECK(r.dim() == dim());
  for (int i = 0; i < dim(); ++i)
    if (r.hi_[i] <= lo_[i] || r.lo_[i] >= hi_[i]) return false;
  return true;
}

Point Rect::Corner(unsigned mask) const {
  Point c(dim());
  for (int i = 0; i < dim(); ++i) c[i] = (mask >> i) & 1u ? hi_[i] : lo_[i];
  return c;
}

Rect Rect::Inflated(double delta) const {
  Point lo(dim()), hi(dim());
  for (int i = 0; i < dim(); ++i) {
    lo[i] = lo_[i] - delta;
    hi[i] = hi_[i] + delta;
    if (lo[i] > hi[i]) lo[i] = hi[i] = 0.5 * (lo[i] + hi[i]);
  }
  return Rect(lo, hi);
}

Point Rect::ClampPoint(const Point& p) const {
  PVDB_DCHECK(p.dim() == dim());
  Point c(dim());
  for (int i = 0; i < dim(); ++i) c[i] = std::clamp(p[i], lo_[i], hi_[i]);
  return c;
}

std::string Rect::ToString() const {
  return "[" + lo_.ToString() + " .. " + hi_.ToString() + "]";
}

}  // namespace pvdb::geom
