// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Morton (Z-order) keys for d-dimensional points. Used by the PV-index's
// bulk-loading mode (the "bulkloading" precomputation the paper's
// conclusion proposes as future work): inserting UBRs in Z-order groups
// spatially adjacent objects, so octree leaves fill before they split and
// page churn drops.

#ifndef PVDB_GEOM_MORTON_H_
#define PVDB_GEOM_MORTON_H_

#include <cstdint>

#include "src/geom/rect.h"

namespace pvdb::geom {

/// Z-order key of `p` within `domain`: each coordinate is quantized to
/// floor(64 / d) bits and bit-interleaved, dimension 0 least significant.
/// Points outside the domain are clamped.
uint64_t MortonKey(const Point& p, const Rect& domain);

}  // namespace pvdb::geom

#endif  // PVDB_GEOM_MORTON_H_
