// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Spatial domination (Emrich et al., "Boosting spatial pruning: on optimal
// pruning of MBRs", SIGMOD 2010), the machinery Section IV of the paper
// builds on. For rectangles A, B and a region R, `Dominates(A, B, R)`
// decides whether every point of R is strictly closer to every point of A
// than to any point of B — equivalently, whether R ⊆ dom(A, B)
// (Definition 3). The test is exact and runs in O(d).

#ifndef PVDB_GEOM_DOMINATION_H_
#define PVDB_GEOM_DOMINATION_H_

#include "src/geom/distance.h"
#include "src/geom/rect.h"

namespace pvdb::geom {

/// max_{p ∈ r} [ MaxDistSq(a, p) − MinDistSq(b, p) ].
///
/// Negative iff a dominates b everywhere on r. The maximum decomposes per
/// dimension; each one-dimensional term is piecewise linear-or-convex, so it
/// is attained at an endpoint of r's extent or at a clamped breakpoint
/// (mid(a_i), b.lo_i, b.hi_i) — five candidate evaluations per dimension.
double DominationMarginSq(const Rect& a, const Rect& b, const Rect& r);

/// True iff ∀x∈a, ∀y∈b, ∀p∈r: dist(x,p) < dist(y,p), i.e. r ⊆ dom(a, b).
bool Dominates(const Rect& a, const Rect& b, const Rect& r);

/// Point membership p ∈ dom(a, b): distmax(a, p) < distmin(b, p).
bool PointInDom(const Rect& a, const Rect& b, const Point& p);

/// Lemma 2: dom(a, b) = ∅ iff u(a) intersects u(b).
bool DomIsEmpty(const Rect& a, const Rect& b);

/// Point membership in the non-dominated region: p ∈ ¬dom(a, b)
/// ⇔ distmax(a, p) >= distmin(b, p) (Definition 4).
bool PointInNonDom(const Rect& a, const Rect& b, const Point& p);

/// Oracle form of the PV-cell membership predicate (Lemma 4): p ∈ V(o) over
/// database objects `others` ⇔ every other region fails to dominate o at p.
/// Linear scan — used by tests, the UV baseline, and brute-force fallbacks.
template <typename RectRange>
bool PointPossiblyNearest(const Rect& o, const RectRange& others,
                          const Point& p) {
  const double dmin_o_sq = MinDistSq(o, p);
  for (const Rect& a : others) {
    // p ∈ dom(a, o) would certify that o can never be nearest at p.
    if (MaxDistSq(a, p) < dmin_o_sq) return false;
  }
  return true;
}

}  // namespace pvdb::geom

#endif  // PVDB_GEOM_DOMINATION_H_
