// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/geom/distance_batch_isa.h"

namespace pvdb::geom {

namespace simd {
namespace {

/// The published table. Null until first resolution; ForceSimdLevel stores
/// directly. Acquire/release so a reader that sees the pointer sees the
/// (immutable, statically initialized) table behind it.
std::atomic<const KernelTable*> g_active{nullptr};

/// Maps a level to its table, falling back down the ladder for levels the
/// build did not produce (callers guard with MaxUsableSimdLevel, so the
/// fallthroughs only matter as belt-and-braces).
const KernelTable* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
#if defined(PVDB_SIMD_COMPILE_AVX512)
      return &kAvx512Table;
#else
      [[fallthrough]];
#endif
    case SimdLevel::kAvx2:
#if defined(PVDB_SIMD_COMPILE_AVX2)
      return &kAvx2Table;
#else
      [[fallthrough]];
#endif
    case SimdLevel::kSse2:
#if defined(PVDB_SIMD_X86)
      return &kSse2Table;
#else
      [[fallthrough]];
#endif
    case SimdLevel::kScalar:
      return &kScalarTable;
  }
  return &kScalarTable;
}

/// Startup resolution: usable ceiling, then the PVDB_SIMD_LEVEL override.
/// Runs once (function-local static in ActiveTable); an unparseable value
/// or one above the ceiling is reported and clamped, never trusted — a
/// stale deploy config must not select a faulting path.
const KernelTable* ResolveStartupTable() {
  SimdLevel level = MaxUsableSimdLevel();
  if (const char* env = std::getenv("PVDB_SIMD_LEVEL")) {
    SimdLevel parsed;
    if (!ParseSimdLevel(env, &parsed)) {
      PVDB_LOG(kWarn) << "PVDB_SIMD_LEVEL='" << env
                      << "' is not one of scalar/sse2/avx2/avx512; keeping "
                      << SimdLevelName(level);
    } else if (parsed > level) {
      PVDB_LOG(kWarn) << "PVDB_SIMD_LEVEL=" << SimdLevelName(parsed)
                      << " exceeds this "
                      << (parsed > MaxCompiledSimdLevel() ? "build" : "CPU")
                      << "'s ceiling; clamping to " << SimdLevelName(level);
    } else {
      level = parsed;
    }
  }
  return TableFor(level);
}

}  // namespace

const KernelTable& ActiveTable() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    static const KernelTable* const startup = ResolveStartupTable();
    // Publish only if nothing (a concurrent ForceSimdLevel) beat us to it.
    const KernelTable* expected = nullptr;
    g_active.compare_exchange_strong(expected, startup,
                                     std::memory_order_acq_rel);
    t = g_active.load(std::memory_order_acquire);
  }
  return *t;
}

}  // namespace simd

SimdLevel MaxCompiledSimdLevel() {
#if defined(PVDB_SIMD_COMPILE_AVX512)
  return SimdLevel::kAvx512;
#elif defined(PVDB_SIMD_COMPILE_AVX2)
  return SimdLevel::kAvx2;
#elif defined(PVDB_SIMD_X86)
  return SimdLevel::kSse2;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel DetectCpuSimdLevel() {
#if defined(PVDB_SIMD_X86)
  // F+DQ+VL together cover everything the AVX-512 kernels emit (512-bit
  // math + and_pd from DQ; VL demanded so downclocking-era partial
  // implementations without it stay on AVX2).
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;  // x86-64 baseline
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel MaxUsableSimdLevel() {
  const SimdLevel compiled = MaxCompiledSimdLevel();
  const SimdLevel cpu = DetectCpuSimdLevel();
  return compiled < cpu ? compiled : cpu;
}

SimdLevel ActiveSimdLevel() { return simd::ActiveTable().level; }

bool ForceSimdLevel(SimdLevel level) {
  if (level < SimdLevel::kScalar || level > SimdLevel::kAvx512) return false;
  if (level > MaxUsableSimdLevel()) return false;
  simd::g_active.store(simd::TableFor(level), std::memory_order_release);
  return true;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseSimdLevel(std::string_view text, SimdLevel* out) {
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kSse2,
                          SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (text == SimdLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

int SimdLaneWidthDoubles(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return 1;
    case SimdLevel::kSse2:
      return 2;
    case SimdLevel::kAvx2:
      return 4;
    case SimdLevel::kAvx512:
      return 8;
  }
  return 1;
}

}  // namespace pvdb::geom
