// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Batched structure-of-arrays variants of the distmin/distmax kernels in
// distance.h. The scalar functions walk one Rect at a time — an
// array-of-structs layout whose ~150-byte entries defeat both the cache and
// the vectorizer. These kernels take per-dimension contiguous lo/hi spans
// and run dimension-outer, branch-free inner loops over them, so a leaf's
// worth of MinDistSq/MaxDistSq values is computed in a handful of streaming
// passes.
//
// Every entry point below is runtime-dispatched (simd_dispatch.h) over
// explicit SSE2 / AVX2 / AVX-512 implementations compiled in per-ISA
// translation units, selected once by CPUID and overridable with
// PVDB_SIMD_LEVEL or geom::ForceSimdLevel. Results are bit-identical to
// calling the scalar functions entry by entry AT EVERY LEVEL: identical
// per-element IEEE operations in identical accumulation order, scalar tail
// lanes, no FMA (asserted per level by tests/simd_dispatch_test.cc and
// tests/hotpath_test.cc); the scalar functions remain the reference
// implementation.

#ifndef PVDB_GEOM_DISTANCE_BATCH_H_
#define PVDB_GEOM_DISTANCE_BATCH_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/geom/rect.h"
#include "src/geom/simd_dispatch.h"

namespace pvdb::geom {

/// Structure-of-arrays rectangle storage: one contiguous lo array and one
/// contiguous hi array per dimension. Index i across all spans is one
/// rectangle; insertion order is preserved, so a RectSoA built from a leaf's
/// entry list is a positional mirror of that list.
class RectSoA {
 public:
  RectSoA() = default;
  explicit RectSoA(int dim) { Reset(dim); }

  /// Drops all rectangles and fixes the dimensionality.
  void Reset(int dim) {
    PVDB_DCHECK(dim >= 1 && dim <= kMaxDim);
    dim_ = dim;
    size_ = 0;
    for (auto& v : lo_) v.clear();
    for (auto& v : hi_) v.clear();
  }

  void Reserve(size_t n) {
    for (int d = 0; d < dim_; ++d) {
      lo_[d].reserve(n);
      hi_[d].reserve(n);
    }
  }

  /// Appends `r` (must match dim()).
  void PushBack(const Rect& r) {
    PVDB_DCHECK(r.dim() == dim_);
    for (int d = 0; d < dim_; ++d) {
      lo_[d].push_back(r.lo(d));
      hi_[d].push_back(r.hi(d));
    }
    ++size_;
  }

  /// Appends a rectangle given per-dimension bounds (page-decode path).
  void PushBackBounds(const double* lo, const double* hi) {
    for (int d = 0; d < dim_; ++d) {
      lo_[d].push_back(lo[d]);
      hi_[d].push_back(hi[d]);
    }
    ++size_;
  }

  /// Reconstitutes rectangle i (tests and slow paths).
  Rect At(size_t i) const {
    PVDB_DCHECK(i < size_);
    Point lo(dim_), hi(dim_);
    for (int d = 0; d < dim_; ++d) {
      lo[d] = lo_[d][i];
      hi[d] = hi_[d][i];
    }
    return Rect(lo, hi);
  }

  int dim() const { return dim_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Heap bytes held by the bound arrays (cache budget accounting).
  size_t ApproxBytes() const {
    size_t bytes = 0;
    for (int d = 0; d < dim_; ++d) {
      bytes += (lo_[d].capacity() + hi_[d].capacity()) * sizeof(double);
    }
    return bytes;
  }

  /// Contiguous per-dimension bound arrays, size() doubles each.
  std::span<const double> lo(int d) const {
    PVDB_DCHECK(d >= 0 && d < dim_);
    return lo_[d];
  }
  std::span<const double> hi(int d) const {
    PVDB_DCHECK(d >= 0 && d < dim_);
    return hi_[d];
  }

 private:
  int dim_ = 0;
  size_t size_ = 0;
  std::array<std::vector<double>, kMaxDim> lo_;
  std::array<std::vector<double>, kMaxDim> hi_;
};

/// out[i] = MinDistSq(rects[i], q), bit-identical to the scalar kernel.
/// Requires out.size() >= rects.size(); only the first rects.size() slots
/// are written.
void MinDistSqBatch(const RectSoA& rects, const Point& q,
                    std::span<double> out);

/// out[i] = MaxDistSq(rects[i], q), bit-identical to the scalar kernel.
void MaxDistSqBatch(const RectSoA& rects, const Point& q,
                    std::span<double> out);

/// Both bounds in one traversal: min_out[i] = MinDistSq(rects[i], q) and
/// max_out[i] = MaxDistSq(rects[i], q), reading each lo/hi array once
/// instead of twice. Bit-identical to the two separate kernels; this is
/// what the Step-1 block prune calls.
void MinMaxDistSqBatch(const RectSoA& rects, const Point& q,
                       std::span<double> min_out, std::span<double> max_out);

/// Raw-pointer form of the fused kernel for non-owning SoA views
/// (pv::LeafBlockView — per-dimension bound planes living in an mmap'd
/// snapshot section instead of RectSoA vectors). `lo`/`hi` are `dim`
/// pointers to n contiguous doubles each. Dispatches identically to the
/// RectSoA overload, so view-based and block-based Step-1 pruning are
/// bit-identical by construction.
void MinMaxDistSqBatch(const double* const* lo, const double* const* hi,
                       const Point& q, int dim, size_t n, double* min_out,
                       double* max_out);

/// Horizontal minimum of x[0..n); +inf for n == 0. Requires ordered
/// non-negative inputs (no NaN, no -0.0) — squared distances — which makes
/// the minimum order-insensitive and therefore bit-identical at every
/// dispatch width. This is Step-1's τ² = min(MaxDistSq) reduce.
double MinReduce(const double* x, size_t n);

/// out[k] = Point::DistanceTo(q) of the k-th point in an array-of-structs
/// layout: coordinates of point k start at base[k * stride_doubles] (the
/// Step-2 pdf Instance array: coords at offset 0, stride
/// sizeof(Instance) / sizeof(double)). Bit-identical to calling
/// Point::DistanceTo per element at every dispatch level: ascending-d
/// accumulation, no FMA, exactly-rounded sqrt. The AVX-512 level uses
/// hardware gathers for the strided lanes.
void PointDistBatch(const double* base, size_t stride_doubles, const Point& q,
                    size_t n, double* out);

/// Ordered masked compress — the Step-1 candidate-compaction kernel
/// (pv::Step1PruneMinMax): out[j] = ids[k] for the j-th k, ascending, with
/// keys[k] <= threshold; returns the count kept. The kept id sequence is
/// identical at every dispatch level (AVX-512 vcompressq-style masked
/// compress-store, AVX2 4-lane shuffle table, scalar predicated loop).
/// `out` must have room for n entries and must not alias keys/ids: the
/// vector paths store a full vector at the write cursor and advance it by
/// popcount, so slots at and past the returned count are scratch.
size_t CompressIdsLe(const double* keys, size_t n, double threshold,
                     const uint64_t* ids, uint64_t* out);

}  // namespace pvdb::geom

#endif  // PVDB_GEOM_DISTANCE_BATCH_H_
