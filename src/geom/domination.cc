// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/domination.h"

#include <algorithm>

namespace pvdb::geom {
namespace {

// One-dimensional margin term:
//   g(t) = max((t - a_lo)^2, (t - a_hi)^2) - clampdist(t, [b_lo, b_hi])^2.
double MarginTerm1D(double a_lo, double a_hi, double b_lo, double b_hi,
                    double t) {
  const double dlo = t - a_lo;
  const double dhi = t - a_hi;
  const double max_a_sq = std::max(dlo * dlo, dhi * dhi);
  double db = 0.0;
  if (t < b_lo) {
    db = b_lo - t;
  } else if (t > b_hi) {
    db = t - b_hi;
  }
  return max_a_sq - db * db;
}

// Maximum of g over [r_lo, r_hi]. The pieces of g change at mid(a) (where the
// max() in the first term switches branch) and at b_lo/b_hi (where the clamp
// distance switches branch); on each piece g is linear (coefficients on t^2
// cancel) or convex (inside [b_lo, b_hi]), so the maximum over the closed
// interval is attained at r_lo, r_hi, or a breakpoint inside the interval.
double MaxMarginTerm1D(double a_lo, double a_hi, double b_lo, double b_hi,
                       double r_lo, double r_hi) {
  double best = std::max(MarginTerm1D(a_lo, a_hi, b_lo, b_hi, r_lo),
                         MarginTerm1D(a_lo, a_hi, b_lo, b_hi, r_hi));
  const double breakpoints[3] = {0.5 * (a_lo + a_hi), b_lo, b_hi};
  for (double t : breakpoints) {
    if (t > r_lo && t < r_hi) {
      best = std::max(best, MarginTerm1D(a_lo, a_hi, b_lo, b_hi, t));
    }
  }
  return best;
}

}  // namespace

double DominationMarginSq(const Rect& a, const Rect& b, const Rect& r) {
  PVDB_DCHECK(a.dim() == b.dim() && b.dim() == r.dim());
  double total = 0.0;
  for (int i = 0; i < r.dim(); ++i) {
    total += MaxMarginTerm1D(a.lo(i), a.hi(i), b.lo(i), b.hi(i), r.lo(i),
                             r.hi(i));
  }
  return total;
}

bool Dominates(const Rect& a, const Rect& b, const Rect& r) {
  return DominationMarginSq(a, b, r) < 0.0;
}

bool PointInDom(const Rect& a, const Rect& b, const Point& p) {
  return MaxDistSq(a, p) < MinDistSq(b, p);
}

bool DomIsEmpty(const Rect& a, const Rect& b) { return a.Intersects(b); }

bool PointInNonDom(const Rect& a, const Rect& b, const Point& p) {
  return MaxDistSq(a, p) >= MinDistSq(b, p);
}

}  // namespace pvdb::geom
