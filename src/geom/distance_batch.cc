// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/distance_batch.h"

#include <algorithm>
#include <cmath>

namespace pvdb::geom {

// Both kernels accumulate out[i] across dimensions in ascending dimension
// order — the same sequence of partial sums the scalar functions produce for
// one rectangle — so results match bit for bit. The inner loops are
// branch-free (max/abs select instead of compare-and-jump) and read nothing
// but the two contiguous bound arrays of the current dimension.

void MinDistSqBatch(const RectSoA& rects, const Point& q,
                    std::span<double> out) {
  PVDB_DCHECK(rects.empty() || rects.dim() == q.dim());
  const size_t n = rects.size();
  PVDB_DCHECK(out.size() >= n);
  double* o = out.data();
  for (int d = 0; d < rects.dim(); ++d) {
    const double* lo = rects.lo(d).data();
    const double* hi = rects.hi(d).data();
    const double p = q[d];
    if (d == 0) {
      // First dimension writes instead of accumulating — saves a zeroing
      // pass over the output without changing the partial-sum sequence.
      for (size_t i = 0; i < n; ++i) {
        // max(lo - p, p - hi, 0): equals the scalar kernel's three-way
        // branch exactly (lo <= hi, so at most one difference is positive).
        // Plain ternaries (not std::max's reference form) so GCC
        // if-converts and vectorizes.
        const double below = lo[i] - p;
        const double above = p - hi[i];
        const double big = below > above ? below : above;
        const double dist = big > 0.0 ? big : 0.0;
        o[i] = dist * dist;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double below = lo[i] - p;
        const double above = p - hi[i];
        const double big = below > above ? below : above;
        const double dist = big > 0.0 ? big : 0.0;
        o[i] += dist * dist;
      }
    }
  }
}

void MaxDistSqBatch(const RectSoA& rects, const Point& q,
                    std::span<double> out) {
  PVDB_DCHECK(rects.empty() || rects.dim() == q.dim());
  const size_t n = rects.size();
  PVDB_DCHECK(out.size() >= n);
  double* o = out.data();
  for (int d = 0; d < rects.dim(); ++d) {
    const double* lo = rects.lo(d).data();
    const double* hi = rects.hi(d).data();
    const double p = q[d];
    if (d == 0) {
      for (size_t i = 0; i < n; ++i) {
        const double dlo = std::abs(p - lo[i]);
        const double dhi = std::abs(p - hi[i]);
        const double dist = std::max(dlo, dhi);
        o[i] = dist * dist;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double dlo = std::abs(p - lo[i]);
        const double dhi = std::abs(p - hi[i]);
        const double dist = std::max(dlo, dhi);
        o[i] += dist * dist;
      }
    }
  }
}

void MinMaxDistSqBatch(const RectSoA& rects, const Point& q,
                       std::span<double> min_out, std::span<double> max_out) {
  PVDB_DCHECK(rects.empty() || rects.dim() == q.dim());
  const size_t n = rects.size();
  PVDB_DCHECK(min_out.size() >= n && max_out.size() >= n);
  // restrict: every array is a distinct vector allocation, so the
  // vectorizer can skip runtime alias-check versioning.
  double* __restrict__ mn = min_out.data();
  double* __restrict__ mx = max_out.data();
  for (int d = 0; d < rects.dim(); ++d) {
    const double* __restrict__ lo = rects.lo(d).data();
    const double* __restrict__ hi = rects.hi(d).data();
    const double p = q[d];
    if (d == 0) {
      for (size_t i = 0; i < n; ++i) {
        const double below = lo[i] - p;
        const double above = p - hi[i];
        const double big = below > above ? below : above;
        const double min_d = big > 0.0 ? big : 0.0;
        const double dlo = std::abs(p - lo[i]);
        const double dhi = std::abs(p - hi[i]);
        const double max_d = dlo > dhi ? dlo : dhi;
        mn[i] = min_d * min_d;
        mx[i] = max_d * max_d;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double below = lo[i] - p;
        const double above = p - hi[i];
        const double big = below > above ? below : above;
        const double min_d = big > 0.0 ? big : 0.0;
        const double dlo = std::abs(p - lo[i]);
        const double dhi = std::abs(p - hi[i]);
        const double max_d = dlo > dhi ? dlo : dhi;
        mn[i] += min_d * min_d;
        mx[i] += max_d * max_d;
      }
    }
  }
}

}  // namespace pvdb::geom
