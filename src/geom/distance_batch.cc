// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/geom/distance_batch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/geom/distance_batch_isa.h"
#include "src/geom/simd_dispatch.h"

namespace pvdb::geom {

// ---------------------------------------------------------------------------
// Scalar reference kernels (simd::kScalarTable). These are the semantics
// every explicit-SIMD level must reproduce bit for bit: out[i] accumulates
// across dimensions in ascending dimension order — the same sequence of
// partial sums the per-Rect scalar functions in distance.h produce — and
// the inner loops are branch-free (max/abs select instead of
// compare-and-jump) so GCC's autovectorizer still turns them into 16-byte
// SSE2 at -O3. "Scalar" in the dispatch sense means no explicit intrinsics,
// not necessarily scalar instructions.
// ---------------------------------------------------------------------------

namespace simd {

void MinDistSqBatchScalar(const double* const* lo, const double* const* hi,
                          const double* q, int dim, size_t n, double* out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    if (d == 0) {
      // First dimension writes instead of accumulating — saves a zeroing
      // pass over the output without changing the partial-sum sequence.
      for (size_t i = 0; i < n; ++i) {
        // max(lo - p, p - hi, 0): equals the scalar kernel's three-way
        // branch exactly (lo <= hi, so at most one difference is positive).
        // Plain ternaries (not std::max's reference form) so GCC
        // if-converts and vectorizes.
        const double dist = ScalarMinDist(lod[i], hid[i], p);
        out[i] = dist * dist;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double dist = ScalarMinDist(lod[i], hid[i], p);
        out[i] += dist * dist;
      }
    }
  }
}

void MaxDistSqBatchScalar(const double* const* lo, const double* const* hi,
                          const double* q, int dim, size_t n, double* out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    if (d == 0) {
      for (size_t i = 0; i < n; ++i) {
        const double dist = ScalarMaxDist(lod[i], hid[i], p);
        out[i] = dist * dist;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double dist = ScalarMaxDist(lod[i], hid[i], p);
        out[i] += dist * dist;
      }
    }
  }
}

void MinMaxDistSqBatchScalar(const double* const* lo, const double* const* hi,
                             const double* q, int dim, size_t n,
                             double* min_out, double* max_out) {
  // restrict: every array is a distinct vector allocation, so the
  // vectorizer can skip runtime alias-check versioning.
  double* __restrict__ mn = min_out;
  double* __restrict__ mx = max_out;
  for (int d = 0; d < dim; ++d) {
    const double* __restrict__ lod = lo[d];
    const double* __restrict__ hid = hi[d];
    const double p = q[d];
    if (d == 0) {
      for (size_t i = 0; i < n; ++i) {
        const double min_d = ScalarMinDist(lod[i], hid[i], p);
        const double max_d = ScalarMaxDist(lod[i], hid[i], p);
        mn[i] = min_d * min_d;
        mx[i] = max_d * max_d;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double min_d = ScalarMinDist(lod[i], hid[i], p);
        const double max_d = ScalarMaxDist(lod[i], hid[i], p);
        mn[i] += min_d * min_d;
        mx[i] += max_d * max_d;
      }
    }
  }
}

size_t CompressIdsLeScalar(const double* keys, size_t n, double threshold,
                           const uint64_t* ids, uint64_t* out) {
  // Branchless compaction: unconditional store + predicated advance. The
  // cursor never outruns the read index, so out[count] stays in the first
  // n slots the contract reserves.
  size_t count = 0;
  for (size_t k = 0; k < n; ++k) {
    out[count] = ids[k];
    count += keys[k] <= threshold ? 1 : 0;
  }
  return count;
}

double MinReduceScalar(const double* x, size_t n) {
  // Four independent chains break the serial min dependency so the
  // autovectorizer (and the OoO core) can overlap them. Inputs are ordered
  // non-negatives, so the combining order cannot change the result.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double t0 = kInf, t1 = kInf, t2 = kInf, t3 = kInf;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    t0 = x[i] < t0 ? x[i] : t0;
    t1 = x[i + 1] < t1 ? x[i + 1] : t1;
    t2 = x[i + 2] < t2 ? x[i + 2] : t2;
    t3 = x[i + 3] < t3 ? x[i + 3] : t3;
  }
  for (; i < n; ++i) t0 = x[i] < t0 ? x[i] : t0;
  const double a = t0 < t1 ? t0 : t1;
  const double b = t2 < t3 ? t2 : t3;
  return a < b ? a : b;
}

void PointDistBatchScalar(const double* base, size_t stride_doubles,
                          const double* q, int dim, size_t n, double* out) {
  for (size_t k = 0; k < n; ++k) {
    const double* p = base + k * stride_doubles;
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = p[d] - q[d];
      s += diff * diff;
    }
    out[k] = std::sqrt(s);
  }
}

const KernelTable kScalarTable = {
    MinDistSqBatchScalar,    MaxDistSqBatchScalar, MinMaxDistSqBatchScalar,
    CompressIdsLeScalar,     MinReduceScalar,      PointDistBatchScalar,
    SimdLevel::kScalar,      /*width_doubles=*/1,
    "scalar",
};

}  // namespace simd

// ---------------------------------------------------------------------------
// Public entry points: validate, gather the per-dimension raw pointers and
// dispatch through the active kernel table.
// ---------------------------------------------------------------------------

namespace {

/// Per-dimension pointer gather for one RectSoA + query (the raw shape the
/// per-ISA kernels consume; see distance_batch_isa.h for why raw).
struct SoAView {
  const double* lo[kMaxDim];
  const double* hi[kMaxDim];
  double q[kMaxDim];
  int dim;

  SoAView(const RectSoA& rects, const Point& point) : dim(rects.dim()) {
    for (int d = 0; d < dim; ++d) {
      lo[d] = rects.lo(d).data();
      hi[d] = rects.hi(d).data();
      q[d] = point[d];
    }
  }
};

}  // namespace

void MinDistSqBatch(const RectSoA& rects, const Point& q,
                    std::span<double> out) {
  PVDB_DCHECK(rects.empty() || rects.dim() == q.dim());
  const size_t n = rects.size();
  PVDB_DCHECK(out.size() >= n);
  if (n == 0) return;
  const SoAView v(rects, q);
  simd::ActiveTable().min_dist(v.lo, v.hi, v.q, v.dim, n, out.data());
}

void MaxDistSqBatch(const RectSoA& rects, const Point& q,
                    std::span<double> out) {
  PVDB_DCHECK(rects.empty() || rects.dim() == q.dim());
  const size_t n = rects.size();
  PVDB_DCHECK(out.size() >= n);
  if (n == 0) return;
  const SoAView v(rects, q);
  simd::ActiveTable().max_dist(v.lo, v.hi, v.q, v.dim, n, out.data());
}

void MinMaxDistSqBatch(const RectSoA& rects, const Point& q,
                       std::span<double> min_out, std::span<double> max_out) {
  PVDB_DCHECK(rects.empty() || rects.dim() == q.dim());
  const size_t n = rects.size();
  PVDB_DCHECK(min_out.size() >= n && max_out.size() >= n);
  if (n == 0) return;
  const SoAView v(rects, q);
  simd::ActiveTable().min_max(v.lo, v.hi, v.q, v.dim, n, min_out.data(),
                              max_out.data());
}

void MinMaxDistSqBatch(const double* const* lo, const double* const* hi,
                       const Point& q, int dim, size_t n, double* min_out,
                       double* max_out) {
  PVDB_DCHECK(n == 0 || dim == q.dim());
  if (n == 0) return;
  double qc[kMaxDim];
  for (int d = 0; d < dim; ++d) qc[d] = q[d];
  simd::ActiveTable().min_max(lo, hi, qc, dim, n, min_out, max_out);
}

double MinReduce(const double* x, size_t n) {
  return simd::ActiveTable().min_reduce(x, n);
}

void PointDistBatch(const double* base, size_t stride_doubles, const Point& q,
                    size_t n, double* out) {
  if (n == 0) return;
  double qc[kMaxDim];
  for (int d = 0; d < q.dim(); ++d) qc[d] = q[d];
  simd::ActiveTable().point_dist(base, stride_doubles, qc, q.dim(), n, out);
}

size_t CompressIdsLe(const double* keys, size_t n, double threshold,
                     const uint64_t* ids, uint64_t* out) {
  return simd::ActiveTable().compress_ids_le(keys, n, threshold, ids, out);
}

}  // namespace pvdb::geom
