// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Explicit 8-lane AVX-512 batch kernels (simd::kAvx512Table), compiled with
// -mavx512f -mavx512dq -mavx512vl -ffp-contract=off and ONLY ever entered
// through the dispatch table after a CPUID probe of F+DQ+VL. Per-lane
// operation order matches the scalar reference exactly (see
// distance_batch_isa.h): sub / MAXPD-select / abs / mul / add, tails
// scalar, no FMA — forced levels are bit-identical.
//
// CompressIdsLeAvx512 is the real thing the AVX2 shuffle table imitates:
// vcmppd to a mask register, then vpcompressq's memory form
// (_mm512_mask_compressstoreu_epi64) writes exactly the kept ids, packed,
// in lane order.

#include "src/geom/distance_batch_isa.h"

#if defined(PVDB_SIMD_COMPILE_AVX512)

#include <immintrin.h>

namespace pvdb::geom::simd {

namespace {

inline __m512d MinDistLanes(__m512d lo, __m512d hi, __m512d p) {
  const __m512d below = _mm512_sub_pd(lo, p);
  const __m512d above = _mm512_sub_pd(p, hi);
  // MAXPD(a, b) = a > b ? a : b, ties/NaN to b — the scalar ternary.
  const __m512d big = _mm512_max_pd(below, above);
  return _mm512_max_pd(big, _mm512_setzero_pd());
}

inline __m512d MaxDistLanes(__m512d lo, __m512d hi, __m512d p) {
  // and_pd is the AVX512DQ bit the CPUID probe demands.
  const __m512d sign =
      _mm512_castsi512_pd(_mm512_set1_epi64(static_cast<int64_t>(1) << 63));
  const __m512d dlo = _mm512_andnot_pd(sign, _mm512_sub_pd(p, lo));
  const __m512d dhi = _mm512_andnot_pd(sign, _mm512_sub_pd(p, hi));
  return _mm512_max_pd(dlo, dhi);
}

}  // namespace

void MinDistSqBatchAvx512(const double* const* lo, const double* const* hi,
                          const double* q, int dim, size_t n, double* out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m512d pv = _mm512_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 8 <= n; i += 8) {
        const __m512d dist =
            MinDistLanes(_mm512_loadu_pd(lod + i), _mm512_loadu_pd(hid + i),
                         pv);
        _mm512_storeu_pd(out + i, _mm512_mul_pd(dist, dist));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMinDist(lod[i], hid[i], p);
        out[i] = dist * dist;
      }
    } else {
      for (; i + 8 <= n; i += 8) {
        const __m512d dist =
            MinDistLanes(_mm512_loadu_pd(lod + i), _mm512_loadu_pd(hid + i),
                         pv);
        _mm512_storeu_pd(out + i, _mm512_add_pd(_mm512_loadu_pd(out + i),
                                                _mm512_mul_pd(dist, dist)));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMinDist(lod[i], hid[i], p);
        out[i] += dist * dist;
      }
    }
  }
}

void MaxDistSqBatchAvx512(const double* const* lo, const double* const* hi,
                          const double* q, int dim, size_t n, double* out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m512d pv = _mm512_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 8 <= n; i += 8) {
        const __m512d dist =
            MaxDistLanes(_mm512_loadu_pd(lod + i), _mm512_loadu_pd(hid + i),
                         pv);
        _mm512_storeu_pd(out + i, _mm512_mul_pd(dist, dist));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMaxDist(lod[i], hid[i], p);
        out[i] = dist * dist;
      }
    } else {
      for (; i + 8 <= n; i += 8) {
        const __m512d dist =
            MaxDistLanes(_mm512_loadu_pd(lod + i), _mm512_loadu_pd(hid + i),
                         pv);
        _mm512_storeu_pd(out + i, _mm512_add_pd(_mm512_loadu_pd(out + i),
                                                _mm512_mul_pd(dist, dist)));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMaxDist(lod[i], hid[i], p);
        out[i] += dist * dist;
      }
    }
  }
}

void MinMaxDistSqBatchAvx512(const double* const* lo, const double* const* hi,
                             const double* q, int dim, size_t n,
                             double* min_out, double* max_out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m512d pv = _mm512_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 8 <= n; i += 8) {
        const __m512d lov = _mm512_loadu_pd(lod + i);
        const __m512d hiv = _mm512_loadu_pd(hid + i);
        const __m512d mind = MinDistLanes(lov, hiv, pv);
        const __m512d maxd = MaxDistLanes(lov, hiv, pv);
        _mm512_storeu_pd(min_out + i, _mm512_mul_pd(mind, mind));
        _mm512_storeu_pd(max_out + i, _mm512_mul_pd(maxd, maxd));
      }
      for (; i < n; ++i) {
        const double mind = ScalarMinDist(lod[i], hid[i], p);
        const double maxd = ScalarMaxDist(lod[i], hid[i], p);
        min_out[i] = mind * mind;
        max_out[i] = maxd * maxd;
      }
    } else {
      for (; i + 8 <= n; i += 8) {
        const __m512d lov = _mm512_loadu_pd(lod + i);
        const __m512d hiv = _mm512_loadu_pd(hid + i);
        const __m512d mind = MinDistLanes(lov, hiv, pv);
        const __m512d maxd = MaxDistLanes(lov, hiv, pv);
        _mm512_storeu_pd(min_out + i,
                         _mm512_add_pd(_mm512_loadu_pd(min_out + i),
                                       _mm512_mul_pd(mind, mind)));
        _mm512_storeu_pd(max_out + i,
                         _mm512_add_pd(_mm512_loadu_pd(max_out + i),
                                       _mm512_mul_pd(maxd, maxd)));
      }
      for (; i < n; ++i) {
        const double mind = ScalarMinDist(lod[i], hid[i], p);
        const double maxd = ScalarMaxDist(lod[i], hid[i], p);
        min_out[i] += mind * mind;
        max_out[i] += maxd * maxd;
      }
    }
  }
}

size_t CompressIdsLeAvx512(const double* keys, size_t n, double threshold,
                           const uint64_t* ids, uint64_t* out) {
  const __m512d tv = _mm512_set1_pd(threshold);
  size_t count = 0;
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    // LE_OQ == the scalar `<=` (ordered, false on NaN).
    const __mmask8 m =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(keys + k), tv, _CMP_LE_OQ);
    // Masked compress-store writes exactly popcount(m) ids, packed in lane
    // order — never past the slots the contract reserves.
    _mm512_mask_compressstoreu_epi64(out + count, m,
                                     _mm512_loadu_si512(ids + k));
    count += static_cast<size_t>(__builtin_popcount(m));
  }
  for (; k < n; ++k) {
    out[count] = ids[k];
    count += keys[k] <= threshold ? 1 : 0;
  }
  return count;
}

double MinReduceAvx512(const double* x, size_t n) {
  // MINPD over 8 lanes; ordered non-negative inputs make the combining
  // order irrelevant to the resulting bits.
  __m512d acc = _mm512_set1_pd(HUGE_VAL);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_min_pd(acc, _mm512_loadu_pd(x + i));
  }
  double m = _mm512_reduce_min_pd(acc);
  for (; i < n; ++i) m = x[i] < m ? x[i] : m;
  return m;
}

void PointDistBatchAvx512(const double* base, size_t stride_doubles,
                          const double* q, int dim, size_t n, double* out) {
  // 8 lanes = 8 strided points; the per-dimension lane loads are hardware
  // gathers (VGATHERQPD) off a precomputed index vector — the d >= 6 AoS
  // case is where assembling lanes scalar-wise stops fitting in the
  // shuffle ports and gathers pull ahead.
  const __m512i idx = _mm512_mullo_epi64(
      _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0),
      _mm512_set1_epi64(static_cast<long long>(stride_doubles)));
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const double* p = base + k * stride_doubles;
    __m512d s = _mm512_setzero_pd();
    for (int d = 0; d < dim; ++d) {
      const __m512d xv = _mm512_i64gather_pd(idx, p + d, 8);
      const __m512d diff = _mm512_sub_pd(xv, _mm512_set1_pd(q[d]));
      s = _mm512_add_pd(s, _mm512_mul_pd(diff, diff));
    }
    // VSQRTPD is exactly rounded — bit-identical to std::sqrt per lane.
    _mm512_storeu_pd(out + k, _mm512_sqrt_pd(s));
  }
  if (k < n) {
    PointDistBatchScalar(base + k * stride_doubles, stride_doubles, q, dim,
                         n - k, out + k);
  }
}

const KernelTable kAvx512Table = {
    MinDistSqBatchAvx512, MaxDistSqBatchAvx512, MinMaxDistSqBatchAvx512,
    CompressIdsLeAvx512,  MinReduceAvx512,      PointDistBatchAvx512,
    SimdLevel::kAvx512,   /*width_doubles=*/8,
    "avx512",
};

}  // namespace pvdb::geom::simd

#endif  // PVDB_SIMD_COMPILE_AVX512
