// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Explicit 2-lane SSE2 batch kernels (simd::kSse2Table). SSE2 is the x86-64
// baseline, so this TU needs no -m flags — it exists so the "sse2" dispatch
// level is a fixed, hand-written artifact rather than whatever the
// autovectorizer happened to emit, giving the parity tests a stable rung
// between scalar and AVX2. Per-lane operation order matches the scalar
// reference exactly (see distance_batch_isa.h); compiled -ffp-contract=off.

#include "src/geom/distance_batch_isa.h"

#if defined(PVDB_SIMD_X86)

#include <emmintrin.h>

namespace pvdb::geom::simd {

namespace {

// MAXPD(a, b) = a > b ? a : b with ties and NaN resolving to b — the exact
// ternary ScalarMinDist/ScalarMaxDist use, so each lane reproduces the
// scalar reference bit for bit.

inline __m128d MinDistLanes(__m128d lo, __m128d hi, __m128d p) {
  const __m128d below = _mm_sub_pd(lo, p);
  const __m128d above = _mm_sub_pd(p, hi);
  const __m128d big = _mm_max_pd(below, above);
  return _mm_max_pd(big, _mm_setzero_pd());
}

inline __m128d MaxDistLanes(__m128d lo, __m128d hi, __m128d p) {
  // abs = clear the sign bit, exactly std::abs.
  const __m128d sign =
      _mm_castsi128_pd(_mm_set1_epi64x(static_cast<int64_t>(1) << 63));
  const __m128d dlo = _mm_andnot_pd(sign, _mm_sub_pd(p, lo));
  const __m128d dhi = _mm_andnot_pd(sign, _mm_sub_pd(p, hi));
  return _mm_max_pd(dlo, dhi);
}

}  // namespace

void MinDistSqBatchSse2(const double* const* lo, const double* const* hi,
                        const double* q, int dim, size_t n, double* out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m128d pv = _mm_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 2 <= n; i += 2) {
        const __m128d dist =
            MinDistLanes(_mm_loadu_pd(lod + i), _mm_loadu_pd(hid + i), pv);
        _mm_storeu_pd(out + i, _mm_mul_pd(dist, dist));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMinDist(lod[i], hid[i], p);
        out[i] = dist * dist;
      }
    } else {
      for (; i + 2 <= n; i += 2) {
        const __m128d dist =
            MinDistLanes(_mm_loadu_pd(lod + i), _mm_loadu_pd(hid + i), pv);
        _mm_storeu_pd(out + i,
                      _mm_add_pd(_mm_loadu_pd(out + i), _mm_mul_pd(dist, dist)));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMinDist(lod[i], hid[i], p);
        out[i] += dist * dist;
      }
    }
  }
}

void MaxDistSqBatchSse2(const double* const* lo, const double* const* hi,
                        const double* q, int dim, size_t n, double* out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m128d pv = _mm_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 2 <= n; i += 2) {
        const __m128d dist =
            MaxDistLanes(_mm_loadu_pd(lod + i), _mm_loadu_pd(hid + i), pv);
        _mm_storeu_pd(out + i, _mm_mul_pd(dist, dist));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMaxDist(lod[i], hid[i], p);
        out[i] = dist * dist;
      }
    } else {
      for (; i + 2 <= n; i += 2) {
        const __m128d dist =
            MaxDistLanes(_mm_loadu_pd(lod + i), _mm_loadu_pd(hid + i), pv);
        _mm_storeu_pd(out + i,
                      _mm_add_pd(_mm_loadu_pd(out + i), _mm_mul_pd(dist, dist)));
      }
      for (; i < n; ++i) {
        const double dist = ScalarMaxDist(lod[i], hid[i], p);
        out[i] += dist * dist;
      }
    }
  }
}

void MinMaxDistSqBatchSse2(const double* const* lo, const double* const* hi,
                           const double* q, int dim, size_t n, double* min_out,
                           double* max_out) {
  for (int d = 0; d < dim; ++d) {
    const double* lod = lo[d];
    const double* hid = hi[d];
    const double p = q[d];
    const __m128d pv = _mm_set1_pd(p);
    size_t i = 0;
    if (d == 0) {
      for (; i + 2 <= n; i += 2) {
        const __m128d lov = _mm_loadu_pd(lod + i);
        const __m128d hiv = _mm_loadu_pd(hid + i);
        const __m128d mind = MinDistLanes(lov, hiv, pv);
        const __m128d maxd = MaxDistLanes(lov, hiv, pv);
        _mm_storeu_pd(min_out + i, _mm_mul_pd(mind, mind));
        _mm_storeu_pd(max_out + i, _mm_mul_pd(maxd, maxd));
      }
      for (; i < n; ++i) {
        const double mind = ScalarMinDist(lod[i], hid[i], p);
        const double maxd = ScalarMaxDist(lod[i], hid[i], p);
        min_out[i] = mind * mind;
        max_out[i] = maxd * maxd;
      }
    } else {
      for (; i + 2 <= n; i += 2) {
        const __m128d lov = _mm_loadu_pd(lod + i);
        const __m128d hiv = _mm_loadu_pd(hid + i);
        const __m128d mind = MinDistLanes(lov, hiv, pv);
        const __m128d maxd = MaxDistLanes(lov, hiv, pv);
        _mm_storeu_pd(min_out + i, _mm_add_pd(_mm_loadu_pd(min_out + i),
                                              _mm_mul_pd(mind, mind)));
        _mm_storeu_pd(max_out + i, _mm_add_pd(_mm_loadu_pd(max_out + i),
                                              _mm_mul_pd(maxd, maxd)));
      }
      for (; i < n; ++i) {
        const double mind = ScalarMinDist(lod[i], hid[i], p);
        const double maxd = ScalarMaxDist(lod[i], hid[i], p);
        min_out[i] += mind * mind;
        max_out[i] += maxd * maxd;
      }
    }
  }
}

double MinReduceSse2(const double* x, size_t n) {
  // MINPD per pair of lanes; the inputs are ordered non-negatives, so any
  // combining order yields the same bits.
  __m128d acc = _mm_set1_pd(HUGE_VAL);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) acc = _mm_min_pd(acc, _mm_loadu_pd(x + i));
  double lanes[2];
  _mm_storeu_pd(lanes, acc);
  double m = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  for (; i < n; ++i) m = x[i] < m ? x[i] : m;
  return m;
}

void PointDistBatchSse2(const double* base, size_t stride_doubles,
                        const double* q, int dim, size_t n, double* out) {
  size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const double* p0 = base + k * stride_doubles;
    const double* p1 = p0 + stride_doubles;
    __m128d s = _mm_setzero_pd();
    for (int d = 0; d < dim; ++d) {
      const __m128d xv = _mm_set_pd(p1[d], p0[d]);
      const __m128d diff = _mm_sub_pd(xv, _mm_set1_pd(q[d]));
      s = _mm_add_pd(s, _mm_mul_pd(diff, diff));
    }
    // SQRTPD is exactly rounded — bit-identical to std::sqrt per lane.
    _mm_storeu_pd(out + k, _mm_sqrt_pd(s));
  }
  if (k < n) {
    PointDistBatchScalar(base + k * stride_doubles, stride_doubles, q, dim,
                         n - k, out + k);
  }
}

const KernelTable kSse2Table = {
    MinDistSqBatchSse2,
    MaxDistSqBatchSse2,
    MinMaxDistSqBatchSse2,
    // 2-lane compress would spend more on mask plumbing than the predicated
    // loop costs; SSE2 keeps the scalar compaction.
    CompressIdsLeScalar,
    MinReduceSse2,
    PointDistBatchSse2,
    SimdLevel::kSse2,
    /*width_doubles=*/2,
    "sse2",
};

}  // namespace pvdb::geom::simd

#endif  // PVDB_SIMD_X86
