// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// One driver per table/figure of the paper's evaluation (Section VII).
// Each driver generates its data, builds the competing indexes, runs the
// measurement and prints a Table whose rows mirror the published series.
// The bench/ binaries are thin wrappers over these functions so that the
// whole evaluation is also scriptable from library code.

#ifndef PVDB_EVAL_EXPERIMENTS_H_
#define PVDB_EVAL_EXPERIMENTS_H_

#include "src/eval/params.h"

namespace pvdb::eval {

/// Table I — parameters and defaults in effect for `scale`.
void RunTable1(Scale scale);

/// Figure 9(a): query time Tq vs database size |S| (PV-index vs R-tree, 3D).
void RunFig9a(Scale scale);

/// Figure 9(b): Tq decomposition into object retrieval (OR) and probability
/// computation (PC) at default parameters.
void RunFig9b(Scale scale);

/// Figure 9(c): query I/O (leaf pages) vs |S|.
void RunFig9c(Scale scale);

/// Figure 9(d): Tq vs uncertainty-region size |u(o)|.
void RunFig9d(Scale scale);

/// Figures 9(e)/(f)/(g): Tq, T_OR and query I/O vs dimensionality d
/// (R-tree, PV-index; UV-index at d = 2).
void RunFig9efg(Scale scale);

/// Figure 9(h): Tq on the real-dataset simulacra (roads, rrlines, airports).
void RunFig9h(Scale scale);

/// Figure 10(a): PV-index construction time vs Δ.
void RunFig10a(Scale scale);

/// Figure 10(b): construction time of ALL vs FS vs IS (reduced |S| — the
/// paper reports 103 hours for ALL at 20k).
void RunFig10b(Scale scale);

/// Figure 10(c): construction time vs |S| (FS vs IS).
void RunFig10c(Scale scale);

/// Figure 10(d): construction time vs |u(o)| (FS vs IS).
void RunFig10d(Scale scale);

/// Figure 10(e): SE time split into chooseCSet and UBR computation, plus
/// mean C-set sizes (Section VII-C(b)).
void RunFig10e(Scale scale);

/// Figure 10(f): construction time on real-dataset simulacra (FS vs IS).
void RunFig10f(Scale scale);

/// Figure 10(g): PV- vs UV-index construction on 2D real-dataset simulacra.
void RunFig10g(Scale scale);

/// Figure 10(h): per-object insertion cost, incremental vs rebuild, plus the
/// query-quality delta of Section VII-C(c).
void RunFig10h(Scale scale);

/// Figure 10(i): per-object deletion cost, incremental vs rebuild.
void RunFig10i(Scale scale);

/// Section VII-C(a) "Parameter Testing": Tq and Tc across m_max,
/// k_partition and k sweeps (the paper reports the details in its
/// technical report; the trends are reproduced here).
void RunParamSensitivity(Scale scale);

/// Ablation (paper-conclusion future work): Z-order bulk-loading vs the
/// paper's insertion-order construction — insert-phase time, page writes
/// and query cost.
void RunBulkLoadAblation(Scale scale);

/// Footnote-11 study: with the probabilistic-verifier Step 2 ([11]) the PC
/// phase shrinks and the OR phase dominates Tq — exactly the regime where
/// the PV-index's fast retrieval matters most.
void RunVerifierStudy(Scale scale);

}  // namespace pvdb::eval

#endif  // PVDB_EVAL_EXPERIMENTS_H_
