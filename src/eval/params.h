// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Experiment parameters: Table I of the paper, plus a scale knob so the
// benchmark suite runs on a laptop by default. PVDB_SCALE=paper reproduces
// the published cardinalities (20k–100k objects, 500-sample pdfs);
// PVDB_SCALE=smoke is a seconds-long CI sweep. EXPERIMENTS.md records which
// scale produced the checked-in numbers.

#ifndef PVDB_EVAL_PARAMS_H_
#define PVDB_EVAL_PARAMS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pvdb::eval {

/// Benchmark scale (see file comment).
enum class Scale { kSmoke, kLaptop, kPaper };

/// Reads PVDB_SCALE from the environment (smoke|laptop|paper; default
/// laptop).
Scale ScaleFromEnv();

/// Human-readable scale name.
const char* ScaleName(Scale scale);

/// Table I: parameters and their default (bold) values, possibly rescaled.
struct TableIParams {
  /// |S| sweep and default.
  std::vector<size_t> db_sizes;
  size_t default_db_size;
  /// d sweep and default (2..5, default 3).
  std::vector<int> dims{2, 3, 4, 5};
  int default_dim = 3;
  /// |u(o)| sweep and default.
  std::vector<double> u_sizes{20, 40, 60, 80, 100};
  double default_u_size = 20;
  /// Δ sweep and default.
  std::vector<double> deltas{0.1, 0.5, 1, 10, 100, 500, 1000};
  double default_delta = 1;
  /// m_max sweep and default.
  std::vector<int> mmaxes{2, 5, 10, 20, 40};
  int default_mmax = 10;
  /// k (FS) sweep and default.
  std::vector<int> ks{20, 40, 100, 200, 400};
  int default_k = 200;
  /// k_partition sweep and default.
  std::vector<int> k_partitions{2, 5, 10, 20, 50};
  int default_k_partition = 10;
  /// k_global default.
  int k_global = 200;
  /// Discrete pdf size (paper: 500).
  int samples_per_object = 500;
  /// Queries averaged per data point (paper: 50 runs).
  int queries_per_point = 50;
  /// Fraction applied to real-dataset cardinalities.
  double real_scale = 1.0;
  /// Objects removed/re-inserted by the update experiments (paper: 1000).
  int update_batch = 1000;
};

/// Table I instantiated for the given scale.
TableIParams ParamsForScale(Scale scale);

}  // namespace pvdb::eval

#endif  // PVDB_EVAL_PARAMS_H_
