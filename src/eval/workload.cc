// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/eval/workload.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/common/timer.h"

namespace pvdb::eval {

QueryWorkload MakeQueryWorkload(const geom::Rect& domain, int count,
                                uint64_t seed) {
  QueryWorkload out;
  Rng rng(seed);
  out.points.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    geom::Point p(domain.dim());
    for (int d = 0; d < domain.dim(); ++d) {
      p[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
    }
    out.points.push_back(p);
  }
  return out;
}

QueryCost PnnqRunner::RunPvIndex(const pv::PvIndex& index,
                                 const QueryWorkload& workload) const {
  QueryCost cost;
  const int n = static_cast<int>(workload.points.size());
  if (n == 0) return cost;
  MetricRegistry pc_io;
  auto& pager_metrics = index.pager()->metrics();

  for (const geom::Point& q : workload.points) {
    const int64_t reads_before =
        pager_metrics.Get(storage::PagerCounters::kReads);
    StopWatch or_watch;
    auto step1 = index.QueryPossibleNN(q);
    PVDB_CHECK(step1.ok());
    cost.t_or_ms += or_watch.ElapsedMillis();
    cost.io_or_pages += static_cast<double>(
        pager_metrics.Get(storage::PagerCounters::kReads) - reads_before);
    cost.candidates += static_cast<double>(step1.value().size());

    const int64_t pdf_before = pc_io.Get(pv::PnnCounters::kPdfPagesRead);
    StopWatch pc_watch;
    const auto answers = step2_.Evaluate(q, step1.value(), &pc_io);
    cost.t_pc_ms += pc_watch.ElapsedMillis();
    cost.io_pc_pages += static_cast<double>(
        pc_io.Get(pv::PnnCounters::kPdfPagesRead) - pdf_before);
    cost.answers += static_cast<double>(answers.size());
  }
  cost.t_or_ms /= n;
  cost.t_pc_ms /= n;
  cost.io_or_pages /= n;
  cost.io_pc_pages /= n;
  cost.candidates /= n;
  cost.answers /= n;
  cost.t_query_ms = cost.t_or_ms + cost.t_pc_ms;
  return cost;
}

QueryCost PnnqRunner::RunRTree(const rtree::RStarTree& tree,
                               const QueryWorkload& workload) const {
  QueryCost cost;
  const int n = static_cast<int>(workload.points.size());
  if (n == 0) return cost;
  MetricRegistry pc_io;
  auto& tree_metrics = tree.metrics();

  for (const geom::Point& q : workload.points) {
    const int64_t reads_before =
        tree_metrics.Get(rtree::RTreeCounters::kLeafPagesRead);
    StopWatch or_watch;
    const auto step1 = rtree::PnnStep1BranchAndPrune(tree, q);
    cost.t_or_ms += or_watch.ElapsedMillis();
    cost.io_or_pages += static_cast<double>(
        tree_metrics.Get(rtree::RTreeCounters::kLeafPagesRead) - reads_before);
    cost.candidates += static_cast<double>(step1.size());

    const int64_t pdf_before = pc_io.Get(pv::PnnCounters::kPdfPagesRead);
    StopWatch pc_watch;
    const auto answers = step2_.Evaluate(q, step1, &pc_io);
    cost.t_pc_ms += pc_watch.ElapsedMillis();
    cost.io_pc_pages += static_cast<double>(
        pc_io.Get(pv::PnnCounters::kPdfPagesRead) - pdf_before);
    cost.answers += static_cast<double>(answers.size());
  }
  cost.t_or_ms /= n;
  cost.t_pc_ms /= n;
  cost.io_or_pages /= n;
  cost.io_pc_pages /= n;
  cost.candidates /= n;
  cost.answers /= n;
  cost.t_query_ms = cost.t_or_ms + cost.t_pc_ms;
  return cost;
}

QueryCost PnnqRunner::RunUvIndex(const uv::UvIndex& index,
                                 const QueryWorkload& workload) const {
  QueryCost cost;
  const int n = static_cast<int>(workload.points.size());
  if (n == 0) return cost;
  MetricRegistry pc_io;
  auto& pager_metrics = index.pager()->metrics();

  for (const geom::Point& q : workload.points) {
    const int64_t reads_before =
        pager_metrics.Get(storage::PagerCounters::kReads);
    StopWatch or_watch;
    auto step1 = index.QueryPossibleNN(q);
    PVDB_CHECK(step1.ok());
    cost.t_or_ms += or_watch.ElapsedMillis();
    cost.io_or_pages += static_cast<double>(
        pager_metrics.Get(storage::PagerCounters::kReads) - reads_before);
    cost.candidates += static_cast<double>(step1.value().size());

    const int64_t pdf_before = pc_io.Get(pv::PnnCounters::kPdfPagesRead);
    StopWatch pc_watch;
    const auto answers = step2_.Evaluate(q, step1.value(), &pc_io);
    cost.t_pc_ms += pc_watch.ElapsedMillis();
    cost.io_pc_pages += static_cast<double>(
        pc_io.Get(pv::PnnCounters::kPdfPagesRead) - pdf_before);
    cost.answers += static_cast<double>(answers.size());
  }
  cost.t_or_ms /= n;
  cost.t_pc_ms /= n;
  cost.io_or_pages /= n;
  cost.io_pc_pages /= n;
  cost.candidates /= n;
  cost.answers /= n;
  cost.t_query_ms = cost.t_or_ms + cost.t_pc_ms;
  return cost;
}

std::vector<std::vector<uncertain::ObjectId>> PnnqRunner::Step1Answers(
    const pv::PvIndex& index, const QueryWorkload& workload) const {
  std::vector<std::vector<uncertain::ObjectId>> out;
  out.reserve(workload.points.size());
  for (const geom::Point& q : workload.points) {
    auto step1 = index.QueryPossibleNN(q);
    PVDB_CHECK(step1.ok());
    auto ids = std::move(step1).value();
    std::sort(ids.begin(), ids.end());
    out.push_back(std::move(ids));
  }
  return out;
}

rtree::RStarTree BuildRegionTree(const uncertain::Dataset& db) {
  rtree::RStarTree tree(db.dim());
  for (const auto& o : db.objects()) {
    tree.Insert(o.region(), o.id());
  }
  return tree;
}

}  // namespace pvdb::eval
