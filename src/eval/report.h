// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Plain-text experiment reports: fixed-width tables whose rows mirror the
// series of the paper's figures, so bench output can be compared to the
// published plots line by line.

#ifndef PVDB_EVAL_REPORT_H_
#define PVDB_EVAL_REPORT_H_

#include <iostream>
#include <string>
#include <vector>

namespace pvdb::eval {

/// A printable experiment table.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends one data row; must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a title banner and aligned columns.
  void Print(std::ostream& os = std::cout) const;

  /// Formats a double with `precision` digits after the point.
  static std::string Fmt(double value, int precision = 2);

  /// Formats an integer-valued count.
  static std::string FmtCount(double value);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pvdb::eval

#endif  // PVDB_EVAL_REPORT_H_
