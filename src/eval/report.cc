// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/eval/report.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace pvdb::eval {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  PVDB_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  PVDB_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(widths[c]));
      os << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < columns_.size()) rule += "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string Table::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::FmtCount(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", value);
  return buf;
}

}  // namespace pvdb::eval
