// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/eval/params.h"

#include <cstdlib>
#include <cstring>

namespace pvdb::eval {

Scale ScaleFromEnv() {
  const char* env = std::getenv("PVDB_SCALE");
  if (env == nullptr) return Scale::kLaptop;
  if (std::strcmp(env, "paper") == 0) return Scale::kPaper;
  if (std::strcmp(env, "smoke") == 0) return Scale::kSmoke;
  return Scale::kLaptop;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kLaptop:
      return "laptop";
    case Scale::kPaper:
      return "paper";
  }
  return "?";
}

TableIParams ParamsForScale(Scale scale) {
  TableIParams p;
  switch (scale) {
    case Scale::kPaper:
      p.db_sizes = {20000, 40000, 60000, 80000, 100000};
      p.default_db_size = 20000;
      p.samples_per_object = 500;
      p.queries_per_point = 50;
      p.real_scale = 1.0;
      p.update_batch = 1000;
      break;
    case Scale::kLaptop:
      // 1/10 of the paper's cardinalities: identical trends, minutes not
      // hours on a laptop. pdfs stay at 500 samples (they dominate Step 2).
      p.db_sizes = {2000, 4000, 6000, 8000, 10000};
      p.default_db_size = 2000;
      p.samples_per_object = 500;
      p.queries_per_point = 50;
      p.real_scale = 0.1;
      p.update_batch = 100;
      break;
    case Scale::kSmoke:
      p.db_sizes = {200, 400, 600};
      p.default_db_size = 200;
      p.samples_per_object = 100;
      p.queries_per_point = 10;
      p.real_scale = 0.01;
      p.update_batch = 10;
      break;
  }
  return p;
}

}  // namespace pvdb::eval
