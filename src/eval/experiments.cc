// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/eval/experiments.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/eval/report.h"
#include "src/eval/workload.h"
#include "src/pv/verifier.h"
#include "src/storage/pager.h"
#include "src/uncertain/datagen.h"

namespace pvdb::eval {
namespace {

constexpr uint64_t kDataSeed = 42;
constexpr uint64_t kQuerySeed = 2013;

pv::PvIndexOptions OptionsFromParams(const TableIParams& p) {
  pv::PvIndexOptions o;
  o.se.delta = p.default_delta;
  o.se.max_partitions = p.default_mmax;
  o.cset.strategy = pv::CSetStrategy::kIncremental;
  o.cset.k = p.default_k;
  o.cset.k_partition = p.default_k_partition;
  o.cset.k_global = p.k_global;
  return o;
}

uncertain::SyntheticOptions SynthOptions(const TableIParams& p, int dim,
                                         size_t count, double u_size) {
  uncertain::SyntheticOptions s;
  s.dim = dim;
  s.count = count;
  s.max_region_extent = u_size;
  s.samples_per_object = p.samples_per_object;
  s.seed = kDataSeed;
  return s;
}

/// Everything one synthetic experiment point needs.
struct Workbench {
  uncertain::Dataset db;
  std::unique_ptr<storage::InMemoryPager> pager;
  std::unique_ptr<pv::PvIndex> pv;
  rtree::RStarTree region_tree;
  pv::BuildStats build_stats;
};

Workbench MakeWorkbench(const uncertain::SyntheticOptions& synth,
                        const pv::PvIndexOptions& options) {
  Workbench wb{uncertain::GenerateSynthetic(synth),
               std::make_unique<storage::InMemoryPager>(),
               nullptr,
               rtree::RStarTree(synth.dim),
               {}};
  wb.region_tree = BuildRegionTree(wb.db);
  auto built = pv::PvIndex::Build(wb.db, wb.pager.get(), options,
                                  &wb.build_stats);
  PVDB_CHECK(built.ok());
  wb.pv = std::move(built).value();
  return wb;
}

Workbench MakeWorkbenchFromDb(uncertain::Dataset db,
                              const pv::PvIndexOptions& options) {
  Workbench wb{std::move(db), std::make_unique<storage::InMemoryPager>(),
               nullptr, rtree::RStarTree(2), {}};
  wb.region_tree = rtree::RStarTree(wb.db.dim());
  for (const auto& o : wb.db.objects()) {
    wb.region_tree.Insert(o.region(), o.id());
  }
  auto built = pv::PvIndex::Build(wb.db, wb.pager.get(), options,
                                  &wb.build_stats);
  PVDB_CHECK(built.ok());
  wb.pv = std::move(built).value();
  return wb;
}

std::string SizeLabel(size_t n) {
  if (n % 1000 == 0 && n >= 1000) return std::to_string(n / 1000) + "k";
  return std::to_string(n);
}

}  // namespace

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

void RunTable1(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  Table table("Table I: parameters (scale = " + std::string(ScaleName(scale)) +
                  "; defaults in effect)",
              {"parameter", "values", "default"});
  auto join_sizes = [](const std::vector<size_t>& v) {
    std::string s;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) s += ", ";
      s += SizeLabel(v[i]);
    }
    return s;
  };
  auto join_d = [](const auto& v) {
    std::string s;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) s += ", ";
      if constexpr (std::is_same_v<std::decay_t<decltype(v[i])>, double>) {
        s += Table::Fmt(v[i], v[i] < 1 ? 1 : 0);
      } else {
        s += std::to_string(v[i]);
      }
    }
    return s;
  };
  table.AddRow({"|S|", join_sizes(p.db_sizes), SizeLabel(p.default_db_size)});
  table.AddRow({"d", join_d(p.dims), std::to_string(p.default_dim)});
  table.AddRow({"|u(o)|", join_d(p.u_sizes), Table::Fmt(p.default_u_size, 0)});
  table.AddRow({"Delta", join_d(p.deltas), Table::Fmt(p.default_delta, 1)});
  table.AddRow({"m_max", join_d(p.mmaxes), std::to_string(p.default_mmax)});
  table.AddRow({"k", join_d(p.ks), std::to_string(p.default_k)});
  table.AddRow({"k_partition", join_d(p.k_partitions),
                std::to_string(p.default_k_partition)});
  table.AddRow({"k_global", std::to_string(p.k_global),
                std::to_string(p.k_global)});
  table.AddRow({"pdf samples", std::to_string(p.samples_per_object),
                std::to_string(p.samples_per_object)});
  table.AddRow({"queries/point", std::to_string(p.queries_per_point),
                std::to_string(p.queries_per_point)});
  table.Print();
}

// ---------------------------------------------------------------------------
// Figure 9: query performance
// ---------------------------------------------------------------------------

void RunFig9a(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  Table table("Figure 9(a): Tq (ms) vs |S|  [3D synthetic]",
              {"|S|", "R-tree", "PV-index", "speedup"});
  for (size_t n : p.db_sizes) {
    Workbench wb = MakeWorkbench(
        SynthOptions(p, p.default_dim, n, p.default_u_size), options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost pv_cost = runner.RunPvIndex(*wb.pv, queries);
    const QueryCost rt_cost = runner.RunRTree(wb.region_tree, queries);
    table.AddRow({SizeLabel(n), Table::Fmt(rt_cost.t_query_ms),
                  Table::Fmt(pv_cost.t_query_ms),
                  Table::Fmt(rt_cost.t_query_ms /
                             std::max(pv_cost.t_query_ms, 1e-9)) + "x"});
  }
  table.Print();
}

void RunFig9b(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  Workbench wb = MakeWorkbench(
      SynthOptions(p, p.default_dim, p.default_db_size, p.default_u_size),
      options);
  const QueryWorkload queries =
      MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
  PnnqRunner runner(&wb.db);
  const QueryCost pv_cost = runner.RunPvIndex(*wb.pv, queries);
  const QueryCost rt_cost = runner.RunRTree(wb.region_tree, queries);

  Table table("Figure 9(b): Tq decomposition, OR vs PC (ms)",
              {"method", "T_OR", "T_PC", "Tq"});
  table.AddRow({"R-tree", Table::Fmt(rt_cost.t_or_ms),
                Table::Fmt(rt_cost.t_pc_ms), Table::Fmt(rt_cost.t_query_ms)});
  table.AddRow({"PV-index", Table::Fmt(pv_cost.t_or_ms),
                Table::Fmt(pv_cost.t_pc_ms), Table::Fmt(pv_cost.t_query_ms)});
  table.Print();
}

void RunFig9c(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  Table table("Figure 9(c): query I/O (leaf pages, OR phase) vs |S|",
              {"|S|", "R-tree", "PV-index"});
  for (size_t n : p.db_sizes) {
    Workbench wb = MakeWorkbench(
        SynthOptions(p, p.default_dim, n, p.default_u_size), options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost pv_cost = runner.RunPvIndex(*wb.pv, queries);
    const QueryCost rt_cost = runner.RunRTree(wb.region_tree, queries);
    table.AddRow({SizeLabel(n), Table::Fmt(rt_cost.io_or_pages, 1),
                  Table::Fmt(pv_cost.io_or_pages, 1)});
  }
  table.Print();
}

void RunFig9d(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  Table table("Figure 9(d): Tq (ms) vs |u(o)|",
              {"|u(o)|", "R-tree", "PV-index"});
  for (double u : p.u_sizes) {
    Workbench wb = MakeWorkbench(
        SynthOptions(p, p.default_dim, p.default_db_size, u), options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost pv_cost = runner.RunPvIndex(*wb.pv, queries);
    const QueryCost rt_cost = runner.RunRTree(wb.region_tree, queries);
    table.AddRow({Table::Fmt(u, 0), Table::Fmt(rt_cost.t_query_ms),
                  Table::Fmt(pv_cost.t_query_ms)});
  }
  table.Print();
}

void RunFig9efg(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  Table tq("Figure 9(e): Tq (ms) vs d", {"d", "R-tree", "PV-index", "UV-index"});
  Table tor("Figure 9(f): T_OR (ms) vs d",
            {"d", "R-tree", "PV-index", "UV-index"});
  Table tio("Figure 9(g): query I/O (leaf pages, OR) vs d",
            {"d", "R-tree", "PV-index", "UV-index"});
  for (int d : p.dims) {
    Workbench wb = MakeWorkbench(
        SynthOptions(p, d, p.default_db_size, p.default_u_size), options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost pv_cost = runner.RunPvIndex(*wb.pv, queries);
    const QueryCost rt_cost = runner.RunRTree(wb.region_tree, queries);

    std::string uv_tq = "-", uv_tor = "-", uv_io = "-";
    if (d == 2) {
      storage::InMemoryPager uv_pager;
      uv::UvIndexOptions uv_options;
      uv_options.cset = options.cset;
      uv_options.octree = options.octree;
      auto uv_index = uv::UvIndex::Build(wb.db, &uv_pager, uv_options);
      PVDB_CHECK(uv_index.ok());
      const QueryCost uv_cost = runner.RunUvIndex(*uv_index.value(), queries);
      uv_tq = Table::Fmt(uv_cost.t_query_ms);
      uv_tor = Table::Fmt(uv_cost.t_or_ms);
      uv_io = Table::Fmt(uv_cost.io_or_pages, 1);
    }
    tq.AddRow({std::to_string(d), Table::Fmt(rt_cost.t_query_ms),
               Table::Fmt(pv_cost.t_query_ms), uv_tq});
    tor.AddRow({std::to_string(d), Table::Fmt(rt_cost.t_or_ms),
                Table::Fmt(pv_cost.t_or_ms), uv_tor});
    tio.AddRow({std::to_string(d), Table::Fmt(rt_cost.io_or_pages, 1),
                Table::Fmt(pv_cost.io_or_pages, 1), uv_io});
  }
  tq.Print();
  tor.Print();
  tio.Print();
}

void RunFig9h(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  Table table("Figure 9(h): Tq (ms) on real-dataset simulacra",
              {"dataset", "R-tree", "UV-index", "PV-index"});
  for (auto kind : {uncertain::RealDataset::kRoads,
                    uncertain::RealDataset::kRRLines,
                    uncertain::RealDataset::kAirports}) {
    uncertain::RealDataOptions ropts;
    ropts.scale = p.real_scale;
    ropts.samples_per_object = p.samples_per_object;
    Workbench wb =
        MakeWorkbenchFromDb(uncertain::GenerateRealLike(kind, ropts), options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost pv_cost = runner.RunPvIndex(*wb.pv, queries);
    const QueryCost rt_cost = runner.RunRTree(wb.region_tree, queries);
    std::string uv_tq = "-";
    if (wb.db.dim() == 2) {
      storage::InMemoryPager uv_pager;
      uv::UvIndexOptions uv_options;
      uv_options.cset = options.cset;
      uv_options.octree = options.octree;
      auto uv_index = uv::UvIndex::Build(wb.db, &uv_pager, uv_options);
      PVDB_CHECK(uv_index.ok());
      uv_tq = Table::Fmt(runner.RunUvIndex(*uv_index.value(), queries)
                             .t_query_ms);
    }
    table.AddRow({uncertain::RealDatasetName(kind),
                  Table::Fmt(rt_cost.t_query_ms), uv_tq,
                  Table::Fmt(pv_cost.t_query_ms)});
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// Figure 10: construction and updates
// ---------------------------------------------------------------------------

void RunFig10a(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  Table table("Figure 10(a): PV-index construction time vs Delta",
              {"Delta", "Tc (s)", "Tq (ms)"});
  for (double delta : p.deltas) {
    pv::PvIndexOptions options = OptionsFromParams(p);
    options.se.delta = delta;
    Workbench wb = MakeWorkbench(
        SynthOptions(p, p.default_dim, p.default_db_size, p.default_u_size),
        options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost pv_cost = runner.RunPvIndex(*wb.pv, queries);
    table.AddRow({Table::Fmt(delta, delta < 1 ? 1 : 0),
                  Table::Fmt(wb.build_stats.total_ms / 1000.0, 3),
                  Table::Fmt(pv_cost.t_query_ms)});
  }
  table.Print();
}

void RunFig10b(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  // ALL is quadratic-with-a-large-constant (the paper measured 103 hours at
  // |S| = 20k); run the comparison at reduced sizes.
  std::vector<size_t> sizes;
  switch (scale) {
    case Scale::kSmoke:
      sizes = {50, 100};
      break;
    case Scale::kLaptop:
      sizes = {200, 400};
      break;
    case Scale::kPaper:
      sizes = {500, 1000};
      break;
  }
  Table table("Figure 10(b): construction time Tc (s), ALL vs FS vs IS",
              {"|S|", "ALL", "FS", "IS"});
  for (size_t n : sizes) {
    std::vector<std::string> row{SizeLabel(n)};
    for (auto strategy : {pv::CSetStrategy::kAll, pv::CSetStrategy::kFixed,
                          pv::CSetStrategy::kIncremental}) {
      pv::PvIndexOptions options = OptionsFromParams(p);
      options.cset.strategy = strategy;
      Workbench wb = MakeWorkbench(
          SynthOptions(p, p.default_dim, n, p.default_u_size), options);
      row.push_back(Table::Fmt(wb.build_stats.total_ms / 1000.0, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

void RunFig10c(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  Table table("Figure 10(c): construction time Tc (s) vs |S| (FS vs IS)",
              {"|S|", "FS", "IS"});
  for (size_t n : p.db_sizes) {
    std::vector<std::string> row{SizeLabel(n)};
    for (auto strategy :
         {pv::CSetStrategy::kFixed, pv::CSetStrategy::kIncremental}) {
      pv::PvIndexOptions options = OptionsFromParams(p);
      options.cset.strategy = strategy;
      Workbench wb = MakeWorkbench(
          SynthOptions(p, p.default_dim, n, p.default_u_size), options);
      row.push_back(Table::Fmt(wb.build_stats.total_ms / 1000.0, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

void RunFig10d(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  Table table("Figure 10(d): construction time Tc (s) vs |u(o)| (FS vs IS)",
              {"|u(o)|", "FS", "IS"});
  for (double u : p.u_sizes) {
    std::vector<std::string> row{Table::Fmt(u, 0)};
    for (auto strategy :
         {pv::CSetStrategy::kFixed, pv::CSetStrategy::kIncremental}) {
      pv::PvIndexOptions options = OptionsFromParams(p);
      options.cset.strategy = strategy;
      Workbench wb = MakeWorkbench(
          SynthOptions(p, p.default_dim, p.default_db_size, u), options);
      row.push_back(Table::Fmt(wb.build_stats.total_ms / 1000.0, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

void RunFig10e(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  Table table(
      "Figure 10(e): SE time components (s) and C-set sizes "
      "(Section VII-C(b))",
      {"strategy", "chooseCSet", "compute UBR", "insert", "avg |Cset|"});
  for (auto strategy :
       {pv::CSetStrategy::kFixed, pv::CSetStrategy::kIncremental}) {
    pv::PvIndexOptions options = OptionsFromParams(p);
    options.cset.strategy = strategy;
    Workbench wb = MakeWorkbench(
        SynthOptions(p, p.default_dim, p.default_db_size, p.default_u_size),
        options);
    table.AddRow({pv::CSetStrategyName(strategy),
                  Table::Fmt(wb.build_stats.choose_cset_ms / 1000.0, 3),
                  Table::Fmt(wb.build_stats.compute_ubr_ms / 1000.0, 3),
                  Table::Fmt(wb.build_stats.insert_ms / 1000.0, 3),
                  Table::Fmt(wb.build_stats.cset_size.mean(), 1)});
  }
  table.Print();
}

void RunFig10f(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  Table table("Figure 10(f): construction time Tc (s) on real-dataset "
              "simulacra (FS vs IS)",
              {"dataset", "FS", "IS"});
  for (auto kind : {uncertain::RealDataset::kRoads,
                    uncertain::RealDataset::kRRLines,
                    uncertain::RealDataset::kAirports}) {
    std::vector<std::string> row{uncertain::RealDatasetName(kind)};
    for (auto strategy :
         {pv::CSetStrategy::kFixed, pv::CSetStrategy::kIncremental}) {
      pv::PvIndexOptions options = OptionsFromParams(p);
      options.cset.strategy = strategy;
      uncertain::RealDataOptions ropts;
      ropts.scale = p.real_scale;
      ropts.samples_per_object = p.samples_per_object;
      Workbench wb = MakeWorkbenchFromDb(
          uncertain::GenerateRealLike(kind, ropts), options);
      row.push_back(Table::Fmt(wb.build_stats.total_ms / 1000.0, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

void RunFig10g(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  Table table("Figure 10(g): construction time (s) on 2D real-dataset "
              "simulacra, UV vs PV",
              {"dataset", "UV-index", "PV-index", "PV speedup"});
  for (auto kind :
       {uncertain::RealDataset::kRoads, uncertain::RealDataset::kRRLines}) {
    uncertain::RealDataOptions ropts;
    ropts.scale = p.real_scale;
    ropts.samples_per_object = p.samples_per_object;
    uncertain::Dataset db = uncertain::GenerateRealLike(kind, ropts);

    storage::InMemoryPager uv_pager;
    uv::UvIndexOptions uv_options;
    uv_options.cset = options.cset;
    uv_options.octree = options.octree;
    uv::UvBuildStats uv_stats;
    auto uv_index = uv::UvIndex::Build(db, &uv_pager, uv_options, &uv_stats);
    PVDB_CHECK(uv_index.ok());

    Workbench wb = MakeWorkbenchFromDb(std::move(db), options);
    table.AddRow(
        {uncertain::RealDatasetName(kind),
         Table::Fmt(uv_stats.total_ms / 1000.0, 3),
         Table::Fmt(wb.build_stats.total_ms / 1000.0, 3),
         Table::Fmt(uv_stats.total_ms /
                    std::max(wb.build_stats.total_ms, 1e-9)) + "x"});
  }
  table.Print();
}

namespace {

/// Shared engine for Figures 10(h)/(i): removes `batch` random objects,
/// then measures either re-insertion (insert = true) or the removals
/// themselves (insert = false), incrementally vs by rebuilding.
void RunUpdateExperiment(Scale scale, bool insert) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  const char* name = insert ? "Figure 10(h): insertion cost per object"
                            : "Figure 10(i): deletion cost per object";
  // "Tq delta" follows the paper (Section VII-C(c)); "cand delta" is a
  // deterministic quality companion (mean relative difference in Step-1
  // candidate counts), immune to wall-clock noise at sub-ms query times.
  Table table(name, {"|S|", "Inc Tu (ms)", "Rebuild Tu (ms)", "speedup",
                     "Tq delta (%)", "cand delta (%)"});

  for (size_t n : p.db_sizes) {
    uncertain::Dataset db = uncertain::GenerateSynthetic(
        SynthOptions(p, p.default_dim, n, p.default_u_size));
    // Pick the update batch deterministically.
    std::vector<uncertain::ObjectId> batch = db.Ids();
    Rng rng(kDataSeed ^ n);
    rng.Shuffle(&batch);
    batch.resize(std::min<size_t>(batch.size() / 2,
                                  static_cast<size_t>(p.update_batch)));

    double inc_total_ms = 0.0;
    storage::InMemoryPager pager;
    std::unique_ptr<pv::PvIndex> index;

    if (insert) {
      // Base state: db without the batch; then re-insert incrementally.
      std::vector<uncertain::UncertainObject> removed;
      for (auto id : batch) {
        removed.push_back(*db.Find(id));
        PVDB_CHECK(db.Remove(id).ok());
      }
      auto built = pv::PvIndex::Build(db, &pager, options);
      PVDB_CHECK(built.ok());
      index = std::move(built).value();
      for (auto& obj : removed) {
        PVDB_CHECK(db.Add(obj).ok());
        pv::UpdateStats stats;
        PVDB_CHECK(index->InsertObject(db, obj.id(), &stats).ok());
        inc_total_ms += stats.total_ms;
      }
    } else {
      // Base state: full db; then delete incrementally.
      auto built = pv::PvIndex::Build(db, &pager, options);
      PVDB_CHECK(built.ok());
      index = std::move(built).value();
      for (auto id : batch) {
        const uncertain::UncertainObject removed = *db.Find(id);
        PVDB_CHECK(db.Remove(id).ok());
        pv::UpdateStats stats;
        PVDB_CHECK(index->DeleteObject(db, removed, &stats).ok());
        inc_total_ms += stats.total_ms;
      }
    }
    const double inc_ms = inc_total_ms / std::max<size_t>(batch.size(), 1);

    // Rebuild cost per object = one full construction over the final state.
    storage::InMemoryPager rebuild_pager;
    pv::BuildStats rebuild_stats;
    auto rebuilt =
        pv::PvIndex::Build(db, &rebuild_pager, options, &rebuild_stats);
    PVDB_CHECK(rebuilt.ok());
    const double rebuild_ms = rebuild_stats.total_ms;

    // Query-quality delta (Section VII-C(c)): Tq of the incrementally
    // maintained index vs the rebuilt one.
    const QueryWorkload queries =
        MakeQueryWorkload(db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&db);
    const QueryCost cost_inc = runner.RunPvIndex(*index, queries);
    const QueryCost cost_reb = runner.RunPvIndex(*rebuilt.value(), queries);
    const double tq_delta_pct =
        100.0 * std::abs(cost_inc.t_query_ms - cost_reb.t_query_ms) /
        std::max(cost_reb.t_query_ms, 1e-9);
    const double cand_delta_pct =
        100.0 * std::abs(cost_inc.candidates - cost_reb.candidates) /
        std::max(cost_reb.candidates, 1e-9);

    table.AddRow({SizeLabel(n), Table::Fmt(inc_ms),
                  Table::Fmt(rebuild_ms),
                  Table::Fmt(rebuild_ms / std::max(inc_ms, 1e-9)) + "x",
                  Table::Fmt(tq_delta_pct), Table::Fmt(cand_delta_pct)});
  }
  table.Print();
}

}  // namespace

void RunFig10h(Scale scale) { RunUpdateExperiment(scale, /*insert=*/true); }

void RunFig10i(Scale scale) { RunUpdateExperiment(scale, /*insert=*/false); }

// ---------------------------------------------------------------------------
// Section VII-C(a) parameter testing and the bulk-loading ablation
// ---------------------------------------------------------------------------

void RunParamSensitivity(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const uncertain::SyntheticOptions synth =
      SynthOptions(p, p.default_dim, p.default_db_size, p.default_u_size);

  Table mmax_table(
      "Section VII-C(a): effect of m_max (domination-count budget)",
      {"m_max", "Tc (s)", "Tq (ms)", "candidates/query"});
  for (int mmax : p.mmaxes) {
    pv::PvIndexOptions options = OptionsFromParams(p);
    options.se.max_partitions = mmax;
    Workbench wb = MakeWorkbench(synth, options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost cost = runner.RunPvIndex(*wb.pv, queries);
    mmax_table.AddRow({std::to_string(mmax),
                       Table::Fmt(wb.build_stats.total_ms / 1000.0, 3),
                       Table::Fmt(cost.t_query_ms),
                       Table::Fmt(cost.candidates, 1)});
  }
  mmax_table.Print();

  Table kp_table("Section VII-C(a): effect of k_partition (IS strategy)",
                 {"k_partition", "Tc (s)", "Tq (ms)", "avg |Cset|"});
  for (int kp : p.k_partitions) {
    pv::PvIndexOptions options = OptionsFromParams(p);
    options.cset.k_partition = kp;
    Workbench wb = MakeWorkbench(synth, options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost cost = runner.RunPvIndex(*wb.pv, queries);
    kp_table.AddRow({std::to_string(kp),
                     Table::Fmt(wb.build_stats.total_ms / 1000.0, 3),
                     Table::Fmt(cost.t_query_ms),
                     Table::Fmt(wb.build_stats.cset_size.mean(), 1)});
  }
  kp_table.Print();

  Table k_table("Section VII-C(a): effect of k (FS strategy)",
                {"k", "Tc (s)", "Tq (ms)"});
  for (int k : p.ks) {
    pv::PvIndexOptions options = OptionsFromParams(p);
    options.cset.strategy = pv::CSetStrategy::kFixed;
    options.cset.k = k;
    Workbench wb = MakeWorkbench(synth, options);
    const QueryWorkload queries =
        MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
    PnnqRunner runner(&wb.db);
    const QueryCost cost = runner.RunPvIndex(*wb.pv, queries);
    k_table.AddRow({std::to_string(k),
                    Table::Fmt(wb.build_stats.total_ms / 1000.0, 3),
                    Table::Fmt(cost.t_query_ms)});
  }
  k_table.Print();
}

void RunBulkLoadAblation(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  // Three construction modes: the paper's incremental insertion, Z-ordered
  // incremental insertion (arrival-order ablation: octree leaves split at
  // fixed occupancy, so ordering alone is expected to change little), and
  // top-down bulk loading (batched leaf writes — the real win).
  Table table("Ablation: primary-index construction mode",
              {"|S|", "mode", "insert phase (s)", "primary page writes",
               "Tq (ms)"});
  struct Mode {
    const char* name;
    pv::BuildOrder order;
    bool bulk;
  };
  const Mode modes[] = {{"insertion", pv::BuildOrder::kInsertion, false},
                        {"z-order", pv::BuildOrder::kMorton, false},
                        {"bulk", pv::BuildOrder::kInsertion, true}};
  for (size_t n : p.db_sizes) {
    for (const Mode& mode : modes) {
      pv::PvIndexOptions options = OptionsFromParams(p);
      options.build_order = mode.order;
      options.bulk_primary = mode.bulk;
      Workbench wb = MakeWorkbench(
          SynthOptions(p, p.default_dim, n, p.default_u_size), options);
      const QueryWorkload queries =
          MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);
      PnnqRunner runner(&wb.db);
      const QueryCost cost = runner.RunPvIndex(*wb.pv, queries);
      table.AddRow(
          {SizeLabel(n), mode.name,
           Table::Fmt(wb.build_stats.insert_ms / 1000.0, 3),
           Table::FmtCount(
               static_cast<double>(wb.build_stats.primary_page_writes)),
           Table::Fmt(cost.t_query_ms)});
    }
  }
  table.Print();
}

void RunVerifierStudy(Scale scale) {
  const TableIParams p = ParamsForScale(scale);
  const pv::PvIndexOptions options = OptionsFromParams(p);
  Workbench wb = MakeWorkbench(
      SynthOptions(p, p.default_dim, p.default_db_size, p.default_u_size),
      options);
  const QueryWorkload queries =
      MakeQueryWorkload(wb.db.domain(), p.queries_per_point, kQuerySeed);

  // Exact Step 2 (the default pipeline).
  PnnqRunner runner(&wb.db);
  const QueryCost exact_cost = runner.RunPvIndex(*wb.pv, queries);

  // Verifier Step 2 at a probability threshold (the [11] setting).
  pv::ProbabilisticVerifier verifier(&wb.db);
  const double tau = 0.3;
  double or_ms = 0, pc_ms = 0, decided = 0, fallbacks = 0, answers = 0;
  for (const geom::Point& q : queries.points) {
    StopWatch or_watch;
    auto step1 = wb.pv->QueryPossibleNN(q);
    PVDB_CHECK(step1.ok());
    or_ms += or_watch.ElapsedMillis();
    StopWatch pc_watch;
    pv::VerifierStats stats;
    const auto results =
        verifier.EvaluateThreshold(q, step1.value(), tau, &stats);
    pc_ms += pc_watch.ElapsedMillis();
    decided += stats.accepted_by_bounds + stats.rejected_by_bounds;
    fallbacks += stats.exact_fallbacks;
    answers += static_cast<double>(results.size());
  }
  const auto n = static_cast<double>(queries.points.size());
  or_ms /= n;
  pc_ms /= n;

  Table table("Footnote-11 study: exact Step 2 vs probabilistic verifier "
              "(tau = 0.3)",
              {"step-2 method", "T_OR (ms)", "T_PC (ms)",
               "OR fraction (%)", "decided by bounds", "exact fallbacks"});
  table.AddRow({"exact [8]", Table::Fmt(exact_cost.t_or_ms),
                Table::Fmt(exact_cost.t_pc_ms),
                Table::Fmt(100.0 * exact_cost.t_or_ms /
                           std::max(exact_cost.t_query_ms, 1e-9), 1),
                "-", "-"});
  table.AddRow({"verifier [11]", Table::Fmt(or_ms), Table::Fmt(pc_ms),
                Table::Fmt(100.0 * or_ms / std::max(or_ms + pc_ms, 1e-9), 1),
                Table::Fmt(decided / n, 1), Table::Fmt(fallbacks / n, 1)});
  table.Print();
}

}  // namespace pvdb::eval
