// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Query workloads and PNNQ measurement (Section VII-A): queries are points
// drawn uniformly from the domain; every reported data point averages a
// batch of runs. The runner executes Step 1 through one of the three
// indexes, Step 2 through the shared evaluator, and splits wall time into
// the OR and PC components of Figure 9(b), plus leaf-page I/O for
// Figures 9(c)/(g).

#ifndef PVDB_EVAL_WORKLOAD_H_
#define PVDB_EVAL_WORKLOAD_H_

#include <vector>

#include "src/pv/pnnq.h"
#include "src/pv/pv_index.h"
#include "src/rtree/rstar_tree.h"
#include "src/rtree/rtree_pnn.h"
#include "src/uv/uv_index.h"

namespace pvdb::eval {

/// A batch of PNNQ query points.
struct QueryWorkload {
  std::vector<geom::Point> points;
};

/// Uniform random query points over `domain`.
QueryWorkload MakeQueryWorkload(const geom::Rect& domain, int count,
                                uint64_t seed);

/// Averaged per-query costs of a workload.
struct QueryCost {
  /// Total query time Tq = T_OR + T_PC, milliseconds.
  double t_query_ms = 0.0;
  /// Step-1 (object retrieval) time, milliseconds.
  double t_or_ms = 0.0;
  /// Step-2 (probability computation) time, milliseconds.
  double t_pc_ms = 0.0;
  /// Step-1 leaf/page reads per query.
  double io_or_pages = 0.0;
  /// Step-2 pdf-record pages per query.
  double io_pc_pages = 0.0;
  /// Step-1 candidates per query.
  double candidates = 0.0;
  /// Final answers (probability > 0) per query.
  double answers = 0.0;

  double io_total_pages() const { return io_or_pages + io_pc_pages; }
};

/// Runs PNNQ batteries against the competing Step-1 indexes.
class PnnqRunner {
 public:
  /// Borrows `db` (must outlive the runner and match the indexes).
  explicit PnnqRunner(const uncertain::Dataset* db) : db_(db), step2_(db) {}

  /// PNNQ through the PV-index.
  QueryCost RunPvIndex(const pv::PvIndex& index,
                       const QueryWorkload& workload) const;

  /// PNNQ through the R-tree branch-and-prune baseline [8].
  QueryCost RunRTree(const rtree::RStarTree& tree,
                     const QueryWorkload& workload) const;

  /// PNNQ through the UV-index baseline [9] (2D).
  QueryCost RunUvIndex(const uv::UvIndex& index,
                       const QueryWorkload& workload) const;

  /// Step-1 answer sets per query point (correctness comparisons).
  std::vector<std::vector<uncertain::ObjectId>> Step1Answers(
      const pv::PvIndex& index, const QueryWorkload& workload) const;

 private:
  const uncertain::Dataset* db_;
  pv::PnnStep2Evaluator step2_;
};

/// Builds an R-tree over the uncertainty regions of `db` (the [8] baseline
/// and the bootstrap tree of Section VII-A).
rtree::RStarTree BuildRegionTree(const uncertain::Dataset& db);

}  // namespace pvdb::eval

#endif  // PVDB_EVAL_WORKLOAD_H_
