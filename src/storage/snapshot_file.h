// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The snapshot file container: a versioned, checksummed, little-endian
// section file that sealed indexes serialize into and serving processes
// mmap back. The container layer knows nothing about octrees or pdfs — it
// provides a superblock (magic, format version, file size), a section table
// ({kind, offset, bytes, checksum} per section, 8-byte aligned payloads)
// and integrity verification; pv::IndexSnapshot defines the section kinds
// and their contents.
//
// Layout (all fields little-endian, offsets from byte 0):
//
//   [0]  superblock   magic[8] "PVDBSNAP", version u32, section_count u32,
//                     file_bytes u64, header_checksum u64
//   [32] section table section_count x {kind u32, pad u32, offset u64,
//                     bytes u64, checksum u64}
//   [..] sections     each padded to 8-byte alignment
//
// header_checksum covers the superblock (with the checksum field zeroed)
// plus the whole section table, and is always verified at open — a
// truncated, foreign or bit-flipped header never gets past OpenFile.
// Per-section checksums are verified selectively by the layer above, so an
// open can validate the structural sections it will descend through while
// leaving bulk payload (pdf records) to be faulted in lazily by the mmap.

#ifndef PVDB_STORAGE_SNAPSHOT_FILE_H_
#define PVDB_STORAGE_SNAPSHOT_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/env.h"

namespace pvdb::storage {

/// First 8 bytes of every pvdb snapshot file.
inline constexpr char kSnapshotMagic[8] = {'P', 'V', 'D', 'B',
                                           'S', 'N', 'A', 'P'};

/// Current container format version. Readers accept the closed range
/// [kMinSnapshotFormatVersion, kSnapshotFormatVersion] and reject anything
/// else with a descriptive NotSupported status BEFORE any checksum is
/// consulted — a future-format file must never masquerade as corruption.
/// (Versioning policy: bump on any layout change; no in-place migration —
/// re-seal from the builder. v1 = AoS leaf entries + raw records; v2 adds
/// 64-byte-aligned SoA leaf planes and optional packed pdf records.)
inline constexpr uint32_t kSnapshotFormatVersion = 2;
inline constexpr uint32_t kMinSnapshotFormatVersion = 1;

/// Default (and minimum) payload alignment inside the file.
inline constexpr size_t kSnapshotSectionAlign = 8;

/// FNV-1a 64-bit over a byte range (the container's checksum function).
uint64_t SnapshotChecksum(const void* data, size_t len);

/// Accumulates named sections and emits the complete file image.
class SnapshotWriter {
 public:
  /// Appends one section; kinds must be unique within a file. `alignment`
  /// is the file offset alignment of the payload (power of two >= 8). It is
  /// not recorded in the table — the writer simply places the payload on
  /// that boundary, so an mmap (page-aligned base) sees the same alignment
  /// in memory. The SoA leaf section uses 64 for cache-line-aligned planes.
  void AddSection(uint32_t kind, std::vector<uint8_t> bytes,
                  size_t alignment = kSnapshotSectionAlign);

  /// Assembles superblock + table + payloads with all checksums filled in.
  /// `version` lets a builder emit the older layout for compatibility
  /// fixtures; payload layout inside the sections is the caller's business.
  std::vector<uint8_t> Finish(
      uint32_t version = kSnapshotFormatVersion) const;

  /// Writes `image` to `path` via a temp file + data fsync + rename +
  /// parent-directory fsync (all through `env`), so a crashed save never
  /// leaves a half-written snapshot at the target path AND the rename
  /// itself survives the crash — a rename is a directory-entry update that
  /// is not durable until the directory's metadata is. A failed save
  /// removes the stale temp file; every IOError carries errno detail.
  static Status WriteFile(Env* env, const std::string& path,
                          std::span<const uint8_t> image);

  /// Same over Env::Default() (plain POSIX).
  static Status WriteFile(const std::string& path,
                          std::span<const uint8_t> image);

 private:
  struct PendingSection {
    uint32_t kind;
    std::vector<uint8_t> bytes;
    size_t alignment;
  };
  std::vector<PendingSection> sections_;
};

/// Immutable view over a validated snapshot image — either an mmap'd file
/// (zero-copy, pages faulted on demand) or an owned in-memory buffer (the
/// Seal() path). Open validates the superblock and section table; section
/// payloads are verified by VerifySection / VerifyAllSections on the
/// caller's schedule.
class SnapshotReader {
 public:
  /// mmaps `path` read-only and validates the header. The mapping lives
  /// until the reader is destroyed; no page of the payload is read here.
  static Result<std::shared_ptr<const SnapshotReader>> OpenFile(
      const std::string& path);

  /// Same validation over an owned buffer (no file involved).
  static Result<std::shared_ptr<const SnapshotReader>> FromImage(
      std::vector<uint8_t> image);

  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// The payload of the section with `kind`; NotFound when absent.
  Result<std::span<const uint8_t>> Section(uint32_t kind) const;

  /// Recomputes one section's checksum; Corruption on mismatch, NotFound
  /// when the section is absent.
  Status VerifySection(uint32_t kind) const;

  /// Verifies every section (a full-file read; the integrity-first open).
  Status VerifyAllSections() const;

  /// True when the bytes come from an mmap (false for FromImage).
  bool mapped() const { return mapped_; }
  size_t file_bytes() const { return size_; }
  uint32_t version() const { return version_; }

 private:
  SnapshotReader() = default;

  /// Shared validation: superblock, table bounds, header checksum.
  Status Init();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> owned_;  // FromImage storage

  struct SectionEntry {
    uint32_t kind;
    uint64_t offset;
    uint64_t bytes;
    uint64_t checksum;
  };
  std::vector<SectionEntry> table_;
  uint32_t version_ = 0;
};

}  // namespace pvdb::storage

#endif  // PVDB_STORAGE_SNAPSHOT_FILE_H_
