// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/storage/record_store.h"

#include <algorithm>

namespace pvdb::storage {
namespace {

constexpr size_t kNextOffset = 0;
constexpr size_t kUsedOffset = sizeof(PageId);
constexpr size_t kPayloadOffset = sizeof(PageId) + sizeof(uint32_t);

}  // namespace

Result<RecordRef> RecordStore::Put(const std::vector<uint8_t>& bytes) {
  const uint64_t pages = PagesNeeded(bytes.size());
  RecordRef ref;
  ref.length = bytes.size();

  PageId prev = kInvalidPageId;
  Page prev_page;
  size_t written = 0;
  for (uint64_t i = 0; i < pages; ++i) {
    PVDB_ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
    if (i == 0) {
      ref.head = id;
    } else {
      prev_page.WriteAt<PageId>(kNextOffset, id);
      PVDB_RETURN_NOT_OK(pager_->Write(prev, prev_page));
    }
    Page page;
    page.WriteAt<PageId>(kNextOffset, kInvalidPageId);
    const size_t chunk =
        std::min(kPayloadPerPage, bytes.size() - written);
    page.WriteAt<uint32_t>(kUsedOffset, static_cast<uint32_t>(chunk));
    if (chunk > 0) page.WriteBytes(kPayloadOffset, bytes.data() + written, chunk);
    written += chunk;
    prev = id;
    prev_page = page;
  }
  PVDB_RETURN_NOT_OK(pager_->Write(prev, prev_page));
  return ref;
}

Result<std::vector<uint8_t>> RecordStore::Get(const RecordRef& ref) {
  if (!ref.valid()) {
    return Status::InvalidArgument("RecordStore::Get on invalid ref");
  }
  std::vector<uint8_t> out;
  out.reserve(ref.length);
  PageId id = ref.head;
  while (id != kInvalidPageId) {
    Page page;
    PVDB_RETURN_NOT_OK(pager_->Read(id, &page));
    const uint32_t used = page.ReadAt<uint32_t>(kUsedOffset);
    if (used > kPayloadPerPage) {
      return Status::Corruption("record page claims oversized payload");
    }
    const size_t old = out.size();
    out.resize(old + used);
    page.ReadBytes(kPayloadOffset, out.data() + old, used);
    id = page.ReadAt<PageId>(kNextOffset);
  }
  if (out.size() != ref.length) {
    return Status::Corruption("record chain length mismatch: expected " +
                              std::to_string(ref.length) + ", got " +
                              std::to_string(out.size()));
  }
  return out;
}

Status RecordStore::Delete(const RecordRef& ref) {
  if (!ref.valid()) {
    return Status::InvalidArgument("RecordStore::Delete on invalid ref");
  }
  PageId id = ref.head;
  while (id != kInvalidPageId) {
    Page page;
    PVDB_RETURN_NOT_OK(pager_->Read(id, &page));
    const PageId next = page.ReadAt<PageId>(kNextOffset);
    PVDB_RETURN_NOT_OK(pager_->Free(id));
    id = next;
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> RecordStore::GetPrefix(const RecordRef& ref,
                                                    size_t n) {
  if (!ref.valid() || n > ref.length) {
    return Status::InvalidArgument("RecordStore::GetPrefix out of range");
  }
  std::vector<uint8_t> out;
  out.reserve(n);
  PageId id = ref.head;
  while (id != kInvalidPageId && out.size() < n) {
    Page page;
    PVDB_RETURN_NOT_OK(pager_->Read(id, &page));
    const uint32_t used = page.ReadAt<uint32_t>(kUsedOffset);
    const size_t take = std::min<size_t>(used, n - out.size());
    const size_t old = out.size();
    out.resize(old + take);
    page.ReadBytes(kPayloadOffset, out.data() + old, take);
    id = page.ReadAt<PageId>(kNextOffset);
  }
  if (out.size() != n) {
    return Status::Corruption("record chain shorter than declared length");
  }
  return out;
}

Status RecordStore::WritePrefix(const RecordRef& ref,
                                const std::vector<uint8_t>& bytes) {
  if (!ref.valid() || bytes.size() > ref.length ||
      bytes.size() > kPayloadPerPage) {
    return Status::InvalidArgument("RecordStore::WritePrefix out of range");
  }
  Page page;
  PVDB_RETURN_NOT_OK(pager_->Read(ref.head, &page));
  page.WriteBytes(kPayloadOffset, bytes.data(), bytes.size());
  return pager_->Write(ref.head, page);
}

Result<RecordRef> RecordStore::Update(const RecordRef& ref,
                                      const std::vector<uint8_t>& bytes) {
  if (!ref.valid()) {
    return Status::InvalidArgument("RecordStore::Update on invalid ref");
  }
  if (PagesNeeded(bytes.size()) == PagesNeeded(ref.length)) {
    // In-place rewrite of the existing chain.
    RecordRef out = ref;
    out.length = bytes.size();
    PageId id = ref.head;
    size_t written = 0;
    while (id != kInvalidPageId) {
      Page page;
      PVDB_RETURN_NOT_OK(pager_->Read(id, &page));
      const size_t chunk = std::min(kPayloadPerPage, bytes.size() - written);
      page.WriteAt<uint32_t>(kUsedOffset, static_cast<uint32_t>(chunk));
      if (chunk > 0) {
        page.WriteBytes(kPayloadOffset, bytes.data() + written, chunk);
      }
      written += chunk;
      PVDB_RETURN_NOT_OK(pager_->Write(id, page));
      id = page.ReadAt<PageId>(kNextOffset);
    }
    return out;
  }
  PVDB_RETURN_NOT_OK(Delete(ref));
  return Put(bytes);
}

}  // namespace pvdb::storage
