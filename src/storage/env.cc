// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/storage/env.h"

#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace pvdb::storage {

namespace {

/// "<what> <path>: <strerror>" — every POSIX failure reports its cause.
Status PosixError(const std::string& what, const std::string& path,
                  int err) {
  return Status::IOError(what + " " + path + ": " + std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override { Close(); }

  Status Append(std::span<const uint8_t> data) override {
    if (fd_ < 0) return Status::IOError("append to closed file " + path_);
    const uint8_t* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("write failed:", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync of closed file " + path_);
    if (::fsync(fd_) != 0) return PosixError("fsync failed:", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return PosixError("close failed:", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Result<size_t> Read(size_t n, uint8_t* scratch) override {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::read(fd_, scratch + got, n - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("read failed:", path_, errno);
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    return got;
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    const int flags =
        O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return PosixError("cannot create file", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("cannot open file", path, errno);
    return std::unique_ptr<SequentialFile>(
        std::make_unique<PosixSequentialFile>(fd, path));
  }

  Status ReadFile(const std::string& path,
                  std::vector<uint8_t>* out) override {
    out->clear();
    PVDB_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> file,
                          NewSequentialFile(path));
    uint8_t buf[1 << 16];
    while (true) {
      PVDB_ASSIGN_OR_RETURN(const size_t got, file->Read(sizeof(buf), buf));
      if (got == 0) break;
      out->insert(out->end(), buf, buf + got);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return PosixError("cannot stat", path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Result<std::vector<std::string>> GetChildren(
      const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError("cannot open directory", dir, errno);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return PosixError("cannot create directory", dir, errno);
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return PosixError("cannot delete", path, errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("cannot rename " + from + " to", to, errno);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return PosixError("cannot truncate", path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("cannot open directory for sync", dir, errno);
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) return PosixError("directory fsync failed:", dir, err);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteFileAtomic(Env* env, const std::string& path,
                       std::span<const uint8_t> data) {
  const std::string tmp = path + ".tmp";
  PVDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(tmp));
  Status st = file->Append(data);
  // fsync before the rename: without it a crash after the rename could
  // leave a torn file at the final path — the exact outcome the temp
  // file exists to prevent.
  if (st.ok()) st = file->Sync();
  const Status closed = file->Close();
  if (st.ok()) st = closed;
  if (st.ok()) st = env->RenameFile(tmp, path);
  if (!st.ok()) {
    // Never leave a stale temp behind a failed save (best-effort: the
    // original error is the one worth reporting).
    if (env->FileExists(tmp)) env->DeleteFile(tmp);
    return st;
  }
  // fsync the parent directory: the rename itself is a directory-entry
  // update and is not durable until the directory's metadata is — a crash
  // here could otherwise forget the file ever appeared at `path`.
  return env->SyncDir(ParentDir(path));
}

}  // namespace pvdb::storage
