// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/storage/fault_env.h"

#include <algorithm>
#include <utility>

namespace pvdb::storage {

namespace {

/// A writable file that reports every append/sync back to the env so crash
/// simulation knows which bytes are durable. Fault checks happen here too:
/// the op budget covers per-write syscalls, not just file opens.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base,
                    std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::span<const uint8_t> data) override {
    PVDB_RETURN_NOT_OK(env_->Spend("write", path_));
    PVDB_RETURN_NOT_OK(base_->Append(data));
    env_->RecordAppend(path_, data.size());
    return Status::OK();
  }

  Status Sync() override {
    PVDB_RETURN_NOT_OK(env_->Spend("fsync", path_));
    PVDB_RETURN_NOT_OK(base_->Sync());
    env_->RecordSync(path_);
    return Status::OK();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

class FaultSequentialFile final : public SequentialFile {
 public:
  FaultSequentialFile(FaultInjectionEnv* env,
                      std::unique_ptr<SequentialFile> base, std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Result<size_t> Read(size_t n, uint8_t* scratch) override {
    PVDB_RETURN_NOT_OK(env_->Spend("read", path_));
    return base_->Read(n, scratch);
  }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<SequentialFile> base_;
  std::string path_;
};

}  // namespace

void FaultInjectionEnv::SetOpBudget(int64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget;
  used_ = 0;
}

int64_t FaultInjectionEnv::ops_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

void FaultInjectionEnv::ClearOpBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = -1;
}

Status FaultInjectionEnv::Spend(const std::string& what,
                                const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ++used_;
  if (budget_ >= 0 && used_ > budget_) {
    return Status::IOError("injected fault (env op " + std::to_string(used_) +
                           "): " + what + " " + path);
  }
  return Status::OK();
}

void FaultInjectionEnv::RecordAppend(const std::string& path, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].length += n;
}

void FaultInjectionEnv::RecordSync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) it->second.synced_bytes = it->second.length;
}

Status FaultInjectionEnv::DropUnsyncedFileData() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, state] : files_) {
    if (state.length == state.synced_bytes) continue;
    if (!base_->FileExists(path)) continue;  // already reverted/deleted
    PVDB_RETURN_NOT_OK(base_->TruncateFile(path, state.synced_bytes));
    state.length = state.synced_bytes;
  }
  return Status::OK();
}

Status FaultInjectionEnv::DropUnsyncedMetadata() {
  std::lock_guard<std::mutex> lock(mu_);
  // Newest first: a rename layered over a create must be reverted before
  // the create is deleted.
  for (auto it = pending_meta_.rbegin(); it != pending_meta_.rend(); ++it) {
    if (it->kind == PendingMeta::kRename) {
      if (base_->FileExists(it->path)) {
        PVDB_RETURN_NOT_OK(base_->RenameFile(it->path, it->from));
        auto node = files_.extract(it->path);
        if (!node.empty()) {
          node.key() = it->from;
          files_.insert(std::move(node));
        }
      }
    } else {
      if (base_->FileExists(it->path)) {
        PVDB_RETURN_NOT_OK(base_->DeleteFile(it->path));
      }
      files_.erase(it->path);
    }
    if (it->had_old) {
      // The entry replaced an existing file: a real crash keeps the OLD
      // file (its dirent was durable), so put its content back.
      PVDB_RETURN_NOT_OK(RestoreBytes(it->path, it->old_bytes));
    }
  }
  pending_meta_.clear();
  return Status::OK();
}

Status FaultInjectionEnv::RestoreBytes(const std::string& path,
                                       const std::vector<uint8_t>& bytes) {
  PVDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                        base_->NewWritableFile(path, /*truncate=*/true));
  PVDB_RETURN_NOT_OK(f->Append(bytes));
  PVDB_RETURN_NOT_OK(f->Sync());
  return f->Close();
}

Status FaultInjectionEnv::SimulateCrash() {
  PVDB_RETURN_NOT_OK(DropUnsyncedFileData());
  PVDB_RETURN_NOT_OK(DropUnsyncedMetadata());
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  return Status::OK();
}

Status FaultInjectionEnv::FlipByte(const std::string& path, uint64_t offset) {
  std::vector<uint8_t> bytes;
  PVDB_RETURN_NOT_OK(base_->ReadFile(path, &bytes));
  if (offset >= bytes.size()) {
    return Status::OutOfRange("flip offset " + std::to_string(offset) +
                              " beyond " + path);
  }
  bytes[offset] ^= 0xFFu;
  // Rewrite in place through the base env: corruption is not a tracked
  // mutation (the bytes are "on disk", just wrong).
  PVDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                        base_->NewWritableFile(path, /*truncate=*/true));
  PVDB_RETURN_NOT_OK(f->Append(bytes));
  PVDB_RETURN_NOT_OK(f->Sync());
  return f->Close();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  PVDB_RETURN_NOT_OK(Spend("open for write", path));
  const bool existed = base_->FileExists(path);
  PVDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        base_->NewWritableFile(path, truncate));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (truncate || it == files_.end()) {
      uint64_t size = 0;
      if (!truncate && existed) {
        size = base_->GetFileSize(path).value_or(0);
      }
      // Reopening an untracked existing file: its current bytes were
      // written by an earlier (synced or crashed-and-recovered) life and
      // count as durable.
      files_[path] = FileState{size, size};
    }
    if (!existed) {
      pending_meta_.push_back(
          PendingMeta{PendingMeta::kCreate, path, "", false, {}});
    }
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, std::move(file), path));
}

Result<std::unique_ptr<SequentialFile>> FaultInjectionEnv::NewSequentialFile(
    const std::string& path) {
  PVDB_RETURN_NOT_OK(Spend("open for read", path));
  PVDB_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> file,
                        base_->NewSequentialFile(path));
  return std::unique_ptr<SequentialFile>(
      std::make_unique<FaultSequentialFile>(this, std::move(file), path));
}

Status FaultInjectionEnv::ReadFile(const std::string& path,
                                   std::vector<uint8_t>* out) {
  PVDB_RETURN_NOT_OK(Spend("read", path));
  return base_->ReadFile(path, out);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::GetChildren(
    const std::string& dir) {
  return base_->GetChildren(dir);
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& dir) {
  PVDB_RETURN_NOT_OK(Spend("create directory", dir));
  return base_->CreateDirIfMissing(dir);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  PVDB_RETURN_NOT_OK(Spend("delete", path));
  PVDB_RETURN_NOT_OK(base_->DeleteFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  std::erase_if(pending_meta_, [&](const PendingMeta& m) {
    return m.kind == PendingMeta::kCreate && m.path == path;
  });
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  PVDB_RETURN_NOT_OK(Spend("rename", from));
  // A rename over an existing `to` (the atomic-replace pattern) must be
  // revertible to the OLD content: a crash before the directory sync keeps
  // the old dirent, it does not vanish the file. Capture the bytes first.
  std::vector<uint8_t> old_bytes;
  const bool clobbers = base_->FileExists(to);
  if (clobbers) PVDB_RETURN_NOT_OK(base_->ReadFile(to, &old_bytes));
  PVDB_RETURN_NOT_OK(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto node = files_.extract(from);
  if (!node.empty()) {
    files_.erase(to);
    node.key() = to;
    files_.insert(std::move(node));
  }
  // If the source was itself an unsynced creation, the pending entry
  // follows the bytes: reverting becomes "delete `to`" (then restore the
  // clobbered content, if any) — what a crash before any directory sync
  // would leave.
  bool was_pending_create = false;
  for (auto& m : pending_meta_) {
    if (m.kind == PendingMeta::kCreate && m.path == from) {
      m.path = to;
      if (clobbers && !m.had_old) {
        m.had_old = true;
        m.old_bytes = old_bytes;
      }
      was_pending_create = true;
    }
  }
  if (!was_pending_create) {
    pending_meta_.push_back(PendingMeta{PendingMeta::kRename, to, from,
                                        clobbers, std::move(old_bytes)});
  }
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  PVDB_RETURN_NOT_OK(Spend("truncate", path));
  PVDB_RETURN_NOT_OK(base_->TruncateFile(path, size));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.length = size;
    it->second.synced_bytes = std::min(it->second.synced_bytes, size);
  }
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  PVDB_RETURN_NOT_OK(Spend("directory fsync", dir));
  PVDB_RETURN_NOT_OK(base_->SyncDir(dir));
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(pending_meta_, [&](const PendingMeta& m) {
    return ParentDir(m.path) == dir;
  });
  return Status::OK();
}

}  // namespace pvdb::storage
