// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/storage/pager.h"

#include <utility>

namespace pvdb::storage {

// ---------------------------------------------------------------------------
// InMemoryPager
// ---------------------------------------------------------------------------

Result<PageId> InMemoryPager::Allocate() {
  allocs_->Increment();
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id]->Clear();
    live_[id] = true;
    return id;
  }
  const PageId id = pages_.size();
  pages_.push_back(std::make_unique<Page>());
  live_.push_back(true);
  return id;
}

Status InMemoryPager::CheckId(PageId id) const {
  if (id >= pages_.size() || !live_[id]) {
    return Status::InvalidArgument("invalid or freed page id " +
                                   std::to_string(id));
  }
  return Status::OK();
}

Status InMemoryPager::Read(PageId id, Page* out) {
  PVDB_RETURN_NOT_OK(CheckId(id));
  reads_->Increment();
  *out = *pages_[id];
  return Status::OK();
}

Status InMemoryPager::Write(PageId id, const Page& page) {
  PVDB_RETURN_NOT_OK(CheckId(id));
  writes_->Increment();
  *pages_[id] = page;
  return Status::OK();
}

Status InMemoryPager::Free(PageId id) {
  PVDB_RETURN_NOT_OK(CheckId(id));
  frees_->Increment();
  live_[id] = false;
  free_list_.push_back(id);
  return Status::OK();
}

size_t InMemoryPager::LivePageCount() const {
  size_t n = 0;
  for (bool b : live_) n += b ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// FilePager
// ---------------------------------------------------------------------------

Result<std::unique_ptr<FilePager>> FilePager::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot open pager file: " + path);
  }
  return std::unique_ptr<FilePager>(new FilePager(f, path));
}

FilePager::~FilePager() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<PageId> FilePager::Allocate() {
  std::lock_guard<std::mutex> lock(io_mu_);
  allocs_->Increment();
  Page zero;
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    live_[id] = true;
  } else {
    id = page_count_;
    ++page_count_;
    live_.push_back(true);
  }
  // Zeroing is part of allocation, not user I/O: no write counter charge.
  if (std::fseek(file_, static_cast<long>(id * kPageSize), SEEK_SET) != 0 ||
      std::fwrite(zero.bytes.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("failed to extend pager file " + path_);
  }
  return id;
}

Status FilePager::Read(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (id >= page_count_ || !live_[id]) {
    return Status::InvalidArgument("invalid or freed page id " +
                                   std::to_string(id));
  }
  reads_->Increment();
  if (std::fseek(file_, static_cast<long>(id * kPageSize), SEEK_SET) != 0 ||
      std::fread(out->bytes.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short read on page " + std::to_string(id));
  }
  return Status::OK();
}

Status FilePager::Write(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (id >= page_count_ || !live_[id]) {
    return Status::InvalidArgument("invalid or freed page id " +
                                   std::to_string(id));
  }
  writes_->Increment();
  if (std::fseek(file_, static_cast<long>(id * kPageSize), SEEK_SET) != 0 ||
      std::fwrite(page.bytes.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short write on page " + std::to_string(id));
  }
  std::fflush(file_);
  return Status::OK();
}

Status FilePager::Free(PageId id) {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (id >= page_count_ || !live_[id]) {
    return Status::InvalidArgument("invalid or freed page id " +
                                   std::to_string(id));
  }
  frees_->Increment();
  live_[id] = false;
  free_list_.push_back(id);
  return Status::OK();
}

size_t FilePager::LivePageCount() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  size_t n = 0;
  for (bool b : live_) n += b ? 1 : 0;
  return n;
}

}  // namespace pvdb::storage
