// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/storage/extendible_hash.h"

#include <algorithm>
#include <unordered_set>

namespace pvdb::storage {
namespace {

// Beyond this depth something is structurally wrong (or the key stream is
// adversarial); fail loudly instead of doubling a multi-gigabyte directory.
constexpr int kMaxGlobalDepth = 28;

struct BucketView {
  uint32_t local_depth;
  uint32_t count;
};

BucketView ReadHeader(const Page& page) {
  return {page.ReadAt<uint32_t>(0), page.ReadAt<uint32_t>(4)};
}

void WriteHeader(Page* page, const BucketView& v) {
  page->WriteAt<uint32_t>(0, v.local_depth);
  page->WriteAt<uint32_t>(4, v.count);
}

size_t EntryOffset(size_t slot) {
  return ExtendibleHash::kHeaderSize + slot * ExtendibleHash::kEntrySize;
}

void ReadEntry(const Page& page, size_t slot, uint64_t* key, RecordRef* ref) {
  const size_t off = EntryOffset(slot);
  *key = page.ReadAt<uint64_t>(off);
  ref->head = page.ReadAt<uint64_t>(off + 8);
  ref->length = page.ReadAt<uint64_t>(off + 16);
}

void WriteEntry(Page* page, size_t slot, uint64_t key, const RecordRef& ref) {
  const size_t off = EntryOffset(slot);
  page->WriteAt<uint64_t>(off, key);
  page->WriteAt<uint64_t>(off + 8, ref.head);
  page->WriteAt<uint64_t>(off + 16, ref.length);
}

}  // namespace

uint64_t ExtendibleHash::HashKey(uint64_t key) {
  // SplitMix64 finalizer: full avalanche so directory bits are unbiased.
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

size_t ExtendibleHash::DirIndex(uint64_t key) const {
  const uint64_t h = HashKey(key);
  return global_depth_ == 0
             ? 0
             : static_cast<size_t>(h & ((1ULL << global_depth_) - 1));
}

Result<ExtendibleHash> ExtendibleHash::Create(Pager* pager) {
  PVDB_CHECK(pager != nullptr);
  ExtendibleHash table(pager);
  PVDB_ASSIGN_OR_RETURN(PageId root, pager->Allocate());
  Page page;
  WriteHeader(&page, {0, 0});
  PVDB_RETURN_NOT_OK(pager->Write(root, page));
  table.directory_ = {root};
  table.global_depth_ = 0;
  return table;
}

Status ExtendibleHash::Put(uint64_t key, const RecordRef& value) {
  for (;;) {
    const size_t dir = DirIndex(key);
    const PageId bucket_id = directory_[dir];
    Page page;
    PVDB_RETURN_NOT_OK(pager_->Read(bucket_id, &page));
    BucketView v = ReadHeader(page);

    // Overwrite in place if present.
    for (size_t slot = 0; slot < v.count; ++slot) {
      uint64_t k;
      RecordRef r;
      ReadEntry(page, slot, &k, &r);
      if (k == key) {
        WriteEntry(&page, slot, key, value);
        return pager_->Write(bucket_id, page);
      }
    }

    if (v.count < kBucketCapacity) {
      WriteEntry(&page, v.count, key, value);
      v.count += 1;
      WriteHeader(&page, v);
      PVDB_RETURN_NOT_OK(pager_->Write(bucket_id, page));
      ++size_;
      return Status::OK();
    }

    // Bucket full: split and retry. Splitting strictly increases the number
    // of hash bits distinguishing this bucket, so progress is guaranteed up
    // to kMaxGlobalDepth.
    PVDB_RETURN_NOT_OK(SplitBucket(dir));
  }
}

Status ExtendibleHash::SplitBucket(size_t dir_index) {
  const PageId old_id = directory_[dir_index];
  Page old_page;
  PVDB_RETURN_NOT_OK(pager_->Read(old_id, &old_page));
  BucketView v = ReadHeader(old_page);
  const uint32_t old_depth = v.local_depth;

  if (static_cast<int>(old_depth) == global_depth_) {
    if (global_depth_ + 1 > kMaxGlobalDepth) {
      return Status::ResourceExhausted("extendible hash directory too deep");
    }
    directory_.reserve(directory_.size() * 2);
    const size_t half = directory_.size();
    for (size_t i = 0; i < half; ++i) directory_.push_back(directory_[i]);
    ++global_depth_;
  }

  PVDB_ASSIGN_OR_RETURN(PageId new_id, pager_->Allocate());
  Page new_page;

  // Redistribute by the newly significant hash bit.
  const uint32_t new_depth = old_depth + 1;
  uint32_t old_count = 0, new_count = 0;
  Page rewritten_old;
  for (size_t slot = 0; slot < v.count; ++slot) {
    uint64_t k;
    RecordRef r;
    ReadEntry(old_page, slot, &k, &r);
    const bool goes_new = (HashKey(k) >> old_depth) & 1ULL;
    if (goes_new) {
      WriteEntry(&new_page, new_count++, k, r);
    } else {
      WriteEntry(&rewritten_old, old_count++, k, r);
    }
  }
  WriteHeader(&rewritten_old, {new_depth, old_count});
  WriteHeader(&new_page, {new_depth, new_count});
  PVDB_RETURN_NOT_OK(pager_->Write(old_id, rewritten_old));
  PVDB_RETURN_NOT_OK(pager_->Write(new_id, new_page));

  // Repoint directory entries: among the 2^(gd - old_depth) entries aliasing
  // the old bucket, those with the new bit set move to the new bucket.
  const uint64_t stride = 1ULL << new_depth;
  const uint64_t base = dir_index & ((1ULL << old_depth) - 1);
  for (uint64_t i = base | (1ULL << old_depth); i < directory_.size();
       i += stride) {
    directory_[i] = new_id;
  }
  return Status::OK();
}

Result<RecordRef> ExtendibleHash::Get(uint64_t key) const {
  const size_t dir = DirIndex(key);
  Page page;
  PVDB_RETURN_NOT_OK(pager_->Read(directory_[dir], &page));
  const BucketView v = ReadHeader(page);
  for (size_t slot = 0; slot < v.count; ++slot) {
    uint64_t k;
    RecordRef r;
    ReadEntry(page, slot, &k, &r);
    if (k == key) return r;
  }
  return Status::NotFound("key " + std::to_string(key));
}

Status ExtendibleHash::Delete(uint64_t key) {
  const size_t dir = DirIndex(key);
  const PageId bucket_id = directory_[dir];
  Page page;
  PVDB_RETURN_NOT_OK(pager_->Read(bucket_id, &page));
  BucketView v = ReadHeader(page);
  for (size_t slot = 0; slot < v.count; ++slot) {
    uint64_t k;
    RecordRef r;
    ReadEntry(page, slot, &k, &r);
    if (k == key) {
      // Swap-with-last keeps the bucket dense.
      if (slot + 1 < v.count) {
        uint64_t lk;
        RecordRef lr;
        ReadEntry(page, v.count - 1, &lk, &lr);
        WriteEntry(&page, slot, lk, lr);
      }
      v.count -= 1;
      WriteHeader(&page, v);
      PVDB_RETURN_NOT_OK(pager_->Write(bucket_id, page));
      --size_;
      return Status::OK();
    }
  }
  return Status::NotFound("key " + std::to_string(key));
}

size_t ExtendibleHash::BucketCount() const {
  std::unordered_set<PageId> distinct(directory_.begin(), directory_.end());
  return distinct.size();
}

Result<std::vector<uint64_t>> ExtendibleHash::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(size_);
  std::unordered_set<PageId> seen;
  for (PageId id : directory_) {
    if (!seen.insert(id).second) continue;
    Page page;
    PVDB_RETURN_NOT_OK(pager_->Read(id, &page));
    const BucketView v = ReadHeader(page);
    for (size_t slot = 0; slot < v.count; ++slot) {
      uint64_t k;
      RecordRef r;
      ReadEntry(page, slot, &k, &r);
      keys.push_back(k);
    }
  }
  return keys;
}

}  // namespace pvdb::storage
