// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Fixed-size disk pages. The paper's experiments use 4 KiB pages for all
// leaf-level and secondary-index storage; every disk touch in pvdb is a page
// read or write through a Pager, which is where I/O accounting happens.

#ifndef PVDB_STORAGE_PAGE_H_
#define PVDB_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "src/common/check.h"

namespace pvdb::storage {

/// Page size in bytes (matches the paper's 4 KiB experimental setting).
inline constexpr size_t kPageSize = 4096;

/// Identifier of a page within a Pager; dense, allocated sequentially.
using PageId = uint64_t;

/// Sentinel for "no page" (end of a chain, unset pointer).
inline constexpr PageId kInvalidPageId = ~static_cast<PageId>(0);

/// One fixed-size page of raw bytes with bounds-checked scalar accessors.
struct Page {
  std::array<uint8_t, kPageSize> bytes{};

  /// Writes a trivially-copyable value at byte offset `off`.
  template <typename T>
  void WriteAt(size_t off, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    PVDB_DCHECK(off + sizeof(T) <= kPageSize);
    std::memcpy(bytes.data() + off, &value, sizeof(T));
  }

  /// Reads a trivially-copyable value from byte offset `off`.
  template <typename T>
  T ReadAt(size_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    PVDB_DCHECK(off + sizeof(T) <= kPageSize);
    T value;
    std::memcpy(&value, bytes.data() + off, sizeof(T));
    return value;
  }

  /// Copies `len` raw bytes into the page at `off`.
  void WriteBytes(size_t off, const void* src, size_t len) {
    PVDB_DCHECK(off + len <= kPageSize);
    std::memcpy(bytes.data() + off, src, len);
  }

  /// Copies `len` raw bytes out of the page at `off`.
  void ReadBytes(size_t off, void* dst, size_t len) const {
    PVDB_DCHECK(off + len <= kPageSize);
    std::memcpy(dst, bytes.data() + off, len);
  }

  /// Zeroes the whole page.
  void Clear() { bytes.fill(0); }
};

}  // namespace pvdb::storage

#endif  // PVDB_STORAGE_PAGE_H_
