// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// The write-ahead log: a length-prefixed, CRC-per-record append log that
// sits in front of the sealed snapshot image and makes mutations durable
// before they are applied. All I/O goes through storage::Env, so every
// claim below is exercised under FaultInjectionEnv, not just argued.
//
// File layout (little-endian):
//
//   [0] magic "PVDBWAL1" (8 bytes)
//   [8] records, back to back:
//         payload_len u32 | crc u32 | type u8 | payload[payload_len]
//
// crc is CRC-32C over (type byte || payload) — the length field is
// implicitly validated by the crc landing on a record boundary. Record
// semantics (the type byte and payload encoding) belong to the layer
// above (pv::LiveIndex); the log stores bytes.
//
// Durability / acknowledgment contract:
//   * Append returning OK means the record was handed to the OS. It is
//     durable once covered by a Sync — which Append itself issues per the
//     group-commit policy (every record at sync_every_n = 1; every n-th
//     record and/or every sync_interval_ms otherwise).
//   * A crash can therefore lose at most the unsynced tail: with
//     sync_every_n = n, up to n-1 acknowledged records (bounded-loss group
//     commit). synced_records() is the durable floor at any moment.
//
// Recovery contract:
//   * WalReplay applies records in order and STOPS CLEANLY at the first
//     torn or checksum-failing record: everything before it is recovered,
//     everything from it on is reported dropped (records_applied /
//     bytes_dropped / tail_detail in WalReplayStats). A torn tail is the
//     expected signature of a crash mid-append and is NOT an error; only
//     real I/O failures and apply-callback failures propagate.
//   * WalWriter::Open on an existing log scans the same way and truncates
//     the file back to the valid prefix before appending — a torn tail is
//     repaired, never buried under fresh records.

#ifndef PVDB_STORAGE_WAL_H_
#define PVDB_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/storage/env.h"

namespace pvdb::storage {

/// First 8 bytes of every pvdb WAL file.
inline constexpr char kWalMagic[8] = {'P', 'V', 'D', 'B', 'W', 'A', 'L', '1'};
inline constexpr size_t kWalFileHeaderBytes = sizeof(kWalMagic);
/// Bytes of framing before each payload (payload_len u32, crc u32, type u8).
inline constexpr size_t kWalRecordHeaderBytes = 9;
/// Sanity bound on one record's payload; a length field beyond it is read
/// as tail corruption, not an allocation request.
inline constexpr uint32_t kMaxWalRecordBytes = 64u << 20;

/// Group-commit policy.
struct WalOptions {
  /// Sync after every n-th appended record. 1 = sync every append (ack =
  /// durable); 0 = never sync on append (caller drives Sync explicitly).
  uint32_t sync_every_n = 1;
  /// Also sync when this many milliseconds passed since the last sync
  /// (checked at append time). 0 disables the timer.
  double sync_interval_ms = 0.0;
};

/// What a replay (or an open-time scan) found.
struct WalReplayStats {
  /// Records applied (valid prefix).
  uint64_t records_applied = 0;
  /// Bytes of the valid prefix, file header included.
  uint64_t valid_bytes = 0;
  /// Bytes past the valid prefix (torn/corrupt tail), dropped.
  uint64_t bytes_dropped = 0;
  /// True when a torn or checksum-failing tail stopped the replay early.
  bool tail_corrupt = false;
  /// Human-readable reason the replay stopped ("" when the log was clean).
  std::string tail_detail;
};

using WalApplyFn =
    std::function<Status(uint8_t type, std::span<const uint8_t> payload)>;

/// Replays `path` through `apply` per the recovery contract above.
/// NotFound when the file does not exist (a missing log is the caller's
/// "empty" case, distinct from an unreadable one). `apply` may be null
/// (pure validation scan). `stats` may be null.
Status WalReplay(Env* env, const std::string& path, const WalApplyFn& apply,
                 WalReplayStats* stats);

/// The appender. Single-owner (the ingest path serializes mutations); all
/// methods report injected or real I/O failures as Status.
class WalWriter {
 public:
  /// Creates `path` (writing the magic, synced) or opens an existing log,
  /// repairing a torn tail by truncation first. `repair` (nullable)
  /// receives the open-time scan: how many records the log held and
  /// whether a tail was dropped.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env, std::string path,
                                                 const WalOptions& options,
                                                 WalReplayStats* repair =
                                                     nullptr);

  /// Appends one record and applies the group-commit policy. On OK the
  /// record is acknowledged (durable iff the policy synced, see
  /// synced_records()).
  Status Append(uint8_t type, std::span<const uint8_t> payload);

  /// Forces the durable floor up to everything appended.
  Status Sync();

  Status Close();

  const std::string& path() const { return path_; }
  uint64_t appended_records() const { return appended_records_; }
  /// Records covered by a sync — the crash-survivable floor.
  uint64_t synced_records() const { return synced_records_; }
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  WalWriter(Env* env, std::string path, const WalOptions& options)
      : env_(env), path_(std::move(path)), options_(options) {}

  Env* env_;
  std::string path_;
  WalOptions options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t appended_records_ = 0;
  uint64_t synced_records_ = 0;
  uint64_t file_bytes_ = 0;
  StopWatch since_last_sync_;
};

}  // namespace pvdb::storage

#endif  // PVDB_STORAGE_WAL_H_
