// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/storage/snapshot_file.h"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/storage/env.h"

namespace pvdb::storage {

// The format is defined little-endian; pvdb's supported targets are LE, so
// field access is a plain memcpy. A big-endian port would byte-swap here.
static_assert(std::endian::native == std::endian::little,
              "snapshot files are little-endian; add byte swapping to port");

namespace {

// Superblock layout (32 bytes).
constexpr size_t kMagicOffset = 0;
constexpr size_t kVersionOffset = 8;
constexpr size_t kSectionCountOffset = 12;
constexpr size_t kFileBytesOffset = 16;
constexpr size_t kHeaderChecksumOffset = 24;
constexpr size_t kSuperblockBytes = 32;
// Section table entry layout (32 bytes).
constexpr size_t kTableEntryBytes = 32;
// Payload sections start at least 8-byte aligned and are padded to 8 bytes
// (individual sections may request a stricter power-of-two alignment).
constexpr size_t kSectionAlign = kSnapshotSectionAlign;

// Bound on section_count: the table must fit a sane header. Generous — the
// pv snapshot uses six sections.
constexpr uint32_t kMaxSections = 1024;

template <typename T>
T ReadField(const uint8_t* base, size_t off) {
  T v;
  std::memcpy(&v, base + off, sizeof(T));
  return v;
}

template <typename T>
void WriteField(uint8_t* base, size_t off, T v) {
  std::memcpy(base + off, &v, sizeof(T));
}

size_t AlignUp(size_t n, size_t alignment = kSectionAlign) {
  return (n + alignment - 1) / alignment * alignment;
}

constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/// The one FNV-1a mixing loop; SnapshotChecksum and HeaderChecksum are
/// both compositions of it.
uint64_t FnvMix(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Checksum of the header region (superblock + table) with the
/// header_checksum field treated as zero.
uint64_t HeaderChecksum(const uint8_t* data, size_t header_bytes) {
  const uint8_t zeros[sizeof(uint64_t)] = {0};
  uint64_t h = FnvMix(kFnvOffsetBasis, data, kHeaderChecksumOffset);
  h = FnvMix(h, zeros, sizeof(zeros));
  return FnvMix(h, data + kSuperblockBytes,
                header_bytes - kSuperblockBytes);
}

}  // namespace

uint64_t SnapshotChecksum(const void* data, size_t len) {
  return FnvMix(kFnvOffsetBasis, static_cast<const uint8_t*>(data), len);
}

void SnapshotWriter::AddSection(uint32_t kind, std::vector<uint8_t> bytes,
                                size_t alignment) {
  for (const PendingSection& s : sections_) PVDB_CHECK(s.kind != kind);
  PVDB_CHECK(alignment >= kSectionAlign &&
             (alignment & (alignment - 1)) == 0);
  sections_.push_back(PendingSection{kind, std::move(bytes), alignment});
}

std::vector<uint8_t> SnapshotWriter::Finish(uint32_t version) const {
  PVDB_CHECK(version >= kMinSnapshotFormatVersion &&
             version <= kSnapshotFormatVersion);
  const size_t header_bytes =
      kSuperblockBytes + sections_.size() * kTableEntryBytes;
  size_t total = AlignUp(header_bytes);
  std::vector<uint64_t> offsets;
  offsets.reserve(sections_.size());
  for (const PendingSection& s : sections_) {
    total = AlignUp(total, s.alignment);
    offsets.push_back(total);
    total = AlignUp(total + s.bytes.size());
  }

  std::vector<uint8_t> image(total, 0);
  std::memcpy(image.data() + kMagicOffset, kSnapshotMagic,
              sizeof(kSnapshotMagic));
  WriteField<uint32_t>(image.data(), kVersionOffset, version);
  WriteField<uint32_t>(image.data(), kSectionCountOffset,
                       static_cast<uint32_t>(sections_.size()));
  WriteField<uint64_t>(image.data(), kFileBytesOffset, total);
  for (size_t i = 0; i < sections_.size(); ++i) {
    const PendingSection& s = sections_[i];
    uint8_t* entry = image.data() + kSuperblockBytes + i * kTableEntryBytes;
    WriteField<uint32_t>(entry, 0, s.kind);
    WriteField<uint32_t>(entry, 4, 0);  // pad
    WriteField<uint64_t>(entry, 8, offsets[i]);
    WriteField<uint64_t>(entry, 16, s.bytes.size());
    WriteField<uint64_t>(entry, 24,
                         SnapshotChecksum(s.bytes.data(), s.bytes.size()));
    if (!s.bytes.empty()) {
      std::memcpy(image.data() + offsets[i], s.bytes.data(), s.bytes.size());
    }
  }
  WriteField<uint64_t>(image.data(), kHeaderChecksumOffset,
                       HeaderChecksum(image.data(), header_bytes));
  return image;
}

Status SnapshotWriter::WriteFile(const std::string& path,
                                 std::span<const uint8_t> image) {
  return WriteFile(Env::Default(), path, image);
}

Status SnapshotWriter::WriteFile(Env* env, const std::string& path,
                                 std::span<const uint8_t> image) {
  // Temp file + data fsync + rename + PARENT DIRECTORY fsync, all through
  // the Env seam. The directory fsync is what makes the rename itself
  // durable: without it a crash can forget the snapshot ever appeared at
  // `path` even though its bytes were synced — proven (not assumed) by the
  // FaultInjectionEnv metadata-drop tests in tests/wal_test.cc. A failed
  // save removes the stale temp file and reports the errno cause.
  return WriteFileAtomic(env, path, image);
}

SnapshotReader::~SnapshotReader() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

Result<std::shared_ptr<const SnapshotReader>> SnapshotReader::OpenFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open snapshot file " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat snapshot file " + path + ": " +
                           std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kSuperblockBytes) {
    ::close(fd);
    return Status::Corruption(
        "snapshot file truncated: " + std::to_string(size) +
        " bytes, a snapshot superblock needs " +
        std::to_string(kSuperblockBytes));
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IOError("mmap failed for snapshot file " + path + ": " +
                           std::strerror(map_err));
  }
  auto reader = std::shared_ptr<SnapshotReader>(new SnapshotReader());
  reader->data_ = static_cast<const uint8_t*>(map);
  reader->size_ = size;
  reader->mapped_ = true;
  PVDB_RETURN_NOT_OK(reader->Init());
  return std::shared_ptr<const SnapshotReader>(std::move(reader));
}

Result<std::shared_ptr<const SnapshotReader>> SnapshotReader::FromImage(
    std::vector<uint8_t> image) {
  if (image.size() < kSuperblockBytes) {
    return Status::Corruption(
        "snapshot image truncated: " + std::to_string(image.size()) +
        " bytes, a snapshot superblock needs " +
        std::to_string(kSuperblockBytes));
  }
  auto reader = std::shared_ptr<SnapshotReader>(new SnapshotReader());
  reader->owned_ = std::move(image);
  reader->data_ = reader->owned_.data();
  reader->size_ = reader->owned_.size();
  reader->mapped_ = false;
  PVDB_RETURN_NOT_OK(reader->Init());
  return std::shared_ptr<const SnapshotReader>(std::move(reader));
}

Status SnapshotReader::Init() {
  if (std::memcmp(data_ + kMagicOffset, kSnapshotMagic,
                  sizeof(kSnapshotMagic)) != 0) {
    return Status::Corruption("bad snapshot magic: not a pvdb snapshot file");
  }
  version_ = ReadField<uint32_t>(data_, kVersionOffset);
  if (version_ < kMinSnapshotFormatVersion ||
      version_ > kSnapshotFormatVersion) {
    return Status::NotSupported(
        "unsupported snapshot format version " + std::to_string(version_) +
        "; this build reads versions " +
        std::to_string(kMinSnapshotFormatVersion) + ".." +
        std::to_string(kSnapshotFormatVersion) +
        " (re-seal the snapshot from the builder)");
  }
  const uint32_t section_count =
      ReadField<uint32_t>(data_, kSectionCountOffset);
  if (section_count > kMaxSections) {
    return Status::Corruption("snapshot section count implausible: " +
                              std::to_string(section_count));
  }
  const uint64_t declared = ReadField<uint64_t>(data_, kFileBytesOffset);
  if (declared != size_) {
    return Status::Corruption(
        "snapshot file truncated: superblock declares " +
        std::to_string(declared) + " bytes, file holds " +
        std::to_string(size_));
  }
  const size_t header_bytes =
      kSuperblockBytes + static_cast<size_t>(section_count) * kTableEntryBytes;
  if (header_bytes > size_) {
    return Status::Corruption(
        "snapshot file truncated inside the section table");
  }
  if (HeaderChecksum(data_, header_bytes) !=
      ReadField<uint64_t>(data_, kHeaderChecksumOffset)) {
    return Status::Corruption("snapshot header checksum mismatch");
  }
  table_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint8_t* entry = data_ + kSuperblockBytes + i * kTableEntryBytes;
    SectionEntry s;
    s.kind = ReadField<uint32_t>(entry, 0);
    s.offset = ReadField<uint64_t>(entry, 8);
    s.bytes = ReadField<uint64_t>(entry, 16);
    s.checksum = ReadField<uint64_t>(entry, 24);
    if (s.offset % kSectionAlign != 0 || s.offset < header_bytes ||
        s.bytes > size_ || s.offset > size_ - s.bytes) {
      return Status::Corruption("snapshot section " + std::to_string(s.kind) +
                                " lies outside the file");
    }
    for (const SectionEntry& prev : table_) {
      if (prev.kind == s.kind) {
        return Status::Corruption("duplicate snapshot section kind " +
                                  std::to_string(s.kind));
      }
    }
    table_.push_back(s);
  }
  return Status::OK();
}

Result<std::span<const uint8_t>> SnapshotReader::Section(
    uint32_t kind) const {
  for (const SectionEntry& s : table_) {
    if (s.kind == kind) {
      return std::span<const uint8_t>(data_ + s.offset, s.bytes);
    }
  }
  return Status::NotFound("snapshot has no section of kind " +
                          std::to_string(kind));
}

Status SnapshotReader::VerifySection(uint32_t kind) const {
  for (const SectionEntry& s : table_) {
    if (s.kind != kind) continue;
    if (SnapshotChecksum(data_ + s.offset, s.bytes) != s.checksum) {
      return Status::Corruption("snapshot checksum mismatch in section " +
                                std::to_string(kind));
    }
    return Status::OK();
  }
  return Status::NotFound("snapshot has no section of kind " +
                          std::to_string(kind));
}

Status SnapshotReader::VerifyAllSections() const {
  for (const SectionEntry& s : table_) {
    PVDB_RETURN_NOT_OK(VerifySection(s.kind));
  }
  return Status::OK();
}

}  // namespace pvdb::storage
