// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Pagers: the simulated disk. All paper experiments charge I/O per 4 KiB
// page access with non-leaf index levels pinned in main memory; the pager
// counts every read/write so the harness can report the Figure 9(c)/9(g)
// I/O series. Two implementations: an in-memory pager (fast, default for
// benchmarks — the counters are the experiment's observable) and a
// file-backed pager (real disk round-trips for storage tests/durability).

#ifndef PVDB_STORAGE_PAGER_H_
#define PVDB_STORAGE_PAGER_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/storage/page.h"

namespace pvdb::storage {

/// Counter names exposed by every pager through metrics().
struct PagerCounters {
  static constexpr const char* kReads = "pager.page_reads";
  static constexpr const char* kWrites = "pager.page_writes";
  static constexpr const char* kAllocs = "pager.pages_allocated";
  static constexpr const char* kFrees = "pager.pages_freed";
};

/// Abstract page store with allocation, free-list reuse and I/O accounting.
class Pager {
 public:
  virtual ~Pager() = default;

  /// Allocates a zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Reads page `id` into `*out`. Counts one page read.
  virtual Status Read(PageId id, Page* out) = 0;

  /// Writes `page` to `id`. Counts one page write.
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Returns page `id` to the free list for reuse.
  virtual Status Free(PageId id) = 0;

  /// Number of live (allocated, not freed) pages.
  virtual size_t LivePageCount() const = 0;

  /// Mutable I/O counters (reset between measured phases by the harness).
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

 protected:
  Pager()
      : reads_(metrics_.Register(PagerCounters::kReads)),
        writes_(metrics_.Register(PagerCounters::kWrites)),
        allocs_(metrics_.Register(PagerCounters::kAllocs)),
        frees_(metrics_.Register(PagerCounters::kFrees)) {}

  MetricRegistry metrics_;
  // Pre-registered handles: page charges on the serving path are one
  // relaxed fetch_add instead of a registry mutex + name lookup per page.
  MetricRegistry::Counter* reads_;
  MetricRegistry::Counter* writes_;
  MetricRegistry::Counter* allocs_;
  MetricRegistry::Counter* frees_;
};

/// Heap-backed pager. Page content lives in RAM; reads/writes only bump
/// counters, making it the right substrate for counting-I/O experiments.
class InMemoryPager : public Pager {
 public:
  InMemoryPager() = default;

  Result<PageId> Allocate() override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  Status Free(PageId id) override;
  size_t LivePageCount() const override;

 private:
  Status CheckId(PageId id) const;

  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
};

/// File-backed pager: pages round-trip through a real file with pread/pwrite
/// semantics. The free list is kept in memory (pvdb indexes are rebuildable
/// artifacts, not a recovery-grade store; see DESIGN.md §1 row 3). All page
/// operations serialize on an internal mutex: the seek+read pair on the
/// shared FILE* is not atomic, and the serving path issues concurrent reads.
class FilePager : public Pager {
 public:
  /// Creates (truncates) or opens the backing file.
  static Result<std::unique_ptr<FilePager>> Create(const std::string& path);

  ~FilePager() override;

  Result<PageId> Allocate() override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  Status Free(PageId id) override;
  size_t LivePageCount() const override;

 private:
  explicit FilePager(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  mutable std::mutex io_mu_;
  std::FILE* file_;
  std::string path_;
  size_t page_count_ = 0;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
};

}  // namespace pvdb::storage

#endif  // PVDB_STORAGE_PAGER_H_
