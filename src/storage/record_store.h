// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Heap file for variable-length records. The PV-index's secondary index
// stores one record per object: its UBR, its uncertainty region and its
// discrete pdf (500 samples ≈ 16 KiB at d = 3), so records routinely span
// multiple pages. Each record owns a chain of pages:
//
//   page layout:  [next: PageId (8)] [used: u32 (4)] [payload ...]
//
// The extensible hash table (extendible_hash.h) maps object ids to the
// RecordRef handles returned here.

#ifndef PVDB_STORAGE_RECORD_STORE_H_
#define PVDB_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/storage/pager.h"

namespace pvdb::storage {

/// Handle to a stored record: head page of its chain plus total byte length.
struct RecordRef {
  PageId head = kInvalidPageId;
  uint64_t length = 0;

  bool valid() const { return head != kInvalidPageId; }
  bool operator==(const RecordRef& o) const {
    return head == o.head && length == o.length;
  }
};

/// Byte-payload record storage over a Pager.
class RecordStore {
 public:
  /// Payload bytes available per page after the chain header.
  static constexpr size_t kPayloadPerPage = kPageSize - sizeof(PageId) -
                                            sizeof(uint32_t);

  /// The store borrows the pager; the caller keeps it alive.
  explicit RecordStore(Pager* pager) : pager_(pager) { PVDB_CHECK(pager); }

  /// Writes `bytes` as a new record and returns its handle.
  Result<RecordRef> Put(const std::vector<uint8_t>& bytes);

  /// Reads the full payload of `ref`.
  Result<std::vector<uint8_t>> Get(const RecordRef& ref);

  /// Frees the record's page chain.
  Status Delete(const RecordRef& ref);

  /// Replaces the record contents; reuses the existing chain when the new
  /// payload needs the same number of pages, else reallocates.
  Result<RecordRef> Update(const RecordRef& ref,
                           const std::vector<uint8_t>& bytes);

  /// Reads only the first `n` bytes of the record — cheap header access for
  /// records whose tail (e.g. a pdf) spans many pages. `n` must not exceed
  /// the record length.
  Result<std::vector<uint8_t>> GetPrefix(const RecordRef& ref, size_t n);

  /// Overwrites the first `bytes.size()` bytes of the record in place.
  /// The prefix must fit in the first page of the chain.
  Status WritePrefix(const RecordRef& ref, const std::vector<uint8_t>& bytes);

  /// Number of pages a payload of `length` bytes occupies.
  static uint64_t PagesNeeded(uint64_t length) {
    return length == 0 ? 1 : (length + kPayloadPerPage - 1) / kPayloadPerPage;
  }

 private:
  Pager* pager_;
};

}  // namespace pvdb::storage

#endif  // PVDB_STORAGE_RECORD_STORE_H_
