// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// storage::Env: the filesystem seam every durable-path byte goes through.
// The snapshot save path and the write-ahead log do all of their file I/O
// via this interface (never raw POSIX calls), for the same reason the page
// layer routes through Pager: a fault-injection wrapper
// (storage/fault_env.h) can then drop unsynced writes, tear tails, fail the
// Nth syscall and revert un-fsynced renames — turning "crash safety" from a
// comment into a tested property. The default implementation
// (Env::Default()) is plain POSIX with unbuffered writes.
//
// Durability contract the implementations honor:
//   * WritableFile::Append hands bytes to the OS; they are NOT durable.
//   * WritableFile::Sync makes every appended byte durable (fsync).
//   * Env::SyncDir makes directory entries (creates, renames) durable —
//     a rename without a parent-directory fsync can be lost by a crash
//     even when the file's own bytes were synced.
//
// Every error Status carries errno/strerror detail: the message says what
// failed AND why ("open failed: ... : No space left on device"), because a
// durability failure report without the cause is undebuggable in the field.

#ifndef PVDB_STORAGE_ENV_H_
#define PVDB_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace pvdb::storage {

/// Append-only file handle. Not thread-safe; one writer owns it.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file (buffered by the OS, not
  /// durable until Sync).
  virtual Status Append(std::span<const uint8_t> data) = 0;

  /// fsync: on OK return every appended byte is on durable storage.
  virtual Status Sync() = 0;

  /// Closes the descriptor; further calls fail. Idempotent.
  virtual Status Close() = 0;
};

/// Forward-only read handle (the WAL replay path).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes into `scratch`; returns the count actually read
  /// (0 at end of file). Short reads before EOF are retried internally.
  virtual Result<size_t> Read(size_t n, uint8_t* scratch) = 0;
};

/// The filesystem interface. Implementations are thread-safe at the Env
/// level (file handles themselves are single-owner).
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment.
  static Env* Default();

  /// Creates (or truncates, when `truncate`) `path` for appending.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate = true) = 0;

  /// Opens `path` for sequential reading.
  virtual Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;

  /// Reads the whole of `path` into `*out` (small control files: CURRENT,
  /// WAL scans in tests — snapshots stay on the mmap path).
  virtual Status ReadFile(const std::string& path,
                          std::vector<uint8_t>* out) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;

  /// Names (not paths) of the entries of `dir`, excluding "." / "..".
  virtual Result<std::vector<std::string>> GetChildren(
      const std::string& dir) = 0;

  virtual Status CreateDirIfMissing(const std::string& dir) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from`. Durable only after
  /// SyncDir(parent of `to`).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Truncates `path` to `size` bytes (WAL torn-tail repair).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// fsyncs the directory itself, making its entry changes (creates,
  /// deletes, renames) durable.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// Writes `data` to `path` atomically and durably: temp file + Append +
/// Sync + rename + parent-directory Sync. A crash at any point leaves
/// either the old file or the new one, never a torn or vanished entry; a
/// failed rename removes the stale temp file. This is THE way control and
/// image files reach disk (snapshot save, CURRENT manifest, delta seals).
Status WriteFileAtomic(Env* env, const std::string& path,
                       std::span<const uint8_t> data);

/// The directory component of `path` ("." when there is none).
std::string ParentDir(const std::string& path);

}  // namespace pvdb::storage

#endif  // PVDB_STORAGE_ENV_H_
