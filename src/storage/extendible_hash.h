// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// Extensible hashing (Fagin et al.), the structure Section VI names for the
// PV-index's secondary index. An in-memory directory of 2^global_depth
// entries points at bucket pages on disk; overflowing buckets split by one
// more hash bit, doubling the directory only when a bucket's local depth
// exceeds the global depth. Lookups cost exactly one page read.

#ifndef PVDB_STORAGE_EXTENDIBLE_HASH_H_
#define PVDB_STORAGE_EXTENDIBLE_HASH_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/storage/pager.h"
#include "src/storage/record_store.h"

namespace pvdb::storage {

/// Disk-backed hash table mapping uint64 keys to RecordRef values.
class ExtendibleHash {
 public:
  /// Entries per bucket page: [local_depth u32][count u32] then
  /// (key u64, head u64, length u64) triples.
  static constexpr size_t kEntrySize = 3 * sizeof(uint64_t);
  static constexpr size_t kHeaderSize = 2 * sizeof(uint32_t);
  static constexpr size_t kBucketCapacity =
      (kPageSize - kHeaderSize) / kEntrySize;

  /// Creates an empty table (one bucket, global depth 0) on `pager`.
  static Result<ExtendibleHash> Create(Pager* pager);

  /// Inserts or overwrites the value for `key`.
  Status Put(uint64_t key, const RecordRef& value);

  /// Looks up `key`; NotFound if absent. Exactly one page read.
  Result<RecordRef> Get(uint64_t key) const;

  /// Removes `key`; NotFound if absent. Buckets are not merged (deletes are
  /// rare in this workload; space is reclaimed on rebuild).
  Status Delete(uint64_t key);

  /// Number of stored keys.
  uint64_t Size() const { return size_; }

  /// Current global depth (directory has 2^GlobalDepth entries).
  int GlobalDepth() const { return global_depth_; }

  /// Number of distinct bucket pages.
  size_t BucketCount() const;

  /// All keys, in unspecified order (testing and index rebuild support).
  Result<std::vector<uint64_t>> Keys() const;

 private:
  explicit ExtendibleHash(Pager* pager) : pager_(pager) {}

  static uint64_t HashKey(uint64_t key);
  size_t DirIndex(uint64_t key) const;
  Status SplitBucket(size_t dir_index);

  Pager* pager_ = nullptr;
  std::vector<PageId> directory_;
  int global_depth_ = 0;
  uint64_t size_ = 0;
};

}  // namespace pvdb::storage

#endif  // PVDB_STORAGE_EXTENDIBLE_HASH_H_
