// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/storage/wal.h"

#include <cstring>

#include "src/common/crc32c.h"

namespace pvdb::storage {

namespace {

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Status WalReplay(Env* env, const std::string& path, const WalApplyFn& apply,
                 WalReplayStats* stats) {
  WalReplayStats local;
  WalReplayStats& out = stats != nullptr ? *stats : local;
  out = WalReplayStats{};

  if (!env->FileExists(path)) {
    return Status::NotFound("WAL file missing: " + path);
  }
  std::vector<uint8_t> bytes;
  PVDB_RETURN_NOT_OK(env->ReadFile(path, &bytes));

  // A file too short for the magic is a crash during creation (nothing was
  // ever acknowledged from it); a full-size wrong magic is a foreign file.
  if (bytes.size() < kWalFileHeaderBytes) {
    out.tail_corrupt = bytes.size() != 0;
    out.bytes_dropped = bytes.size();
    if (out.tail_corrupt) out.tail_detail = "file header torn";
    return Status::OK();
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption("bad WAL magic: not a pvdb WAL file: " + path);
  }

  size_t off = kWalFileHeaderBytes;
  auto stop = [&](std::string why) {
    out.tail_corrupt = true;
    out.tail_detail = std::move(why);
  };
  while (off < bytes.size()) {
    const size_t remaining = bytes.size() - off;
    if (remaining < kWalRecordHeaderBytes) {
      stop("record header torn (" + std::to_string(remaining) +
           " bytes at offset " + std::to_string(off) + ")");
      break;
    }
    const uint32_t len = ReadU32(bytes.data() + off);
    if (len > kMaxWalRecordBytes) {
      stop("implausible record length " + std::to_string(len) +
           " at offset " + std::to_string(off));
      break;
    }
    if (remaining < kWalRecordHeaderBytes + len) {
      stop("record body torn (" + std::to_string(len) +
           " bytes declared, " +
           std::to_string(remaining - kWalRecordHeaderBytes) +
           " present at offset " + std::to_string(off) + ")");
      break;
    }
    const uint32_t crc = ReadU32(bytes.data() + off + 4);
    // crc covers type byte + payload as one contiguous range.
    if (Crc32c(bytes.data() + off + 8, 1 + len) != crc) {
      stop("record checksum mismatch at offset " + std::to_string(off));
      break;
    }
    if (apply != nullptr) {
      const uint8_t type = bytes[off + 8];
      PVDB_RETURN_NOT_OK(
          apply(type, std::span<const uint8_t>(
                          bytes.data() + off + kWalRecordHeaderBytes, len)));
    }
    off += kWalRecordHeaderBytes + len;
    ++out.records_applied;
  }
  out.valid_bytes = off;
  out.bytes_dropped = bytes.size() - off;
  return Status::OK();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env, std::string path,
                                                   const WalOptions& options,
                                                   WalReplayStats* repair) {
  auto writer =
      std::unique_ptr<WalWriter>(new WalWriter(env, std::move(path), options));
  WalReplayStats scan;
  if (env->FileExists(writer->path_)) {
    // Validate the existing log and chop any torn tail BEFORE appending:
    // new records behind dead bytes would be unreachable to every replay.
    PVDB_RETURN_NOT_OK(WalReplay(env, writer->path_, nullptr, &scan));
    if (scan.bytes_dropped > 0) {
      PVDB_RETURN_NOT_OK(env->TruncateFile(writer->path_, scan.valid_bytes));
    }
    if (scan.valid_bytes < kWalFileHeaderBytes) {
      // Creation itself was torn; start the file over.
      PVDB_ASSIGN_OR_RETURN(writer->file_,
                            env->NewWritableFile(writer->path_,
                                                 /*truncate=*/true));
      PVDB_RETURN_NOT_OK(writer->file_->Append(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(kWalMagic), sizeof(kWalMagic))));
      PVDB_RETURN_NOT_OK(writer->file_->Sync());
      writer->file_bytes_ = kWalFileHeaderBytes;
    } else {
      PVDB_ASSIGN_OR_RETURN(writer->file_,
                            env->NewWritableFile(writer->path_,
                                                 /*truncate=*/false));
      writer->file_bytes_ = scan.valid_bytes;
    }
    writer->appended_records_ = scan.records_applied;
    writer->synced_records_ = scan.records_applied;
  } else {
    PVDB_ASSIGN_OR_RETURN(writer->file_, env->NewWritableFile(writer->path_,
                                                              /*truncate=*/true));
    PVDB_RETURN_NOT_OK(writer->file_->Append(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(kWalMagic), sizeof(kWalMagic))));
    PVDB_RETURN_NOT_OK(writer->file_->Sync());
    writer->file_bytes_ = kWalFileHeaderBytes;
  }
  if (repair != nullptr) *repair = scan;
  return writer;
}

Status WalWriter::Append(uint8_t type, std::span<const uint8_t> payload) {
  if (file_ == nullptr) {
    return Status::IOError("append to closed WAL " + path_);
  }
  if (payload.size() > kMaxWalRecordBytes) {
    return Status::InvalidArgument(
        "WAL record payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxWalRecordBytes) +
        "-byte bound");
  }
  // One buffer, one write syscall per record: a torn append can only tear
  // the record's own tail, never interleave with a neighbor.
  std::vector<uint8_t> rec(kWalRecordHeaderBytes + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(rec.data(), &len, sizeof(len));
  rec[8] = type;
  if (!payload.empty()) {
    std::memcpy(rec.data() + kWalRecordHeaderBytes, payload.data(),
                payload.size());
  }
  const uint32_t crc = Crc32c(rec.data() + 8, 1 + payload.size());
  std::memcpy(rec.data() + 4, &crc, sizeof(crc));

  PVDB_RETURN_NOT_OK(file_->Append(rec));
  file_bytes_ += rec.size();
  ++appended_records_;

  const bool by_count =
      options_.sync_every_n != 0 &&
      appended_records_ - synced_records_ >= options_.sync_every_n;
  const bool by_timer =
      options_.sync_interval_ms > 0.0 &&
      since_last_sync_.ElapsedMillis() >= options_.sync_interval_ms;
  if (by_count || by_timer) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::IOError("sync of closed WAL " + path_);
  PVDB_RETURN_NOT_OK(file_->Sync());
  synced_records_ = appended_records_;
  since_last_sync_ = StopWatch();
  return Status::OK();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = Status::OK();
  if (appended_records_ != synced_records_) st = Sync();
  const Status closed = file_->Close();
  file_.reset();
  return st.ok() ? closed : st;
}

}  // namespace pvdb::storage
