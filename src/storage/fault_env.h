// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.
//
// FaultInjectionEnv: the filesystem-layer sibling of the FlakyPager in
// tests/fault_injection_test.cc. It delegates to a real Env (the files are
// really written, so mmap-based readers see them) while tracking exactly
// which bytes and which directory entries a crash would preserve:
//
//   * file data appended but not Sync'd        → DropUnsyncedFileData()
//     truncates each file back to its last synced size (the classic
//     lost-page-cache crash, including torn mid-record tails);
//   * creates/renames not covered by SyncDir() → DropUnsyncedMetadata()
//     deletes the created files and reverts the renames (the crash that
//     "forgets" a rename whose parent directory was never fsync'd);
//   * SimulateCrash()                          → both, metadata first
//     (power loss: the page cache and the unjournaled dirents go together).
//
// Plus the FlakyPager-style op budget: after `SetOpBudget(n)` the (n+1)-th
// counted operation — and every one after it — fails with an injected
// IOError naming the op, so a test can sweep a failure through every
// stage of a save, a WAL append or a compaction and assert the layer above
// degrades instead of crashing or lying.
//
// Counted ops: NewWritableFile, NewSequentialFile, Append, Sync, Read,
// RenameFile, DeleteFile, TruncateFile, SyncDir, CreateDirIfMissing.
// Pure queries (FileExists, GetFileSize, GetChildren, ReadFile's open) stay
// free so budgets are stable against incidental introspection.

#ifndef PVDB_STORAGE_FAULT_ENV_H_
#define PVDB_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/env.h"

namespace pvdb::storage {

class FaultInjectionEnv final : public Env {
 public:
  /// Wraps `base` (borrowed; typically Env::Default() over a temp dir).
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // --- fault controls -----------------------------------------------------

  /// Counted ops beyond `budget` fail with an injected IOError; negative =
  /// unlimited. The failure is sticky: once the budget is exhausted every
  /// later op fails too (a dead disk does not come back mid-sequence).
  void SetOpBudget(int64_t budget);
  /// Counted ops performed so far (to size budgets, FlakyPager-style).
  int64_t ops_used() const;
  /// Removes the op budget (the disk recovers).
  void ClearOpBudget();

  /// Truncates every tracked file to its last synced length — everything
  /// appended since the last Sync() vanishes, mid-record tears included.
  Status DropUnsyncedFileData();

  /// Deletes created-but-unsynced files and reverts renamed-but-unsynced
  /// entries (newest first), simulating a crash before the parent
  /// directory's fsync made them durable.
  Status DropUnsyncedMetadata();

  /// Power loss: drop unsynced file data, then unsynced metadata, then
  /// forget all tracking state (the next process starts from the disk).
  Status SimulateCrash();

  /// Flips one byte of `path` in place (media corruption / bit rot).
  Status FlipByte(const std::string& path, uint64_t offset);

  // --- Env ----------------------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  Status ReadFile(const std::string& path, std::vector<uint8_t>* out) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Result<std::vector<std::string>> GetChildren(const std::string& dir) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;

  // --- implementation detail (used by the file-handle wrappers) -----------

  /// Charges one counted op; non-OK = the injected failure to return.
  Status Spend(const std::string& what, const std::string& path);

  void RecordAppend(const std::string& path, size_t n);
  void RecordSync(const std::string& path);

 private:
  struct PendingMeta {
    enum Kind { kCreate, kRename } kind;
    std::string path;  // created path / rename destination
    std::string from;  // rename source (kRename only)
    /// When the rename clobbered an existing `path` (the CURRENT-manifest
    /// replace pattern), its prior content — a crash before the directory
    /// sync leaves the OLD file, it does not delete the entry.
    bool had_old = false;
    std::vector<uint8_t> old_bytes;
  };

  /// Rewrites `path` with `bytes` through the base env (revert machinery;
  /// not a tracked mutation). Caller holds mu_.
  Status RestoreBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes);

  Env* base_;
  mutable std::mutex mu_;
  int64_t budget_ = -1;
  int64_t used_ = 0;
  /// path -> {durable bytes, current bytes} for every file written through
  /// this env (files only read or pre-existing are not tracked).
  struct FileState {
    uint64_t synced_bytes = 0;
    uint64_t length = 0;
  };
  std::map<std::string, FileState> files_;
  std::vector<PendingMeta> pending_meta_;
};

}  // namespace pvdb::storage

#endif  // PVDB_STORAGE_FAULT_ENV_H_
