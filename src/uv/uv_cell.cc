// Copyright (c) 2026 The pvdb Authors. Licensed under the MIT License.

#include "src/uv/uv_cell.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/geom/distance.h"

namespace pvdb::uv {

Circle Circumscribe(const geom::Rect& region) {
  PVDB_CHECK(region.dim() == 2);
  const geom::Point c = region.Center();
  const double hx = 0.5 * region.Side(0);
  const double hy = 0.5 * region.Side(1);
  return Circle{c, std::sqrt(hx * hx + hy * hy)};
}

bool CirclePointPossiblyNearest(const Circle& o,
                                std::span<const Circle> others,
                                const geom::Point& p) {
  const double dmin_o = std::max(0.0, p.DistanceTo(o.center) - o.radius);
  for (const Circle& a : others) {
    const double dmax_a = p.DistanceTo(a.center) + a.radius;
    if (dmax_a < dmin_o) return false;
  }
  return true;
}

namespace {

// Circle-distance domination of candidate `a` over object `b` on all of
// `cell`: max_p (|p−c_a| + r_a) < min_p (|p−c_b| − r_b). Sufficient (hence
// conservative for cover construction).
bool CircleDominatesCell(const Circle& a, const Circle& b,
                         const geom::Rect& cell) {
  const double max_a = geom::MaxDist(cell, a.center) + a.radius;
  const double min_b = geom::MinDist(cell, b.center) - b.radius;
  return max_a < min_b;
}

}  // namespace

UvCover ComputeUvCover(const uncertain::UncertainObject& o,
                       std::span<const geom::Rect> cset,
                       const geom::Rect& domain,
                       const UvCellOptions& options) {
  PVDB_CHECK(o.dim() == 2 && domain.dim() == 2);
  UvCover cover;

  const Circle oc = Circumscribe(o.region());
  std::vector<Circle> candidates;
  candidates.reserve(cset.size());
  for (const geom::Rect& r : cset) {
    // Candidates overlapping o's circle cannot constrain the cell (the
    // circle analogue of Lemma 2).
    const Circle c = Circumscribe(r);
    if (c.center.DistanceTo(oc.center) <= c.radius + oc.radius) continue;
    candidates.push_back(c);
  }

  // Phase 1 — high-precision boundary probe ([9]'s curve-geometry analogue).
  // For each direction, bisect the largest radius at which o may still be
  // the nearest object. The probes dominate construction cost by design;
  // their output feeds the diagnostic radius (the cover below is what the
  // index relies on for correctness).
  const double domain_diag =
      std::sqrt(domain.Side(0) * domain.Side(0) +
                domain.Side(1) * domain.Side(1));
  for (int k = 0; k < options.rays; ++k) {
    const double theta = (2.0 * M_PI * k) / options.rays;
    const double dx = std::cos(theta);
    const double dy = std::sin(theta);
    double lo = 0.0;
    double hi = domain_diag;
    while (hi - lo > options.ray_tolerance) {
      const double mid = 0.5 * (lo + hi);
      geom::Point p{oc.center[0] + mid * dx, oc.center[1] + mid * dy};
      // Clamp the probe into the domain; beyond it the cell cannot extend.
      if (!domain.Contains(p)) {
        hi = mid;
        continue;
      }
      if (CirclePointPossiblyNearest(oc, candidates, p)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    cover.max_boundary_radius = std::max(cover.max_boundary_radius, hi);
  }

  // Phase 2 — conservative cover by adaptive refinement.
  std::vector<geom::Rect> pending{domain};
  while (!pending.empty() && cover.cells_examined < options.max_cells) {
    const geom::Rect cell = pending.back();
    pending.pop_back();
    ++cover.cells_examined;
    bool dominated = false;
    for (const Circle& a : candidates) {
      if (CircleDominatesCell(a, oc, cell)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    if (cell.MaxSide() <= options.resolution) {
      cover.cells.push_back(cell);
      continue;
    }
    const int axis = cell.LongestDim();
    const double mid = 0.5 * (cell.lo(axis) + cell.hi(axis));
    geom::Rect left = cell;
    geom::Rect right = cell;
    left.set_hi(axis, mid);
    right.set_lo(axis, mid);
    pending.push_back(left);
    pending.push_back(right);
  }
  // Budget exhausted: keep the unprocessed cells (conservative).
  for (const geom::Rect& cell : pending) cover.cells.push_back(cell);

  if (cover.cells.empty()) {
    // Degenerate (should not happen: u(o) is always inside its own cell);
    // fall back to the uncertainty region itself.
    cover.cells.push_back(o.region());
  }
  cover.mbr = cover.cells[0];
  for (size_t i = 1; i < cover.cells.size(); ++i) {
    cover.mbr = geom::Rect::Union(cover.mbr, cover.cells[i]);
  }
  return cover;
}

}  // namespace pvdb::uv
